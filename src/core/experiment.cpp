#include "core/experiment.hpp"

#include <numeric>

#include "common/error.hpp"
#include "power/efficiency.hpp"
#include "power/resource_model.hpp"

namespace vr::core {

ExperimentRunner::ExperimentRunner(fpga::DeviceSpec device,
                                   fpga::PnrEffects effects,
                                   fpga::FreqModelParams freq_params)
    : sim_(std::move(device), effects), freq_params_(freq_params) {}

ExperimentResult ExperimentRunner::run(const Scenario& scenario) const {
  const Workload workload = realize_workload(scenario);
  return run(scenario, workload);
}

fpga::PnrDesign ExperimentRunner::device_design(
    const Scenario& scenario, const Workload& workload,
    std::size_t device_index) const {
  fpga::PnrDesign design;
  design.grade = scenario.grade;
  design.bram_policy = scenario.bram_policy;
  design.requested_freq_mhz = scenario.freq_mhz;
  design.freq_params = freq_params_;

  std::vector<double> mu = scenario.utilization;
  if (mu.empty()) {
    mu.assign(scenario.vn_count,
              1.0 / static_cast<double>(scenario.vn_count));
  }
  VR_REQUIRE(mu.size() == scenario.vn_count,
             "utilization vector size must equal K");

  switch (scenario.scheme) {
    case power::Scheme::kNonVirtualized: {
      // Device i hosts VN i's engine alone.
      fpga::PipelinePlacement p;
      p.stage_bits = workload.heterogeneous_engines.empty()
                         ? workload.per_vn_engine.stage_bits
                         : workload.heterogeneous_engines[device_index]
                               .stage_bits;
      p.activity = mu[device_index];
      design.pipelines.push_back(std::move(p));
      break;
    }
    case power::Scheme::kSeparate: {
      design.pipelines.reserve(scenario.vn_count);
      for (std::size_t v = 0; v < scenario.vn_count; ++v) {
        fpga::PipelinePlacement p;
        p.stage_bits = workload.heterogeneous_engines.empty()
                           ? workload.per_vn_engine.stage_bits
                           : workload.heterogeneous_engines[v].stage_bits;
        p.activity = mu[v];
        design.pipelines.push_back(std::move(p));
      }
      break;
    }
    case power::Scheme::kMerged: {
      fpga::PipelinePlacement p;
      p.stage_bits = workload.merged_engine.stage_bits;
      p.activity =
          std::min(1.0, std::accumulate(mu.begin(), mu.end(), 0.0));
      design.pipelines.push_back(std::move(p));
      break;
    }
  }
  return design;
}

ExperimentResult ExperimentRunner::run(const Scenario& scenario,
                                       const Workload& workload) const {
  ExperimentResult out;
  const std::size_t devices =
      power::devices_for(scenario.scheme, scenario.vn_count);
  for (std::size_t d = 0; d < devices; ++d) {
    const fpga::PnrDesign design = device_design(scenario, workload, d);
    const fpga::PnrReport report = sim_.analyze(design);
    out.power.static_w += report.static_w;
    out.power.logic_w += report.logic_w;
    out.power.memory_w += report.bram_w;
    if (d == 0) {
      out.device_report = report;
      out.freq_mhz = report.clock_mhz;
    }
  }
  out.power.devices = devices;
  out.power.freq_mhz = out.freq_mhz;
  out.throughput_gbps = power::aggregate_throughput_gbps(
      scenario.scheme, scenario.vn_count, out.freq_mhz);
  out.mw_per_gbps =
      power::mw_per_gbps(out.power.total_w(), out.throughput_gbps);
  return out;
}

}  // namespace vr::core
