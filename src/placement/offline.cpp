#include "placement/offline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "placement/policy.hpp"

namespace vr::placement {

namespace {

constexpr DeviceMode kAllModes[] = {DeviceMode::kDedicated,
                                    DeviceMode::kSpaceShared,
                                    DeviceMode::kTimeShared};

/// Cheapest watts-per-tenant over every feasible homogeneous co-location
/// of this VN class; 0 when the VN fits nowhere even alone (the greedy
/// pass skips it too, keeping the two bounds consistent).
double ideal_share_w(const PlacedVn& vn, CostOracle& oracle) {
  double best_w = std::numeric_limits<double>::infinity();
  for (const DeviceMode mode : kAllModes) {
    for (std::uint32_t k = 1; k <= oracle.config().max_vns_per_device; ++k) {
      DeviceShape shape;
      shape.mode = mode;
      shape.vn_count = k;
      shape.max_bucket = vn.bucket;
      shape.mu_total_q = k * vn.mu_q;
      shape.sla_floor = vn.sla;
      if (!oracle.feasible(shape)) continue;
      best_w = std::min(best_w,
                        oracle.watts(shape) / static_cast<double>(k));
    }
  }
  return std::isfinite(best_w) ? best_w : 0.0;
}

}  // namespace

OfflineBound offline_bound(const std::vector<PlacedVn>& vns,
                           CostOracle& oracle) {
  OfflineBound bound;
  if (vns.empty()) return bound;

  // Greedy upper bound: best-fit-decreasing with hindsight — largest
  // tables first, each placed where it costs the least marginal watts.
  std::vector<PlacedVn> order = vns;
  std::sort(order.begin(), order.end(),
            [](const PlacedVn& a, const PlacedVn& b) {
              return std::tuple(b.bucket, b.mu_q, a.request_id) <
                     std::tuple(a.bucket, a.mu_q, b.request_id);
            });
  Fleet fleet(vns.size());
  const std::unique_ptr<PlacementPolicy> policy =
      make_policy(PolicyKind::kBestFitWatts);
  for (const PlacedVn& vn : order) {
    const Decision decision = policy->decide(fleet, oracle, vn);
    if (!decision.accept) continue;  // infeasible even on an empty device
    fleet.place(decision.device, vn, decision.mode);
  }
  for (const auto& [shape, devices] : fleet.groups()) {
    bound.greedy_w +=
        oracle.watts(shape) * static_cast<double>(devices.size());
  }
  bound.greedy_devices = fleet.active_devices();

  // Fractional lower bound: Σ per-VN ideal shares, memoized per class.
  std::map<std::tuple<std::uint32_t, std::uint32_t, SlaClass>, double> memo;
  for (const PlacedVn& vn : vns) {
    const auto key = std::tuple(vn.bucket, vn.mu_q, vn.sla);
    auto it = memo.find(key);
    if (it == memo.end()) {
      it = memo.emplace(key, ideal_share_w(vn, oracle)).first;
    }
    bound.fractional_lower_w += it->second;
  }
  return bound;
}

}  // namespace vr::placement
