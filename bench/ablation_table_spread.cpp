// Ablation: relaxing Assumption 2 (all routing tables equal size). Per-VN
// tables are spread geometrically around the nominal 3 725 prefixes and
// the NV/VS estimates re-run with true per-VN engines. The virtualization
// savings are insensitive to the spread: leakage depends on device count,
// and the summed dynamic power tracks the total table volume, not its
// distribution.
#include "bench_common.hpp"
#include "core/validator.hpp"

int main() {
  using namespace vr;
  const core::ModelValidator validator{fpga::DeviceSpec::xc6vlx760()};
  constexpr std::size_t kVns = 10;

  SeriesTable out(
      "Ablation - table-size spread (K = 10, grade -2): power and error",
      "spread_pct",
      {"NV model W", "VS model W", "NV/VS", "VS err %", "NV err %"});
  for (const double spread : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    core::Scenario nv;
    nv.scheme = power::Scheme::kNonVirtualized;
    nv.vn_count = kVns;
    nv.table_size_spread = spread;
    core::Scenario vs = nv;
    vs.scheme = power::Scheme::kSeparate;
    const core::ValidationPoint nv_point = validator.validate(nv);
    const core::ValidationPoint vs_point = validator.validate(vs);
    out.add_point(spread * 100.0,
                  {nv_point.model.power.total_w().value(),
                   vs_point.model.power.total_w().value(),
                   nv_point.model.power.total_w() /
                       vs_point.model.power.total_w(),
                   vs_point.error_total_pct, nv_point.error_total_pct});
  }
  vr::bench::emit(out);
  std::cout << "Across 0-80% size spread the NV/VS power ratio stays ~K\n"
               "and the model error stays within the paper's bound:\n"
               "Assumption 2 is a notational convenience, not load-bearing.\n";
  return 0;
}
