// MUST COMPILE: the legal subset of the quantity algebra, exercised the
// same way the fail_*.cpp cases exercise the illegal one. If this file
// ever stops compiling the fail cases prove nothing.
#include "common/units.hpp"
#include "fpga/thermal.hpp"
#include "fpga/xpe_tables.hpp"
#include "pipeline/energy.hpp"

int main() {
  using namespace vr::units;
  const Watts w = to_watts(Milliwatts{1500.0});
  const Watts doubled = w + w;
  const Microwatts from_coeff = PjPerCycle{2.5} * Megahertz{400.0};
  const Gbps gbps = lookup_throughput(Megahertz{400.0}, kMinPacketBytes);
  const MwPerGbps eff = to_milliwatts(doubled) / gbps;
  const double ratio = doubled / w;  // same-unit ratio is dimensionless

  // The typed fpga/pipeline surface, called the way the fail cases misuse it.
  const Watts bram = vr::fpga::XpeTables::bram_power_w(
      vr::fpga::BramKind::k36, vr::fpga::SpeedGrade::kMinus2, 1,
      Megahertz{400.0});
  const Microwatts coeff_product =
      vr::fpga::XpeTables::bram_uw_per_mhz(vr::fpga::BramKind::k18,
                                           vr::fpga::SpeedGrade::kMinus2) *
      Megahertz{400.0};
  vr::pipeline::ActivityCounters counters;
  const vr::fpga::StageBramPlan plan;
  const auto engine = vr::pipeline::measure_engine_power(
      counters, plan, vr::fpga::SpeedGrade::kMinus2, Megahertz{300.0});
  const auto point = vr::fpga::solve_thermal(Watts{4.5}, Watts{0.25});
  const Nanoseconds cycle = period(Megahertz{250.0});

  const double sum = eff.value() + from_coeff.value() + ratio + bram.value() +
                     coeff_product.value() + engine.dynamic_w().value() +
                     cycle.value() + (point.within_limits ? 1.0 : 0.0);
  return static_cast<int>(sum) > 1'000'000 ? 1 : 0;
}
