file(REMOVE_RECURSE
  "CMakeFiles/vr_tcam.dir/tcam.cpp.o"
  "CMakeFiles/vr_tcam.dir/tcam.cpp.o.d"
  "CMakeFiles/vr_tcam.dir/tcam_power.cpp.o"
  "CMakeFiles/vr_tcam.dir/tcam_power.cpp.o.d"
  "libvr_tcam.a"
  "libvr_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
