// Structural diff between two tries: counts the node words a deployment
// would have to rewrite to turn one into the other. Used to quantify the
// WRITE AMPLIFICATION of leaf pushing under route updates — the problem
// the paper's reference [6] ("Towards on-the-fly incremental updates for
// virtualized routers on FPGA") addresses: in a leaf-pushed trie a single
// announce can change the inherited next hop of an entire subtree of
// leaves, while the raw trie changes O(prefix length) words.
#pragma once

#include <cstddef>

#include "trie/unibit_trie.hpp"

namespace vr::trie {

/// Word-level difference between deployments of `before` and `after`.
struct TrieDiff {
  std::size_t nodes_added = 0;     ///< in `after` but not `before`
  std::size_t nodes_removed = 0;   ///< in `before` but not `after`
  std::size_t nodes_changed = 0;   ///< same position, different contents
  std::size_t nodes_unchanged = 0;

  /// Memory words that must be written to apply the transition (added +
  /// changed nodes, plus one parent-pointer write per removal).
  [[nodiscard]] std::size_t words_written() const noexcept {
    return nodes_added + nodes_changed + nodes_removed;
  }
};

/// Computes the positional diff (two tries compared along their common
/// structure from the root; a node "position" is its bit path).
[[nodiscard]] TrieDiff diff_tries(const UnibitTrie& before,
                                  const UnibitTrie& after);

}  // namespace vr::trie
