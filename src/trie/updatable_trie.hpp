// Incrementally updatable uni-bit trie.
//
// The paper's Sec. V-B assumes a 1 % BRAM write rate ("low update rate"),
// and its reference [6] ("Towards on-the-fly incremental updates for
// virtualized routers on FPGA") motivates in-place route updates instead
// of full rebuilds. This class supports announce/withdraw with exact
// accounting of the memory writes each update would issue per pipeline
// stage — the inputs to the update-rate power model
// (power/update_power.hpp) and the `ablation_update_rate` bench.
//
// Unlike UnibitTrie (an immutable, level-contiguous deployment image),
// the updatable trie keeps an explicit free list and per-node depth; a
// deployment image can be snapshotted at any time via snapshot().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/route_update.hpp"
#include "netbase/routing_table.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {

/// Memory-write accounting of one applied update.
struct UpdateCost {
  std::size_t nodes_created = 0;
  std::size_t nodes_removed = 0;
  /// Node words written (created nodes + modified parents/entries).
  std::size_t words_written = 0;
  /// Deepest stage touched (== prefix length for a trie-path update).
  std::size_t max_depth_touched = 0;

  UpdateCost& operator+=(const UpdateCost& other) noexcept {
    nodes_created += other.nodes_created;
    nodes_removed += other.nodes_removed;
    words_written += other.words_written;
    max_depth_touched = std::max(max_depth_touched,
                                 other.max_depth_touched);
    return *this;
  }
};

class UpdatableTrie {
 public:
  /// Starts from an existing table (possibly empty).
  explicit UpdatableTrie(const net::RoutingTable& table = {});

  /// Applies one update; returns its write cost. Withdrawing an absent
  /// prefix or announcing an identical route is a no-op with zero writes.
  UpdateCost apply(const net::RouteUpdate& update);

  /// Convenience wrappers.
  UpdateCost announce(const net::Route& route) {
    return apply({net::RouteUpdate::Kind::kAnnounce, route});
  }
  UpdateCost withdraw(const net::Prefix& prefix) {
    return apply({net::RouteUpdate::Kind::kWithdraw, {prefix, net::kNoRoute}});
  }

  /// Longest-prefix match (same semantics as UnibitTrie::lookup).
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr) const;

  /// Live (non-free) node count, including the root.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return live_nodes_;
  }
  /// Number of installed routes.
  [[nodiscard]] std::size_t route_count() const noexcept {
    return route_count_;
  }
  /// Live nodes per depth (size 33; the deployment's per-stage occupancy).
  [[nodiscard]] const std::vector<std::size_t>& nodes_per_depth() const
      noexcept {
    return nodes_per_depth_;
  }

  /// Exports the current routes as a table (sorted).
  [[nodiscard]] net::RoutingTable to_table() const;

  /// Snapshots an immutable, level-contiguous deployment trie.
  [[nodiscard]] UnibitTrie snapshot() const { return UnibitTrie(to_table()); }

  /// Capacity of the node pool including freed slots (for tests asserting
  /// slot reuse).
  [[nodiscard]] std::size_t pool_size() const noexcept {
    return nodes_.size();
  }

 private:
  struct Node {
    NodeIndex left = kNullNode;
    NodeIndex right = kNullNode;
    net::NextHop next_hop = net::kNoRoute;

    [[nodiscard]] bool is_leaf() const noexcept {
      return left == kNullNode && right == kNullNode;
    }
  };

  NodeIndex allocate(unsigned depth);
  void release(NodeIndex index, unsigned depth);

  UpdateCost do_announce(const net::Route& route);
  UpdateCost do_withdraw(const net::Prefix& prefix);

  std::vector<Node> nodes_;
  std::vector<NodeIndex> free_list_;
  std::vector<std::size_t> nodes_per_depth_ = std::vector<std::size_t>(33, 0);
  std::size_t live_nodes_ = 0;
  std::size_t route_count_ = 0;
};

/// Applies a whole update stream, returning the accumulated cost.
UpdateCost apply_all(UpdatableTrie& trie,
                     const std::vector<net::RouteUpdate>& updates);

}  // namespace vr::trie
