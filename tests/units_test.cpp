// The strong quantity types in common/units.hpp: round-trip conversions,
// constexpr evaluation, the dimensional algebra (including the paper's
// µW/MHz ≡ pJ/cycle coefficient identity), and the idle-operating-point
// guards. The *negative* half of the contract — that dimensionally wrong
// code does not compile — lives in tests/compile_fail/ and runs as the
// `static_gate_compile_*` ctest cases.
#include <gtest/gtest.h>

#include <type_traits>

#include "common/units.hpp"

namespace vr::units {
namespace {

// ------------------------------------------------- constexpr evaluation --
// Everything below is evaluated at compile time; the static_asserts are
// the test.

static_assert(Watts{2.0}.value() == 2.0);
static_assert((Watts{1.5} + Watts{0.5}).value() == 2.0);
static_assert((Watts{3.0} - Watts{1.0}).value() == 2.0);
static_assert((-Watts{2.0}).value() == -2.0);
static_assert((Watts{2.0} * 3.0).value() == 6.0);
static_assert((3.0 * Watts{2.0}).value() == 6.0);
static_assert((Watts{6.0} / 3.0).value() == 2.0);
static_assert(Watts{6.0} / Watts{3.0} == 2.0);  // dimensionless ratio
static_assert(Watts{1.0} < Watts{2.0});
static_assert(Watts{2.0} == Watts{2.0});
static_assert(to_watts(Milliwatts{1500.0}).value() == 1.5);
static_assert(to_watts(Microwatts{2'000'000.0}).value() == 2.0);
static_assert(to_milliwatts(Watts{1.5}).value() == 1500.0);
static_assert(to_microwatts(Watts{1.5}).value() == 1'500'000.0);
static_assert(Bits{2048}.value() == 2048u);
static_assert(bits_to_kbits(Bits{2048}) == 2.0);
static_assert((Picojoules{10.0} / Cycles{4.0}).value() == 2.5);
static_assert((PjPerCycle{2.0} * Megahertz{300.0}).value() == 600.0);
static_assert((Megahertz{300.0} * PjPerCycle{2.0}).value() == 600.0);
static_assert((Milliwatts{640.0} / Gbps{128.0}).value() == 5.0);

// Quantities stay trivially copyable value types — no hidden overhead
// relative to the raw doubles they replaced.
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_copyable_v<Bits>);
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Bits) == sizeof(std::uint64_t));

// Construction is explicit: no silent adoption of raw representations.
static_assert(!std::is_convertible_v<double, Watts>);
static_assert(!std::is_convertible_v<double, Megahertz>);
static_assert(!std::is_convertible_v<Milliwatts, Watts>);
static_assert(!std::is_convertible_v<Watts, Milliwatts>);
static_assert(std::is_constructible_v<Watts, double>);

// ------------------------------------------------------------ round trips --

TEST(UnitsTest, MilliwattRoundTripIsExactForRepresentableValues) {
  const Watts w{3.824};
  EXPECT_DOUBLE_EQ(to_watts(to_milliwatts(w)).value(), w.value());
  const Milliwatts mw{17.25};
  EXPECT_DOUBLE_EQ(to_milliwatts(to_watts(mw)).value(), mw.value());
}

TEST(UnitsTest, MicrowattRoundTrip) {
  const Watts w{0.001625};
  EXPECT_DOUBLE_EQ(to_watts(to_microwatts(w)).value(), w.value());
}

TEST(UnitsTest, TypedHelpersMatchRawHelpers) {
  EXPECT_DOUBLE_EQ(
      average_power(Picojoules{5000.0}, Cycles{100.0}, Megahertz{400.0})
          .value(),
      pj_over_cycles_to_w(5000.0, 100.0, 400.0));
  EXPECT_DOUBLE_EQ(
      lookup_throughput(Megahertz{400.0}, kMinPacketBytes).value(),
      lookup_throughput_gbps(400.0, kMinPacketBytes));
}

// ---------------------------------------------------- dimensional algebra --

TEST(UnitsTest, CoefficientIdentityMatchesPaperTableIII) {
  // Paper Table III: an 18 Kb BRAM at grade -2 burns c µW at f MHz with
  // P = c·f. The typed identity must agree with the raw arithmetic.
  const PjPerCycle c{1.48};
  const Megahertz f{400.0};
  const Microwatts p = c * f;
  EXPECT_DOUBLE_EQ(p.value(), 1.48 * 400.0);
  EXPECT_DOUBLE_EQ(to_watts(p).value(), uw_to_w(1.48 * 400.0));
}

TEST(UnitsTest, EfficiencyMetricCombinesPowerAndThroughput) {
  const Watts total{4.0};
  const Gbps throughput = lookup_throughput(Megahertz{400.0}, 40.0);
  EXPECT_DOUBLE_EQ(throughput.value(), 128.0);
  const MwPerGbps eff = to_milliwatts(total) / throughput;
  EXPECT_DOUBLE_EQ(eff.value(), 4000.0 / 128.0);
}

TEST(UnitsTest, CompoundAssignmentOperators) {
  Watts w{1.0};
  w += Watts{2.0};
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
  w -= Watts{0.5};
  EXPECT_DOUBLE_EQ(w.value(), 2.5);
  w *= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 10.0);
  w /= 5.0;
  EXPECT_DOUBLE_EQ(w.value(), 2.0);
}

TEST(UnitsTest, IntegerBitsArithmetic) {
  Bits total{};
  total += Bits{18 * 1024};
  total += Bits{36 * 1024};
  EXPECT_EQ(total.value(), 54u * 1024u);
  EXPECT_DOUBLE_EQ(bits_to_kbits(total), 54.0);
}

// -------------------------------------------------- idle-operating guards --

TEST(UnitsTest, ZeroFrequencyOperatingPointHasZeroAveragePower) {
  // Satellite fix: a clock-gated point (f = 0) must not divide by zero.
  EXPECT_EQ(pj_over_cycles_to_w(1000.0, 100.0, 0.0), 0.0);
  EXPECT_EQ(pj_over_cycles_to_w(1000.0, 100.0, -50.0), 0.0);
  EXPECT_EQ(pj_over_cycles_to_w(1000.0, 0.0, 400.0), 0.0);
  EXPECT_EQ(
      average_power(Picojoules{1000.0}, Cycles{100.0}, Megahertz{0.0})
          .value(),
      0.0);
}

TEST(UnitsTest, PositiveOperatingPointUnaffectedByGuard) {
  // P = 1000 pJ over 100 cycles at 400 MHz: t = 100/(4e8) s = 250 ns,
  // P = 1e-9 J / 2.5e-7 s = 4 mW.
  EXPECT_DOUBLE_EQ(pj_over_cycles_to_w(1000.0, 100.0, 400.0), 0.004);
}

TEST(UnitsTest, BitsToKbitsKeepsSubKbitFractions) {
  // Display sites must divide in double, not in the integer Bits rep:
  // 18 Kb + 1 bit is strictly more than 18 Kb, and sub-Kbit memories
  // (tail pipeline stages) must not display as zero.
  EXPECT_DOUBLE_EQ(bits_to_kbits(Bits{18 * 1024}), 18.0);
  EXPECT_GT(bits_to_kbits(Bits{18 * 1024 + 1}), 18.0);
  EXPECT_DOUBLE_EQ(bits_to_kbits(Bits{512}), 0.5);
  EXPECT_GT(bits_to_kbits(Bits{1}), 0.0);
  // The uint64 integer division these sites used to do truncates both.
  EXPECT_EQ((Bits{18 * 1024 + 1}.value() / 1024), 18u);
  EXPECT_EQ((Bits{512}.value() / 1024), 0u);
}

TEST(UnitsTest, EnergyTimeAlgebra) {
  const Joules e = Watts{4.5} * elapsed(Cycles{4e8}, Megahertz{400.0});
  EXPECT_DOUBLE_EQ(e.value(), 4.5);  // 1 s at 4.5 W
  EXPECT_DOUBLE_EQ((e / Seconds{2.0}).value(), 2.25);
  EXPECT_DOUBLE_EQ(period(Megahertz{400.0}).value(), 2.5);
  EXPECT_DOUBLE_EQ(to_picojoules(to_joules(Picojoules{42.0})).value(), 42.0);
}

}  // namespace
}  // namespace vr::units
