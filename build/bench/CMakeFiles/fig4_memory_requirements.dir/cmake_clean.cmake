file(REMOVE_RECURSE
  "CMakeFiles/fig4_memory_requirements.dir/fig4_memory_requirements.cpp.o"
  "CMakeFiles/fig4_memory_requirements.dir/fig4_memory_requirements.cpp.o.d"
  "fig4_memory_requirements"
  "fig4_memory_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memory_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
