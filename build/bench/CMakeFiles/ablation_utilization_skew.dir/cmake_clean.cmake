file(REMOVE_RECURSE
  "CMakeFiles/ablation_utilization_skew.dir/ablation_utilization_skew.cpp.o"
  "CMakeFiles/ablation_utilization_skew.dir/ablation_utilization_skew.cpp.o.d"
  "ablation_utilization_skew"
  "ablation_utilization_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_utilization_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
