// Regenerates paper Fig. 3: per-pipeline-stage logic + signal power vs
// operating frequency for speed grades -2 and -1L.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options());
  bench::emit(builder.fig3_logic_power());
  return 0;
}
