#include <gtest/gtest.h>

#include "common/units.hpp"
#include "fpga/distram.hpp"
#include "power/utilization.hpp"

namespace vr {
namespace {

// ----------------------------------------------------------- dist RAM --

TEST(DistRamTest, ZeroBitsZeroPower) {
  EXPECT_DOUBLE_EQ(fpga::distram_power_w(0, units::Megahertz{400.0}).value(),
                   0.0);
  EXPECT_EQ(fpga::distram_luts(0), 0u);
}

TEST(DistRamTest, PowerLinearInFrequencyAndSize) {
  const double p1 =
      fpga::distram_power_w(1024, units::Megahertz{100.0}).value();
  EXPECT_NEAR(fpga::distram_power_w(1024, units::Megahertz{400.0}).value(),
              4.0 * p1, 1e-15);
  const double big =
      fpga::distram_power_w(10 * 1024, units::Megahertz{100.0}).value();
  EXPECT_GT(big, 5.0 * p1);  // grows with size (plus the base term)
}

TEST(DistRamTest, LutsCeilAt64Bits) {
  EXPECT_EQ(fpga::distram_luts(1), 1u);
  EXPECT_EQ(fpga::distram_luts(64), 1u);
  EXPECT_EQ(fpga::distram_luts(65), 2u);
  EXPECT_EQ(fpga::distram_luts(1024), 16u);
}

TEST(DistRamTest, TinyMemoriesPreferDistRam) {
  const auto choice = fpga::choose_stage_memory(
      256, fpga::SpeedGrade::kMinus2, units::Megahertz{400.0});
  EXPECT_EQ(choice.tech, fpga::MemoryTech::kDistRam);
  EXPECT_GT(choice.luts, 0u);
  EXPECT_EQ(choice.bram_halves, 0u);
}

TEST(DistRamTest, LargeMemoriesPreferBram) {
  const auto choice = fpga::choose_stage_memory(
      100 * 1024, fpga::SpeedGrade::kMinus2, units::Megahertz{400.0});
  EXPECT_EQ(choice.tech, fpga::MemoryTech::kBram);
  EXPECT_GT(choice.bram_halves, 0u);
  EXPECT_EQ(choice.luts, 0u);
}

TEST(DistRamTest, CrossoverConsistentWithChoices) {
  const std::uint64_t crossover =
      fpga::distram_crossover_bits(fpga::SpeedGrade::kMinus2);
  EXPECT_GT(crossover, 1024u);
  EXPECT_LT(crossover, 36u * 1024u);
  // Just below the crossover distRAM wins; just above (rounded to the
  // next BRAM decision point) BRAM wins.
  EXPECT_EQ(fpga::choose_stage_memory(crossover - 64,
                                      fpga::SpeedGrade::kMinus2,
                                      units::Megahertz{250.0})
                .tech,
            fpga::MemoryTech::kDistRam);
  EXPECT_EQ(fpga::choose_stage_memory(crossover + 64,
                                      fpga::SpeedGrade::kMinus2,
                                      units::Megahertz{250.0})
                .tech,
            fpga::MemoryTech::kBram);
}

TEST(DistRamTest, ChoicePowerIsTheMinimum) {
  for (const std::uint64_t bits : {100ull, 5000ull, 20000ull, 80000ull}) {
    const auto choice = fpga::choose_stage_memory(
        bits, fpga::SpeedGrade::kMinus1L, units::Megahertz{300.0});
    const double bram =
        fpga::allocate_bram(bits, fpga::BramPolicy::kMixed)
            .power_w(fpga::SpeedGrade::kMinus1L, units::Megahertz{300.0})
            .value();
    const double dist =
        fpga::distram_power_w(bits, units::Megahertz{300.0}).value();
    EXPECT_NEAR(choice.power_w.value(), std::min(bram, dist), 1e-15);
  }
}

// --------------------------------------------------------- utilization --

TEST(UtilizationTest, UniformSharesSumToLoad) {
  const auto mu = power::uniform_utilization(8, 0.75);
  double sum = 0.0;
  for (const double m : mu) {
    EXPECT_DOUBLE_EQ(m, 0.75 / 8.0);
    sum += m;
  }
  EXPECT_NEAR(sum, 0.75, 1e-12);
}

TEST(UtilizationTest, ZipfZeroSkewIsUniform) {
  const auto zipf = power::zipf_utilization(6, 0.0);
  const auto uniform = power::uniform_utilization(6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(zipf[i], uniform[i], 1e-12);
  }
}

TEST(UtilizationTest, ZipfSkewConcentratesOnFirstVn) {
  const auto mu = power::zipf_utilization(10, 1.0);
  double sum = 0.0;
  for (std::size_t i = 1; i < mu.size(); ++i) {
    EXPECT_LT(mu[i], mu[i - 1]);
    sum += mu[i];
  }
  sum += mu[0];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(mu[0], 0.3);  // harmonic(10) ~ 2.93 -> first share ~0.34
}

TEST(UtilizationTest, DutyCycled) {
  const auto mu = power::duty_cycled_utilization(4, 0.8, 0.25);
  for (const double m : mu) EXPECT_DOUBLE_EQ(m, 0.2);
}

TEST(UtilizationTest, RejectsBadInputs) {
  EXPECT_DEATH((void)power::uniform_utilization(0), "at least one");
  EXPECT_DEATH((void)power::zipf_utilization(4, -1.0), "skew");
  EXPECT_DEATH((void)power::duty_cycled_utilization(4, 2.0, 0.5), "peak");
}

// --------------------------------------------------------- device catalog --

TEST(DeviceCatalogTest, AllEntriesAreConsistent) {
  const auto catalog = fpga::DeviceSpec::catalog();
  ASSERT_GE(catalog.size(), 4u);
  for (const fpga::DeviceSpec& spec : catalog) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.logic_cells, 0u);
    EXPECT_EQ(spec.luts, spec.slices * 4);
    EXPECT_EQ(spec.flip_flops, spec.slices * 8);
    EXPECT_GT(spec.bram_bits, 0u);
    EXPECT_GT(spec.io_pins, 0u);
    // Leakage scales with area: every part stays below the LX760's and
    // keeps the -1L advantage.
    EXPECT_LE(spec.static_power_w(fpga::SpeedGrade::kMinus2).value(), 4.51);
    EXPECT_LT(spec.static_power_w(fpga::SpeedGrade::kMinus1L),
              spec.static_power_w(fpga::SpeedGrade::kMinus2));
  }
}

TEST(DeviceCatalogTest, SmallerPartsLeakLess) {
  const auto lx760 = fpga::DeviceSpec::xc6vlx760();
  const auto lx240 = fpga::DeviceSpec::xc6vlx240t();
  EXPECT_LT(lx240.static_power_w(fpga::SpeedGrade::kMinus2).value(),
            0.5 * lx760.static_power_w(fpga::SpeedGrade::kMinus2).value());
}

TEST(DeviceCatalogTest, SxPartIsBramHeavy) {
  const auto sx = fpga::DeviceSpec::xc6vsx475t();
  const auto lx = fpga::DeviceSpec::xc6vlx550t();
  EXPECT_GT(sx.bram_bits, lx.bram_bits);
  EXPECT_LT(sx.luts, lx.luts);
}

}  // namespace
}  // namespace vr
