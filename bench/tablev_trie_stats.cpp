// Regenerates the Sec. V-E routing-table statistics: the synthetic edge
// table's prefix count, raw trie nodes and leaf-pushed trie nodes next to
// the values the paper reports for its largest bgp.potaroo.net table
// (3 725 prefixes -> 9 726 nodes -> 16 127 leaf-pushed), plus the
// per-level node distribution that feeds the per-stage memory model.
#include "bench_common.hpp"
#include "netbase/table_gen.hpp"
#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options());
  bench::emit(builder.table_trie_stats());

  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);
  const trie::UnibitTrie pushed = trie::UnibitTrie(table).leaf_pushed();
  const trie::TrieStats stats = trie::compute_stats(pushed);

  SeriesTable levels("Leaf-pushed trie: nodes per level (seed 1)", "level",
                     {"total", "internal", "leaves"});
  for (std::size_t l = 0; l < stats.nodes_per_level.size(); ++l) {
    levels.add_point(static_cast<double>(l),
                     {static_cast<double>(stats.nodes_per_level[l]),
                      static_cast<double>(stats.internal_per_level[l]),
                      static_cast<double>(stats.leaves_per_level[l])});
  }
  bench::emit(levels);
  return 0;
}
