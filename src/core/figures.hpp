// Figure builders: one function per table/figure of the paper's evaluation.
// The bench binaries print these; the integration tests assert their
// qualitative shapes (who wins, what grows, where the error stays bounded).
#pragma once

#include <cstdint>
#include <memory>

#include "common/table.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "core/validator.hpp"
#include "core/workload_cache.hpp"

namespace vr::core {

/// Sweep configuration shared by the figure builders.
struct FigureOptions {
  std::uint64_t seed = 1;
  std::size_t max_vn = 15;       ///< Figs. 5–8 sweep K = 1..15 (Sec. VI-A)
  std::size_t memory_max_vn = 30;  ///< Fig. 4 sweeps K = 1..30
  std::size_t stages = 28;
  double alpha_high = 0.8;  ///< "α = 80 %"
  double alpha_low = 0.2;   ///< "α = 20 %"
  net::TableProfile table_profile = net::TableProfile::edge_default();
  MergedSource merged_source = MergedSource::kAnalyticAlpha;
  fpga::BramPolicy bram_policy = fpga::BramPolicy::kMixed;

  /// Worker threads for the K sweeps (0 = default_sweep_threads(), i.e.
  /// VR_THREADS or the hardware concurrency; 1 = serial). Output tables
  /// are bit-identical for every thread count.
  std::size_t threads = 0;
  /// Reuse realized workloads through the process-global WorkloadCache.
  /// Identical results either way; off only costs rebuild time.
  bool use_cache = true;
};

class FigureBuilder {
 public:
  explicit FigureBuilder(fpga::DeviceSpec device, FigureOptions options = {},
                         fpga::PnrEffects effects = {},
                         fpga::FreqModelParams freq_params = {});

  /// Fig. 2 — BRAM power (mW) of one 18 Kb / 36 Kb block vs frequency
  /// (100..500 MHz), both speed grades.
  [[nodiscard]] SeriesTable fig2_bram_power() const;

  /// Fig. 3 — per-stage logic+signal power (mW) vs frequency, both grades.
  [[nodiscard]] SeriesTable fig3_logic_power() const;

  /// Fig. 4 — pointer (left) and NHI (right) memory requirements (Kbits)
  /// vs number of VNs for merged(α_high), merged(α_low) and separate.
  struct Fig4 {
    SeriesTable pointer_memory;
    SeriesTable nhi_memory;
  };
  [[nodiscard]] Fig4 fig4_memory() const;

  /// Figs. 5/6 — total power (W) vs K at a speed grade. Fig. 5 includes
  /// the non-virtualized series; Fig. 6 restricts to the virtualized ones
  /// (and uses the experimental numbers, where the tool-optimization
  /// decrease is visible). Series come in (model, experimental) pairs.
  [[nodiscard]] SeriesTable fig5_total_power(fpga::SpeedGrade grade) const;
  [[nodiscard]] SeriesTable fig6_virtualized_power(
      fpga::SpeedGrade grade) const;

  /// Fig. 7 — model percentage error vs K at a grade.
  [[nodiscard]] SeriesTable fig7_model_error(fpga::SpeedGrade grade) const;

  /// Fig. 8 — power per unit throughput (mW/Gbps) vs K at a grade.
  [[nodiscard]] SeriesTable fig8_efficiency(fpga::SpeedGrade grade) const;

  /// Sec. V-E — trie statistics of the representative table (prefixes,
  /// raw/leaf-pushed node counts) next to the paper's reported values.
  [[nodiscard]] TextTable table_trie_stats() const;

  [[nodiscard]] const ModelValidator& validator() const noexcept {
    return validator_;
  }
  [[nodiscard]] const FigureOptions& options() const noexcept {
    return options_;
  }

  /// The scenario used at one sweep point (exposed so tests can reproduce
  /// exactly what a figure contains).
  [[nodiscard]] Scenario sweep_scenario(power::Scheme scheme,
                                        std::size_t vn_count, double alpha,
                                        fpga::SpeedGrade grade) const;

 private:
  /// Realized workload of a sweep point — through the global WorkloadCache
  /// when options_.use_cache, freshly built otherwise.
  [[nodiscard]] std::shared_ptr<const Workload> workload_for(
      const Scenario& scenario) const;

  fpga::DeviceSpec device_;
  FigureOptions options_;
  ModelValidator validator_;
  SweepRunner runner_;
};

}  // namespace vr::core
