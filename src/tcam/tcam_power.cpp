#include "tcam/tcam_power.hpp"

#include <cmath>

#include "common/units.hpp"

namespace vr::tcam {

TcamPowerReport tcam_power(std::size_t entries_stored,
                           std::size_t entries_triggered,
                           const TcamPowerParams& params) {
  TcamPowerReport report;
  const double searches_per_second = params.clock_mhz.value() * 1e6;
  const double energy_per_search_j =
      static_cast<double>(entries_triggered) * params.bits_per_entry *
      params.search_fj_per_bit * 1e-15;
  report.dynamic_w = units::Watts{energy_per_search_j * searches_per_second};
  report.static_w =
      units::Watts{static_cast<double>(entries_stored) *
                   params.bits_per_entry * params.leakage_nw_per_bit * 1e-9};
  report.throughput_gbps =
      units::lookup_throughput(params.clock_mhz, units::kMinPacketBytes);
  return report;
}

TcamPowerReport tcam_power(const FlatTcam& tcam,
                           const TcamPowerParams& params) {
  // The whole physical array is precharged per search and leaks always.
  const std::size_t array =
      std::max(tcam.entry_count(), params.chip_capacity_entries);
  return tcam_power(array, array, params);
}

TcamPowerReport tcam_power(const PartitionedTcam& tcam,
                           const TcamPowerParams& params) {
  const std::size_t array =
      std::max(tcam.entry_count(), params.chip_capacity_entries);
  // One bank's share of the array is activated per search ([20]).
  const std::size_t bank_array = std::max<std::size_t>(
      static_cast<std::size_t>(std::llround(tcam.mean_bank_size())),
      array / tcam.bank_count());
  return tcam_power(array, bank_array, params);
}

}  // namespace vr::tcam
