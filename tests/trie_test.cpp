#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "trie/flat_trie.hpp"
#include "trie/memory_layout.hpp"
#include "trie/stage_mapping.hpp"
#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {
namespace {

using net::Ipv4;
using net::Prefix;
using net::RoutingTable;

RoutingTable small_table() {
  RoutingTable t;
  t.add(*Prefix::parse("0.0.0.0/1"), 1);     // bit0 = 0
  t.add(*Prefix::parse("128.0.0.0/2"), 2);   // 10
  t.add(*Prefix::parse("192.0.0.0/2"), 3);   // 11
  t.add(*Prefix::parse("192.0.2.0/24"), 4);
  return t;
}

// ------------------------------------------------------------ basic build --

TEST(UnibitTrieTest, EmptyTableIsRootOnly) {
  const UnibitTrie trie((RoutingTable()));
  EXPECT_EQ(trie.node_count(), 1u);
  EXPECT_EQ(trie.height(), 0u);
  EXPECT_EQ(trie.level_count(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4(1, 2, 3, 4)), std::nullopt);
}

TEST(UnibitTrieTest, SingleSlashZeroRoute) {
  RoutingTable t;
  t.add(*Prefix::parse("0.0.0.0/0"), 7);
  const UnibitTrie trie(t);
  EXPECT_EQ(trie.node_count(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4(9, 9, 9, 9)), 7);
}

TEST(UnibitTrieTest, HandCheckedLookups) {
  const UnibitTrie trie(small_table());
  EXPECT_EQ(trie.lookup(Ipv4(1, 0, 0, 0)), 1);
  EXPECT_EQ(trie.lookup(Ipv4(130, 0, 0, 0)), 2);
  EXPECT_EQ(trie.lookup(Ipv4(200, 0, 0, 0)), 3);
  EXPECT_EQ(trie.lookup(Ipv4(192, 0, 2, 55)), 4);
}

TEST(UnibitTrieTest, NodeCountMatchesHandCount) {
  // Paths: /1(0) -> 1 node; /2(10),/2(11) -> 3 nodes at depths 1,2 shared
  // root-right; /24 under 11 -> 22 more. Root + 1 + 1 + 2 + 22 = 27.
  const UnibitTrie trie(small_table());
  EXPECT_EQ(trie.node_count(), 27u);
  EXPECT_EQ(trie.height(), 24u);
}

TEST(UnibitTrieTest, LevelOrderIsContiguousAndComplete) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(1));
  const auto offsets = trie.level_offsets();
  ASSERT_EQ(offsets.size(), trie.level_count() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), trie.node_count());
  std::size_t total = 0;
  for (std::size_t l = 0; l < trie.level_count(); ++l) {
    total += trie.level(l).size();
    EXPECT_GT(trie.level(l).size(), 0u);
  }
  EXPECT_EQ(total, trie.node_count());
}

TEST(UnibitTrieTest, ChildrenLiveOnNextLevel) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(2));
  for (NodeIndex i = 0; i < trie.node_count(); ++i) {
    const std::size_t level = trie.level_of(i);
    const TrieNode& node = trie.node(i);
    if (node.left != kNullNode) {
      EXPECT_EQ(trie.level_of(node.left), level + 1);
    }
    if (node.right != kNullNode) {
      EXPECT_EQ(trie.level_of(node.right), level + 1);
    }
  }
}

TEST(UnibitTrieTest, EveryNodeReachableExactlyOnce) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(3));
  std::vector<int> seen(trie.node_count(), 0);
  seen[trie.root()] = 1;
  for (NodeIndex i = 0; i < trie.node_count(); ++i) {
    const TrieNode& node = trie.node(i);
    if (node.left != kNullNode) ++seen[node.left];
    if (node.right != kNullNode) ++seen[node.right];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

// ---------------------------------------------------- lookup vs. oracle --

class TrieLookupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieLookupProperty, MatchesLinearScanOracle) {
  net::TableProfile profile;
  profile.prefix_count = 600;
  const net::SyntheticTableGenerator gen(profile);
  const RoutingTable table = gen.generate(GetParam());
  const UnibitTrie trie(table);
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 2000; ++i) {
    // Half uniform-random addresses, half in-table addresses.
    Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    if (i % 2 == 0) {
      const auto routes = table.routes();
      const net::Route& r = routes[rng.next_below(routes.size())];
      const unsigned host = 32 - r.prefix.length();
      std::uint32_t v = r.prefix.address().value();
      if (host > 0) {
        v |= static_cast<std::uint32_t>(
            rng.next_below(std::uint64_t{1} << host));
      }
      addr = Ipv4(v);
    }
    EXPECT_EQ(trie.lookup(addr), table.lookup(addr));
  }
}

TEST_P(TrieLookupProperty, LeafPushedLookupIdentical) {
  net::TableProfile profile;
  profile.prefix_count = 400;
  const net::SyntheticTableGenerator gen(profile);
  const RoutingTable table = gen.generate(GetParam() + 100);
  const UnibitTrie trie(table);
  const UnibitTrie pushed = trie.leaf_pushed();
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(pushed.lookup(addr), trie.lookup(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLookupProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------ leaf push --

class LeafPushProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  UnibitTrie make_pushed() const {
    net::TableProfile profile;
    profile.prefix_count = 500;
    const net::SyntheticTableGenerator gen(profile);
    return UnibitTrie(gen.generate(GetParam())).leaf_pushed();
  }
};

TEST_P(LeafPushProperty, InternalNodesHaveBothChildren) {
  const UnibitTrie pushed = make_pushed();
  for (const TrieNode& node : pushed.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_NE(node.left, kNullNode);
      EXPECT_NE(node.right, kNullNode);
    }
  }
}

TEST_P(LeafPushProperty, OnlyLeavesCarryRoutes) {
  const UnibitTrie pushed = make_pushed();
  for (const TrieNode& node : pushed.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_FALSE(node.has_route());
    }
  }
}

TEST_P(LeafPushProperty, NodeCountIsTwiceInternalPlusOne) {
  const UnibitTrie pushed = make_pushed();
  const TrieStats stats = compute_stats(pushed);
  EXPECT_EQ(stats.total_nodes, 2 * stats.internal_nodes + 1);
}

TEST_P(LeafPushProperty, HeightDoesNotGrow) {
  net::TableProfile profile;
  profile.prefix_count = 500;
  const net::SyntheticTableGenerator gen(profile);
  const UnibitTrie raw(gen.generate(GetParam()));
  EXPECT_EQ(raw.leaf_pushed().height(), raw.height());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafPushProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(LeafPushTest, EmptyTrieStaysRootLeaf) {
  const UnibitTrie pushed = UnibitTrie(RoutingTable()).leaf_pushed();
  EXPECT_EQ(pushed.node_count(), 1u);
  EXPECT_TRUE(pushed.is_leaf_pushed());
  EXPECT_EQ(pushed.lookup(Ipv4(1, 1, 1, 1)), std::nullopt);
}

TEST(LeafPushTest, PushesInternalRouteToSyntheticSibling) {
  // /1 route with a deeper /2: the /1's hop must surface on the pushed
  // sibling leaf.
  RoutingTable t;
  t.add(*Prefix::parse("0.0.0.0/1"), 1);
  t.add(*Prefix::parse("0.0.0.0/2"), 2);
  const UnibitTrie pushed = UnibitTrie(t).leaf_pushed();
  EXPECT_EQ(pushed.lookup(Ipv4(0x20, 0, 0, 0)), 2);  // 00...
  EXPECT_EQ(pushed.lookup(Ipv4(0x60, 0, 0, 0)), 1);  // 01...
  EXPECT_EQ(pushed.lookup(Ipv4(0xa0, 0, 0, 0)), std::nullopt);  // 10...
}

// -------------------------------------------------------------- stats --

TEST(TrieStatsTest, CountsSumUp) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(1));
  const TrieStats stats = compute_stats(trie);
  EXPECT_EQ(stats.total_nodes, trie.node_count());
  EXPECT_EQ(stats.internal_nodes + stats.leaf_nodes, stats.total_nodes);
  EXPECT_EQ(std::accumulate(stats.nodes_per_level.begin(),
                            stats.nodes_per_level.end(), std::size_t{0}),
            stats.total_nodes);
  for (std::size_t l = 0; l < stats.nodes_per_level.size(); ++l) {
    EXPECT_EQ(stats.internal_per_level[l] + stats.leaves_per_level[l],
              stats.nodes_per_level[l]);
  }
}

TEST(TrieStatsTest, DeepestLevelIsAllLeaves) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(2));
  const TrieStats stats = compute_stats(trie);
  EXPECT_EQ(stats.internal_per_level.back(), 0u);
  EXPECT_GT(stats.leaves_per_level.back(), 0u);
}

TEST(TrieStatsTest, CalibrationNearPaperReportedTable) {
  // Sec. V-E: 3 725 prefixes -> 9 726 nodes -> 16 127 leaf-pushed. The
  // synthetic generator is calibrated to land near these (DESIGN.md).
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);
  const UnibitTrie raw(table);
  const UnibitTrie pushed = raw.leaf_pushed();
  const double nodes_per_prefix =
      static_cast<double>(raw.node_count()) /
      static_cast<double>(table.size());
  const double expansion = static_cast<double>(pushed.node_count()) /
                           static_cast<double>(raw.node_count());
  EXPECT_NEAR(nodes_per_prefix, 9726.0 / 3725.0, 0.35);
  EXPECT_NEAR(expansion, 16127.0 / 9726.0, 0.15);
  EXPECT_NEAR(static_cast<double>(pushed.node_count()), 16127.0, 1300.0);
}

TEST(TrieStatsTest, NodesPerPrefixHelper) {
  TrieStats stats;
  stats.total_nodes = 100;
  EXPECT_DOUBLE_EQ(stats.nodes_per_prefix(50), 2.0);
  EXPECT_DOUBLE_EQ(stats.nodes_per_prefix(0), 0.0);
}

// ------------------------------------------------------- stage mapping --

TEST(StageMappingTest, OneLevelPerStageIdentity) {
  const StageMapping mapping(10, 28, MappingPolicy::kOneLevelPerStage);
  EXPECT_EQ(mapping.stage_count(), 28u);
  EXPECT_EQ(mapping.max_levels_per_stage(), 1u);
  for (std::size_t l = 0; l < 10; ++l) {
    EXPECT_EQ(mapping.stage_of(l), l);
  }
  const auto range = mapping.levels_of(3);
  EXPECT_EQ(range.first, 3u);
  EXPECT_EQ(range.second, 4u);
  EXPECT_EQ(mapping.levels_of(15).first, mapping.levels_of(15).second);
}

TEST(StageMappingTest, OneLevelPerStageOverflowThrows) {
  EXPECT_THROW(StageMapping(33, 28, MappingPolicy::kOneLevelPerStage),
               CapacityError);
}

TEST(StageMappingTest, CoalesceCoversAllLevelsContiguously) {
  const StageMapping mapping(33, 28, MappingPolicy::kCoalesce);
  std::size_t last_stage = 0;
  for (std::size_t l = 0; l < 33; ++l) {
    const std::size_t s = mapping.stage_of(l);
    EXPECT_GE(s, last_stage);
    EXPECT_LE(s - last_stage, 1u);
    last_stage = s;
  }
  EXPECT_EQ(mapping.stage_of(32), 27u);
  EXPECT_EQ(mapping.max_levels_per_stage(), 2u);
}

TEST(StageMappingTest, CoalesceBalancesRuns) {
  const StageMapping mapping(56, 28, MappingPolicy::kCoalesce);
  for (std::size_t s = 0; s < 28; ++s) {
    const auto [first, last] = mapping.levels_of(s);
    EXPECT_EQ(last - first, 2u);
  }
}

TEST(StageMappingTest, OccupancyAggregatesLevels) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(4));
  const TrieStats stats = compute_stats(trie);
  const StageMapping mapping(stats.nodes_per_level.size(), 28,
                             MappingPolicy::kOneLevelPerStage);
  const StageOccupancy occ = occupancy(stats, mapping);
  EXPECT_EQ(std::accumulate(occ.nodes.begin(), occ.nodes.end(),
                            std::size_t{0}),
            stats.total_nodes);
  // Stages past the trie height are empty.
  for (std::size_t s = stats.nodes_per_level.size(); s < 28; ++s) {
    EXPECT_EQ(occ.nodes[s], 0u);
  }
}

// ------------------------------------------------------- memory layout --

TEST(MemoryLayoutTest, WordWidths) {
  const NodeEncoding enc;
  EXPECT_EQ(enc.internal_word_bits(), 36u);  // two 18-bit pointers
  EXPECT_EQ(enc.leaf_word_bits(1), 8u);
  EXPECT_EQ(enc.leaf_word_bits(15), 120u);  // vector leaf, Sec. V-D
}

TEST(MemoryLayoutTest, StageMemoryMatchesHandComputation) {
  StageOccupancy occ;
  occ.nodes = {3, 2};
  occ.internal_nodes = {3, 0};
  occ.leaf_nodes = {0, 2};
  const NodeEncoding enc;
  const StageMemory mem = stage_memory(occ, enc, 4);
  EXPECT_EQ(mem.pointer_bits[0], 3u * 36u);
  EXPECT_EQ(mem.nhi_bits[1], 2u * 8u * 4u);
  EXPECT_EQ(mem.total_bits(), 3u * 36u + 2u * 32u);
  EXPECT_EQ(mem.stage_bits(0), 108u);
}

TEST(MemoryLayoutTest, VnCountScalesOnlyLeaves) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(5));
  const TrieStats stats = compute_stats(trie);
  const StageMapping mapping(stats.nodes_per_level.size(), 28,
                             MappingPolicy::kOneLevelPerStage);
  const StageOccupancy occ = occupancy(stats, mapping);
  const NodeEncoding enc;
  const StageMemory one = stage_memory(occ, enc, 1);
  const StageMemory eight = stage_memory(occ, enc, 8);
  EXPECT_EQ(one.total_pointer_bits(), eight.total_pointer_bits());
  EXPECT_EQ(eight.total_nhi_bits(), 8 * one.total_nhi_bits());
}

// ---------------------------------------------------------- flat SoA view --

TEST(FlatTrieTest, EmptyTableFlatViewIsRootOnly) {
  const UnibitTrie trie((RoutingTable()));
  const FlatTrie& flat = trie.flat();
  EXPECT_EQ(flat.node_count(), 1u);
  EXPECT_EQ(flat.level_count(), 1u);
  EXPECT_EQ(flat.vn_count(), 1u);
  EXPECT_EQ(flat.left(0), kNullNode);
  EXPECT_EQ(flat.right(0), kNullNode);
  EXPECT_EQ(flat.lookup(Ipv4(1, 2, 3, 4)), std::nullopt);
}

TEST(FlatTrieTest, MirrorsSourceTrieNodeForNode) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie(gen.generate(3));
  const FlatTrie& flat = trie.flat();
  const std::span<const TrieNode> nodes = trie.nodes();
  ASSERT_EQ(flat.node_count(), nodes.size());
  EXPECT_EQ(flat.level_count(), trie.level_count());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const NodeIndex idx = static_cast<NodeIndex>(n);
    EXPECT_EQ(flat.left(idx), nodes[n].left);
    EXPECT_EQ(flat.right(idx), nodes[n].right);
    EXPECT_EQ(flat.next_hop(idx), nodes[n].next_hop);
  }
}

TEST(FlatTrieTest, LookupMatchesRoutingTableReference) {
  // The routing table's linear longest-prefix match is an independent
  // reference implementation for the flat traversal.
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const RoutingTable table = gen.generate(4);
  const UnibitTrie trie(table);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(trie.flat().lookup(addr), table.lookup(addr));
  }
}

TEST(FlatTrieTest, BatchMatchesScalarLoop) {
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const UnibitTrie trie = UnibitTrie(gen.generate(5)).leaf_pushed();
  Rng rng(12);
  std::vector<Ipv4> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  const std::vector<net::NextHop> batch = trie.lookup_batch(addrs);
  ASSERT_EQ(batch.size(), addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::optional<net::NextHop> scalar = trie.lookup(addrs[i]);
    if (scalar.has_value()) {
      EXPECT_EQ(batch[i], *scalar);
    } else {
      EXPECT_EQ(batch[i], net::kNoRoute);
    }
  }
}

}  // namespace
}  // namespace vr::trie
