// Ingress parser stage of the complete router data plane (paper Sec. VI-A
// lists "parsing, lookup, editing, scheduling" as the remaining stages of
// a full router around the Layer-3 lookup this library models).
//
// The parser consumes raw header bytes, validates version/IHL, checksum
// and TTL, and emits the lookup request. Malformed packets are counted
// and dropped (a router must not forward them).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "netbase/packet.hpp"
#include "netbase/traffic.hpp"

namespace vr::dataplane {

/// A parsed, validated packet ready for lookup.
struct ParsedPacket {
  net::VnId vnid = 0;
  net::Ipv4Header header;
  std::uint16_t payload_bytes = 0;
};

/// Drop accounting of the parser.
struct ParserStats {
  std::uint64_t accepted = 0;
  std::uint64_t malformed = 0;      ///< bad version/IHL/short header
  std::uint64_t bad_checksum = 0;
  std::uint64_t ttl_expired = 0;    ///< TTL 0 or 1 on arrival: not forwardable

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return malformed + bad_checksum + ttl_expired;
  }
};

/// Stateless single-cycle parser; statistics accumulate per instance.
class Parser {
 public:
  /// Parses and validates one frame's header bytes for virtual network
  /// `vnid`. Returns nullopt on any validation failure (recorded in
  /// stats()).
  [[nodiscard]] std::optional<ParsedPacket> parse(
      net::VnId vnid, std::span<const std::uint8_t> bytes);

  /// Same, from an in-memory header (used by generators that skip the
  /// serialize/parse round trip; applies the same validation).
  [[nodiscard]] std::optional<ParsedPacket> accept(
      net::VnId vnid, const net::Ipv4Header& header,
      std::uint16_t payload_bytes);

  [[nodiscard]] const ParserStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] std::optional<ParsedPacket> accept_validated(
      net::VnId vnid, const net::Ipv4Header& header,
      std::uint16_t payload_bytes);

  ParserStats stats_;
};

}  // namespace vr::dataplane
