// Placement layer unit tests: the seeded request stream, the cost
// oracle's bucketing/memoization/feasibility rules, the fleet's shape
// indices, the three policies' scoring behavior, the controller's
// departure/trace/metrics plumbing, and the offline bound ordering.
// Everything is seeded — no test depends on wall-clock or ordering luck.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "fpga/device.hpp"
#include "obs/registry.hpp"
#include "placement/controller.hpp"
#include "placement/offline.hpp"

namespace vr::placement {
namespace {

// One oracle per binary: the memo is shared across tests (it is purely
// a cache over a deterministic estimator, so sharing cannot couple
// tests) and the trie builds behind it are the expensive part.
CostOracle& shared_oracle() {
  static CostOracle oracle{fpga::DeviceSpec::xc6vlx760()};
  return oracle;
}

PlacedVn placed(std::uint64_t id, std::uint32_t bucket, std::uint32_t mu_q,
                SlaClass sla = SlaClass::kBronze) {
  PlacedVn vn;
  vn.request_id = id;
  vn.bucket = bucket;
  vn.mu_q = mu_q;
  vn.sla = sla;
  return vn;
}

DeviceShape shape_of(DeviceMode mode, std::uint32_t vn_count,
                     std::uint32_t bucket, std::uint32_t mu_total_q,
                     SlaClass sla = SlaClass::kBronze) {
  DeviceShape shape;
  shape.mode = mode;
  shape.vn_count = vn_count;
  shape.max_bucket = bucket;
  shape.mu_total_q = mu_total_q;
  shape.sla_floor = sla;
  return shape;
}

// ---------------------------------------------------------------- stream --

TEST(RequestStreamTest, SameSeedReproducesTheExactSequence) {
  RequestStreamConfig config;
  config.seed = 7;
  config.mean_holding_ticks = 500;
  const std::vector<VnRequest> a = generate_requests(config, 2000);
  const std::vector<VnRequest> b = generate_requests(config, 2000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
    EXPECT_EQ(a[i].departure_tick, b[i].departure_tick);
    EXPECT_EQ(a[i].prefix_count, b[i].prefix_count);
    EXPECT_EQ(a[i].mu_q, b[i].mu_q);
    EXPECT_EQ(a[i].sla, b[i].sla);
  }
}

TEST(RequestStreamTest, DifferentSeedsDiverge) {
  RequestStreamConfig config;
  config.seed = 1;
  const std::vector<VnRequest> a = generate_requests(config, 64);
  config.seed = 2;
  const std::vector<VnRequest> b = generate_requests(config, 64);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].prefix_count != b[i].prefix_count || a[i].mu_q != b[i].mu_q) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(RequestStreamTest, FieldsStayInConfiguredRanges) {
  RequestStreamConfig config;
  config.seed = 11;
  config.mean_holding_ticks = 300;
  const std::vector<VnRequest> requests = generate_requests(config, 5000);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const VnRequest& r = requests[i];
    EXPECT_EQ(r.id, i);
    EXPECT_EQ(r.arrival_tick, i);  // one arrival per tick
    EXPECT_GE(r.mu_q, 1u);
    EXPECT_LE(r.mu_q, config.mu_levels);
    EXPECT_GE(r.prefix_count, 1u);
    // Largest class draws around base * 2^(classes-1), plus jitter < base.
    EXPECT_LT(r.prefix_count,
              config.base_prefix_count * (std::size_t{1} << 4));
    ASSERT_NE(r.departure_tick, 0u);  // holding configured, so VNs leave
    EXPECT_GT(r.departure_tick, r.arrival_tick);
    EXPECT_LE(r.departure_tick,
              r.arrival_tick + 2 * config.mean_holding_ticks);
  }
}

TEST(RequestStreamTest, PermanentVnsWhenHoldingIsZero) {
  RequestStreamConfig config;
  config.mean_holding_ticks = 0;
  for (const VnRequest& r : generate_requests(config, 100)) {
    EXPECT_EQ(r.departure_tick, 0u);
  }
}

TEST(RequestStreamTest, SlaMixTracksConfiguredFractions) {
  RequestStreamConfig config;
  config.seed = 3;
  const std::size_t n = 20000;
  std::size_t gold = 0;
  std::size_t silver = 0;
  for (const VnRequest& r : generate_requests(config, n)) {
    gold += r.sla == SlaClass::kGold ? 1 : 0;
    silver += r.sla == SlaClass::kSilver ? 1 : 0;
  }
  const double gold_frac = static_cast<double>(gold) / n;
  const double silver_frac = static_cast<double>(silver) / n;
  EXPECT_NEAR(gold_frac, config.gold_fraction, 0.02);
  EXPECT_NEAR(silver_frac, config.silver_fraction, 0.03);
}

// ---------------------------------------------------------------- oracle --

TEST(OracleTest, BucketForCoversAndClampsTheSizeAxis) {
  CostOracle& oracle = shared_oracle();
  const auto& buckets = oracle.config().bucket_prefix_counts;
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(oracle.bucket_for(1), 0u);
  EXPECT_EQ(oracle.bucket_for(buckets[0]), 0u);
  EXPECT_EQ(oracle.bucket_for(buckets[0] + 1), 1u);
  EXPECT_EQ(oracle.bucket_for(buckets[2]), 2u);
  // Past the largest bucket requests clamp to it (priced as full-size).
  EXPECT_EQ(oracle.bucket_for(buckets.back() + 1'000'000),
            static_cast<std::uint32_t>(buckets.size() - 1));
}

TEST(OracleTest, EstimateIsMemoizedAndIgnoresSlaFloor) {
  CostOracle oracle{fpga::DeviceSpec::xc6vlx760()};
  const DeviceShape bronze =
      shape_of(DeviceMode::kTimeShared, 2, 0, 8, SlaClass::kBronze);
  const DeviceShape silver =
      shape_of(DeviceMode::kTimeShared, 2, 0, 8, SlaClass::kSilver);
  const double w1 = oracle.watts(bronze);
  EXPECT_EQ(oracle.estimates_computed(), 1u);
  const double w2 = oracle.watts(bronze);
  EXPECT_EQ(oracle.estimates_computed(), 1u);
  EXPECT_EQ(w1, w2);
  // The SLA floor affects feasibility only — same memo entry.
  EXPECT_EQ(oracle.watts(silver), w1);
  EXPECT_EQ(oracle.estimates_computed(), 1u);
}

TEST(OracleTest, FeasibilityEnforcesStructuralRules) {
  CostOracle& oracle = shared_oracle();
  // Baseline shapes that should fit the xc6vlx760 comfortably.
  EXPECT_TRUE(oracle.feasible(shape_of(DeviceMode::kDedicated, 1, 0, 8)));
  EXPECT_TRUE(oracle.feasible(shape_of(DeviceMode::kTimeShared, 4, 0, 16)));
  // Idle shapes are never placement targets.
  EXPECT_FALSE(oracle.feasible(shape_of(DeviceMode::kDedicated, 0, 0, 0)));
  // Dedicated means exactly one VN.
  EXPECT_FALSE(oracle.feasible(shape_of(DeviceMode::kDedicated, 2, 0, 8)));
  // Co-location cap.
  const std::uint32_t cap = oracle.config().max_vns_per_device;
  EXPECT_FALSE(
      oracle.feasible(shape_of(DeviceMode::kTimeShared, cap + 1, 0, 8)));
  // A time-shared engine saturates at aggregate load 1.
  EXPECT_TRUE(oracle.feasible(
      shape_of(DeviceMode::kTimeShared, 4, 0, kMuQuantum)));
  EXPECT_FALSE(oracle.feasible(
      shape_of(DeviceMode::kTimeShared, 4, 0, kMuQuantum + 1)));
}

TEST(OracleTest, GoldNeverSharesATimeSharedEngine) {
  CostOracle& oracle = shared_oracle();
  const DeviceShape bronze =
      shape_of(DeviceMode::kTimeShared, 2, 0, 8, SlaClass::kBronze);
  DeviceShape gold = bronze;
  gold.sla_floor = SlaClass::kGold;
  // Identical physical shape: only the SLA rule separates the verdicts.
  EXPECT_TRUE(oracle.feasible(bronze));
  EXPECT_FALSE(oracle.feasible(gold));
  // Gold on its own engine is fine.
  EXPECT_TRUE(oracle.feasible(
      shape_of(DeviceMode::kDedicated, 1, 0, 8, SlaClass::kGold)));
}

TEST(OracleTest, CongestionIsAUnitIntervalLoadMeasure) {
  CostOracle& oracle = shared_oracle();
  const double light =
      oracle.congestion(shape_of(DeviceMode::kTimeShared, 1, 0, 2));
  const double heavy =
      oracle.congestion(shape_of(DeviceMode::kTimeShared, 8, 3, 32));
  EXPECT_GE(light, 0.0);
  EXPECT_LE(heavy, 1.0);
  EXPECT_LT(light, heavy);
  // Slot occupancy alone floors the measure: 8 of 8 slots is full load.
  EXPECT_DOUBLE_EQ(heavy, 1.0);
  EXPECT_DOUBLE_EQ(
      oracle.congestion(shape_of(DeviceMode::kDedicated, 0, 0, 0)), 0.0);
}

// ----------------------------------------------------------------- fleet --

TEST(FleetTest, PlaceAndRemoveKeepEveryIndexCoherent) {
  Fleet fleet(4);
  EXPECT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet.active_devices(), 0u);
  EXPECT_EQ(fleet.idle_devices().size(), 4u);

  fleet.place(1, placed(10, 0, 4), DeviceMode::kTimeShared);
  fleet.place(1, placed(11, 1, 6), DeviceMode::kDedicated);  // stays merged
  fleet.place(3, placed(12, 2, 8, SlaClass::kGold), DeviceMode::kDedicated);

  EXPECT_EQ(fleet.active_devices(), 2u);
  EXPECT_TRUE(fleet.contains(10));
  EXPECT_EQ(fleet.device_of(11), 1u);
  EXPECT_EQ(fleet.device_of(12), 3u);

  const DeviceShape s1 = fleet.shape_of(1);
  EXPECT_EQ(s1.mode, DeviceMode::kTimeShared);  // mode_if_idle only opens
  EXPECT_EQ(s1.vn_count, 2u);
  EXPECT_EQ(s1.max_bucket, 1u);
  EXPECT_EQ(s1.mu_total_q, 10u);
  EXPECT_EQ(s1.sla_floor, SlaClass::kBronze);

  const DeviceShape s3 = fleet.shape_of(3);
  EXPECT_EQ(s3.mode, DeviceMode::kDedicated);
  EXPECT_EQ(s3.sla_floor, SlaClass::kGold);

  // The group index holds exactly the active devices under their shapes.
  ASSERT_EQ(fleet.groups().size(), 2u);
  EXPECT_TRUE(fleet.groups().at(s1).contains(1));
  EXPECT_TRUE(fleet.groups().at(s3).contains(3));

  const Fleet::Removed removed = fleet.remove(11);
  EXPECT_EQ(removed.device, 1u);
  EXPECT_EQ(removed.vn.request_id, 11u);
  EXPECT_EQ(removed.vn.bucket, 1u);
  EXPECT_FALSE(fleet.contains(11));
  EXPECT_EQ(fleet.shape_of(1).vn_count, 1u);
  EXPECT_EQ(fleet.shape_of(1).max_bucket, 0u);  // shrinks back down

  // Emptying a device returns it to the idle pool with a reset mode.
  (void)fleet.remove(10);
  EXPECT_EQ(fleet.active_devices(), 1u);
  EXPECT_TRUE(fleet.idle_devices().contains(1));
  EXPECT_TRUE(fleet.shape_of(1).idle());
  EXPECT_EQ(fleet.device(1).mode, DeviceMode::kDedicated);
}

TEST(FleetTest, ShapeWithPredictsPlaceExactly) {
  Fleet fleet(2);
  const PlacedVn a = placed(1, 1, 5, SlaClass::kSilver);
  const PlacedVn b = placed(2, 0, 3, SlaClass::kGold);
  const DeviceShape predicted_a =
      fleet.shape_with(0, a, DeviceMode::kTimeShared);
  fleet.place(0, a, DeviceMode::kTimeShared);
  EXPECT_EQ(fleet.shape_of(0), predicted_a);
  const DeviceShape predicted_ab =
      fleet.shape_with(0, b, DeviceMode::kDedicated);
  fleet.place(0, b, DeviceMode::kDedicated);
  EXPECT_EQ(fleet.shape_of(0), predicted_ab);
  EXPECT_EQ(predicted_ab.sla_floor, SlaClass::kGold);
}

TEST(FleetTest, ResidentVnsComeBackInRequestIdOrder) {
  Fleet fleet(3);
  fleet.place(2, placed(30, 0, 1), DeviceMode::kTimeShared);
  fleet.place(0, placed(10, 0, 1), DeviceMode::kTimeShared);
  fleet.place(1, placed(20, 0, 1), DeviceMode::kTimeShared);
  const std::vector<PlacedVn> vns = fleet.resident_vns();
  ASSERT_EQ(vns.size(), 3u);
  EXPECT_EQ(vns[0].request_id, 10u);
  EXPECT_EQ(vns[1].request_id, 20u);
  EXPECT_EQ(vns[2].request_id, 30u);
}

// -------------------------------------------------------------- policies --

TEST(PolicyTest, FirstFitOpensTheLowestIndexedDevice) {
  Fleet fleet(8);
  const auto policy = make_policy(PolicyKind::kFirstFit);
  const Decision decision =
      policy->decide(fleet, shared_oracle(), placed(1, 0, 4));
  EXPECT_TRUE(decision.accept);
  EXPECT_TRUE(decision.feasible_exists);
  EXPECT_EQ(decision.device, 0u);
}

TEST(PolicyTest, BestFitCoLocatesWhenMarginalWattsBeatOpening) {
  Fleet fleet(8);
  fleet.place(0, placed(1, 0, 4), DeviceMode::kTimeShared);
  const auto policy = make_policy(PolicyKind::kBestFitWatts);
  const Decision decision =
      policy->decide(fleet, shared_oracle(), placed(2, 0, 4));
  ASSERT_TRUE(decision.accept);
  // Adding a tenant to the merged engine costs the power delta of the
  // shared trie; opening a fresh device pays its full static floor.
  EXPECT_EQ(decision.device, 0u);
}

TEST(PolicyTest, GoldRequestIsNeverSentToATimeSharedDevice) {
  Fleet fleet(4);
  fleet.place(0, placed(1, 0, 2), DeviceMode::kTimeShared);
  for (const PolicyKind kind :
       {PolicyKind::kFirstFit, PolicyKind::kBestFitWatts,
        PolicyKind::kExpCost}) {
    const auto policy = make_policy(kind);
    const Decision decision = policy->decide(
        fleet, shared_oracle(), placed(99, 0, 2, SlaClass::kGold));
    ASSERT_TRUE(decision.accept) << to_string(kind);
    EXPECT_NE(decision.device, 0u) << to_string(kind);
    EXPECT_NE(decision.mode, DeviceMode::kTimeShared) << to_string(kind);
  }
}

TEST(PolicyTest, ExpCostAdmitsOnAnUncongestedFleet) {
  Fleet fleet(8);
  const auto policy = make_policy(PolicyKind::kExpCost);
  const Decision decision =
      policy->decide(fleet, shared_oracle(), placed(1, 0, 4));
  EXPECT_TRUE(decision.accept);
  EXPECT_TRUE(decision.feasible_exists);
}

TEST(PolicyTest, CandidatesAreOneRepresentativePerGroupPlusOpenings) {
  Fleet fleet(6);
  // Two devices in the same shape group, one in another.
  fleet.place(0, placed(1, 0, 4), DeviceMode::kTimeShared);
  fleet.place(1, placed(2, 0, 4), DeviceMode::kTimeShared);
  fleet.place(2, placed(3, 1, 4), DeviceMode::kTimeShared);
  const std::vector<Candidate> candidates =
      feasible_candidates(fleet, shared_oracle(), placed(4, 0, 4));
  // Group representatives are the lowest-indexed member; device 1 (the
  // twin of device 0's group) must not appear.
  std::set<std::size_t> devices;
  for (const Candidate& c : candidates) {
    devices.insert(c.device);
    EXPECT_TRUE(shared_oracle().feasible(c.after));
  }
  EXPECT_TRUE(devices.contains(0));
  EXPECT_FALSE(devices.contains(1));
  EXPECT_TRUE(devices.contains(2));
  // Idle openings use the lowest idle device (3) once per opening mode.
  EXPECT_TRUE(devices.contains(3));
  EXPECT_FALSE(devices.contains(4));
}

// ------------------------------------------------------------ controller --

TEST(ControllerTest, DeparturesRetireVnsAndFreeDevices) {
  CostOracle& oracle = shared_oracle();
  ControllerConfig config;
  config.fleet_size = 4;
  config.keep_trace = true;
  PlacementController controller(&oracle, config);
  std::vector<VnRequest> requests;
  for (std::uint64_t i = 0; i < 4; ++i) {
    VnRequest r;
    r.id = i;
    r.arrival_tick = i;
    r.departure_tick = i + 2;
    r.prefix_count = 400;
    r.mu_q = 4;
    requests.push_back(r);
  }
  // A late permanent arrival forces the departure queue to drain first.
  VnRequest sentinel;
  sentinel.id = 4;
  sentinel.arrival_tick = 100;
  sentinel.prefix_count = 400;
  sentinel.mu_q = 4;
  requests.push_back(sentinel);
  const ControllerResult result = controller.run(requests);
  EXPECT_EQ(result.requests, 5u);
  EXPECT_EQ(result.accepted, 5u);
  EXPECT_EQ(result.departures, 4u);  // all short-lived VNs retired
  EXPECT_EQ(result.devices_active, 1u);  // only the sentinel remains
  ASSERT_EQ(controller.fleet().resident_vns().size(), 1u);
  EXPECT_EQ(controller.fleet().resident_vns()[0].request_id, 4u);
  EXPECT_GE(result.peak_devices_active, 1u);
  ASSERT_EQ(result.trace.size(), 5u);
  for (const PlacementRecord& record : result.trace) {
    EXPECT_TRUE(record.accepted);
  }
}

TEST(ControllerTest, FullFleetRejectionsCountAsInfeasible) {
  CostOracle& oracle = shared_oracle();
  ControllerConfig config;
  config.policy = PolicyKind::kFirstFit;
  config.fleet_size = 1;
  PlacementController controller(&oracle, config);
  RequestStreamConfig stream_config;
  stream_config.seed = 5;
  stream_config.mean_holding_ticks = 0;  // permanent: the device only fills
  RequestStream stream(stream_config);
  const ControllerResult result = controller.run(stream, 200);
  EXPECT_GT(result.accepted, 0u);
  EXPECT_GT(result.rejected, 0u);
  // First-fit has no admission control: every rejection is a capacity one.
  EXPECT_EQ(result.infeasible, result.rejected);
  EXPECT_EQ(result.accepted + result.rejected, result.requests);
}

TEST(ControllerTest, MetricsMirrorTheResultCounters) {
  CostOracle& oracle = shared_oracle();
  obs::Registry registry;
  ControllerConfig config;
  config.fleet_size = 8;
  PlacementController controller(&oracle, config, &registry);
  RequestStreamConfig stream_config;
  stream_config.seed = 9;
  stream_config.mean_holding_ticks = 100;
  RequestStream stream(stream_config);
  const ControllerResult result = controller.run(stream, 500);
  EXPECT_EQ(registry.counter("placement.requests").value(), result.requests);
  EXPECT_EQ(registry.counter("placement.accepted").value(), result.accepted);
  EXPECT_EQ(registry.counter("placement.rejected").value(), result.rejected);
  EXPECT_EQ(registry.counter("placement.infeasible").value(),
            result.infeasible);
  EXPECT_EQ(registry.counter("placement.departures").value(),
            result.departures);
  EXPECT_EQ(registry.counter("placement.migrations").value(),
            result.migrations);
  EXPECT_EQ(registry.gauge("placement.devices_active").value(),
            static_cast<std::int64_t>(result.devices_active));
  EXPECT_EQ(registry.gauge("placement.fleet_mw").value(),
            std::llround(result.fleet_w * 1000.0));
  // The per-device watts histogram uses watt-scaled bucket bounds and
  // records one sample per placement.
  const obs::Histogram& hist = registry.histogram("placement.device_w");
  EXPECT_FALSE(hist.bounds().empty());
  EXPECT_GE(hist.snapshot().count(), result.accepted);
}

// --------------------------------------------------------------- offline --

TEST(OfflineTest, BoundsBracketAndStayOrdered) {
  CostOracle& oracle = shared_oracle();
  std::vector<PlacedVn> vns;
  for (std::uint64_t i = 0; i < 24; ++i) {
    vns.push_back(placed(i, static_cast<std::uint32_t>(i % 3),
                         static_cast<std::uint32_t>(2 + i % 6),
                         i % 7 == 0 ? SlaClass::kGold : SlaClass::kBronze));
  }
  const OfflineBound bound = offline_bound(vns, oracle);
  EXPECT_GT(bound.fractional_lower_w, 0.0);
  EXPECT_GT(bound.greedy_w, 0.0);
  EXPECT_GE(bound.greedy_devices, 1u);
  // The relaxation can only be cheaper than any integral packing.
  EXPECT_LE(bound.fractional_lower_w, bound.greedy_w + 1e-9);

  const OfflineBound empty = offline_bound({}, oracle);
  EXPECT_EQ(empty.greedy_devices, 0u);
  EXPECT_DOUBLE_EQ(empty.greedy_w, 0.0);
  EXPECT_DOUBLE_EQ(empty.fractional_lower_w, 0.0);
}

}  // namespace
}  // namespace vr::placement
