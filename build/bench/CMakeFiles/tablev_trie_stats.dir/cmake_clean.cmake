file(REMOVE_RECURSE
  "CMakeFiles/tablev_trie_stats.dir/tablev_trie_stats.cpp.o"
  "CMakeFiles/tablev_trie_stats.dir/tablev_trie_stats.cpp.o.d"
  "tablev_trie_stats"
  "tablev_trie_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablev_trie_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
