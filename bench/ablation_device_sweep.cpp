// Ablation: device exploration ("exploration of low power FPGAs", paper
// contribution list) — how the scheme choice and achievable K change
// across Virtex-6 parts of different logic/BRAM/I-O mixes, at both speed
// grades.
#include "bench_common.hpp"
#include "core/estimator.hpp"

int main() {
  using namespace vr;
  TextTable out("Device exploration: K = 8 virtual networks, both grades");
  out.set_header({"device", "grade", "scheme", "total W", "Gbps", "mW/Gbps",
                  "max K (VS pins)", "fits"});
  for (const fpga::DeviceSpec& device : fpga::DeviceSpec::catalog()) {
    const core::PowerEstimator estimator{device};
    const std::size_t max_vs = fpga::IoBudget{}.max_engines(device.io_pins);
    for (const auto grade :
         {fpga::SpeedGrade::kMinus2, fpga::SpeedGrade::kMinus1L}) {
      for (const auto scheme :
           {power::Scheme::kSeparate, power::Scheme::kMerged}) {
        core::Scenario s;
        s.scheme = scheme;
        s.vn_count = 8;
        s.grade = grade;
        s.alpha = 0.8;
        try {
          const core::Estimate est = estimator.estimate(s);
          out.add_row({device.name, fpga::to_string(grade),
                       scheme == power::Scheme::kSeparate ? "VS" : "VM80",
                       TextTable::num(est.power.total_w().value(), 2),
                       TextTable::num(est.throughput_gbps.value(), 0),
                       TextTable::num(est.mw_per_gbps.value(), 2),
                       std::to_string(max_vs),
                       est.fit.fits ? "yes" : "NO"});
        } catch (const CapacityError& e) {
          out.add_row({device.name, fpga::to_string(grade),
                       scheme == power::Scheme::kSeparate ? "VS" : "VM80",
                       "-", "-", "-", std::to_string(max_vs),
                       "NO (BRAM)"});
        }
      }
    }
  }
  vr::bench::emit(out);
  std::cout << "Larger parts pay more leakage but host more engines; the\n"
               "SX-class part's BRAM depth favours the merged scheme, while\n"
               "I/O pins cap the separate scheme's K per device.\n";
  return 0;
}
