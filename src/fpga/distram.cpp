#include "fpga/distram.hpp"

#include "common/bitops.hpp"
#include "common/units.hpp"

namespace vr::fpga {

units::Watts distram_power_w(std::uint64_t bits, units::Megahertz freq_mhz,
                             const DistRamParams& params) {
  if (bits == 0) return units::Watts{0.0};
  const double kbits = static_cast<double>(bits) / 1024.0;
  return units::Watts{units::uw_to_w(
      (params.base_uw_per_mhz + params.per_kbit_uw_per_mhz * kbits) *
      freq_mhz.value())};
}

std::uint64_t distram_luts(std::uint64_t bits, const DistRamParams& params) {
  return ceil_div(bits, params.bits_per_lut);
}

StageMemoryChoice choose_stage_memory(std::uint64_t bits, SpeedGrade grade,
                                      units::Megahertz freq_mhz,
                                      BramPolicy bram_policy,
                                      const DistRamParams& params) {
  StageMemoryChoice choice;
  if (bits == 0) return choice;
  const BramAllocation bram = allocate_bram(bits, bram_policy);
  const units::Watts bram_w = bram.power_w(grade, freq_mhz);
  const units::Watts dist_w = distram_power_w(bits, freq_mhz, params);
  if (dist_w < bram_w) {
    choice.tech = MemoryTech::kDistRam;
    choice.power_w = dist_w;
    choice.luts = distram_luts(bits, params);
  } else {
    choice.tech = MemoryTech::kBram;
    choice.power_w = bram_w;
    choice.bram_halves = bram.halves();
  }
  return choice;
}

std::uint64_t distram_crossover_bits(SpeedGrade grade,
                                     BramPolicy bram_policy,
                                     const DistRamParams& params) {
  // Both technologies scale linearly with f: compare at 1 MHz and walk up
  // in LUT-RAM granules until BRAM wins.
  std::uint64_t last_dist_win = 0;
  for (std::uint64_t bits = params.bits_per_lut; bits <= 64 * 1024;
       bits += params.bits_per_lut) {
    const StageMemoryChoice choice = choose_stage_memory(
        bits, grade, units::Megahertz{1.0}, bram_policy, params);
    if (choice.tech == MemoryTech::kDistRam) last_dist_win = bits;
  }
  return last_dist_win;
}

}  // namespace vr::fpga
