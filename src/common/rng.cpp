#include "common/rng.hpp"

namespace vr {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  VR_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::next_weighted(const double* weights,
                               std::size_t count) noexcept {
  VR_REQUIRE(count > 0, "next_weighted requires at least one weight");
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    VR_REQUIRE(weights[i] >= 0.0, "weights must be non-negative");
    total += weights[i];
  }
  VR_REQUIRE(total > 0.0, "weights must not all be zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i < count; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return count - 1;  // numerical fallback for r landing exactly on total
}

}  // namespace vr
