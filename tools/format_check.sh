#!/usr/bin/env bash
# Formatting gate: clang-format over every C++ file in src/, tests/,
# bench/ and examples/ against the repo .clang-format.
#
# Usage:
#   tools/format_check.sh          # rewrite files in place
#   tools/format_check.sh --check  # verify only; nonzero exit on drift
#
# clang-format is not part of this container's toolchain; when absent the
# script skips with a notice (exit 0) so the ctest gate stays green on
# boxes that cannot run it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-}"

if ! command -v clang-format > /dev/null 2>&1; then
  echo "SKIP: clang-format not installed — format check did not run."
  exit 0
fi

mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tests" \
  "${repo_root}/bench" "${repo_root}/examples" \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

if [[ "${mode}" == "--check" ]]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format_check: clean"
else
  clang-format -i "${files[@]}"
  echo "format_check: formatted ${#files[@]} files"
fi
