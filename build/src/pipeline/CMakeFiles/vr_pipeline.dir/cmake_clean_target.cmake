file(REMOVE_RECURSE
  "libvr_pipeline.a"
)
