# Empty dependencies file for multibit_test.
# This may be replaced when dependencies are built.
