// IPv6 address, prefix and routing-table types — the forward-looking
// extension of the paper's IPv4-only study: 128-bit lookups quadruple the
// potential pipeline depth and grow per-stage memories, stressing exactly
// the resources (BRAM, logic stages, clock) the power models price. Used
// by the `extension_ipv6` bench.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/prefix.hpp"

namespace vr::ipv6 {

/// A 128-bit IPv6 address in host bit order (hi = the first 64 bits).
class Ipv6 {
 public:
  constexpr Ipv6() noexcept = default;
  constexpr Ipv6(std::uint64_t hi, std::uint64_t lo) noexcept
      : hi_(hi), lo_(lo) {}

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// Bit `index` (0 = most significant of the whole 128).
  [[nodiscard]] constexpr bool bit(unsigned index) const noexcept {
    return index < 64 ? ((hi_ >> (63u - index)) & 1u) != 0
                      : ((lo_ >> (127u - index)) & 1u) != 0;
  }

  /// Clears all bits below `length` (returns the /length network address).
  [[nodiscard]] Ipv6 masked(unsigned length) const noexcept;

  /// RFC 5952-style text (lower-case hex, longest zero run compressed).
  [[nodiscard]] std::string to_string() const;

  /// Parses full and "::"-compressed hexadecimal forms (no embedded IPv4).
  static std::optional<Ipv6> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(const Ipv6&, const Ipv6&) noexcept =
      default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// An IPv6 CIDR prefix (canonicalized, length in [0,128]).
class Prefix6 {
 public:
  constexpr Prefix6() noexcept = default;
  Prefix6(Ipv6 address, unsigned length) noexcept;

  [[nodiscard]] Ipv6 address() const noexcept { return address_; }
  [[nodiscard]] unsigned length() const noexcept { return length_; }
  [[nodiscard]] bool contains(const Ipv6& addr) const noexcept;
  [[nodiscard]] bool bit(unsigned i) const noexcept {
    return address_.bit(i);
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix6&,
                                    const Prefix6&) noexcept = default;

 private:
  Ipv6 address_;
  unsigned length_ = 0;
};

struct Route6 {
  Prefix6 prefix;
  net::NextHop next_hop = net::kNoRoute;

  friend constexpr auto operator<=>(const Route6&,
                                    const Route6&) noexcept = default;
};

/// Sorted, deduplicated IPv6 route set with a linear-scan LPM oracle.
class RoutingTable6 {
 public:
  RoutingTable6() = default;
  explicit RoutingTable6(std::vector<Route6> routes);

  void add(const Prefix6& prefix, net::NextHop next_hop);
  [[nodiscard]] std::size_t size() const noexcept { return routes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return routes_.empty(); }
  [[nodiscard]] std::span<const Route6> routes() const noexcept {
    return routes_;
  }
  [[nodiscard]] std::optional<net::NextHop> lookup(const Ipv6& addr) const;
  [[nodiscard]] unsigned max_prefix_length() const noexcept;

 private:
  std::vector<Route6> routes_;
};

}  // namespace vr::ipv6
