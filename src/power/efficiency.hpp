// Power-efficiency metric (Sec. VI-B): milliwatts per Gbps of lookup
// capacity — "the lower the mW/Gbps number is, the better".
#pragma once

#include "common/units.hpp"
#include "power/analytical_model.hpp"
#include "power/scheme.hpp"

namespace vr::power {

/// mW per Gbps given total power (W) and aggregate throughput (Gbps).
[[nodiscard]] constexpr double mw_per_gbps(double power_w,
                                           double throughput_gbps) noexcept {
  return throughput_gbps <= 0.0
             ? 0.0
             : units::w_to_mw(power_w) / throughput_gbps;
}

/// Efficiency of a scheme's estimate at its operating clock.
[[nodiscard]] inline double scheme_efficiency_mw_per_gbps(
    Scheme scheme, std::size_t vn_count, const PowerBreakdown& power) noexcept {
  return mw_per_gbps(power.total_w(),
                     aggregate_throughput_gbps(scheme, vn_count,
                                               power.freq_mhz));
}

}  // namespace vr::power
