file(REMOVE_RECURSE
  "CMakeFiles/ablation_merged_memory_rule.dir/ablation_merged_memory_rule.cpp.o"
  "CMakeFiles/ablation_merged_memory_rule.dir/ablation_merged_memory_rule.cpp.o.d"
  "ablation_merged_memory_rule"
  "ablation_merged_memory_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merged_memory_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
