// Power-efficiency metric (Sec. VI-B): milliwatts per Gbps of lookup
// capacity — "the lower the mW/Gbps number is, the better".
#pragma once

#include "common/units.hpp"
#include "power/analytical_model.hpp"
#include "power/scheme.hpp"

namespace vr::power {

/// mW per Gbps of total power over aggregate throughput. A deployment with
/// no capacity has no meaningful efficiency; it reports zero.
[[nodiscard]] constexpr units::MwPerGbps mw_per_gbps(
    units::Watts power, units::Gbps throughput) noexcept {
  return throughput <= units::Gbps{0.0}
             ? units::MwPerGbps{0.0}
             : units::to_milliwatts(power) / throughput;
}

/// Efficiency of a scheme's estimate at its operating clock.
[[nodiscard]] inline units::MwPerGbps scheme_efficiency_mw_per_gbps(
    Scheme scheme, std::size_t vn_count, const PowerBreakdown& power) noexcept {
  return mw_per_gbps(power.total_w(),
                     aggregate_throughput_gbps(scheme, vn_count,
                                               power.freq_mhz));
}

}  // namespace vr::power
