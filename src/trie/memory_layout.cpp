#include "trie/memory_layout.hpp"

#include <numeric>

#include "common/error.hpp"

namespace vr::trie {

std::uint64_t StageMemory::total_pointer_bits() const noexcept {
  return std::accumulate(pointer_bits.begin(), pointer_bits.end(),
                         std::uint64_t{0});
}

std::uint64_t StageMemory::total_nhi_bits() const noexcept {
  return std::accumulate(nhi_bits.begin(), nhi_bits.end(), std::uint64_t{0});
}

StageMemory stage_memory(const StageOccupancy& occ,
                         const NodeEncoding& encoding, std::size_t vn_count) {
  VR_REQUIRE(vn_count >= 1, "vn_count must be at least 1");
  StageMemory memory;
  const std::size_t stages = occ.nodes.size();
  memory.pointer_bits.assign(stages, 0);
  memory.nhi_bits.assign(stages, 0);
  for (std::size_t s = 0; s < stages; ++s) {
    memory.pointer_bits[s] =
        static_cast<std::uint64_t>(occ.internal_nodes[s]) *
        encoding.internal_word_bits();
    memory.nhi_bits[s] = static_cast<std::uint64_t>(occ.leaf_nodes[s]) *
                         encoding.leaf_word_bits(vn_count);
  }
  return memory;
}

}  // namespace vr::trie
