#!/usr/bin/env python3
"""Compare two BENCH_*.json files with a relative tolerance.

Every perf bench in this repo emits a JSON report whose leaves are either
identity fields (benchmark name, profile, row keys like shape/scheme) or
measured numbers (watts, cycles, divergence percentages). This tool diffs
two such reports structurally:

* identity fields (strings, booleans, array lengths, object keys) must
  match exactly — a missing row or a renamed scheme is a shape change,
  not a regression, and always fails;
* numeric leaves must agree within --rel-tol (default 5%), with an
  --abs-tol floor (default 1e-9) so near-zero values do not explode the
  relative error;
* the `metrics` subtree (wall-clock observability: timings, cache hits)
  is skipped by default because it is expected to vary run to run. Pass
  --include-metrics to diff it too.

Intended use: re-run a bench before and after a change and gate on the
numbers staying put, without requiring byte-identical output the way the
golden tests do:

    bench/perf_activity --output after.json
    tools/bench_diff.py BENCH_activity.json after.json --rel-tol 0.05

Exit: 0 within tolerance, 1 divergence found, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys


def is_number(value) -> bool:
    # bool is an int subclass in Python; treat it as identity, not a measurement.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff(a, b, path: str, opts, failures: list) -> None:
    if not opts.include_metrics and path == "metrics":
        return
    if is_number(a) and is_number(b):
        denom = max(abs(a), abs(b))
        if abs(a - b) > max(opts.abs_tol, opts.rel_tol * denom):
            rel = abs(a - b) / denom if denom > 0 else float("inf")
            failures.append(
                f"{path}: {a} vs {b} (rel err {rel:.2%}, tol {opts.rel_tol:.2%})")
        return
    if type(a) is not type(b):
        failures.append(f"{path}: type mismatch ({type(a).__name__} vs "
                        f"{type(b).__name__})")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            # A one-sided `metrics` subtree is still just metrics: skip it
            # under the default exclusion instead of failing the shape.
            if not opts.include_metrics and sub == "metrics":
                continue
            if key not in a:
                failures.append(f"{sub}: only in {opts.second} — missing "
                                f"from the baseline {opts.first}")
            elif key not in b:
                failures.append(f"{sub}: only in {opts.first} — missing "
                                f"from the candidate {opts.second}")
            else:
                diff(a[key], b[key], sub, opts, failures)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            failures.append(f"{path}: length {len(a)} vs {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]", opts, failures)
        return
    if a != b:
        failures.append(f"{path}: {a!r} vs {b!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports with a relative tolerance.")
    parser.add_argument("first", help="baseline BENCH_*.json")
    parser.add_argument("second", help="candidate BENCH_*.json")
    parser.add_argument("--rel-tol", type=float, default=0.05,
                        help="relative tolerance for numeric leaves "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--abs-tol", type=float, default=1e-9,
                        help="absolute floor below which numbers always "
                             "match (default 1e-9)")
    parser.add_argument("--include-metrics", action="store_true",
                        help="also diff the `metrics` subtree (skipped by "
                             "default: wall-clock values vary run to run)")
    opts = parser.parse_args()
    if opts.rel_tol < 0 or opts.abs_tol < 0:
        print("error: tolerances must be non-negative", file=sys.stderr)
        return 2

    docs = []
    for name in (opts.first, opts.second):
        try:
            with open(name, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
    for name, doc in zip((opts.first, opts.second), docs):
        if not isinstance(doc, dict):
            print(f"error: {name}: top-level JSON value must be an object "
                  f"(a BENCH_*.json report), got {type(doc).__name__}",
                  file=sys.stderr)
            return 2

    failures: list = []
    diff(docs[0], docs[1], "", opts, failures)
    if failures:
        print(f"bench_diff: {len(failures)} divergence(s) between "
              f"{opts.first} and {opts.second}:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"bench_diff: {opts.first} and {opts.second} agree within "
          f"rel-tol {opts.rel_tol:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
