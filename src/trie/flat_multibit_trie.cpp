#include "trie/flat_multibit_trie.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/registry.hpp"
#include "trie/prefetch.hpp"

namespace vr::trie {

namespace {

/// Batched-lookup counters of the multibit hot path, registered once.
struct LookupMetrics {
  obs::Counter& batches;
  obs::Counter& keys;

  static const LookupMetrics& get() {
    static LookupMetrics metrics = [] {
      obs::Registry& reg = obs::Registry::global();
      return LookupMetrics{
          reg.counter("trie.lookup_batches", {{"path", "multibit"}}),
          reg.counter("trie.lookup_keys", {{"path", "multibit"}})};
    }();
    return metrics;
  }
};

}  // namespace

FlatMultibitTrie::FlatMultibitTrie(unsigned stride, std::size_t vn_count)
    : stride_(stride),
      slot_mask_((1u << stride) - 1u),
      width_(std::size_t{1} << stride),
      vn_count_(vn_count) {
  VR_REQUIRE(stride == 2 || stride == 4 || stride == 8,
             "flat multibit stride must be 2, 4 or 8");
  VR_REQUIRE(vn_count_ >= 1, "flat multibit trie needs at least one VN");
  VR_REQUIRE(vn_count_ <= 0xffffu, "VN count exceeds the VNID width");
}

/// Build-time scaffolding: the image under construction plus the per-entry
/// per-VN expanded-route lengths that break ties during controlled prefix
/// expansion (longer original prefixes win). The lengths are discarded
/// once every route is inserted.
struct FlatMultibitTrie::Builder {
  FlatMultibitTrie image;
  std::vector<std::uint8_t> route_lens;  // parallel to image.next_hops_
  std::size_t level_count = 0;

  Builder(unsigned stride, std::size_t vn_count) : image(stride, vn_count) {
    allocate(0);
  }

  NodeIndex allocate(std::size_t level) {
    const NodeIndex index =
        checked_node_index(image.node_count(), "flat multibit trie");
    image.children_.insert(image.children_.end(), image.width_, kNullNode);
    image.next_hops_.insert(image.next_hops_.end(),
                            image.width_ * image.vn_count_, net::kNoRoute);
    route_lens.insert(route_lens.end(), image.width_ * image.vn_count_, 0);
    level_count = std::max(level_count, level + 1);
    return index;
  }

  [[nodiscard]] NodeIndex& child_ref(NodeIndex node, std::size_t slot) {
    return image.children_[static_cast<std::size_t>(node) * image.width_ +
                           slot];
  }

  /// Inserts one route of virtual network `vn` — the same descent and
  /// controlled-prefix-expansion rules as MultibitTrie::insert, applied to
  /// the VN's own lane of the K-wide next-hop vectors. Structural nodes
  /// are shared across VNs (a node exists wherever any VN needs one).
  void insert(net::VnId vn, const net::Route& route) {
    const unsigned stride = image.stride_;
    const unsigned length = route.prefix.length();
    const std::uint32_t addr = route.prefix.address().value();
    NodeIndex current = 0;
    unsigned consumed = 0;
    while (length - consumed > stride) {
      const std::size_t slot =
          (addr >> (32u - consumed - stride)) & image.slot_mask_;
      if (child_ref(current, slot) == kNullNode) {
        const NodeIndex fresh = allocate(consumed / stride + 1);
        child_ref(current, slot) = fresh;
      }
      current = child_ref(current, slot);
      consumed += stride;
    }
    // Controlled prefix expansion of the final (possibly partial) stride:
    // the route covers 2^(stride - r) consecutive slots. A covered slot is
    // overwritten when empty or when this route's original prefix is at
    // least as long as the one already expanded there (r == 0 only for the
    // default route, which therefore never displaces a real route).
    const unsigned r = length - consumed;
    const std::size_t base =
        r == 0 ? 0
               : ((addr >> (32u - consumed - stride)) & image.slot_mask_ &
                  ~((1u << (stride - r)) - 1u));
    const std::size_t span = std::size_t{1} << (stride - r);
    const std::size_t node_base =
        static_cast<std::size_t>(current) * image.width_;
    for (std::size_t i = 0; i < span; ++i) {
      const std::size_t e =
          (node_base + base + i) * image.vn_count_ + vn;
      if (image.next_hops_[e] == net::kNoRoute || route_lens[e] <= length) {
        image.next_hops_[e] = route.next_hop;
        // narrow-ok: an IPv4 prefix length is at most 32
        route_lens[e] = static_cast<std::uint8_t>(length);
      }
    }
  }
};

FlatMultibitTrie::FlatMultibitTrie(const net::RoutingTable& table,
                                   unsigned stride)
    : FlatMultibitTrie(stride, 1) {
  Builder builder(stride, 1);
  for (const net::Route& route : table.routes()) {
    builder.insert(0, route);
  }
  children_ = std::move(builder.image.children_);
  next_hops_ = std::move(builder.image.next_hops_);
  level_count_ = builder.level_count;
}

FlatMultibitTrie::FlatMultibitTrie(
    std::span<const net::RoutingTable* const> tables, unsigned stride)
    : FlatMultibitTrie(stride, tables.size()) {
  Builder builder(stride, tables.size());
  for (std::size_t v = 0; v < tables.size(); ++v) {
    VR_REQUIRE(tables[v] != nullptr, "null table in merged multibit input");
    for (const net::Route& route : tables[v]->routes()) {
      builder.insert(static_cast<net::VnId>(v), route);
    }
  }
  children_ = std::move(builder.image.children_);
  next_hops_ = std::move(builder.image.next_hops_);
  level_count_ = builder.level_count;
}

FlatMultibitTrie::FlatMultibitTrie(const MultibitTrie& trie)
    : FlatMultibitTrie(trie.stride(), 1) {
  const std::size_t nodes = trie.node_count();
  VR_REQUIRE(nodes <= kMaxNodeCount,
             "multibit trie node count exceeds what NodeIndex can address");
  children_.reserve(nodes * width_);
  next_hops_.reserve(nodes * width_);
  for (std::size_t n = 0; n < nodes; ++n) {
    // narrow-ok: n < nodes <= kMaxNodeCount (VR_REQUIRE above the loop)
    const auto index = static_cast<NodeIndex>(n);
    for (std::size_t slot = 0; slot < width_; ++slot) {
      children_.push_back(trie.entry_child(index, slot));
      next_hops_.push_back(trie.entry_next_hop(index, slot));
    }
  }
  level_count_ = trie.level_count();
}

net::NextHop FlatMultibitTrie::lookup_raw(std::uint32_t addr,
                                          net::VnId vn) const noexcept {
  net::NextHop best = net::kNoRoute;
  NodeIndex node = 0;
  for (unsigned consumed = 0; consumed < 32; consumed += stride_) {
    const std::size_t entry =
        static_cast<std::size_t>(node) * width_ +
        ((addr >> (32u - consumed - stride_)) & slot_mask_);
    const net::NextHop hop = next_hops_[entry * vn_count_ + vn];
    if (hop != net::kNoRoute) best = hop;
    const NodeIndex child = children_[entry];
    if (child == kNullNode) break;
    node = child;
  }
  return best;
}

std::optional<net::NextHop> FlatMultibitTrie::lookup(net::Ipv4 addr,
                                                     net::VnId vn) const {
  const net::NextHop hop = lookup_raw(addr.value(), vn);
  return hop == net::kNoRoute ? std::nullopt
                              : std::optional<net::NextHop>(hop);
}

template <typename AddrFn, typename VnFn>
void FlatMultibitTrie::lookup_batch_core(std::size_t count, AddrFn&& addr_at,
                                         VnFn&& vn_at,
                                         net::NextHop* out) const {
  // Lane-interleaved software pipeline (trie/prefetch.hpp): a window of up
  // to D lookups is in flight; each round advances every lane one stride
  // and prefetches the exact entry the lane will read next round, so up to
  // D dependent memory accesses are resolved concurrently.
  struct Lane {
    std::uint32_t addr;
    NodeIndex node;
    unsigned consumed;
    net::NextHop best;
    net::VnId vn;
    std::size_t out_index;
  };
  const unsigned window = prefetch_distance(kMultibitPrefetchDistance);
  if (window <= 1) {
    // A window of 1 is a plain scalar loop; skip the lane bookkeeping.
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = lookup_raw(addr_at(i), vn_at(i));
    }
    return;
  }
  Lane lanes[kMaxPrefetchDistance];
  std::size_t issued = 0;
  unsigned active = 0;
  const auto start_lane = [&](Lane& lane, std::size_t i) {
    lane.addr = addr_at(i);
    lane.node = 0;
    lane.consumed = 0;
    lane.best = net::kNoRoute;
    lane.vn = vn_at(i);
    lane.out_index = i;
  };
  while (issued < count && active < window) {
    start_lane(lanes[active++], issued);
    ++issued;
  }
  while (active > 0) {
    for (unsigned l = 0; l < active;) {
      Lane& lane = lanes[l];
      const std::size_t entry =
          static_cast<std::size_t>(lane.node) * width_ +
          ((lane.addr >> (32u - lane.consumed - stride_)) & slot_mask_);
      const net::NextHop hop = next_hops_[entry * vn_count_ + lane.vn];
      if (hop != net::kNoRoute) lane.best = hop;
      const NodeIndex child = children_[entry];
      lane.consumed += stride_;
      if (child == kNullNode || lane.consumed >= 32) {
        out[lane.out_index] = lane.best;
        if (issued < count) {
          start_lane(lane, issued);  // reuse the lane for the next key
          ++issued;
          ++l;
        } else {
          // Compact: the moved-in lane has not stepped this round yet, so
          // do not advance l.
          lanes[l] = lanes[--active];
        }
      } else {
        lane.node = child;
        const std::size_t next_entry =
            static_cast<std::size_t>(child) * width_ +
            ((lane.addr >> (32u - lane.consumed - stride_)) & slot_mask_);
        prefetch_read(&children_[next_entry]);
        prefetch_read(&next_hops_[next_entry * vn_count_ + lane.vn]);
        ++l;
      }
    }
  }
}

std::vector<net::NextHop> FlatMultibitTrie::lookup_batch(
    std::span<const net::Ipv4> addrs, net::VnId vn) const {
  const LookupMetrics& metrics = LookupMetrics::get();
  metrics.batches.add(1);
  metrics.keys.add(addrs.size());
  std::vector<net::NextHop> out(addrs.size(), net::kNoRoute);
  lookup_batch_core(
      addrs.size(), [&](std::size_t i) { return addrs[i].value(); },
      [&](std::size_t) { return vn; }, out.data());
  return out;
}

std::vector<net::NextHop> FlatMultibitTrie::lookup_batch(
    std::span<const net::Packet> packets) const {
  const LookupMetrics& metrics = LookupMetrics::get();
  metrics.batches.add(1);
  metrics.keys.add(packets.size());
  std::vector<net::NextHop> out(packets.size(), net::kNoRoute);
  lookup_batch_core(
      packets.size(),
      [&](std::size_t i) { return packets[i].addr.value(); },
      [&](std::size_t i) { return packets[i].vnid; }, out.data());
  return out;
}

}  // namespace vr::trie
