// Node memory encodings: translates per-stage node counts into per-stage
// memory sizes in bits — the M_{i,j} of the paper's models.
//
// Representative encoding (DESIGN.md Sec. 4): the paper assumes 18-bit wide
// BRAM datapaths (Sec. V-B), so an internal ("pointer") node stores two
// 18-bit child pointers = 36 bits, and a leaf stores next-hop information
// (NHI) at 8 bits per virtual network. In the merged scheme a leaf is a
// K-wide NHI vector indexed by VNID (Sec. V-D).
#pragma once

#include <cstddef>
#include <cstdint>

#include "trie/stage_mapping.hpp"

namespace vr::trie {

/// Bit widths of the on-chip node encodings.
struct NodeEncoding {
  unsigned pointer_bits = 18;  ///< one child pointer
  unsigned nhi_bits = 8;       ///< next hop per virtual network

  /// Bits of one internal node word (two child pointers).
  [[nodiscard]] unsigned internal_word_bits() const noexcept {
    return 2 * pointer_bits;
  }

  /// Bits of one leaf word serving `vn_count` virtual networks (a vector
  /// leaf when vn_count > 1, per Sec. V-D).
  [[nodiscard]] unsigned leaf_word_bits(std::size_t vn_count) const noexcept {
    return nhi_bits * static_cast<unsigned>(vn_count);
  }
};

/// Per-stage memory demand, split the way the paper's Fig. 4 reports it:
/// pointer memory (internal nodes) vs. NHI memory (leaves).
struct StageMemory {
  std::vector<std::uint64_t> pointer_bits;  ///< per stage
  std::vector<std::uint64_t> nhi_bits;      ///< per stage

  [[nodiscard]] std::uint64_t total_pointer_bits() const noexcept;
  [[nodiscard]] std::uint64_t total_nhi_bits() const noexcept;
  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return total_pointer_bits() + total_nhi_bits();
  }
  /// Combined bits of stage `s`.
  [[nodiscard]] std::uint64_t stage_bits(std::size_t s) const {
    return pointer_bits.at(s) + nhi_bits.at(s);
  }
  [[nodiscard]] std::size_t stage_count() const noexcept {
    return pointer_bits.size();
  }
};

/// Memory demand of one trie (one virtual network) under a stage mapping.
/// `vn_count` widens the leaf words for merged-scheme vector leaves.
[[nodiscard]] StageMemory stage_memory(const StageOccupancy& occ,
                                       const NodeEncoding& encoding,
                                       std::size_t vn_count = 1);

}  // namespace vr::trie
