// Fixture: include-hygiene check. Expected: two findings.
#pragma once

#include <iostream>  // FINDING: <iostream> in a header

using namespace std;  // FINDING: namespace leak into every includer

inline void fixture_print(int value) { cout << value << '\n'; }
