#include "obs/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::obs {

namespace {

/// Canonical storage key: name, then each label as "\x1fkey\x1evalue".
/// The control-character separators cannot appear in sane metric names, so
/// distinct (name, labels) pairs cannot collide.
std::string make_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Registry::Metric& Registry::find_or_create(std::string_view name,
                                           Labels labels, MetricKind kind) {
  VR_REQUIRE(!name.empty(), "metric name must not be empty");
  std::sort(labels.begin(), labels.end());
  const std::string key = make_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    VR_REQUIRE(it->second->kind == kind,
               "metric '" + std::string(name) +
                   "' re-registered with a different kind");
    return *it->second;
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::string(name);
  metric->labels = std::move(labels);
  metric->kind = kind;
  Metric& ref = *metric;
  metrics_.emplace(key, std::move(metric));
  return ref;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kCounter)
      .counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kHistogram)
      .histogram;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds,
                               Labels labels) {
  Histogram& hist =
      find_or_create(name, std::move(labels), MetricKind::kHistogram)
          .histogram;
  // configure_bounds is a no-op when the cell already has these exact
  // bounds and aborts when it has different ones — which turns a
  // re-registration under a changed shape into a loud failure instead of
  // two silently incompatible series.
  VR_REQUIRE(hist.bounds().empty() || hist.bounds() == upper_bounds,
             "metric '" + std::string(name) +
                 "' re-registered with different histogram bucket bounds");
  hist.configure_bounds(std::move(upper_bounds));
  return hist;
}

std::vector<Registry::Snapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(metrics_.size());
  // std::map iteration order over make_key() output is already sorted by
  // (name, labels), which is the deterministic order sinks rely on.
  for (const auto& [key, metric] : metrics_) {
    Snapshot snap;
    snap.name = metric->name;
    snap.labels = metric->labels;
    snap.kind = metric->kind;
    switch (metric->kind) {
      case MetricKind::kCounter:
        snap.counter = metric->counter.value();
        break;
      case MetricKind::kGauge:
        snap.gauge = metric->gauge.value();
        break;
      case MetricKind::kHistogram:
        snap.histogram = metric->histogram.snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::merge(const Registry& other) {
  VR_REQUIRE(&other != this, "registry cannot merge with itself");
  // Copy the source under its own lock, then fold without holding it:
  // find_or_create takes this registry's lock per metric, so the two locks
  // are never held together (no ordering, no deadlock).
  const std::vector<Snapshot> snaps = other.snapshot();
  for (const Snapshot& snap : snaps) {
    Metric& metric = find_or_create(snap.name, snap.labels, snap.kind);
    switch (snap.kind) {
      case MetricKind::kCounter:
        metric.counter.add(snap.counter);
        break;
      case MetricKind::kGauge:
        metric.gauge.add(snap.gauge);
        break;
      case MetricKind::kHistogram:
        // Name the metric before the primitive's own shape check fires:
        // "which histogram disagreed" is the part of the abort message a
        // sharded-sweep user actually needs. A default-shaped empty cell
        // (created by this very merge) adopts the source's bounds instead.
        VR_REQUIRE(
            metric.histogram.bounds() == snap.histogram.bounds ||
                (metric.histogram.bounds().empty() &&
                 metric.histogram.snapshot().count() == 0),
            "metric '" + snap.name +
                "' merged with mismatched histogram bucket bounds — the "
                "two registries registered it with different shapes");
        if (!snap.histogram.bounds.empty()) {
          metric.histogram.configure_bounds(snap.histogram.bounds);
        }
        metric.histogram.merge(snap.histogram);
        break;
    }
  }
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, metric] : metrics_) {
    metric->counter.reset();
    metric->gauge.reset();
    metric->histogram.reset();
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace vr::obs
