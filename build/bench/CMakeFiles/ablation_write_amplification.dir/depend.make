# Empty dependencies file for ablation_write_amplification.
# This may be replaced when dependencies are built.
