// Router virtualization schemes (paper Sec. III/IV) and their throughput
// semantics.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace vr::power {

/// The three router configurations the paper models.
enum class Scheme {
  kNonVirtualized,  ///< NV: K dedicated devices, one engine each
  kSeparate,        ///< VS: one device, K space-shared engines
  kMerged,          ///< VM: one device, one time-shared engine
};

[[nodiscard]] constexpr const char* to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kNonVirtualized:
      return "non-virtualized";
    case Scheme::kSeparate:
      return "virtualized-separate";
    case Scheme::kMerged:
      return "virtualized-merged";
  }
  return "?";
}

/// Number of physical devices a K-VN deployment needs.
[[nodiscard]] constexpr std::size_t devices_for(Scheme scheme,
                                                std::size_t vn_count) noexcept {
  return scheme == Scheme::kNonVirtualized ? vn_count : 1;
}

/// Number of lookup engines (pipelines) per device.
[[nodiscard]] constexpr std::size_t engines_per_device(
    Scheme scheme, std::size_t vn_count) noexcept {
  return scheme == Scheme::kSeparate ? vn_count : 1;
}

/// Aggregate lookup capacity at clock `freq` with minimum-size (40 B)
/// packets: every engine sustains one lookup per cycle, so NV and VS scale
/// with K while the merged engine is time-shared among the VNs (Sec. IV-C)
/// and does not (this is why VM's mW/Gbps deteriorates, Sec. VI-B).
[[nodiscard]] constexpr units::Gbps aggregate_throughput_gbps(
    Scheme scheme, std::size_t vn_count, units::Megahertz freq) noexcept {
  const std::size_t engines =
      devices_for(scheme, vn_count) * engines_per_device(scheme, vn_count);
  return static_cast<double>(engines) *
         units::lookup_throughput(freq, units::kMinPacketBytes);
}

}  // namespace vr::power
