#include "trie/trie_stats.hpp"

namespace vr::trie {

TrieStats compute_stats(const UnibitTrie& trie) {
  TrieStats stats;
  stats.total_nodes = trie.node_count();
  stats.height = trie.height();
  const std::size_t levels = trie.level_count();
  stats.nodes_per_level.assign(levels, 0);
  stats.internal_per_level.assign(levels, 0);
  stats.leaves_per_level.assign(levels, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    const auto level = trie.level(l);
    stats.nodes_per_level[l] = level.size();
    for (const TrieNode& node : level) {
      if (node.is_leaf()) {
        ++stats.leaves_per_level[l];
      } else {
        ++stats.internal_per_level[l];
      }
    }
    stats.internal_nodes += stats.internal_per_level[l];
    stats.leaf_nodes += stats.leaves_per_level[l];
  }
  return stats;
}

}  // namespace vr::trie
