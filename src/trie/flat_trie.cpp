#include "trie/flat_trie.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "obs/registry.hpp"
#include "trie/prefetch.hpp"

namespace vr::trie {

namespace {

/// Batched-lookup counters of the unibit hot path, registered once.
struct LookupMetrics {
  obs::Counter& batches;
  obs::Counter& keys;

  static const LookupMetrics& get() {
    static LookupMetrics metrics = [] {
      obs::Registry& reg = obs::Registry::global();
      return LookupMetrics{
          reg.counter("trie.lookup_batches", {{"path", "unibit"}}),
          reg.counter("trie.lookup_keys", {{"path", "unibit"}})};
    }();
    return metrics;
  }
};

}  // namespace

FlatTrie::FlatTrie(const UnibitTrie& trie) : level_count_(trie.level_count()) {
  const std::span<const TrieNode> nodes = trie.nodes();
  VR_REQUIRE(nodes.size() <= kMaxNodeCount,
             "unibit trie node count exceeds what NodeIndex can address");
  left_.reserve(nodes.size());
  right_.reserve(nodes.size());
  next_hops_.reserve(nodes.size());
  for (const TrieNode& node : nodes) {
    left_.push_back(node.left);
    right_.push_back(node.right);
    next_hops_.push_back(node.next_hop);
  }
}

FlatTrie::FlatTrie(std::vector<NodeIndex> left, std::vector<NodeIndex> right,
                   std::vector<net::NextHop> next_hops, std::size_t vn_count,
                   std::size_t level_count)
    : left_(std::move(left)),
      right_(std::move(right)),
      next_hops_(std::move(next_hops)),
      vn_count_(vn_count),
      level_count_(level_count) {
  VR_REQUIRE(vn_count_ >= 1, "flat trie needs at least one VN");
  VR_REQUIRE(left_.size() == right_.size(), "left/right arrays must align");
  VR_REQUIRE(next_hops_.size() == left_.size() * vn_count_,
             "next-hop pool must hold vn_count entries per node");
  VR_REQUIRE(!left_.empty(), "flat trie needs at least the root node");
  VR_REQUIRE(left_.size() <= kMaxNodeCount,
             "flat trie node count exceeds what NodeIndex can address");
}

net::NextHop FlatTrie::lookup_raw(std::uint32_t addr,
                                  net::VnId vn) const noexcept {
  net::NextHop best = net::kNoRoute;
  NodeIndex current = 0;
  for (unsigned depth = 0;; ++depth) {
    const net::NextHop hop = next_hop(current, vn);
    if (hop != net::kNoRoute) best = hop;
    if (depth >= 32) break;
    const NodeIndex child = bit_at(addr, depth) ? right_[current]
                                                : left_[current];
    if (child == kNullNode) break;
    current = child;
  }
  return best;
}

std::optional<net::NextHop> FlatTrie::lookup(net::Ipv4 addr,
                                             net::VnId vn) const {
  const net::NextHop hop = lookup_raw(addr.value(), vn);
  return hop == net::kNoRoute ? std::nullopt
                              : std::optional<net::NextHop>(hop);
}

template <typename AddrFn, typename VnFn>
void FlatTrie::lookup_batch_core(std::size_t count, AddrFn&& addr_at,
                                 VnFn&& vn_at, net::NextHop* out) const {
  // Lane-interleaved software pipeline (trie/prefetch.hpp): a window of up
  // to D lookups is in flight; each round advances every lane one trie
  // level and prefetches the child node the lane will read next round —
  // only the side the next address bit selects — so up to D dependent
  // pointer chases overlap instead of serializing.
  struct Lane {
    std::uint32_t addr;
    NodeIndex node;
    unsigned depth;
    net::NextHop best;
    net::VnId vn;
    std::size_t out_index;
  };
  const unsigned window = prefetch_distance(kUnibitPrefetchDistance);
  if (window <= 1) {
    // A window of 1 is a plain scalar loop; skip the lane bookkeeping
    // (the uni-bit default — its per-step work is too small to hide).
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = lookup_raw(addr_at(i), vn_at(i));
    }
    return;
  }
  Lane lanes[kMaxPrefetchDistance];
  std::size_t issued = 0;
  unsigned active = 0;
  const auto start_lane = [&](Lane& lane, std::size_t i) {
    lane.addr = addr_at(i);
    lane.node = 0;
    lane.depth = 0;
    lane.best = net::kNoRoute;
    lane.vn = vn_at(i);
    lane.out_index = i;
  };
  while (issued < count && active < window) {
    start_lane(lanes[active++], issued);
    ++issued;
  }
  while (active > 0) {
    for (unsigned l = 0; l < active;) {
      Lane& lane = lanes[l];
      const net::NextHop hop =
          next_hops_[static_cast<std::size_t>(lane.node) * vn_count_ +
                     lane.vn];
      if (hop != net::kNoRoute) lane.best = hop;
      NodeIndex child = kNullNode;
      if (lane.depth < 32) {
        child = bit_at(lane.addr, lane.depth) ? right_[lane.node]
                                              : left_[lane.node];
      }
      ++lane.depth;
      if (child == kNullNode) {
        out[lane.out_index] = lane.best;
        if (issued < count) {
          start_lane(lane, issued);  // reuse the lane for the next key
          ++issued;
          ++l;
        } else {
          // Compact: the moved-in lane has not stepped this round yet, so
          // do not advance l.
          lanes[l] = lanes[--active];
        }
      } else {
        lane.node = child;
        if (lane.depth < 32) {
          prefetch_read(bit_at(lane.addr, lane.depth) ? &right_[child]
                                                      : &left_[child]);
        }
        prefetch_read(
            &next_hops_[static_cast<std::size_t>(child) * vn_count_ +
                        lane.vn]);
        ++l;
      }
    }
  }
}

std::vector<net::NextHop> FlatTrie::lookup_batch(
    std::span<const net::Ipv4> addrs, net::VnId vn) const {
  const LookupMetrics& metrics = LookupMetrics::get();
  metrics.batches.add(1);
  metrics.keys.add(addrs.size());
  std::vector<net::NextHop> out(addrs.size(), net::kNoRoute);
  lookup_batch_core(
      addrs.size(), [&](std::size_t i) { return addrs[i].value(); },
      [&](std::size_t) { return vn; }, out.data());
  return out;
}

std::vector<net::NextHop> FlatTrie::lookup_batch(
    std::span<const net::Packet> packets) const {
  const LookupMetrics& metrics = LookupMetrics::get();
  metrics.batches.add(1);
  metrics.keys.add(packets.size());
  std::vector<net::NextHop> out(packets.size(), net::kNoRoute);
  lookup_batch_core(
      packets.size(),
      [&](std::size_t i) { return packets[i].addr.value(); },
      [&](std::size_t i) { return packets[i].vnid; }, out.data());
  return out;
}

}  // namespace vr::trie
