file(REMOVE_RECURSE
  "CMakeFiles/vr_fpga.dir/bram.cpp.o"
  "CMakeFiles/vr_fpga.dir/bram.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/device.cpp.o"
  "CMakeFiles/vr_fpga.dir/device.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/distram.cpp.o"
  "CMakeFiles/vr_fpga.dir/distram.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/freq_model.cpp.o"
  "CMakeFiles/vr_fpga.dir/freq_model.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/pnr_sim.cpp.o"
  "CMakeFiles/vr_fpga.dir/pnr_sim.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/thermal.cpp.o"
  "CMakeFiles/vr_fpga.dir/thermal.cpp.o.d"
  "CMakeFiles/vr_fpga.dir/xpe_tables.cpp.o"
  "CMakeFiles/vr_fpga.dir/xpe_tables.cpp.o.d"
  "libvr_fpga.a"
  "libvr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
