// WorkloadCache — memoizes realized workloads (routing tables, unibit
// tries, leaf pushing, merged tries) across sweep points. Figs. 4–8 and
// the ablations revisit the same (seed, table profile, K, α, merged-source)
// tuple dozens of times — once per speed grade, per figure, per estimator/
// experiment pair — and trie realization dominates a sweep point's cost by
// ~50×, so memoizing it is the difference between O(figures × K) and O(K)
// trie builds per regeneration.
//
// Keying: the cache key is the exact subset of Scenario fields that
// realize_workload() reads — (scheme, K, stages, seed, α, merged source,
// merged rule, leaf_push, table_size_spread, the full table profile) plus
// the keep_tables flag. Grade, operating frequency, BRAM policy and the
// utilization vector do NOT enter workload realization and are deliberately
// excluded, which is what lets the two speed-grade sweeps of every figure
// share one realization. Doubles are rendered in hexfloat so the key is
// exact.
//
// Concurrency: entries are shared_futures guarded by one mutex. The first
// thread to request a key installs a promise and builds outside the lock;
// concurrent requesters for the same key block on the future instead of
// duplicating the build. Values are immutable shared_ptr<const Workload>.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/scenario.hpp"
#include "core/workload.hpp"

namespace vr::core {

class WorkloadCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the realized workload for `scenario`, building it at most
  /// once per distinct key. Thread-safe.
  [[nodiscard]] std::shared_ptr<const Workload> realize(
      const Scenario& scenario, bool keep_tables = false);

  [[nodiscard]] Stats stats() const;

  /// Drops all entries and resets the counters.
  void clear();

  /// The cache key of a scenario (exposed for tests and diagnostics).
  [[nodiscard]] static std::string key(const Scenario& scenario,
                                       bool keep_tables);

  /// Process-wide cache shared by the figure builders and bench binaries.
  [[nodiscard]] static WorkloadCache& global();

 private:
  using Entry = std::shared_future<std::shared_ptr<const Workload>>;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

/// Realizes `scenario` via the process-global cache.
[[nodiscard]] std::shared_ptr<const Workload> realize_workload_cached(
    const Scenario& scenario, bool keep_tables = false);

}  // namespace vr::core
