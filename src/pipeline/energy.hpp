// Activity-based power measurement: converts the simulator's per-stage
// busy/read counters into average power using the same per-resource
// coefficients the analytical model uses. Because the coefficient
// `c µW/MHz` equals `c pJ/cycle` (see common/units.hpp), the measured
// power is exact for the observed activity — the reconciliation tests use
// this to show the analytical model's µ-weighting is the correct closed
// form of the simulated clock gating.
#pragma once

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/xpe_tables.hpp"
#include "pipeline/lookup_engine.hpp"

namespace vr::pipeline {

/// Average dynamic power of one engine over a simulation.
struct EnginePower {
  units::Watts logic_w;
  units::Watts memory_w;

  [[nodiscard]] units::Watts dynamic_w() const noexcept {
    return logic_w + memory_w;
  }
};

/// Computes average power from counters, a per-stage BRAM plan (as placed
/// for this engine) and the operating point. `plan.per_stage` must have
/// the engine's stage count.
[[nodiscard]] EnginePower measure_engine_power(
    const ActivityCounters& counters, const fpga::StageBramPlan& plan,
    fpga::SpeedGrade grade, units::Megahertz freq_mhz);

}  // namespace vr::pipeline
