// Fixture: lock-discipline check. counter_ is guarded by mu_; the
// companion .cpp touches it in one function without the lock (one
// expected finding) and in compliant ways everywhere else.
#pragma once

#include <cstdint>
#include <mutex>

namespace vr::obs {

class FixtureGuarded {
 public:
  FixtureGuarded() = default;
  void bump_unlocked_bug();
  void bump_properly();
  [[nodiscard]] std::int64_t total_locked() const;

 private:
  mutable std::mutex mu_;
  std::int64_t counter_ = 0;  // guarded_by(mu_)
};

}  // namespace vr::obs
