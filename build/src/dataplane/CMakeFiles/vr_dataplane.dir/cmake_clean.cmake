file(REMOVE_RECURSE
  "CMakeFiles/vr_dataplane.dir/editor.cpp.o"
  "CMakeFiles/vr_dataplane.dir/editor.cpp.o.d"
  "CMakeFiles/vr_dataplane.dir/frame_gen.cpp.o"
  "CMakeFiles/vr_dataplane.dir/frame_gen.cpp.o.d"
  "CMakeFiles/vr_dataplane.dir/full_router.cpp.o"
  "CMakeFiles/vr_dataplane.dir/full_router.cpp.o.d"
  "CMakeFiles/vr_dataplane.dir/parser.cpp.o"
  "CMakeFiles/vr_dataplane.dir/parser.cpp.o.d"
  "CMakeFiles/vr_dataplane.dir/scheduler.cpp.o"
  "CMakeFiles/vr_dataplane.dir/scheduler.cpp.o.d"
  "libvr_dataplane.a"
  "libvr_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
