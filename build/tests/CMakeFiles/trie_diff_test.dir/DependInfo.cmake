
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trie_diff_test.cpp" "tests/CMakeFiles/trie_diff_test.dir/trie_diff_test.cpp.o" "gcc" "tests/CMakeFiles/trie_diff_test.dir/trie_diff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/vr_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/multipipe/CMakeFiles/vr_multipipe.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/vr_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/ipv6/CMakeFiles/vr_ipv6.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/vr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vr_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/vr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
