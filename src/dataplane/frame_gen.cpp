#include "dataplane/frame_gen.hpp"

#include "common/error.hpp"

namespace vr::dataplane {

FrameGenerator::FrameGenerator(FrameGenConfig config,
                               std::vector<const net::RoutingTable*> tables)
    : config_(std::move(config)),
      traffic_(config_.traffic, std::move(tables)) {
  VR_REQUIRE(config_.corrupt_fraction >= 0.0 &&
                 config_.corrupt_fraction <= 1.0,
             "corrupt_fraction must be in [0,1]");
  VR_REQUIRE(config_.expiring_ttl_fraction >= 0.0 &&
                 config_.expiring_ttl_fraction <= 1.0,
             "expiring_ttl_fraction must be in [0,1]");
  VR_REQUIRE(!config_.payload_sizes.empty() &&
                 config_.payload_sizes.size() ==
                     config_.payload_weights.size(),
             "payload size/weight lists must be non-empty and equal");
  // total_length is a 16-bit wire field holding header + payload; a
  // payload above 65515 would silently wrap it and every downstream
  // consumer (parser, scheduler byte accounting, activity counters)
  // would see a tiny frame instead of a jumbo one.
  for (const std::uint16_t size : config_.payload_sizes) {
    VR_REQUIRE(size <= kMaxPayloadBytes,
               "payload size overflows the 16-bit total_length field");
  }
}

std::uint64_t FrameGenerator::derive_seed(std::uint64_t scenario_seed,
                                          std::uint64_t salt) noexcept {
  SplitMix64 sm(scenario_seed);
  return SplitMix64(sm.next() ^ salt).next();
}

std::vector<IngressFrame> FrameGenerator::generate(std::uint64_t seed) const {
  // Expand the caller's seed into independent sub-streams with SplitMix64
  // (the library's documented seeding discipline) instead of the ad-hoc
  // XOR this used: XORing a structured seed (e.g. scenario.seed + vn) with
  // a small constant produces correlated header streams across VNs.
  SplitMix64 sm(seed);
  const std::uint64_t traffic_seed = sm.next();
  const std::uint64_t header_seed = sm.next();
  const auto timed = traffic_.generate(traffic_seed);
  Rng rng(header_seed);
  std::vector<IngressFrame> frames;
  frames.reserve(timed.size());
  std::uint16_t next_id = 0;
  for (const net::TimedPacket& tp : timed) {
    IngressFrame frame;
    frame.cycle = tp.cycle;
    frame.vnid = tp.packet.vnid;
    frame.payload_bytes = config_.payload_sizes[rng.next_weighted(
        config_.payload_weights.data(), config_.payload_weights.size())];

    net::Ipv4Header& header = frame.header;
    header.destination = tp.packet.addr;
    header.source =
        // narrow-ok: deliberate truncation to the low 32 bits of the
        // u64 stream (uniform over the IPv4 space)
        net::Ipv4(static_cast<std::uint32_t>(rng.next_u64()));
    // narrow-ok: next_below(4) << 3 is at most 24
    header.dscp = static_cast<std::uint8_t>(rng.next_below(4) << 3);
    header.identification = next_id++;
    // narrow-ok: ctor requires payload <= kMaxPayloadBytes, so the sum
    // fits the 16-bit wire field
    header.total_length = static_cast<std::uint16_t>(
        net::Ipv4Header::kSize + frame.payload_bytes);
    // narrow-ok: both branches are bounded by 64
    header.ttl = static_cast<std::uint8_t>(
        rng.next_bool(config_.expiring_ttl_fraction) ? rng.next_below(2)
                                                     : rng.next_in(2, 64));
    header.checksum = header.compute_checksum();
    if (rng.next_bool(config_.corrupt_fraction)) {
      // narrow-ok: uint16 ^ uint16 after integer promotion, < 2^16
      header.checksum = static_cast<std::uint16_t>(header.checksum ^ 0x5555);
    }
    frames.push_back(frame);
  }
  return frames;
}

}  // namespace vr::dataplane
