// Ablation: trie stride (the [16]-taxonomy design axis). A stride-k
// pipeline has ceil(32/k) stages — less logic power per lookup — but
// controlled prefix expansion multiplies memory (hence BRAM power). This
// sweep evaluates strides 1/2/4/8 on the paper's edge table with the
// paper's power coefficients, showing why the paper's uni-bit, 28-stage
// design sits where it does.
#include "bench_common.hpp"
#include "fpga/freq_model.hpp"
#include "fpga/xpe_tables.hpp"
#include "netbase/table_gen.hpp"
#include "trie/multibit_trie.hpp"

int main() {
  using namespace vr;
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();

  TextTable out("Stride ablation (grade -2, 3725-prefix edge table)");
  out.set_header({"stride", "stages", "nodes", "memory Kb", "clock MHz",
                  "logic mW", "BRAM mW", "dynamic mW", "Gbps", "mW/Gbps*"});
  for (const unsigned stride : {1u, 2u, 4u, 8u}) {
    const trie::MultibitTrie trie(table, stride);
    const auto level_bits = trie.level_memory_bits();
    const fpga::StageBramPlan plan =
        fpga::plan_stage_bram(level_bits, fpga::BramPolicy::kMixed);
    fpga::DesignResources resources;
    resources.bram_halves = plan.total.halves();
    resources.max_stage_blocks36eq = plan.max_stage_blocks36eq;
    resources.pipelines = 1;
    const units::Megahertz freq = fpga::achievable_fmax_mhz(
        device, fpga::SpeedGrade::kMinus2, resources);
    const double logic_w =
        fpga::XpeTables::logic_power_w(fpga::SpeedGrade::kMinus2,
                                       trie.level_count(), freq)
            .value();
    const double bram_w =
        plan.total.power_w(fpga::SpeedGrade::kMinus2, freq).value();
    const double gbps =
        units::lookup_throughput(freq, units::kMinPacketBytes).value();
    out.add_row(
        {std::to_string(stride), std::to_string(trie.level_count()),
         std::to_string(trie.node_count()),
         TextTable::num(static_cast<double>(trie.memory_bits()) / 1024.0,
                        0),
         TextTable::num(freq.value(), 1), TextTable::num(logic_w * 1e3, 2),
         TextTable::num(bram_w * 1e3, 2),
         TextTable::num((logic_w + bram_w) * 1e3, 2),
         TextTable::num(gbps, 1),
         TextTable::num((logic_w + bram_w) * 1e3 / gbps, 3)});
  }
  vr::bench::emit(out);
  std::cout << "* dynamic power only -- leakage is scheme-level, not a\n"
               "  stride property. Larger strides trade fewer stages\n"
               "  (less logic power) for expanded memory (more BRAM\n"
               "  power); the crossover justifies small-stride pipelines\n"
               "  for edge tables.\n";
  return 0;
}
