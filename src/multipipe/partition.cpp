#include "multipipe/partition.hpp"

#include <algorithm>
#include <numeric>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::multipipe {

namespace {

/// Per-subtrie census: relative-level node counts below (and including)
/// a level-s root.
struct SubtrieCensus {
  trie::NodeIndex root = trie::kNullNode;
  std::size_t index_slot = 0;
  std::vector<std::size_t> nodes_per_level;
  std::vector<std::size_t> internal_per_level;
  std::vector<std::size_t> leaves_per_level;

  [[nodiscard]] std::size_t total() const {
    return std::accumulate(nodes_per_level.begin(), nodes_per_level.end(),
                           std::size_t{0});
  }
};

SubtrieCensus census(const trie::UnibitTrie& trie, trie::NodeIndex root,
                     std::size_t slot) {
  SubtrieCensus out;
  out.root = root;
  out.index_slot = slot;
  std::vector<trie::NodeIndex> frontier{root};
  while (!frontier.empty()) {
    std::vector<trie::NodeIndex> next;
    std::size_t internal = 0;
    std::size_t leaves = 0;
    for (const trie::NodeIndex index : frontier) {
      const trie::TrieNode& node = trie.node(index);
      if (node.is_leaf()) {
        ++leaves;
      } else {
        ++internal;
      }
      if (node.left != trie::kNullNode) next.push_back(node.left);
      if (node.right != trie::kNullNode) next.push_back(node.right);
    }
    out.nodes_per_level.push_back(frontier.size());
    out.internal_per_level.push_back(internal);
    out.leaves_per_level.push_back(leaves);
    frontier = std::move(next);
  }
  return out;
}

}  // namespace

PartitionedTrie::PartitionedTrie(const trie::UnibitTrie& trie,
                                 PartitionConfig config)
    : trie_(&trie), config_(config) {
  VR_REQUIRE(config_.split_level >= 1 && config_.split_level <= 16,
             "split_level must be in [1,16]");
  VR_REQUIRE(config_.pipeline_count >= 1, "need at least one pipeline");
  index_.resize(std::size_t{1} << config_.split_level);
  assign_subtries(trie);
}

void PartitionedTrie::assign_subtries(const trie::UnibitTrie& trie) {
  const unsigned s = config_.split_level;
  std::vector<SubtrieCensus> subtries;

  // Walk every index slot's s-bit path, collecting the inherited next hop
  // and the subtrie root (if the path survives to level s).
  for (std::size_t slot = 0; slot < index_.size(); ++slot) {
    IndexEntry entry;
    trie::NodeIndex current = trie.root();
    net::NextHop best = net::kNoRoute;
    bool fell_off = false;
    for (unsigned depth = 0; depth < s; ++depth) {
      const trie::TrieNode& node = trie.node(current);
      if (node.has_route()) best = node.next_hop;
      const bool bit =
          ((slot >> (s - 1 - depth)) & std::size_t{1}) != 0;
      const trie::NodeIndex child = bit ? node.right : node.left;
      if (child == trie::kNullNode) {
        fell_off = true;
        break;
      }
      current = child;
    }
    entry.inherited = best;
    if (!fell_off) {
      entry.subtrie_root = current;
      subtries.push_back(census(trie, current, slot));
    }
    index_[slot] = entry;
  }

  // Depth bound across subtries.
  for (const SubtrieCensus& sub : subtries) {
    pipeline_depth_ = std::max(pipeline_depth_, sub.nodes_per_level.size());
  }
  if (pipeline_depth_ == 0) pipeline_depth_ = 1;

  // Memory balancing ([7]/[8]): greedy largest-first bin packing of
  // subtries over the P pipelines by node count.
  pipelines_.assign(config_.pipeline_count, trie::StageOccupancy{});
  for (auto& occ : pipelines_) {
    occ.nodes.assign(pipeline_depth_, 0);
    occ.internal_nodes.assign(pipeline_depth_, 0);
    occ.leaf_nodes.assign(pipeline_depth_, 0);
  }
  std::sort(subtries.begin(), subtries.end(),
            [](const SubtrieCensus& a, const SubtrieCensus& b) {
              return a.total() > b.total();
            });
  std::vector<std::size_t> load(config_.pipeline_count, 0);
  for (const SubtrieCensus& sub : subtries) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    for (std::size_t l = 0; l < sub.nodes_per_level.size(); ++l) {
      pipelines_[target].nodes[l] += sub.nodes_per_level[l];
      pipelines_[target].internal_nodes[l] += sub.internal_per_level[l];
      pipelines_[target].leaf_nodes[l] += sub.leaves_per_level[l];
    }
    load[target] += sub.total();
    index_[sub.index_slot].pipeline = static_cast<std::uint16_t>(target);
  }
}

std::optional<net::NextHop> PartitionedTrie::lookup(net::Ipv4 addr) const {
  const unsigned s = config_.split_level;
  const std::size_t slot = addr.value() >> (32u - s);
  const IndexEntry& entry = index_[slot];
  std::optional<net::NextHop> best;
  if (entry.inherited != net::kNoRoute) best = entry.inherited;
  trie::NodeIndex current = entry.subtrie_root;
  for (unsigned depth = s; current != trie::kNullNode; ++depth) {
    const trie::TrieNode& node = trie_->node(current);
    if (node.has_route()) best = node.next_hop;
    if (depth >= 32) break;
    current = bit_at(addr.value(), depth) ? node.right : node.left;
  }
  return best;
}

std::uint64_t PartitionedTrie::index_bits() const noexcept {
  const unsigned entry_bits =
      address_bits(config_.pipeline_count) + 18u /*root ptr*/ + 8u /*NHI*/;
  return std::uint64_t{index_.size()} * entry_bits;
}

std::size_t PartitionedTrie::pipeline_nodes(std::size_t p) const {
  VR_REQUIRE(p < pipelines_.size(), "pipeline index out of range");
  return std::accumulate(pipelines_[p].nodes.begin(),
                         pipelines_[p].nodes.end(), std::size_t{0});
}

double PartitionedTrie::balance_factor() const {
  std::size_t total = 0;
  std::size_t worst = 0;
  for (std::size_t p = 0; p < pipelines_.size(); ++p) {
    const std::size_t nodes = pipeline_nodes(p);
    total += nodes;
    worst = std::max(worst, nodes);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(pipelines_.size());
  return static_cast<double>(worst) / mean;
}

double PartitionedTrie::index_only_fraction() const {
  std::size_t empty = 0;
  for (const IndexEntry& entry : index_) {
    if (entry.subtrie_root == trie::kNullNode) ++empty;
  }
  return static_cast<double>(empty) / static_cast<double>(index_.size());
}

}  // namespace vr::multipipe
