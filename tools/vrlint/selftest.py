#!/usr/bin/env python3
"""vrlint fixture self-test: every check fires where it must and stays
quiet where it must not.

Runs the real CLI (subprocess, --json) over tests/lint_fixtures — a
miniature repo tree of deliberately-bad snippets, one per check, plus a
clean control — and asserts the *exact* finding set. Exact-set equality
is the point: it proves each check fires on its bad line, AND that the
escape comments (units-ok, det-ok, narrow-ok-with-reason, metric-ok)
suppress their lines, AND that the clean control contributes nothing —
any regression in either direction breaks the equality.

Run:  python3 tools/vrlint/selftest.py
Exit: 0 all assertions hold, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"

# The complete expected output of vrlint over the fixture tree:
# (check, path, line). Keep in lock-step with tests/lint_fixtures/ — the
# fixtures say FINDING on each line expected here.
EXPECTED = {
    # bench/ is scanned like src/.
    ("determinism", "bench/bad_bench_determinism.cpp", 5),
    # srand / random_device / time(nullptr) / system_clock::now, then the
    # unordered_map range-for; the det-ok'd second range-for is absent.
    ("determinism", "src/dataplane/bad_determinism.cpp", 16),
    ("determinism", "src/dataplane/bad_determinism.cpp", 17),
    ("determinism", "src/dataplane/bad_determinism.cpp", 18),
    ("determinism", "src/dataplane/bad_determinism.cpp", 19),
    ("determinism", "src/dataplane/bad_determinism.cpp", 27),
    ("include-hygiene", "src/netbase/bad_include.hpp", 4),
    ("include-hygiene", "src/netbase/bad_include.hpp", 6),
    # Suffix mode: link_throughput flagged, rx_power_w not.
    ("units", "src/netbase/bad_suffix.cpp", 8),
    # bump_unlocked_bug touches counter_ without mu_; the lock_guard,
    # _locked-suffix and constructor paths are absent.
    ("lock-discipline", "src/obs/bad_lock.cpp", 6),
    # Unlisted cycle-model counter; the manifest-listed one is absent.
    ("metrics", "src/dataplane/cycle_metrics.cpp", 10),
    # Unlisted literal + dynamic name; the metric-ok'd call is absent.
    ("metrics", "src/obs/bad_metrics.cpp", 14),
    # Typo'd placement counter; the manifest-listed one is absent.
    ("metrics", "src/placement/bad_placement_metrics.cpp", 10),
    ("metrics", "src/obs/bad_metrics.cpp", 15),
    # Typed-header mode: idle_power flagged, units-ok'd calib_power not.
    ("units", "src/power/bad_units.hpp", 9),
    # Unguarded cast, and the cast under a reason-less narrow-ok; the
    # checked_* helper and the justified cast are absent.
    ("narrowing", "src/trie/bad_narrowing.cpp", 18),
    ("narrowing", "src/trie/bad_narrowing.cpp", 23),
    # The reason-less tag itself is a violation of the annotation rules.
    ("annotations", "src/trie/bad_narrowing.cpp", 22),
    # Stale manifest entry fixture.stale; fixture.known and the cycle
    # metric are registered.
    ("metrics", "tools/vrlint/metrics.txt", 6),
}

# Every registered check must be represented in the fixtures — a new
# check without a fixture would silently skip this proof.
EXPECTED_CHECKS = {"annotations", "determinism", "include-hygiene",
                   "lock-discipline", "metrics", "narrowing", "units"}


def fail(message: str) -> None:
    print(f"vrlint selftest: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def run_vrlint(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "vrlint"), *argv],
        capture_output=True, text=True, check=False)


def main() -> None:
    proc = run_vrlint("--root", str(FIXTURES), "--json")
    if proc.returncode != 1:
        fail(f"expected exit 1 on the fixture tree, got {proc.returncode}\n"
             f"{proc.stdout}{proc.stderr}")
    got = {(f["check"], f["path"], f["line"])
           for f in json.loads(proc.stdout)}
    if got != EXPECTED:
        lines = ["finding set mismatch"]
        for f in sorted(EXPECTED - got):
            lines.append(f"  missing:    {f[1]}:{f[2]} [{f[0]}]")
        for f in sorted(got - EXPECTED):
            lines.append(f"  unexpected: {f[1]}:{f[2]} [{f[0]}]")
        fail("\n".join(lines))
    if {c for c, _, _ in got} != EXPECTED_CHECKS:
        fail("fixture coverage lost a check")

    # A registered check that never gained a fixture is invisible above.
    proc = run_vrlint("--list")
    listed = {line.split()[0] for line in proc.stdout.splitlines() if line}
    # 'annotations' is framework-level (always on), not a listed check.
    unproven = listed - (EXPECTED_CHECKS - {"annotations"})
    if proc.returncode != 0 or unproven:
        fail(f"checks registered but not exercised by fixtures: "
             f"{sorted(unproven)}")

    # Subset selection still runs the always-on annotation scan.
    proc = run_vrlint("--root", str(FIXTURES), "--checks", "units", "--json")
    subset = {(f["check"], f["path"], f["line"])
              for f in json.loads(proc.stdout)}
    if subset != {f for f in EXPECTED if f[0] in ("units", "annotations")}:
        fail("--checks units did not yield exactly the units + "
             "annotations findings")

    print(f"vrlint selftest: ok ({len(EXPECTED)} findings pinned, "
          f"{len(EXPECTED_CHECKS)} checks proven)")


if __name__ == "__main__":
    main()
