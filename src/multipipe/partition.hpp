// Depth-bounded multi-pipeline IP lookup — the "green router" baseline of
// the paper's references [7] (multi-way pipelining, GLOBECOM'08) and [8]
// (depth-bounded multi-pipeline architecture, IPCCC'08), cited in
// Sec. II-B as the state of the art in power-efficient trie lookup.
//
// The trie is split at level `s`: the top s levels collapse into a
// 2^s-entry direct-index table; every subtrie rooted at level s is
// assigned to one of P short pipelines (depth bounded by height-s), with
// subtries balanced across pipelines by memory footprint. Each lookup
// touches the index plus ONE short pipeline, so both the logic power
// (fewer stages clocked per lookup) and the per-stage memory power drop,
// while P parallel pipelines multiply throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trie/memory_layout.hpp"
#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::multipipe {

/// Partitioning configuration.
struct PartitionConfig {
  unsigned split_level = 8;     ///< index on the top `split_level` bits
  std::size_t pipeline_count = 4;
};

/// One direct-index slot: which pipeline serves the subtrie (if any), the
/// subtrie root, and the best next hop accumulated above the split (for
/// addresses whose match ends above level s).
struct IndexEntry {
  std::uint16_t pipeline = 0;
  trie::NodeIndex subtrie_root = trie::kNullNode;
  net::NextHop inherited = net::kNoRoute;
};

/// The partitioned lookup structure (non-owning view over the trie).
class PartitionedTrie {
 public:
  PartitionedTrie(const trie::UnibitTrie& trie, PartitionConfig config);

  /// Functional lookup (must equal the trie's own LPM).
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr) const;

  [[nodiscard]] const PartitionConfig& config() const noexcept {
    return config_;
  }
  /// Depth bound of the pipelines: deepest subtrie level count.
  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return pipeline_depth_;
  }
  /// Direct-index table size in entries (2^split_level).
  [[nodiscard]] std::size_t index_entries() const noexcept {
    return index_.size();
  }
  /// Index memory in bits (pipeline id + root pointer + inherited NHI).
  [[nodiscard]] std::uint64_t index_bits() const noexcept;

  /// Per-stage node counts of pipeline `p` (size pipeline_depth()).
  [[nodiscard]] const trie::StageOccupancy& pipeline_occupancy(
      std::size_t p) const {
    return pipelines_[p];
  }
  /// Total nodes assigned to pipeline `p`.
  [[nodiscard]] std::size_t pipeline_nodes(std::size_t p) const;

  /// Memory-balance quality: largest pipeline / mean pipeline node count
  /// (1.0 = perfect balance; [7]/[8] integrate balancing for power).
  [[nodiscard]] double balance_factor() const;

  /// Fraction of index slots whose lookup terminates above the split
  /// (no pipeline traversal at all — pure index hits).
  [[nodiscard]] double index_only_fraction() const;

 private:
  void assign_subtries(const trie::UnibitTrie& trie);

  const trie::UnibitTrie* trie_;
  PartitionConfig config_;
  std::vector<IndexEntry> index_;
  std::vector<trie::StageOccupancy> pipelines_;
  std::size_t pipeline_depth_ = 0;
};

}  // namespace vr::multipipe
