file(REMOVE_RECURSE
  "CMakeFiles/baseline_tcam_vs_trie.dir/baseline_tcam_vs_trie.cpp.o"
  "CMakeFiles/baseline_tcam_vs_trie.dir/baseline_tcam_vs_trie.cpp.o.d"
  "baseline_tcam_vs_trie"
  "baseline_tcam_vs_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_tcam_vs_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
