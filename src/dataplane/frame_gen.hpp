// Ingress frame generation for the full-router data plane: byte-accurate
// IPv4 headers with valid checksums (and a configurable fraction of
// corrupted ones to exercise the parser's drop paths), IMIX-like payload
// sizes, per-VN traffic shares and duty cycling.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netbase/packet.hpp"
#include "netbase/traffic.hpp"

namespace vr::dataplane {

/// One frame arriving at the router.
struct IngressFrame {
  std::uint64_t cycle = 0;
  net::VnId vnid = 0;
  net::Ipv4Header header;
  std::uint16_t payload_bytes = 0;
};

/// Largest payload that still fits the 16-bit IPv4 total_length field
/// next to the 20-byte header. FrameGenerator rejects configs above it.
inline constexpr std::uint16_t kMaxPayloadBytes = 0xffff -
                                                  net::Ipv4Header::kSize;

struct FrameGenConfig {
  net::TrafficConfig traffic;
  /// Probability of a corrupted checksum (parser must drop).
  double corrupt_fraction = 0.0;
  /// Probability of an arriving TTL <= 1 (parser must drop).
  double expiring_ttl_fraction = 0.0;
  /// IMIX-ish payload sizes (bytes, <= kMaxPayloadBytes each) and their
  /// weights.
  std::vector<std::uint16_t> payload_sizes = {20, 556, 1480};
  std::vector<double> payload_weights = {7.0, 4.0, 1.0};
};

class FrameGenerator {
 public:
  /// `tables[v]` sources VN v's destination addresses (all lookups hit).
  FrameGenerator(FrameGenConfig config,
                 std::vector<const net::RoutingTable*> tables);

  [[nodiscard]] std::vector<IngressFrame> generate(std::uint64_t seed) const;

  /// Derives an independent frame-stream seed from a scenario seed and a
  /// stream salt (e.g. a run index) via SplitMix64 — the library's seeding
  /// discipline. Replaces ad-hoc `scenario.seed + k` arithmetic, whose
  /// nearby seeds produce correlated xoshiro streams.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t scenario_seed,
                                                 std::uint64_t salt) noexcept;

  [[nodiscard]] const FrameGenConfig& config() const noexcept {
    return config_;
  }

 private:
  FrameGenConfig config_;
  net::TrafficGenerator traffic_;
};

}  // namespace vr::dataplane
