// Shared helpers of the lookup-throughput benches (perf_lookup and the
// lookup section of perf_sweep): deterministic key generation, wall-clock
// Mlookups/s measurement of any batched lookup callable (single- and
// multi-threaded) and a publisher-churn driver reporting publish-latency
// percentiles. Header-only so both binaries measure the exact same way.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "netbase/route_update.hpp"
#include "netbase/traffic.hpp"
#include "netbase/update_gen.hpp"
#include "trie/snapshot_publisher.hpp"

namespace vr::bench {

/// Uniform random lookup keys; the same (count, seed) is the same stream.
inline std::vector<net::Ipv4> random_addresses(std::size_t count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::Ipv4> addrs;
  addrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  return addrs;
}

/// Folds a result vector into a checksum so the compiler cannot discard
/// the lookup work being timed.
inline std::uint64_t fold_hops(const std::vector<net::NextHop>& hops) {
  std::uint64_t sink = 0;
  for (const net::NextHop hop : hops) sink += hop;
  return sink;
}

/// Million lookups per second of `run_batch` (a callable resolving every
/// key of `addrs` once, returning the next-hop vector), best of `reps`
/// runs. `sink` accumulates the fold of every result (defeats DCE).
template <typename RunBatch>
double batch_mlps(const std::vector<net::Ipv4>& addrs, RunBatch&& run_batch,
                  unsigned reps, std::uint64_t* sink) {
  using Clock = std::chrono::steady_clock;
  double best_ms = 0.0;
  for (unsigned rep = 0; rep < reps; ++rep) {
    const Clock::time_point start = Clock::now();
    const std::vector<net::NextHop> hops = run_batch();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    *sink += fold_hops(hops);
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  if (best_ms <= 0.0) return 0.0;
  return static_cast<double>(addrs.size()) / 1e3 / best_ms;
}

struct ThreadedMlps {
  std::size_t threads = 1;
  double total_mlps = 0.0;       ///< aggregate across the pool
  double per_thread_mlps = 0.0;  ///< total / threads
};

/// Aggregate Mlookups/s of `threads` concurrent readers, each resolving
/// `addrs` `reps` times against the same read-only structure via
/// `run_batch` (must be callable concurrently). One wall clock spans the
/// whole pool, so on an oversubscribed host total_mlps stays honest
/// (timesharing shows up as lower per-thread throughput).
template <typename RunBatch>
ThreadedMlps threaded_mlps(const std::vector<net::Ipv4>& addrs,
                           const RunBatch& run_batch, std::size_t threads,
                           unsigned reps, std::uint64_t* sink) {
  using Clock = std::chrono::steady_clock;
  ThreadedMlps out;
  out.threads = threads == 0 ? 1 : threads;
  std::vector<std::uint64_t> sinks(out.threads, 0);
  const auto worker = [&](std::size_t t) {
    for (unsigned rep = 0; rep < reps; ++rep) {
      sinks[t] += fold_hops(run_batch());
    }
  };
  const Clock::time_point start = Clock::now();
  if (out.threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(out.threads);
    for (std::size_t t = 0; t < out.threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& thread : pool) thread.join();
  }
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  for (const std::uint64_t s : sinks) *sink += s;
  const double lookups = static_cast<double>(addrs.size()) *
                         static_cast<double>(reps) *
                         static_cast<double>(out.threads);
  out.total_mlps = ms <= 0.0 ? 0.0 : lookups / 1e3 / ms;
  out.per_thread_mlps = out.total_mlps / static_cast<double>(out.threads);
  return out;
}

struct ChurnResult {
  std::size_t batches = 0;
  std::size_t updates_per_batch = 0;
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;
  double apply_share = 0.0;  ///< fraction of publish time spent updating
  std::uint64_t final_version = 0;
};

/// Drives `batches` churn batches of `updates_per_batch` updates through
/// the publisher and reports publish-latency percentiles (end-to-end:
/// control-plane apply + image rebuild + pointer swap) in microseconds.
inline ChurnResult publisher_churn(trie::SnapshotPublisher& publisher,
                                   const net::RoutingTable& base,
                                   std::size_t batches,
                                   std::size_t updates_per_batch,
                                   std::uint64_t seed) {
  ChurnResult out;
  out.batches = batches;
  out.updates_per_batch = updates_per_batch;
  net::UpdateStreamConfig config;
  config.update_count = batches * updates_per_batch;
  const std::vector<net::RouteUpdate> stream =
      net::UpdateStreamGenerator(config).generate(base, seed);
  std::vector<double> publish_us;
  publish_us.reserve(batches);
  double total_ns = 0.0;
  double apply_ns = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::span<const net::RouteUpdate> batch(
        stream.data() + b * updates_per_batch, updates_per_batch);
    const trie::SnapshotPublisher::PublishReceipt receipt =
        publisher.apply_batch(batch);
    const double ns = receipt.apply_ns.value() + receipt.build_ns.value() +
                      receipt.publish_ns.value();
    publish_us.push_back(ns / 1e3);
    total_ns += ns;
    apply_ns += receipt.apply_ns.value();
  }
  const Percentiles percentiles(publish_us);
  out.publish_p50_us = percentiles.at(0.50);
  out.publish_p99_us = percentiles.at(0.99);
  out.apply_share = total_ns <= 0.0 ? 0.0 : apply_ns / total_ns;
  out.final_version = publisher.published_version();
  return out;
}

}  // namespace vr::bench
