file(REMOVE_RECURSE
  "CMakeFiles/ablation_peak_multiplexing.dir/ablation_peak_multiplexing.cpp.o"
  "CMakeFiles/ablation_peak_multiplexing.dir/ablation_peak_multiplexing.cpp.o.d"
  "ablation_peak_multiplexing"
  "ablation_peak_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_peak_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
