// Fixture: determinism check. Expected: five findings — srand,
// random_device, time(nullptr), system_clock::now, and one range-for
// over an unordered_map. The second range-for is escaped.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace vr::dataplane {

std::unordered_map<int, int> fixture_counts;

void fixture_entropy() {
  std::srand(42);                                // FINDING: srand
  std::random_device rd;                         // FINDING: random_device
  long stamp = std::time(nullptr);               // FINDING: time as entropy
  auto wall = std::chrono::system_clock::now();  // FINDING: wall clock
  (void)rd;
  (void)stamp;
  (void)wall;
}

int fixture_iterate() {
  int total = 0;
  for (const auto& [key, value] : fixture_counts) {  // FINDING: hash order
    total += value;
  }
  // det-ok: the sum is order-insensitive
  for (const auto& [key, value] : fixture_counts) {
    total += value;
  }
  return total;
}

}  // namespace vr::dataplane
