#include "obs/sink.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace vr::obs {

namespace {

/// Shortest decimal form that round-trips exactly through strtod.
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Prefer the shortest of %.15g / %.16g / %.17g that still round-trips:
  // most metric values come out clean ("1.5", "42") instead of 17-digit
  // noise, without ever losing a bit.
  for (const int precision : {15, 16}) {
    char candidate[40];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) return candidate;
  }
  return buffer;
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

void MetricsSink::write_json(std::ostream& os, int indent) const {
  const std::string base(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                         ' ');
  const auto pad = [&](int level) {
    return base + std::string(static_cast<std::size_t>(2 * level), ' ');
  };
  const std::vector<Registry::Snapshot> metrics = registry_->snapshot();
  os << "{\n" << pad(1) << "\"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Registry::Snapshot& m = metrics[i];
    os << (i == 0 ? "\n" : ",\n") << pad(2) << "{\n";
    os << pad(3) << "\"name\": \"" << escape_json(m.name) << "\",\n";
    if (!m.labels.empty()) {
      os << pad(3) << "\"labels\": {";
      for (std::size_t l = 0; l < m.labels.size(); ++l) {
        os << (l == 0 ? "" : ", ") << '"' << escape_json(m.labels[l].first)
           << "\": \"" << escape_json(m.labels[l].second) << '"';
      }
      os << "},\n";
    }
    os << pad(3) << "\"type\": \"" << kind_name(m.kind) << "\",\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << pad(3) << "\"value\": " << m.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << pad(3) << "\"value\": " << m.gauge << '\n';
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        os << pad(3) << "\"count\": " << h.count() << ",\n";
        os << pad(3) << "\"sum\": " << format_double(h.stats.sum()) << ",\n";
        os << pad(3) << "\"min\": "
           << format_double(h.count() == 0 ? 0.0 : h.stats.min()) << ",\n";
        os << pad(3) << "\"max\": "
           << format_double(h.count() == 0 ? 0.0 : h.stats.max()) << ",\n";
        os << pad(3) << "\"mean\": " << format_double(h.stats.mean())
           << ",\n";
        os << pad(3) << "\"stddev\": " << format_double(h.stats.stddev())
           << ",\n";
        os << pad(3) << "\"p50\": " << format_double(h.quantile(0.50))
           << ",\n";
        os << pad(3) << "\"p90\": " << format_double(h.quantile(0.90))
           << ",\n";
        os << pad(3) << "\"p99\": " << format_double(h.quantile(0.99))
           << '\n';
        break;
      }
    }
    os << pad(2) << '}';
  }
  if (!metrics.empty()) os << '\n' << pad(1);
  os << "]\n" << base << '}';
}

std::string MetricsSink::json(int indent) const {
  std::ostringstream os;
  write_json(os, indent);
  return os.str();
}

bool MetricsSink::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out << '\n';
  return static_cast<bool>(out);
}

TextTable MetricsSink::table() const {
  TextTable table("metrics");
  table.set_header({"metric", "labels", "type", "count/value", "mean",
                    "p50", "p99", "max"});
  for (const Registry::Snapshot& m : registry_->snapshot()) {
    switch (m.kind) {
      case MetricKind::kCounter:
        table.add_row({m.name, render_labels(m.labels), "counter",
                       std::to_string(m.counter), "-", "-", "-", "-"});
        break;
      case MetricKind::kGauge:
        table.add_row({m.name, render_labels(m.labels), "gauge",
                       std::to_string(m.gauge), "-", "-", "-", "-"});
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        table.add_row(
            {m.name, render_labels(m.labels), "histogram",
             std::to_string(h.count()), TextTable::num(h.stats.mean(), 3),
             TextTable::num(h.quantile(0.50), 3),
             TextTable::num(h.quantile(0.99), 3),
             TextTable::num(h.count() == 0 ? 0.0 : h.stats.max(), 3)});
        break;
      }
    }
  }
  return table;
}

}  // namespace vr::obs
