#!/usr/bin/env bash
# Byte-for-byte golden regression check for one figure/table binary.
#
#   tools/golden_check.sh <binary> <golden-file>
#
# Runs <binary> with no arguments and diffs its full stdout against the
# checked-in golden. Any difference — a reordered row, a reformatted
# number, a changed last decimal — fails. Regenerate a golden ONLY for an
# intentional model change, by re-running the binary and committing the
# new file together with the change that explains it:
#
#   build/bench/fig5_total_power > tests/golden/fig5_total_power.txt
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <binary> <golden-file>" >&2
  exit 2
fi

binary=$1
golden=$2

if [[ ! -x "$binary" ]]; then
  echo "golden_check: binary not found or not executable: $binary" >&2
  exit 2
fi
if [[ ! -f "$golden" ]]; then
  echo "golden_check: golden file missing: $golden" >&2
  exit 2
fi

actual=$(mktemp)
trap 'rm -f "$actual"' EXIT

"$binary" > "$actual"

if ! diff -u "$golden" "$actual"; then
  echo "golden_check: $(basename "$binary") output diverged from" \
       "$golden" >&2
  exit 1
fi
echo "golden_check: $(basename "$binary") matches $(basename "$golden")"
