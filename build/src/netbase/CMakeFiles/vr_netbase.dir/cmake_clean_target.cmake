file(REMOVE_RECURSE
  "libvr_netbase.a"
)
