file(REMOVE_RECURSE
  "CMakeFiles/qos_transparency.dir/qos_transparency.cpp.o"
  "CMakeFiles/qos_transparency.dir/qos_transparency.cpp.o.d"
  "qos_transparency"
  "qos_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
