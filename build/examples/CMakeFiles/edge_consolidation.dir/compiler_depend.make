# Empty compiler generated dependencies file for edge_consolidation.
# This may be replaced when dependencies are built.
