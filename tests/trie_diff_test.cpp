#include <gtest/gtest.h>

#include "netbase/table_gen.hpp"
#include "trie/trie_diff.hpp"

namespace vr::trie {
namespace {

using net::Prefix;
using net::RoutingTable;

TEST(TrieDiffTest, IdenticalTriesAreUnchanged) {
  net::TableProfile profile;
  profile.prefix_count = 300;
  const net::SyntheticTableGenerator gen(profile);
  const RoutingTable table = gen.generate(1);
  const UnibitTrie a(table);
  const UnibitTrie b(table);
  const TrieDiff diff = diff_tries(a, b);
  EXPECT_EQ(diff.words_written(), 0u);
  EXPECT_EQ(diff.nodes_unchanged, a.node_count());
}

TEST(TrieDiffTest, NextHopChangeIsOneWord) {
  RoutingTable before;
  before.add(*Prefix::parse("10.0.0.0/8"), 1);
  RoutingTable after = before;
  after.add(*Prefix::parse("10.0.0.0/8"), 2);
  const TrieDiff diff =
      diff_tries(UnibitTrie(before), UnibitTrie(after));
  EXPECT_EQ(diff.nodes_changed, 1u);
  EXPECT_EQ(diff.nodes_added, 0u);
  EXPECT_EQ(diff.nodes_removed, 0u);
}

TEST(TrieDiffTest, AddedBranchCountsItsSubtree) {
  RoutingTable before;
  before.add(*Prefix::parse("10.0.0.0/8"), 1);
  RoutingTable after = before;
  after.add(*Prefix::parse("192.0.0.0/8"), 2);
  const TrieDiff diff =
      diff_tries(UnibitTrie(before), UnibitTrie(after));
  EXPECT_EQ(diff.nodes_added, 8u);   // the new /8 path
  EXPECT_EQ(diff.nodes_changed, 1u);  // root gains a child pointer
  EXPECT_EQ(diff.nodes_removed, 0u);
}

TEST(TrieDiffTest, RemovalIsSymmetricToAddition) {
  RoutingTable small;
  small.add(*Prefix::parse("10.0.0.0/8"), 1);
  RoutingTable big = small;
  big.add(*Prefix::parse("192.0.0.0/8"), 2);
  const UnibitTrie small_trie(small);
  const UnibitTrie big_trie(big);
  const TrieDiff grow = diff_tries(small_trie, big_trie);
  const TrieDiff shrink = diff_tries(big_trie, small_trie);
  EXPECT_EQ(grow.nodes_added, shrink.nodes_removed);
  EXPECT_EQ(grow.nodes_removed, shrink.nodes_added);
  EXPECT_EQ(grow.nodes_changed, shrink.nodes_changed);
}

TEST(TrieDiffTest, LeafPushedAnnounceAmplifies) {
  // Announce a /2 over an existing deep structure: in the raw trie this
  // writes one new path; in the leaf-pushed tries, the /2's hop is pushed
  // into every uncovered leaf below it.
  RoutingTable before;
  before.add(*Prefix::parse("0.0.0.0/1"), 1);
  before.add(*Prefix::parse("0.0.0.0/8"), 2);
  RoutingTable after = before;
  after.add(*Prefix::parse("0.0.0.0/2"), 3);
  const TrieDiff raw = diff_tries(UnibitTrie(before), UnibitTrie(after));
  const TrieDiff pushed = diff_tries(UnibitTrie(before).leaf_pushed(),
                                     UnibitTrie(after).leaf_pushed());
  EXPECT_GT(pushed.words_written(), raw.words_written());
}

}  // namespace
}  // namespace vr::trie
