// Plain-text table and CSV rendering for the benchmark harnesses.
//
// Every figure/table bench prints (a) a human-readable aligned table and
// (b) machine-readable CSV, so EXPERIMENTS.md entries can be regenerated
// with a single binary run.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace vr {

/// Column-aligned text table with an optional title. Cells are strings;
/// numeric helpers format doubles with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; its width must match the header (if any) or the first
  /// row added.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a row of doubles with `precision` digits after the
  /// decimal point, prefixed by a string label cell.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept;

  /// Renders the aligned table.
  void render(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted, quotes doubled). Includes the header if set.
  void render_csv(std::ostream& os) const;

  /// Formats a double with fixed precision (helper for manual row building).
  static std::string num(double value, int precision = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a labelled series block (x column plus one column per series) —
/// the common shape of every figure in the paper.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> series_labels);

  /// Appends one x position with one value per series.
  void add_point(double x, const std::vector<double>& ys);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return xs_.size();
  }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  /// Values of series `s` across all points.
  [[nodiscard]] std::vector<double> series(std::size_t s) const;
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept {
    return series_labels_;
  }

  void render(std::ostream& os, int precision = 3) const;
  void render_csv(std::ostream& os, int precision = 6) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_labels_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> points_;
};

}  // namespace vr
