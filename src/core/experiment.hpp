// ExperimentRunner — drives the place-and-route power simulator over a
// Scenario, producing the "experimental" numbers the paper validates its
// model against (post-PnR XPower analysis, Sec. VI-A).
#pragma once

#include "core/scenario.hpp"
#include "core/workload.hpp"
#include "fpga/pnr_sim.hpp"
#include "power/analytical_model.hpp"

namespace vr::core {

/// Result of a simulated post-PnR power analysis.
struct ExperimentResult {
  power::PowerBreakdown power;   ///< memory_w carries the BRAM component
  units::Megahertz freq_mhz;
  units::Gbps throughput_gbps;
  units::MwPerGbps mw_per_gbps;
  fpga::PnrReport device_report;  ///< report of the (most loaded) device
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(fpga::DeviceSpec device,
                            fpga::PnrEffects effects = {},
                            fpga::FreqModelParams freq_params = {});

  /// Realizes the workload and runs the experiment.
  [[nodiscard]] ExperimentResult run(const Scenario& scenario) const;

  /// Runs against an already-realized workload.
  [[nodiscard]] ExperimentResult run(const Scenario& scenario,
                                     const Workload& workload) const;

  [[nodiscard]] const fpga::PnrSimulator& simulator() const noexcept {
    return sim_;
  }

 private:
  /// Builds the PnR design(s) of the deployment's devices. NV yields K
  /// identical single-pipeline devices; VS one K-pipeline device; VM one
  /// single-pipeline device.
  [[nodiscard]] fpga::PnrDesign device_design(const Scenario& scenario,
                                              const Workload& workload,
                                              std::size_t device_index) const;

  fpga::PnrSimulator sim_;
  fpga::FreqModelParams freq_params_;
};

}  // namespace vr::core
