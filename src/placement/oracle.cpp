#include "placement/oracle.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::placement {

CostOracle::CostOracle(fpga::DeviceSpec device, Config config)
    : config_(std::move(config)), estimator_(std::move(device)) {
  VR_REQUIRE(!config_.bucket_prefix_counts.empty(),
             "cost oracle needs at least one table-size bucket");
  VR_REQUIRE(std::is_sorted(config_.bucket_prefix_counts.begin(),
                            config_.bucket_prefix_counts.end()) &&
                 config_.bucket_prefix_counts.front() >= 1,
             "bucket prefix counts must be positive and ascending");
  VR_REQUIRE(config_.max_vns_per_device >= 1,
             "co-location cap must be at least 1");
}

std::uint32_t CostOracle::bucket_for(std::size_t prefix_count) const {
  const auto& buckets = config_.bucket_prefix_counts;
  const auto it =
      std::lower_bound(buckets.begin(), buckets.end(), prefix_count);
  if (it == buckets.end()) {
    return static_cast<std::uint32_t>(buckets.size() - 1);
  }
  return static_cast<std::uint32_t>(it - buckets.begin());
}

core::Scenario CostOracle::scenario_for(const DeviceShape& shape) const {
  core::Scenario scenario;
  scenario.scheme = scheme_for(shape.mode);
  scenario.vn_count = shape.vn_count;
  scenario.grade = config_.grade;
  scenario.bram_policy = config_.bram_policy;
  scenario.stages = config_.stages;
  scenario.alpha = config_.alpha;
  scenario.seed = config_.table_seed;
  scenario.table_profile.prefix_count =
      config_.bucket_prefix_counts[shape.max_bucket];
  // Hosted VNs are priced at the device's largest bucket (Assumption 2 —
  // all VNs equal — applied per device as a conservative envelope), with
  // the aggregate load split uniformly. The scheme estimators only read
  // Σµ, so the split is exact for power.
  scenario.utilization.assign(
      shape.vn_count,
      shape.mu_total() / static_cast<double>(shape.vn_count));
  return scenario;
}

const core::Estimate& CostOracle::estimate(const DeviceShape& shape) {
  VR_REQUIRE(!shape.idle(), "cannot estimate an idle device shape");
  VR_REQUIRE(shape.max_bucket < config_.bucket_prefix_counts.size(),
             "device shape references an unknown table bucket");
  // The estimate does not depend on the SLA floor; normalizing it here
  // collapses all floors of one physical shape onto a single memo entry.
  DeviceShape key = shape;
  key.sla_floor = SlaClass::kBronze;
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  const core::Scenario scenario = scenario_for(key);
  const std::shared_ptr<const core::Workload> workload =
      cache_.realize(scenario);
  core::Estimate estimate = estimator_.estimate(scenario, *workload);
  return memo_.emplace(key, std::move(estimate)).first->second;
}

double CostOracle::watts(const DeviceShape& shape) {
  return estimate(shape).power.total_w().value();
}

bool CostOracle::feasible(const DeviceShape& shape) {
  if (shape.idle()) return false;
  if (shape.vn_count > config_.max_vns_per_device) return false;
  if (shape.mode == DeviceMode::kDedicated && shape.vn_count != 1) {
    return false;
  }
  // A time-shared engine serves the aggregate stream: past Σµ = 1 it is
  // oversubscribed no matter what the power model says.
  if (shape.mode == DeviceMode::kTimeShared &&
      shape.mu_total_q > kMuQuantum) {
    return false;
  }
  // Gold tenants own their lookup engine — the time-shared merged trie
  // cannot isolate them.
  if (shape.sla_floor == SlaClass::kGold &&
      shape.mode == DeviceMode::kTimeShared) {
    return false;
  }
  const core::Estimate& est = estimate(shape);
  if (!est.fit.fits) return false;
  const double freq_mhz = est.freq_mhz.value();
  if (shape.sla_floor == SlaClass::kGold &&
      freq_mhz < config_.sla.gold_min_freq_mhz) {
    return false;
  }
  if (shape.sla_floor >= SlaClass::kSilver &&
      freq_mhz < config_.sla.silver_min_freq_mhz) {
    return false;
  }
  return true;
}

double CostOracle::congestion(const DeviceShape& shape) {
  if (shape.idle()) return 0.0;
  const core::Estimate& est = estimate(shape);
  const double device_halves =
      static_cast<double>(fpga::device_bram_halves(device()));
  const double bram_frac =
      static_cast<double>(est.resources.bram_per_device.total.halves()) /
      device_halves;
  const double slot_frac = static_cast<double>(shape.vn_count) /
                           static_cast<double>(config_.max_vns_per_device);
  double load = std::max(bram_frac, slot_frac);
  if (shape.mode == DeviceMode::kTimeShared) {
    load = std::max(load, shape.mu_total());
  }
  return std::min(load, 1.0);
}

}  // namespace vr::placement
