# Empty compiler generated dependencies file for vr_virt.
# This may be replaced when dependencies are built.
