// Error handling primitives for the vrpower library.
//
// The library follows the C++ Core Guidelines: errors that a caller can
// reasonably be expected to handle are reported with exceptions derived from
// vr::Error; programming errors (violated preconditions) abort via
// VR_REQUIRE in all build types so model code can never silently produce
// garbage power numbers.
#pragma once

#include <stdexcept>
#include <string>

namespace vr {

/// Base class of all exceptions thrown by the vrpower library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied input (a routing-table file, a scenario
/// description, ...) is malformed.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Thrown when a parse of external text input fails.
class ParseError : public InvalidArgumentError {
 public:
  ParseError(const std::string& what, std::size_t line)
      : InvalidArgumentError("parse error at line " + std::to_string(line) +
                             ": " + what),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Thrown when a requested configuration does not fit the modelled device
/// (BRAM exhausted, I/O pins exceeded, ...).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void require_failed(const char* condition, const char* file,
                                 int line, const std::string& message);
}  // namespace detail

}  // namespace vr

/// Precondition check that is active in every build type. On failure prints
/// the condition and message to stderr and aborts.
#define VR_REQUIRE(cond, message)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::vr::detail::require_failed(#cond, __FILE__, __LINE__, (message)); \
    }                                                                     \
  } while (false)
