file(REMOVE_RECURSE
  "CMakeFiles/vr_multipipe.dir/multipipe_power.cpp.o"
  "CMakeFiles/vr_multipipe.dir/multipipe_power.cpp.o.d"
  "CMakeFiles/vr_multipipe.dir/partition.cpp.o"
  "CMakeFiles/vr_multipipe.dir/partition.cpp.o.d"
  "libvr_multipipe.a"
  "libvr_multipipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_multipipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
