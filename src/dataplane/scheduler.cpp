#include "dataplane/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::dataplane {

DrrScheduler::DrrScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  VR_REQUIRE(config_.port_count >= 1, "need at least one port");
  VR_REQUIRE(config_.vn_count >= 1, "need at least one VN");
  VR_REQUIRE(config_.queue_capacity >= 1, "queues need capacity");
  VR_REQUIRE(config_.bytes_per_cycle > 0.0, "link rate must be positive");
  if (!config_.vn_weights.empty()) {
    VR_REQUIRE(config_.vn_weights.size() == config_.vn_count,
               "vn_weights size must equal vn_count");
    for (const double w : config_.vn_weights) {
      VR_REQUIRE(w > 0.0, "DRR weights must be positive");
    }
  }
  ports_.resize(config_.port_count);
  for (PortState& port : ports_) {
    port.queues.resize(config_.vn_count);
    port.deficit.assign(config_.vn_count, 0.0);
  }
  stats_.bytes_per_vn.assign(config_.vn_count, 0);
  stats_.tail_drops_per_vn.assign(config_.vn_count, 0);
  stats_.arbiter_grants_per_vn.assign(config_.vn_count, 0);
  stats_.arbiter_comparisons_per_vn.assign(config_.vn_count, 0);
}

double DrrScheduler::quantum_for(net::VnId vn) const {
  const double weight =
      config_.vn_weights.empty() ? 1.0 : config_.vn_weights[vn];
  return static_cast<double>(config_.base_quantum_bytes) * weight;
}

bool DrrScheduler::enqueue(const ForwardedPacket& packet,
                           std::uint64_t cycle) {
  VR_REQUIRE(packet.vnid < config_.vn_count, "VNID out of range");
  // An out-of-range port is a wiring bug (the lookup tables name more next
  // hops than the scheduler has ports). Silently folding it with
  // `% port_count` used to credit the traffic — and its DRR share — to an
  // unrelated port, which no per-port statistic could ever surface.
  VR_REQUIRE(packet.port < config_.port_count, "egress port out of range");
  auto& queue = ports_[packet.port].queues[packet.vnid];
  if (queue.size() >= config_.queue_capacity) {
    ++stats_.tail_drops;
    ++stats_.tail_drops_per_vn[packet.vnid];
    ++stats_.rejected;
    return false;
  }
  queue.push_back(QueuedPacket{
      // narrow-ok: total_bytes = 20-byte header + uint16 payload < 2^17
      cycle, packet.vnid, static_cast<std::uint32_t>(packet.total_bytes())});
  ++stats_.enqueued;
  queue_depth_hist_.observe(static_cast<double>(queue.size()));
  return true;
}

void DrrScheduler::tick(std::uint64_t cycle, std::vector<EgressRecord>* out) {
  VR_REQUIRE(out != nullptr, "tick needs an output sink");
  for (std::size_t port_index = 0; port_index < ports_.size(); ++port_index) {
    PortState& port = ports_[port_index];
    port.byte_credit += config_.bytes_per_cycle;

    // DRR: the cursor parks on one queue per service round; the round
    // (quantum) may span many cycles when the link is slower than a
    // packet, which is what makes DRR byte-fair rather than packet-fair.
    std::size_t visited = 0;
    while (port.byte_credit >= 1.0 && visited < config_.vn_count) {
      const std::size_t vn = port.round_robin_cursor;
      auto& queue = port.queues[vn];
      // Each cursor stop examines one queue — comparator work the grant
      // count alone undercounts (empty skips and resumed rounds decide
      // without granting).
      ++stats_.arbiter_comparisons_per_vn[vn];
      if (queue.empty()) {
        port.deficit[vn] = 0.0;  // idle queues accumulate nothing
        port.quantum_added = false;
        port.round_robin_cursor =
            (port.round_robin_cursor + 1) % config_.vn_count;
        ++visited;
        continue;
      }
      if (!port.quantum_added) {
        port.deficit[vn] += quantum_for(static_cast<net::VnId>(vn));
        port.quantum_added = true;
        ++stats_.arbiter_grants_per_vn[vn];
      }
      while (!queue.empty() &&
             port.deficit[vn] >= static_cast<double>(queue.front().bytes) &&
             port.byte_credit >= static_cast<double>(queue.front().bytes)) {
        const QueuedPacket packet = queue.front();
        queue.pop_front();
        port.deficit[vn] -= packet.bytes;
        port.byte_credit -= packet.bytes;
        ++stats_.transmitted;
        stats_.bytes_per_vn[packet.vnid] += packet.bytes;
        egress_wait_hist_.observe(
            static_cast<double>(cycle - packet.enqueue_cycle));
        out->push_back(EgressRecord{
            cycle, packet.vnid, static_cast<net::NextHop>(port_index),
            packet.bytes, cycle - packet.enqueue_cycle});
      }
      if (queue.empty() ||
          port.deficit[vn] < static_cast<double>(queue.front().bytes)) {
        // This queue's round is over: move on.
        if (queue.empty()) port.deficit[vn] = 0.0;
        port.quantum_added = false;
        port.round_robin_cursor =
            (port.round_robin_cursor + 1) % config_.vn_count;
        ++visited;
      } else {
        // Link credit exhausted mid-round: resume the SAME queue next
        // cycle so large packets accumulate the credit they need.
        break;
      }
    }
    // Cap the idle credit so a long-idle port cannot burst unboundedly —
    // but never below one MTU, or a large packet could starve forever on
    // a slow link.
    constexpr double kMtuBytes = 1600.0;
    port.byte_credit = std::min(
        port.byte_credit,
        std::max(kMtuBytes, 4.0 * config_.bytes_per_cycle));
  }
}

bool DrrScheduler::empty() const {
  for (const PortState& port : ports_) {
    for (const auto& queue : port.queues) {
      if (!queue.empty()) return false;
    }
  }
  return true;
}

std::size_t DrrScheduler::queue_depth(std::size_t port, net::VnId vn) const {
  VR_REQUIRE(port < ports_.size(), "port out of range");
  VR_REQUIRE(vn < config_.vn_count, "VN out of range");
  return ports_[port].queues[vn].size();
}

}  // namespace vr::dataplane
