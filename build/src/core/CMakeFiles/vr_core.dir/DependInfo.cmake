
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/vr_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/vr_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/figures.cpp" "src/core/CMakeFiles/vr_core.dir/figures.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/figures.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/vr_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/vr_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/validator.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/vr_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/vr_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/vr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vr_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/vr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/vr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
