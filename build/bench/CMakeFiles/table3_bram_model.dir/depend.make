# Empty dependencies file for table3_bram_model.
# This may be replaced when dependencies are built.
