
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/memory_layout.cpp" "src/trie/CMakeFiles/vr_trie.dir/memory_layout.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/memory_layout.cpp.o.d"
  "/root/repo/src/trie/multibit_trie.cpp" "src/trie/CMakeFiles/vr_trie.dir/multibit_trie.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/multibit_trie.cpp.o.d"
  "/root/repo/src/trie/stage_mapping.cpp" "src/trie/CMakeFiles/vr_trie.dir/stage_mapping.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/stage_mapping.cpp.o.d"
  "/root/repo/src/trie/trie_diff.cpp" "src/trie/CMakeFiles/vr_trie.dir/trie_diff.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/trie_diff.cpp.o.d"
  "/root/repo/src/trie/trie_stats.cpp" "src/trie/CMakeFiles/vr_trie.dir/trie_stats.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/trie_stats.cpp.o.d"
  "/root/repo/src/trie/unibit_trie.cpp" "src/trie/CMakeFiles/vr_trie.dir/unibit_trie.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/unibit_trie.cpp.o.d"
  "/root/repo/src/trie/updatable_trie.cpp" "src/trie/CMakeFiles/vr_trie.dir/updatable_trie.cpp.o" "gcc" "src/trie/CMakeFiles/vr_trie.dir/updatable_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
