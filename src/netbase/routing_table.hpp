// Routing-table container: a deduplicated set of routes with linear-scan
// longest-prefix-match used as the reference ("ground truth") oracle that
// the trie and the pipeline simulator are verified against.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"

namespace vr::net {

/// An immutable-after-build set of routes. Insertion keeps the table sorted
/// by (address, length); inserting an existing prefix replaces its next hop
/// (last write wins), matching router RIB semantics.
class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(std::vector<Route> routes);

  /// Adds a route; replaces the next hop if the prefix already exists.
  void add(const Route& route);
  void add(const Prefix& prefix, NextHop next_hop) {
    add(Route{prefix, next_hop});
  }

  /// Removes a prefix; returns false if it was not present.
  bool remove(const Prefix& prefix);

  [[nodiscard]] std::size_t size() const noexcept { return routes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return routes_.empty(); }
  [[nodiscard]] std::span<const Route> routes() const noexcept {
    return routes_;
  }

  /// True if the exact prefix is present.
  [[nodiscard]] bool contains(const Prefix& prefix) const noexcept;

  /// Reference longest-prefix match by linear scan; nullopt if no route
  /// covers the address. O(n) — this is the correctness oracle, not the
  /// lookup path.
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4 addr) const noexcept;

  /// Longest prefix length present (0 if empty).
  [[nodiscard]] unsigned max_prefix_length() const noexcept;

  /// Histogram of route count by prefix length (index 0..32).
  [[nodiscard]] std::vector<std::size_t> length_histogram() const;

  /// Parses the "a.b.c.d/len next_hop" line format. Blank lines and lines
  /// starting with '#' are ignored. Throws vr::ParseError with a line
  /// number on malformed input.
  static RoutingTable parse(std::istream& in);
  static RoutingTable parse_text(const std::string& text);

  /// Serializes in the same line format (sorted order).
  void serialize(std::ostream& out) const;

  friend bool operator==(const RoutingTable&, const RoutingTable&) = default;

 private:
  std::vector<Route> routes_;  // sorted by (address, length), unique prefixes
};

}  // namespace vr::net
