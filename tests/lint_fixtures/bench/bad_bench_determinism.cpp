// Fixture: bench/ is scanned too. Expected: one determinism finding.
#include <cstdlib>

int fixture_bench_seed() {
  return std::rand();  // FINDING: rand() in a bench harness
}
