// Process-wide metric registry: named, optionally labeled families of
// Counter/Gauge/Histogram. Components request a metric once (registration
// takes one mutex) and then update it lock-free (counters/gauges) or under
// the histogram's own short lock; references returned by the accessors stay
// valid for the registry's lifetime — reset() zeroes values, it never
// deallocates.
//
// Naming convention (DESIGN.md §11): lowercase dot-separated
// `<subsystem>.<metric>` with the unit spelled as the last name component
// when the value is dimensioned (`sweep.task_run_ns`,
// `dataplane.egress_wait_cycles`, `workload_cache.resident_bytes`).
// Dimensionless counts carry no suffix (`workload_cache.hits`). Label keys
// distinguish members of one family (`figures.build_ns{figure=fig5}`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace vr::obs {

/// Label set of one family member, e.g. {{"figure", "fig5"}}. Stored
/// sorted by key so label order never distinguishes metrics.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

class Registry {
 public:
  /// Finds or creates the metric. Re-requesting the same (name, labels)
  /// returns the same object; requesting it with a different kind aborts
  /// (one name, one meaning).
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});
  /// Histogram with explicit bucket upper bounds (see Histogram). The
  /// first registration shapes the cell; re-requesting the same name with
  /// different bounds aborts with the metric name — one name, one shape.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds, Labels labels = {});

  /// One registered metric, copied at a point in time.
  struct Snapshot {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    HistogramSnapshot histogram;
  };

  /// All metrics in deterministic order (sorted by name, then labels).
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

  /// Zeroes every metric's value. Registrations (and the references handed
  /// out) remain valid.
  void reset();

  /// Folds another registry's state into this one: counters and gauges
  /// sum, histograms merge (exact for count/sum/min/max and the bucketed
  /// quantiles, RunningStats-combined for the moments). Metrics absent
  /// here are created; kinds must agree where both registries know a
  /// (name, labels). Commutative and associative up to floating-point
  /// rounding of histogram moments, so sharded runs can merge in any
  /// order. Self-merge is rejected.
  void merge(const Registry& other);

  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry the instrumented subsystems publish into.
  [[nodiscard]] static Registry& global();

 private:
  struct Metric {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric& find_or_create(std::string_view name, Labels labels,
                         MetricKind kind);

  mutable std::mutex mu_;
  /// Keyed by name + rendered labels; unique_ptr keeps references stable
  /// across rehash/rebalance.
  std::map<std::string, std::unique_ptr<Metric>> metrics_;  // guarded_by(mu_)
};

}  // namespace vr::obs
