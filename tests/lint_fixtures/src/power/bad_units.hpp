// Fixture: units check, typed-header mode (src/power is a typed layer).
// Expected: one finding on idle_power; calib_power is escaped and alpha
// is dimensionless.
#pragma once

namespace vr::power {

struct FixtureModel {
  double idle_power;   // FINDING: dimensioned naked double in typed header
  double calib_power;  // units-ok: calibration scratch value for the fixture
  double alpha = 0.5;  // dimensionless: clean
};

}  // namespace vr::power
