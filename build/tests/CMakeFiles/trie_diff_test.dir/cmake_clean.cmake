file(REMOVE_RECURSE
  "CMakeFiles/trie_diff_test.dir/trie_diff_test.cpp.o"
  "CMakeFiles/trie_diff_test.dir/trie_diff_test.cpp.o.d"
  "trie_diff_test"
  "trie_diff_test.pdb"
  "trie_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
