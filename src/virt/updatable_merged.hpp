// Incrementally updatable K-way merged trie — the "on-the-fly incremental
// updates for virtualized routers" direction of the paper's reference [6].
//
// Unlike virt::MergedTrie (an immutable deployment image), this structure
// applies per-VN announce/withdraw updates in place, maintaining for every
// node the exact set of virtual networks whose own trie contains it (via
// per-VN subtree route counts). That keeps the structural
// merging-efficiency α measurable at any point of an update stream, and
// yields the per-update write cost that the update-rate power model
// consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/route_update.hpp"
#include "netbase/routing_table.hpp"
#include "netbase/traffic.hpp"
#include "trie/unibit_trie.hpp"
#include "trie/updatable_trie.hpp"

namespace vr::virt {

class UpdatableMergedTrie {
 public:
  /// Builds the merged trie of `tables` (one per VN). K in [1, 64].
  explicit UpdatableMergedTrie(
      std::span<const net::RoutingTable* const> tables);

  /// Applies one update on behalf of virtual network `vn`; returns the
  /// write cost (leaf-vector entry writes count one word each).
  trie::UpdateCost apply(net::VnId vn, const net::RouteUpdate& update);

  trie::UpdateCost announce(net::VnId vn, const net::Route& route) {
    return apply(vn, {net::RouteUpdate::Kind::kAnnounce, route});
  }
  trie::UpdateCost withdraw(net::VnId vn, const net::Prefix& prefix) {
    return apply(vn,
                 {net::RouteUpdate::Kind::kWithdraw, {prefix, net::kNoRoute}});
  }

  /// Longest-prefix match for `vn`.
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr,
                                                   net::VnId vn) const;

  [[nodiscard]] std::size_t vn_count() const noexcept { return vn_count_; }
  /// Live merged node count.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return live_nodes_;
  }
  /// Nodes present in virtual network `vn`'s own trie.
  [[nodiscard]] std::size_t present_count(net::VnId vn) const;
  /// Installed route count of `vn`.
  [[nodiscard]] std::size_t route_count(net::VnId vn) const {
    return route_counts_.at(vn);
  }

  /// Current effective merging efficiency (same definition as
  /// MergeStats::alpha_effective).
  [[nodiscard]] double alpha_effective() const;

  /// Exports VN `vn`'s current routes.
  [[nodiscard]] net::RoutingTable table_of(net::VnId vn) const;

 private:
  struct Node {
    trie::NodeIndex left = trie::kNullNode;
    trie::NodeIndex right = trie::kNullNode;
    std::uint64_t presence = 0;  ///< bit v: node is in VN v's trie

    [[nodiscard]] bool is_leaf() const noexcept {
      return left == trie::kNullNode && right == trie::kNullNode;
    }
  };

  [[nodiscard]] net::NextHop& hop_at(trie::NodeIndex node, net::VnId vn) {
    return next_hops_[static_cast<std::size_t>(node) * vn_count_ + vn];
  }
  [[nodiscard]] net::NextHop hop_at(trie::NodeIndex node,
                                    net::VnId vn) const {
    return next_hops_[static_cast<std::size_t>(node) * vn_count_ + vn];
  }
  [[nodiscard]] std::uint16_t& subtree_routes(trie::NodeIndex node,
                                              net::VnId vn) {
    return subtree_routes_[static_cast<std::size_t>(node) * vn_count_ + vn];
  }

  trie::NodeIndex allocate();
  void release(trie::NodeIndex index);

  trie::UpdateCost do_announce(net::VnId vn, const net::Route& route);
  trie::UpdateCost do_withdraw(net::VnId vn, const net::Prefix& prefix);

  std::size_t vn_count_;
  std::vector<Node> nodes_;
  std::vector<net::NextHop> next_hops_;       // node-major, K per node
  std::vector<std::uint16_t> subtree_routes_; // node-major, K per node
  std::vector<trie::NodeIndex> free_list_;
  std::vector<std::size_t> route_counts_;
  std::vector<std::size_t> present_counts_;
  std::size_t live_nodes_ = 0;
};

}  // namespace vr::virt
