// Ablation: memory technology — the paper assumes BRAM everywhere
// ("for simplicity", Sec. V-B) even though a trie pipeline's top stages
// hold only a handful of nodes and a BRAM block is the minimum allocation.
// This sweep maps each stage to the cheaper of BRAM / distributed (LUT)
// RAM and reports the per-engine memory-power saving the simplification
// costs.
#include "bench_common.hpp"
#include "fpga/distram.hpp"
#include "netbase/table_gen.hpp"
#include "trie/trie_stats.hpp"

int main() {
  using namespace vr;
  constexpr vr::units::Megahertz kFreqMhz{350.0};
  const fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;

  std::cout << "distRAM/BRAM crossover: "
            << fpga::distram_crossover_bits(grade) << " bits\n\n";

  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);
  const trie::UnibitTrie trie = trie::UnibitTrie(table).leaf_pushed();
  const trie::TrieStats stats = trie::compute_stats(trie);
  const trie::StageMapping mapping(stats.nodes_per_level.size(), 28,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, 1);

  TextTable out("Per-stage memory technology choice (grade -2, 350 MHz)");
  out.set_header(
      {"stage", "bits", "BRAM mW", "distRAM mW", "hybrid picks"});
  double bram_total = 0.0;
  double hybrid_total = 0.0;
  std::uint64_t dist_luts = 0;
  for (std::size_t s = 0; s < 28; ++s) {
    const std::uint64_t bits = memory.stage_bits(s);
    const double bram_w = fpga::allocate_bram(bits, fpga::BramPolicy::kMixed)
                              .power_w(grade, kFreqMhz)
                              .value();
    const double dist_w = fpga::distram_power_w(bits, kFreqMhz).value();
    const fpga::StageMemoryChoice choice =
        fpga::choose_stage_memory(bits, grade, kFreqMhz);
    bram_total += bram_w;
    hybrid_total += choice.power_w.value();
    dist_luts += choice.luts;
    if (bits > 0 && s % 3 == 0) {  // sample rows to keep the table short
      out.add_row({std::to_string(s), std::to_string(bits),
                   TextTable::num(bram_w * 1e3, 3),
                   TextTable::num(dist_w * 1e3, 3),
                   choice.tech == fpga::MemoryTech::kDistRam ? "distRAM"
                                                             : "BRAM"});
    }
  }
  vr::bench::emit(out);

  std::cout << "BRAM-only engine memory power: "
            << TextTable::num(bram_total * 1e3, 2) << " mW\n"
            << "Hybrid engine memory power:    "
            << TextTable::num(hybrid_total * 1e3, 2) << " mW ("
            << TextTable::num((1.0 - hybrid_total / bram_total) * 100.0, 1)
            << "% saved, spending " << dist_luts << " LUTs as RAM)\n"
            << "Finding: the block-granularity floor ('despite how small\n"
               "the amount of memory required, a BRAM block has to be\n"
               "assigned') makes the shallow stages pay a full 18 Kb block\n"
               "each, so hybrid mapping cuts ~40% of the ENGINE memory\n"
               "power. Because memory is only a few percent of total router\n"
               "power (leakage dominates), the paper's BRAM-only\n"
               "simplification shifts totals by under 2% -- benign for its\n"
               "conclusions, but worth exploiting in a real deployment.\n";
  return 0;
}
