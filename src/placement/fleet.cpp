#include "placement/fleet.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::placement {

Fleet::Fleet(std::size_t device_count) : devices_(device_count) {
  VR_REQUIRE(device_count >= 1, "a fleet needs at least one device");
  for (std::size_t i = 0; i < device_count; ++i) idle_.insert(idle_.end(), i);
}

const DeviceState& Fleet::device(std::size_t index) const {
  VR_REQUIRE(index < devices_.size(), "device index out of range");
  return devices_[index];
}

DeviceShape Fleet::compute_shape(const DeviceState& state) {
  DeviceShape shape;
  shape.mode = state.mode;
  for (const auto& [id, vn] : state.vns) {
    ++shape.vn_count;
    shape.max_bucket = std::max(shape.max_bucket, vn.bucket);
    shape.mu_total_q += vn.mu_q;
    shape.sla_floor = std::max(shape.sla_floor, vn.sla);
  }
  return shape;
}

DeviceShape Fleet::shape_of(std::size_t index) const {
  return compute_shape(device(index));
}

DeviceShape Fleet::shape_with(std::size_t index, const PlacedVn& vn,
                              DeviceMode mode_if_idle) const {
  const DeviceState& state = device(index);
  DeviceShape shape = compute_shape(state);
  if (!state.active()) shape.mode = mode_if_idle;
  ++shape.vn_count;
  shape.max_bucket = std::max(shape.max_bucket, vn.bucket);
  shape.mu_total_q += vn.mu_q;
  shape.sla_floor = std::max(shape.sla_floor, vn.sla);
  return shape;
}

void Fleet::place(std::size_t index, const PlacedVn& vn,
                  DeviceMode mode_if_idle) {
  VR_REQUIRE(index < devices_.size(), "device index out of range");
  VR_REQUIRE(locator_.find(vn.request_id) == locator_.end(),
             "request is already placed in the fleet");
  DeviceState& state = devices_[index];
  if (state.active()) {
    const auto group = groups_.find(compute_shape(state));
    VR_REQUIRE(group != groups_.end(), "fleet group index out of sync");
    group->second.erase(index);
    if (group->second.empty()) groups_.erase(group);
  } else {
    state.mode = mode_if_idle;
    idle_.erase(index);
  }
  state.vns.emplace(vn.request_id, vn);
  groups_[compute_shape(state)].insert(index);
  locator_.emplace(vn.request_id, index);
}

Fleet::Removed Fleet::remove(std::uint64_t request_id) {
  const auto loc = locator_.find(request_id);
  VR_REQUIRE(loc != locator_.end(), "request is not resident in the fleet");
  const std::size_t index = loc->second;
  DeviceState& state = devices_[index];
  const auto group = groups_.find(compute_shape(state));
  VR_REQUIRE(group != groups_.end(), "fleet group index out of sync");
  group->second.erase(index);
  if (group->second.empty()) groups_.erase(group);

  const auto it = state.vns.find(request_id);
  VR_REQUIRE(it != state.vns.end(), "fleet locator out of sync");
  Removed removed{index, it->second};
  state.vns.erase(it);
  locator_.erase(loc);
  if (state.active()) {
    groups_[compute_shape(state)].insert(index);
  } else {
    state.mode = DeviceMode::kDedicated;
    idle_.insert(index);
  }
  return removed;
}

std::size_t Fleet::device_of(std::uint64_t request_id) const {
  const auto loc = locator_.find(request_id);
  VR_REQUIRE(loc != locator_.end(), "request is not resident in the fleet");
  return loc->second;
}

std::vector<PlacedVn> Fleet::resident_vns() const {
  std::vector<PlacedVn> vns;
  vns.reserve(locator_.size());
  for (const auto& [id, index] : locator_) {
    vns.push_back(devices_[index].vns.at(id));
  }
  return vns;
}

}  // namespace vr::placement
