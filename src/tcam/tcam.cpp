#include "tcam/tcam.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::tcam {

std::vector<TcamEntry> entries_from_table(const net::RoutingTable& table) {
  std::vector<TcamEntry> entries;
  entries.reserve(table.size());
  for (const net::Route& route : table.routes()) {
    TcamEntry entry;
    entry.value = route.prefix.address().value();
    entry.mask = prefix_mask(route.prefix.length());
    entry.next_hop = route.next_hop;
    entry.prefix_length = route.prefix.length();
    entries.push_back(entry);
  }
  // Longest prefix first => first match wins is LPM. stable to keep the
  // table's deterministic order among equal lengths.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TcamEntry& a, const TcamEntry& b) {
                     return a.prefix_length > b.prefix_length;
                   });
  return entries;
}

FlatTcam::FlatTcam(const net::RoutingTable& table)
    : entries_(entries_from_table(table)) {}

std::optional<net::NextHop> FlatTcam::search(net::Ipv4 addr) const {
  for (const TcamEntry& entry : entries_) {
    if (entry.matches(addr.value())) return entry.next_hop;
  }
  return std::nullopt;
}

PartitionedTcam::PartitionedTcam(const net::RoutingTable& table,
                                 unsigned index_bits)
    : index_bits_(index_bits) {
  VR_REQUIRE(index_bits >= 1 && index_bits <= 12,
             "index_bits must be in [1,12]");
  banks_.resize(std::size_t{1} << index_bits);
  for (const TcamEntry& entry : entries_from_table(table)) {
    if (entry.prefix_length >= index_bits_) {
      // The index bits are fully specified: exactly one bank.
      const std::size_t bank = entry.value >> (32u - index_bits_);
      banks_[bank].push_back(entry);
    } else {
      // Short prefix: replicate into every bank it covers (controlled
      // prefix expansion of the index field).
      const unsigned free_bits = index_bits_ - entry.prefix_length;
      const std::size_t base = entry.value >> (32u - index_bits_);
      const std::size_t span = std::size_t{1} << free_bits;
      for (std::size_t i = 0; i < span; ++i) {
        banks_[base + i].push_back(entry);
      }
    }
  }
  // Entries inside each bank remain longest-first because the source list
  // was sorted and we appended in order.
}

std::optional<net::NextHop> PartitionedTcam::search(net::Ipv4 addr) const {
  const std::size_t bank = addr.value() >> (32u - index_bits_);
  for (const TcamEntry& entry : banks_[bank]) {
    if (entry.matches(addr.value())) return entry.next_hop;
  }
  return std::nullopt;
}

std::size_t PartitionedTcam::entry_count() const noexcept {
  std::size_t total = 0;
  for (const auto& bank : banks_) total += bank.size();
  return total;
}

std::size_t PartitionedTcam::entries_triggered_per_search() const noexcept {
  std::size_t worst = 0;
  for (const auto& bank : banks_) worst = std::max(worst, bank.size());
  return worst;
}

double PartitionedTcam::mean_bank_size() const noexcept {
  if (banks_.empty()) return 0.0;
  return static_cast<double>(entry_count()) /
         static_cast<double>(banks_.size());
}

}  // namespace vr::tcam
