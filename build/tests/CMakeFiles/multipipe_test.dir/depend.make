# Empty dependencies file for multipipe_test.
# This may be replaced when dependencies are built.
