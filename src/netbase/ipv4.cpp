#include "netbase/ipv4.hpp"

#include <array>
#include <charconv>

namespace vr::net {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (unsigned i = 0; i < 4; ++i) {
    if (i != 0) out += '.';
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) noexcept {
  std::array<std::uint32_t, 4> octets{};
  const char* it = text.data();
  const char* const end = text.data() + text.size();
  for (unsigned i = 0; i < 4; ++i) {
    if (i != 0) {
      if (it == end || *it != '.') return std::nullopt;
      ++it;
    }
    std::uint32_t value = 0;
    const auto [next, ec] = std::from_chars(it, end, value);
    if (ec != std::errc{} || next == it || value > 255) return std::nullopt;
    // Reject leading zeros such as "01" to keep the grammar strict.
    if (next - it > 1 && *it == '0') return std::nullopt;
    octets[i] = value;
    it = next;
  }
  if (it != end) return std::nullopt;
  return Ipv4((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
              octets[3]);
}

}  // namespace vr::net
