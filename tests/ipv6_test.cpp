#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ipv6/ipv6_trie.hpp"

namespace vr::ipv6 {
namespace {

// -------------------------------------------------------------- address --

TEST(Ipv6Test, ParsesFullForm) {
  const auto addr = Ipv6::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(addr->lo(), 0x0000000000000001ULL);
}

TEST(Ipv6Test, ParsesCompressedForms) {
  EXPECT_EQ(Ipv6::parse("::")->hi(), 0u);
  EXPECT_EQ(Ipv6::parse("::")->lo(), 0u);
  EXPECT_EQ(Ipv6::parse("::1")->lo(), 1u);
  EXPECT_EQ(Ipv6::parse("2001:db8::")->hi(), 0x20010db800000000ULL);
  const auto mid = Ipv6::parse("2001:db8::5:6");
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->lo(), 0x0000000000050006ULL);
}

TEST(Ipv6Test, RejectsMalformed) {
  for (const char* text :
       {"", ":", "1:2:3", "2001:db8:::1", "1:2:3:4:5:6:7:8:9",
        "2001:db8::12345", "g::1", "1:2:3:4:5:6:7:", "::1::2"}) {
    EXPECT_FALSE(Ipv6::parse(text).has_value()) << text;
  }
}

TEST(Ipv6Test, ToStringCompressesLongestRun) {
  EXPECT_EQ(Ipv6(0, 0).to_string(), "::");
  EXPECT_EQ(Ipv6(0, 1).to_string(), "::1");
  EXPECT_EQ(Ipv6(0x20010db800000000ULL, 0).to_string(), "2001:db8::");
  EXPECT_EQ(Ipv6(0x20010db800000000ULL, 1).to_string(), "2001:db8::1");
  // Zero run in the middle.
  EXPECT_EQ(Ipv6(0x0001000000000000ULL, 0x0000000000000001ULL).to_string(),
            "1::1");
}

TEST(Ipv6Test, RoundTripsRandomAddresses) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    // Mix of sparse (compressible) and dense addresses.
    Ipv6 addr(rng.next_u64() & (i % 2 ? ~0ULL : 0xffff00000000ffffULL),
              rng.next_u64() & (i % 3 ? ~0ULL : 0xffffULL));
    const auto back = Ipv6::parse(addr.to_string());
    ASSERT_TRUE(back.has_value()) << addr.to_string();
    EXPECT_EQ(*back, addr) << addr.to_string();
  }
}

TEST(Ipv6Test, BitIndexingMsbFirst) {
  const Ipv6 addr(0x8000000000000000ULL, 0x0000000000000001ULL);
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_FALSE(addr.bit(64));
  EXPECT_TRUE(addr.bit(127));
}

TEST(Ipv6Test, MaskedClearsHostBits) {
  const Ipv6 addr(0xffffffffffffffffULL, 0xffffffffffffffffULL);
  EXPECT_EQ(addr.masked(0), Ipv6(0, 0));
  EXPECT_EQ(addr.masked(64), Ipv6(~0ULL, 0));
  EXPECT_EQ(addr.masked(96), Ipv6(~0ULL, 0xffffffff00000000ULL));
  EXPECT_EQ(addr.masked(128), addr);
}

// --------------------------------------------------------------- prefix --

TEST(Prefix6Test, ContainsRespectsLength) {
  const Prefix6 p(*Ipv6::parse("2001:db8::"), 32);
  EXPECT_TRUE(p.contains(*Ipv6::parse("2001:db8::1")));
  EXPECT_TRUE(p.contains(*Ipv6::parse("2001:db8:ffff::")));
  EXPECT_FALSE(p.contains(*Ipv6::parse("2001:db9::")));
}

TEST(Prefix6Test, CanonicalizesOnConstruction) {
  const Prefix6 p(*Ipv6::parse("2001:db8::ff"), 32);
  EXPECT_EQ(p.address(), *Ipv6::parse("2001:db8::"));
}

// ---------------------------------------------------------------- table --

TEST(RoutingTable6Test, LongestPrefixWins) {
  RoutingTable6 table;
  table.add(Prefix6(*Ipv6::parse("2001:db8::"), 32), 1);
  table.add(Prefix6(*Ipv6::parse("2001:db8:1::"), 48), 2);
  table.add(Prefix6(*Ipv6::parse("2001:db8:1:2::"), 64), 3);
  EXPECT_EQ(table.lookup(*Ipv6::parse("2001:db8:1:2::9")), 3);
  EXPECT_EQ(table.lookup(*Ipv6::parse("2001:db8:1:3::9")), 2);
  EXPECT_EQ(table.lookup(*Ipv6::parse("2001:db8:9::")), 1);
  EXPECT_EQ(table.lookup(*Ipv6::parse("2002::")), std::nullopt);
}

// ------------------------------------------------------------ generator --

TEST(TableGen6Test, DeterministicAndSized) {
  TableProfile6 profile;
  profile.prefix_count = 400;
  const SyntheticTableGenerator6 gen(profile);
  const RoutingTable6 a = gen.generate(1);
  EXPECT_EQ(a.size(), 400u);
  const RoutingTable6 b = gen.generate(1);
  EXPECT_EQ(a.routes().size(), b.routes().size());
  for (std::size_t i = 0; i < a.routes().size(); ++i) {
    EXPECT_EQ(a.routes()[i], b.routes()[i]);
  }
}

TEST(TableGen6Test, LengthsInProfileRange) {
  TableProfile6 profile;
  profile.prefix_count = 300;
  const SyntheticTableGenerator6 gen(profile);
  const RoutingTable6 table = gen.generate(2);
  for (const Route6& route : table.routes()) {
    EXPECT_GE(route.prefix.length(), 40u);
    EXPECT_LE(route.prefix.length(), 64u);
  }
  EXPECT_EQ(table.max_prefix_length(), 64u);
}

TEST(TableGen6Test, AddressesInGlobalUnicast) {
  TableProfile6 profile;
  profile.prefix_count = 200;
  const SyntheticTableGenerator6 gen(profile);
  const RoutingTable6 table = gen.generate(3);
  for (const Route6& route : table.routes()) {
    EXPECT_EQ(route.prefix.address().hi() >> 61, 1u);  // 2000::/3
  }
}

// ----------------------------------------------------------------- trie --

class Ipv6TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ipv6TrieProperty, LookupMatchesOracle) {
  TableProfile6 profile;
  profile.prefix_count = 400;
  const SyntheticTableGenerator6 gen(profile);
  const RoutingTable6 table = gen.generate(GetParam());
  const UnibitTrie6 trie(table);
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    // Half random addresses, half in-table.
    Ipv6 addr(rng.next_u64(), rng.next_u64());
    if (i % 2 == 0) {
      const Route6& r =
          table.routes()[rng.next_below(table.routes().size())];
      const unsigned host = 128 - r.prefix.length();
      Ipv6 base = r.prefix.address();
      // Randomize some host bits (low 64 only, enough for coverage).
      addr = Ipv6(base.hi(),
                  base.lo() | (host >= 64 ? rng.next_u64()
                                          : rng.next_below(
                                                std::uint64_t{1} << host)));
    }
    EXPECT_EQ(trie.lookup(addr), table.lookup(addr));
  }
}

TEST_P(Ipv6TrieProperty, LeafPushPreservesLookups) {
  TableProfile6 profile;
  profile.prefix_count = 250;
  const SyntheticTableGenerator6 gen(profile);
  const RoutingTable6 table = gen.generate(GetParam() + 30);
  const UnibitTrie6 raw(table);
  const UnibitTrie6 pushed = raw.leaf_pushed();
  const trie::TrieStats stats = pushed.stats();
  EXPECT_EQ(stats.total_nodes, 2 * stats.internal_nodes + 1);
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const Ipv6 addr(rng.next_u64(), rng.next_u64());
    EXPECT_EQ(pushed.lookup(addr), raw.lookup(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6TrieProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Ipv6TrieTest, HeightBoundedByMaxLength) {
  TableProfile6 profile;
  profile.prefix_count = 300;
  const SyntheticTableGenerator6 gen(profile);
  const UnibitTrie6 trie(gen.generate(9));
  EXPECT_LE(trie.height(), 64u);
  EXPECT_GT(trie.height(), 40u);
  const trie::TrieStats stats = trie.stats();
  EXPECT_EQ(stats.total_nodes, trie.node_count());
}

}  // namespace
}  // namespace vr::ipv6
