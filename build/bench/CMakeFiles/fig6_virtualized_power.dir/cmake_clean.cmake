file(REMOVE_RECURSE
  "CMakeFiles/fig6_virtualized_power.dir/fig6_virtualized_power.cpp.o"
  "CMakeFiles/fig6_virtualized_power.dir/fig6_virtualized_power.cpp.o.d"
  "fig6_virtualized_power"
  "fig6_virtualized_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_virtualized_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
