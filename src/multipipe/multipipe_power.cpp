#include "multipipe/multipipe_power.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"
#include "fpga/xpe_tables.hpp"

namespace vr::multipipe {

MultipipeReport evaluate_multipipe(const PartitionedTrie& partition,
                                   const fpga::DeviceSpec& device,
                                   const MultipipeModelOptions& options) {
  VR_REQUIRE(options.load >= 0.0 && options.load <= 1.0,
             "load must be in [0,1]");
  MultipipeReport report;
  report.pipeline_depth = partition.pipeline_depth();
  report.balance_factor = partition.balance_factor();

  const std::size_t pipelines = partition.config().pipeline_count;

  // Per-pipeline BRAM plans plus the index memory.
  std::vector<fpga::StageBramPlan> plans;
  plans.reserve(pipelines);
  fpga::DesignResources resources;
  resources.pipelines = pipelines;
  for (std::size_t p = 0; p < pipelines; ++p) {
    const trie::StageMemory memory = trie::stage_memory(
        partition.pipeline_occupancy(p), options.encoding, 1);
    std::vector<std::uint64_t> stage_bits;
    stage_bits.reserve(memory.stage_count());
    for (std::size_t s = 0; s < memory.stage_count(); ++s) {
      stage_bits.push_back(memory.stage_bits(s));
    }
    fpga::StageBramPlan plan =
        fpga::plan_stage_bram(stage_bits, options.bram_policy);
    resources.bram_halves += plan.total.halves();
    resources.max_stage_blocks36eq = std::max(
        resources.max_stage_blocks36eq, plan.max_stage_blocks36eq);
    plans.push_back(std::move(plan));
  }
  const fpga::BramAllocation index_alloc =
      fpga::allocate_bram(partition.index_bits(), options.bram_policy);
  resources.bram_halves += index_alloc.halves();
  resources.max_stage_blocks36eq = std::max(
      resources.max_stage_blocks36eq, index_alloc.blocks36_equivalent());

  if (resources.bram_halves > fpga::device_bram_halves(device)) {
    throw CapacityError("multi-pipeline deployment exceeds device BRAM");
  }

  report.freq_mhz = fpga::achievable_fmax_mhz(device, options.grade,
                                              resources,
                                              options.freq_params);

  // Logic: each lookup clocks the index stage plus one pipeline's stages;
  // with balanced traffic every pipeline sees load/P of the aggregate P
  // lookups per cycle => activity `load` per pipeline.
  const units::Watts stage_logic_w =
      fpga::XpeTables::logic_power_w(options.grade, 1, report.freq_mhz);
  report.logic_w = options.load *
                   (1.0 + static_cast<double>(pipelines) *
                              static_cast<double>(report.pipeline_depth)) *
                   stage_logic_w;

  // Memory: every pipeline's stage memories are clocked at its own load;
  // the index is read by every lookup on every pipeline slot.
  for (const fpga::StageBramPlan& plan : plans) {
    report.memory_w +=
        options.load * plan.total.power_w(options.grade, report.freq_mhz);
  }
  report.memory_w += options.load * static_cast<double>(pipelines) *
                     index_alloc.power_w(options.grade, report.freq_mhz);

  report.static_w = device.static_power_w(options.grade);
  report.throughput_gbps =
      options.load * static_cast<double>(pipelines) *
      units::lookup_throughput(report.freq_mhz, units::kMinPacketBytes);
  return report;
}

}  // namespace vr::multipipe
