file(REMOVE_RECURSE
  "CMakeFiles/ablation_device_sweep.dir/ablation_device_sweep.cpp.o"
  "CMakeFiles/ablation_device_sweep.dir/ablation_device_sweep.cpp.o.d"
  "ablation_device_sweep"
  "ablation_device_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_device_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
