// Placement policies — given the fleet and the cost oracle, decide where
// an arriving VN goes (and whether it is admitted at all). All policies
// share one candidate enumeration: the lowest-indexed device of every
// shape group whose post-placement shape is feasible, plus the
// lowest-indexed idle device under each opening mode. They differ only in
// the scoring rule:
//
//   * kFirstFit       — lowest device index wins; admits whenever anything
//                       fits. The naive baseline of the competitive study.
//   * kBestFitWatts   — smallest marginal fleet watts wins (the oracle's
//                       Δtotal_w of the touched device). Greedy power
//                       packing.
//   * kExpCost        — online exponential-cost admission in the style of
//                       Awerbuch–Azar–Plotkin (cf. arXiv:1101.5221): a
//                       device's virtual cost is base^congestion, a
//                       request is admitted only where the marginal
//                       virtual cost stays below its SLA-weighted benefit.
//                       Rejects low-value requests under pressure to keep
//                       headroom for gold tenants.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "placement/fleet.hpp"

namespace vr::placement {

enum class PolicyKind : std::uint8_t {
  kFirstFit = 0,
  kBestFitWatts = 1,
  kExpCost = 2,
};

[[nodiscard]] constexpr const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kFirstFit:
      return "first-fit";
    case PolicyKind::kBestFitWatts:
      return "best-fit-watts";
    case PolicyKind::kExpCost:
      return "exp-cost";
  }
  return "?";
}

/// One feasible placement option for a request.
struct Candidate {
  std::size_t device = 0;
  DeviceMode mode = DeviceMode::kTimeShared;  ///< mode if the device is idle
  DeviceShape before;  ///< shape now (idle() when opening)
  DeviceShape after;   ///< shape once the VN is added (feasible)
};

/// All feasible options, one representative device per shape group plus
/// the idle openings, in deterministic (group, mode) order. `exclude`
/// removes one device from consideration (the source of a migration).
[[nodiscard]] std::vector<Candidate> feasible_candidates(
    const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
    std::optional<std::size_t> exclude = {});

struct Decision {
  bool accept = false;
  /// True when at least one feasible candidate existed — distinguishes a
  /// capacity rejection from a policy (admission-control) rejection.
  bool feasible_exists = false;
  std::size_t device = 0;
  DeviceMode mode = DeviceMode::kTimeShared;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual Decision decide(
      const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
      std::optional<std::size_t> exclude = {}) = 0;
  [[nodiscard]] virtual PolicyKind kind() const noexcept = 0;
};

/// Tuning of the exponential-cost policy.
struct ExpCostParams {
  double base = 32.0;  ///< virtual cost is base^congestion
  /// Admission bar: marginal virtual cost must stay ≤ threshold × benefit.
  double admission_threshold = 2.0;
  /// SLA-class benefits (bronze, silver, gold).
  double benefit[3] = {1.0, 2.0, 4.0};
};

[[nodiscard]] std::unique_ptr<PlacementPolicy> make_policy(
    PolicyKind kind, ExpCostParams exp_params = {});

}  // namespace vr::placement
