// Power model of the depth-bounded multi-pipeline architecture ([7]/[8]):
// each lookup clocks the direct-index stage plus the stages of ONE short
// pipeline, so with balanced traffic the per-lookup logic energy drops
// from N stages to (1 + depth) stages, while P parallel pipelines multiply
// aggregate throughput.
#pragma once

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "fpga/freq_model.hpp"
#include "multipipe/partition.hpp"
#include "trie/memory_layout.hpp"

namespace vr::multipipe {

struct MultipipeReport {
  units::Watts static_w;
  units::Watts logic_w;
  units::Watts memory_w;
  units::Megahertz freq_mhz;
  units::Gbps throughput_gbps;
  std::size_t pipeline_depth = 0;
  double balance_factor = 1.0;

  [[nodiscard]] units::Watts total_w() const noexcept {
    return static_w + logic_w + memory_w;
  }
  [[nodiscard]] units::MwPerGbps mw_per_gbps() const noexcept {
    return throughput_gbps <= units::Gbps{0.0}
               ? units::MwPerGbps{0.0}
               : units::to_milliwatts(total_w()) / throughput_gbps;
  }
};

struct MultipipeModelOptions {
  fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;
  fpga::BramPolicy bram_policy = fpga::BramPolicy::kMixed;
  trie::NodeEncoding encoding{};
  fpga::FreqModelParams freq_params{};
  /// Aggregate offered load in lookups per cycle per pipeline slot (1.0 =
  /// every pipeline saturated — the throughput-normalized comparison).
  double load = 1.0;
};

/// Evaluates a partitioned deployment on a device. Runs at the achievable
/// clock of the placed design (index + P pipelines).
[[nodiscard]] MultipipeReport evaluate_multipipe(
    const PartitionedTrie& partition, const fpga::DeviceSpec& device,
    const MultipipeModelOptions& options = {});

}  // namespace vr::multipipe
