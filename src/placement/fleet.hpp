// Fleet — the mutable state of the simulated device pool. Devices are
// plain slots holding the VNs placed on them; the fleet maintains three
// indices the policies and the controller lean on:
//
//   * groups():  devices keyed by their DeviceShape. Policies scan shapes,
//     not devices, so a decision over a 10k-device fleet costs O(#distinct
//     shapes) — tens, not thousands — per request.
//   * idle_devices():  devices hosting nothing, candidates for opening.
//   * a request-id locator for O(log n) departures and migrations.
//
// All indices are std::map/std::set (deterministic iteration: the vrlint
// determinism gate and the bit-identical-replay test both depend on it),
// and every shape is recomputed from the member VNs on mutation — sums of
// quantized integers, so shapes can never drift from the truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "placement/oracle.hpp"

namespace vr::placement {

/// One VN resident on a device (the placed form of a VnRequest).
struct PlacedVn {
  std::uint64_t request_id = 0;
  std::uint32_t bucket = 0;  ///< oracle table-size bucket
  std::uint32_t mu_q = 0;    ///< load in 1/kMuQuantum units
  SlaClass sla = SlaClass::kBronze;
  std::uint64_t departure_tick = 0;
};

struct DeviceState {
  DeviceMode mode = DeviceMode::kDedicated;
  /// Hosted VNs keyed by request id (deterministic iteration).
  std::map<std::uint64_t, PlacedVn> vns;

  [[nodiscard]] bool active() const noexcept { return !vns.empty(); }
};

class Fleet {
 public:
  explicit Fleet(std::size_t device_count);

  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] std::size_t active_devices() const noexcept {
    return devices_.size() - idle_.size();
  }
  [[nodiscard]] const DeviceState& device(std::size_t index) const;

  /// The shape of a device right now (idle devices have vn_count == 0).
  [[nodiscard]] DeviceShape shape_of(std::size_t index) const;

  /// The shape the device would take if `vn` were added. Idle devices
  /// open in `mode_if_idle`; active devices keep their mode.
  [[nodiscard]] DeviceShape shape_with(std::size_t index, const PlacedVn& vn,
                                       DeviceMode mode_if_idle) const;

  /// Adds `vn` to the device (opening it in `mode_if_idle` when idle) and
  /// reindexes. The request id must not already be resident; feasibility
  /// is the caller's contract (the controller checks the oracle first).
  void place(std::size_t index, const PlacedVn& vn, DeviceMode mode_if_idle);

  /// Removes a VN by request id and returns (device index, the VN).
  struct Removed {
    std::size_t device = 0;
    PlacedVn vn;
  };
  Removed remove(std::uint64_t request_id);

  [[nodiscard]] bool contains(std::uint64_t request_id) const {
    return locator_.find(request_id) != locator_.end();
  }
  [[nodiscard]] std::size_t device_of(std::uint64_t request_id) const;

  /// Active devices grouped by shape; map order is the deterministic scan
  /// order of every policy.
  [[nodiscard]] const std::map<DeviceShape, std::set<std::size_t>>& groups()
      const noexcept {
    return groups_;
  }
  [[nodiscard]] const std::set<std::size_t>& idle_devices() const noexcept {
    return idle_;
  }

  /// All resident VNs in request-id order (input to the offline bound).
  [[nodiscard]] std::vector<PlacedVn> resident_vns() const;

 private:
  [[nodiscard]] static DeviceShape compute_shape(const DeviceState& state);

  std::vector<DeviceState> devices_;
  std::set<std::size_t> idle_;
  std::map<DeviceShape, std::set<std::size_t>> groups_;
  std::map<std::uint64_t, std::size_t> locator_;
};

}  // namespace vr::placement
