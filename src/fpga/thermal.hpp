// Thermal/leakage coupling — the paper notes static power "is proportional
// to the area of the device, process technology, and the operating
// temperature (which affects the leakage current)" (Sec. V-A). This model
// closes the loop: dissipated power raises the junction temperature
// through the package's thermal resistance, and the hotter junction leaks
// more, until a fixed point is reached. It is used by the
// `ablation_thermal` bench to compare the deployments' thermal headroom
// (K dedicated devices in one rack vs one shared device).
#pragma once

#include "common/units.hpp"

namespace vr::fpga {

struct ThermalParams {
  double ambient_c = 25.0;
  /// Junction-to-ambient thermal resistance with a passive heatsink, °C/W.
  double theta_ja_c_per_w = 2.5;  // units-ok: compound °C/W calibration
  /// Fractional leakage increase per °C above the 25 °C characterization
  /// point (Virtex-6-class silicon roughly doubles leakage over ~60 °C).
  double leakage_slope_per_c = 0.012;
  /// Junction ceiling for commercial parts.
  double t_junction_max_c = 85.0;
};

/// Leakage multiplier at junction temperature `t_junction_c`.
[[nodiscard]] double leakage_multiplier(double t_junction_c,
                                        const ThermalParams& params = {});

/// Result of the power–temperature fixed point for one device.
struct ThermalOperatingPoint {
  double t_junction_c = 25.0;
  units::Watts static_w;      ///< leakage at the settled temperature
  units::Watts total_w;       ///< static + dynamic at the settled point
  bool within_limits = true;  ///< t_junction <= t_junction_max
  unsigned iterations = 0;
};

/// Solves T = ambient + theta_ja * (static(T) + dynamic) by fixed-point
/// iteration. `static_25c_w` is the device's leakage at 25 °C (the
/// catalog/paper value); `dynamic_w` is temperature-independent.
[[nodiscard]] ThermalOperatingPoint solve_thermal(
    units::Watts static_25c_w, units::Watts dynamic_w,
    const ThermalParams& params = {});

}  // namespace vr::fpga
