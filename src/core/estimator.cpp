#include "core/estimator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "power/efficiency.hpp"

namespace vr::core {

PowerEstimator::PowerEstimator(fpga::DeviceSpec device,
                               fpga::FreqModelParams freq_params)
    : device_(std::move(device)),
      freq_params_(freq_params),
      model_(device_) {}

Estimate PowerEstimator::estimate(const Scenario& scenario) const {
  const Workload workload = realize_workload(scenario);
  return estimate(scenario, workload);
}

units::Megahertz PowerEstimator::operating_frequency_mhz(
    const Scenario& scenario, const Workload& workload) const {
  // Resources of the most congested single device of the deployment.
  fpga::DesignResources resources;
  const bool merged = scenario.scheme == power::Scheme::kMerged;
  const power::EngineSpec& engine =
      merged ? workload.merged_engine : workload.per_vn_engine;
  VR_REQUIRE(!engine.stage_bits.empty(), "workload engine is empty");
  const std::size_t engines_on_device = power::engines_per_device(
      scenario.scheme, scenario.vn_count);

  std::vector<std::uint64_t> device_stage_bits;
  device_stage_bits.reserve(engine.stage_bits.size() * engines_on_device);
  const bool heterogeneous = !merged &&
                             !workload.heterogeneous_engines.empty() &&
                             scenario.scheme == power::Scheme::kSeparate;
  for (std::size_t e = 0; e < engines_on_device; ++e) {
    const power::EngineSpec& placed =
        heterogeneous ? workload.heterogeneous_engines[e] : engine;
    device_stage_bits.insert(device_stage_bits.end(),
                             placed.stage_bits.begin(),
                             placed.stage_bits.end());
  }
  const fpga::StageBramPlan plan =
      fpga::plan_stage_bram(device_stage_bits, scenario.bram_policy);
  resources.max_stage_blocks36eq = plan.max_stage_blocks36eq;
  resources.bram_halves = plan.total.halves();
  resources.pipelines = engines_on_device;

  const units::Megahertz fmax = fpga::achievable_fmax_mhz(
      device_, scenario.grade, resources, freq_params_);
  return scenario.freq_mhz > units::Megahertz{0.0}
             ? std::min(scenario.freq_mhz, fmax)
             : fmax;
}

Estimate PowerEstimator::estimate(const Scenario& scenario,
                                  const Workload& workload) const {
  Estimate out;
  out.alpha_used = workload.alpha_used;
  out.freq_mhz = operating_frequency_mhz(scenario, workload);

  power::OperatingPoint op;
  op.grade = scenario.grade;
  op.bram_policy = scenario.bram_policy;
  op.freq_mhz = out.freq_mhz;
  op.utilization = scenario.utilization;

  const trie::NodeEncoding encoding;
  switch (scenario.scheme) {
    case power::Scheme::kNonVirtualized:
    case power::Scheme::kSeparate: {
      // Assumption 2 relaxation: per-VN engines when the workload built
      // heterogeneous tables.
      const std::vector<power::EngineSpec> engines =
          workload.heterogeneous_engines.empty()
              ? std::vector<power::EngineSpec>(scenario.vn_count,
                                               workload.per_vn_engine)
              : workload.heterogeneous_engines;
      out.power = scenario.scheme == power::Scheme::kNonVirtualized
                      ? model_.estimate_nv(engines, op)
                      : model_.estimate_vs(engines, op);
      // Resources (Eqs. 1/3) from the per-VN memory image.
      trie::StageMemory per_vn;
      per_vn.pointer_bits.assign(workload.per_vn_engine.stage_bits.size(), 0);
      per_vn.nhi_bits.assign(workload.per_vn_engine.stage_bits.size(), 0);
      // Recompute split from the representative stats for reporting.
      const trie::StageMapping mapping(
          workload.representative_stats.nodes_per_level.size(),
          scenario.stages, trie::MappingPolicy::kOneLevelPerStage);
      per_vn = trie::stage_memory(
          trie::occupancy(workload.representative_stats, mapping), encoding,
          1);
      out.resources = power::replicated_resources(
          scenario.scheme, per_vn, scenario.vn_count, scenario.bram_policy);
      break;
    }
    case power::Scheme::kMerged: {
      out.power = model_.estimate_vm(workload.merged_engine,
                                     scenario.vn_count, op);
      // Rebuild the pointer/NHI split for the resource report.
      trie::StageMemory merged_memory;
      if (scenario.merged_source == MergedSource::kStructural &&
          workload.merged_trie.has_value()) {
        const trie::TrieStats merged_stats =
            workload.merged_trie->stats_as_trie();
        const trie::StageMapping merged_mapping(
            merged_stats.nodes_per_level.size(), scenario.stages,
            trie::MappingPolicy::kOneLevelPerStage);
        merged_memory = trie::stage_memory(
            trie::occupancy(merged_stats, merged_mapping), encoding,
            scenario.vn_count);
      } else {
        const trie::StageMapping mapping(
            workload.representative_stats.nodes_per_level.size(),
            scenario.stages, trie::MappingPolicy::kOneLevelPerStage);
        merged_memory = virt::predict_merged_stage_memory(
            workload.representative_stats, mapping, encoding,
            scenario.vn_count, workload.alpha_used, scenario.merged_rule);
      }
      out.resources = power::merged_resources(
          merged_memory, scenario.vn_count, scenario.bram_policy);
      break;
    }
  }

  out.fit = power::check_fit(out.resources, device_);
  out.throughput_gbps = power::aggregate_throughput_gbps(
      scenario.scheme, scenario.vn_count, out.freq_mhz);
  out.mw_per_gbps = power::mw_per_gbps(out.power.total_w(),
                                       out.throughput_gbps);
  return out;
}

}  // namespace vr::core
