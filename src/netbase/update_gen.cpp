#include "netbase/update_gen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::net {

UpdateStreamGenerator::UpdateStreamGenerator(UpdateStreamConfig config)
    : config_(std::move(config)), fresh_gen_(config_.profile) {
  VR_REQUIRE(config_.withdraw_weight >= 0.0 &&
                 config_.announce_new_weight >= 0.0 &&
                 config_.reannounce_weight >= 0.0,
             "update mix weights must be non-negative");
  VR_REQUIRE(config_.withdraw_weight + config_.announce_new_weight +
                     config_.reannounce_weight >
                 0.0,
             "update mix must have positive total weight");
}

std::vector<RouteUpdate> UpdateStreamGenerator::generate(
    const RoutingTable& base, std::uint64_t seed) const {
  Rng rng(seed);
  // Working copy of the installed set, as a vector for O(1) sampling.
  std::vector<Route> installed(base.routes().begin(), base.routes().end());

  // Pool of fresh prefixes to announce (drawn once, consumed in order;
  // entries already present are skipped at use time).
  const RoutingTable fresh_pool = fresh_gen_.generate(seed ^ 0xfeedULL);
  std::size_t fresh_cursor = 0;

  auto is_installed = [&installed](const Prefix& p) {
    return std::any_of(installed.begin(), installed.end(),
                       [&p](const Route& r) { return r.prefix == p; });
  };

  std::vector<RouteUpdate> stream;
  stream.reserve(config_.update_count);
  const double weights[3] = {config_.withdraw_weight,
                             config_.announce_new_weight,
                             config_.reannounce_weight};
  while (stream.size() < config_.update_count) {
    switch (rng.next_weighted(weights, 3)) {
      case 0: {  // withdraw
        if (installed.empty()) break;
        const std::size_t i = rng.next_below(installed.size());
        stream.push_back({RouteUpdate::Kind::kWithdraw,
                          Route{installed[i].prefix, kNoRoute}});
        installed[i] = installed.back();
        installed.pop_back();
        break;
      }
      case 1: {  // announce a brand-new prefix
        const auto pool = fresh_pool.routes();
        while (fresh_cursor < pool.size() &&
               is_installed(pool[fresh_cursor].prefix)) {
          ++fresh_cursor;
        }
        if (fresh_cursor >= pool.size()) break;  // pool exhausted
        const Route route = pool[fresh_cursor++];
        stream.push_back({RouteUpdate::Kind::kAnnounce, route});
        installed.push_back(route);
        break;
      }
      case 2: {  // re-announce with a different next hop (path change)
        if (installed.empty()) break;
        const std::size_t i = rng.next_below(installed.size());
        Route route = installed[i];
        const auto hops = config_.profile.next_hop_count;
        route.next_hop = static_cast<NextHop>(
            (route.next_hop + 1 + rng.next_below(std::max<NextHop>(
                                      1, static_cast<NextHop>(hops - 1)))) %
            hops);
        if (route.next_hop == installed[i].next_hop) break;
        stream.push_back({RouteUpdate::Kind::kAnnounce, route});
        installed[i] = route;
        break;
      }
      default:
        break;
    }
  }
  return stream;
}

}  // namespace vr::net
