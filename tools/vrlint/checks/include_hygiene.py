"""include-hygiene — headers stay lean and namespace-clean.

Two rules over every header in src/:

1. No ``#include <iostream>`` in a header: it drags the static
   ``std::ios_base::Init`` object into every translation unit and
   couples library headers to global stream state. Use ``<ostream>``
   (to format into a caller's stream), ``<iosfwd>`` (declarations
   only), or include iostream in the .cpp that actually prints.
2. No ``using namespace`` at any scope in a header: it leaks the
   namespace into every includer, which is exactly how cross-library
   name collisions start.

Escape: ``// include-ok: <reason>`` (rarely justified).
"""

from __future__ import annotations

import re
from typing import Iterable

import core

IOSTREAM = re.compile(r"#\s*include\s*<iostream>")
USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")


@core.register
class IncludeHygieneCheck(core.Check):
    name = "include-hygiene"
    description = ("src/ headers: no <iostream> include, no "
                   "using-namespace leaks")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        for f in tree.in_dirs("src"):
            if not f.is_header:
                continue
            for i, raw in enumerate(f.lines):
                code = core.strip_comment(raw)
                if IOSTREAM.search(code) and not f.suppressed(i, "include-ok"):
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        "header includes <iostream> — use <ostream>/"
                        "<iosfwd> or move the printing into the .cpp")
                if USING_NAMESPACE.search(code) and \
                        not f.suppressed(i, "include-ok"):
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        "'using namespace' in a header leaks into every "
                        "includer — qualify names instead")
