
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/ipv4.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/ipv4.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/ipv4.cpp.o.d"
  "/root/repo/src/netbase/packet.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/packet.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/packet.cpp.o.d"
  "/root/repo/src/netbase/prefix.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/prefix.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/prefix.cpp.o.d"
  "/root/repo/src/netbase/routing_table.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/routing_table.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/routing_table.cpp.o.d"
  "/root/repo/src/netbase/table_gen.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/table_gen.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/table_gen.cpp.o.d"
  "/root/repo/src/netbase/traffic.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/traffic.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/traffic.cpp.o.d"
  "/root/repo/src/netbase/update_gen.cpp" "src/netbase/CMakeFiles/vr_netbase.dir/update_gen.cpp.o" "gcc" "src/netbase/CMakeFiles/vr_netbase.dir/update_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
