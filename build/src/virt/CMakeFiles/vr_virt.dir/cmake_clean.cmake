file(REMOVE_RECURSE
  "CMakeFiles/vr_virt.dir/merged_trie.cpp.o"
  "CMakeFiles/vr_virt.dir/merged_trie.cpp.o.d"
  "CMakeFiles/vr_virt.dir/overlap_model.cpp.o"
  "CMakeFiles/vr_virt.dir/overlap_model.cpp.o.d"
  "CMakeFiles/vr_virt.dir/table_set_gen.cpp.o"
  "CMakeFiles/vr_virt.dir/table_set_gen.cpp.o.d"
  "CMakeFiles/vr_virt.dir/updatable_merged.cpp.o"
  "CMakeFiles/vr_virt.dir/updatable_merged.cpp.o.d"
  "libvr_virt.a"
  "libvr_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
