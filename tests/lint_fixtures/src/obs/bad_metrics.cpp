// Fixture: metrics check. Expected: two findings here (an unlisted
// literal name and a dynamically composed name) plus one stale entry
// flagged in the fixture manifest. The escaped dynamic call is clean.

#include <string>

namespace vr::obs {

class Registry;

void fixture_register(Registry& obs_registry,
                      const std::string& dynamic_name) {
  obs_registry.counter("fixture.known");     // in the manifest: clean
  obs_registry.counter("fixture.unlisted");  // FINDING: not in the manifest
  obs_registry.counter(dynamic_name);        // FINDING: dynamic name
  // metric-ok: per-fixture naming scheme exercised by the selftest
  obs_registry.counter(dynamic_name);
}

}  // namespace vr::obs
