// Packet-trace generation with per-virtual-network utilization and duty
// cycle — the workload model of the paper's Assumptions 1 and 3 plus the
// Sec. IV clock-gating discussion (idle periods consume no dynamic power).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netbase/routing_table.hpp"

namespace vr::net {

/// Virtual-network identifier (VNID). The paper indexes leaf vectors by
/// VNID in the merged scheme.
using VnId = std::uint16_t;

/// A lookup request: destination address tagged with its virtual network.
struct Packet {
  Ipv4 addr;
  VnId vnid = 0;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// A packet bound to the cycle at which it arrives at the lookup engine.
struct TimedPacket {
  std::uint64_t cycle = 0;
  Packet packet;

  friend bool operator==(const TimedPacket&, const TimedPacket&) = default;
};

/// Configuration of the arrival process.
struct TrafficConfig {
  /// Number of clock cycles to generate for.
  std::uint64_t cycles = 100000;

  /// Probability that a new packet arrives in an "on" cycle (aggregate
  /// offered load, 1.0 = one packet per cycle, the pipeline's capacity).
  double load = 1.0;

  /// Duty cycle: arrivals only occur during the first
  /// `duty_on_fraction * duty_period` cycles of every period. 1.0 = always
  /// on. Models the low-duty edge-network behaviour of Sec. I.
  double duty_on_fraction = 1.0;
  std::uint64_t duty_period = 1000;

  /// Relative traffic share per virtual network (the paper's µ_i, up to
  /// normalization). Empty means uniform (Assumption 1).
  std::vector<double> vn_weights;

  /// Per-VN duty-phase offsets as fractions of duty_period. When set
  /// (size = VN count), each VN is only "on" during
  /// [offset, offset + duty_on_fraction) of the period (wrapping), and a
  /// cycle's packet is drawn among the currently-on VNs — the staggered
  /// edge-network peaks that make time-sharing (the merged scheme) work.
  /// Empty = one global duty window (the default behaviour).
  std::vector<double> vn_phase_offsets;

  /// Markov-modulated on/off burstiness: when both means are positive an
  /// independent two-state process gates all arrivals; on/off run lengths
  /// are geometric with the given means, so the long-run on fraction is
  /// mean_on / (mean_on + mean_off). Zero disables the process — and, by
  /// contract, draws no randoms, so default traces are byte-identical to
  /// pre-burst builds. The burst process uses its own derived stream; the
  /// arrival stream is untouched either way.
  double burst_mean_on_cycles = 0.0;
  double burst_mean_off_cycles = 0.0;

  /// Diurnal load modulation: when period > 0 and depth > 0 the per-cycle
  /// load is scaled by 1 - depth·(1 - cos(2π·cycle/period))/2 — full load
  /// at each period start, (1-depth)·load in the trough, mean factor
  /// 1 - depth/2. Deterministic: no extra randoms.
  std::uint64_t diurnal_period = 0;
  double diurnal_depth = 0.0;
};

/// Canonical trace shapes of the activity-vs-µ validation experiment
/// (EXPERIMENTS.md): the µ-model compresses each VN's behaviour into one
/// utilization scalar; these shapes stress exactly what that compression
/// loses.
enum class TraceShape : std::uint8_t {
  kUniform,  ///< stationary uniform load — the µ-model's home turf
  kBursty,   ///< Markov on/off bursts at the same mean load
  kDiurnal,  ///< slow sinusoidal load swing
  kSkewed,   ///< geometric per-VN share skew (VN 0 dominates)
};

[[nodiscard]] const char* to_string(TraceShape shape) noexcept;

/// Builds the canonical TrafficConfig for a shape: every shape offers the
/// same nominal aggregate load so the µ-model sees the same scalar, and
/// only the arrival structure differs.
[[nodiscard]] TrafficConfig make_shaped_config(TraceShape shape,
                                               std::uint64_t cycles,
                                               double load,
                                               std::size_t vn_count);

/// The per-VN mean offered load (packets/cycle) a config promises — the
/// nominal µ_i a capacity planner would feed the analytical model: duty,
/// burst duty and mean diurnal factor applied to each VN's share. Actual
/// traces fluctuate around it; the activity backend measures the
/// difference.
[[nodiscard]] std::vector<double> nominal_utilization(
    const TrafficConfig& config, std::size_t vn_count);

/// Generates traces whose destination addresses are sampled from the routes
/// of the owning virtual network (so every lookup matches), with host bits
/// randomized.
class TrafficGenerator {
 public:
  /// `tables[v]` is the routing table of virtual network v. At least one
  /// table, none empty.
  TrafficGenerator(TrafficConfig config,
                   std::vector<const RoutingTable*> tables);

  /// Produces a deterministic trace for the given seed.
  [[nodiscard]] std::vector<TimedPacket> generate(std::uint64_t seed) const;

  /// Draws one in-table destination address for virtual network `vn`.
  [[nodiscard]] Packet sample_packet(Rng& rng, VnId vn) const;

  [[nodiscard]] const TrafficConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t vn_count() const noexcept {
    return tables_.size();
  }

  /// Measured share of packets per VN in a trace (for tests: converges to
  /// the normalized vn_weights).
  static std::vector<double> measured_shares(
      const std::vector<TimedPacket>& trace, std::size_t vn_count);

 private:
  TrafficConfig config_;
  std::vector<const RoutingTable*> tables_;
  std::vector<double> weights_;  // normalized per-VN probabilities
};

}  // namespace vr::net
