// TCAM power model.
//
// Representative constants from the TCAM literature the paper cites
// (Sec. II-B; Zheng et al. [20], IPStash [10]): match-line + search-line
// energy of a few femtojoules per bit per activated entry per search, plus
// leakage proportional to stored entries. With every entry activated every
// cycle, an 18 Mbit-class TCAM at wire speed burns ~15 W — two orders of
// magnitude above the per-search energy of one SRAM/BRAM access, which is
// exactly why the paper's Sec. II-B calls TCAMs "power hungry due to
// [their] massively parallel search".
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "tcam/tcam.hpp"

namespace vr::tcam {

struct TcamPowerParams {
  /// Dynamic search energy per bit per activated entry, femtojoules.
  double search_fj_per_bit = 5.4;  // units-ok: fJ/bit calibration scalar
  /// Entry width in ternary bits (IPv4 value+mask word).
  unsigned bits_per_entry = 36;
  /// Leakage per stored ternary bit, nanowatts.
  double leakage_nw_per_bit = 18.0;  // units-ok: nW/bit calibration scalar
  /// Search rate: one search per clock. Commodity TCAMs close timing well
  /// below FPGA BRAM pipelines.
  units::Megahertz clock_mhz{150.0};
  /// Physical array size of the chip (18 Mbit-class part). A commodity
  /// TCAM precharges and leaks across its WHOLE array regardless of how
  /// many entries are occupied, which is the core of the paper's
  /// "power hungry" characterization; banked organizations activate only
  /// capacity/banks per search.
  std::size_t chip_capacity_entries = 512 * 1024;
};

/// Power report of a TCAM deployment.
struct TcamPowerReport {
  units::Watts dynamic_w;
  units::Watts static_w;
  units::Gbps throughput_gbps;  ///< 40 B packets, one search per cycle

  [[nodiscard]] units::Watts total_w() const noexcept {
    return dynamic_w + static_w;
  }
  [[nodiscard]] units::MwPerGbps mw_per_gbps() const noexcept {
    return throughput_gbps <= units::Gbps{0.0}
               ? units::MwPerGbps{0.0}
               : units::to_milliwatts(total_w()) / throughput_gbps;
  }
};

/// Power of a search activating `entries_triggered` of `entries_stored`
/// entries at the parameterized clock.
[[nodiscard]] TcamPowerReport tcam_power(std::size_t entries_stored,
                                         std::size_t entries_triggered,
                                         const TcamPowerParams& params = {});

/// Convenience overloads for the two organizations. The partitioned TCAM
/// is charged its *mean* activated bank (matching [20]'s load-balancing
/// objective).
[[nodiscard]] TcamPowerReport tcam_power(const FlatTcam& tcam,
                                         const TcamPowerParams& params = {});
[[nodiscard]] TcamPowerReport tcam_power(const PartitionedTcam& tcam,
                                         const TcamPowerParams& params = {});

}  // namespace vr::tcam
