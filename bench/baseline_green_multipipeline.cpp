// Baseline: depth-bounded multi-pipeline ("green router", paper refs
// [7]/[8]) vs the linear 28-stage pipeline the paper deploys. Sweeps the
// split level and pipeline count and reports power, throughput, balance
// and efficiency.
#include "bench_common.hpp"
#include "multipipe/multipipe_power.hpp"
#include "netbase/table_gen.hpp"

int main() {
  using namespace vr;
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);
  const trie::UnibitTrie trie = trie::UnibitTrie(table).leaf_pushed();
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();

  TextTable out(
      "Depth-bounded multi-pipeline vs linear pipeline (grade -2, "
      "3725-prefix table)");
  out.set_header({"split", "pipelines", "depth", "balance", "clock MHz",
                  "total W", "Gbps", "mW/Gbps"});
  const struct {
    unsigned split;
    std::size_t pipelines;
  } sweeps[] = {{1, 1},  // ~linear reference
                {4, 2}, {8, 4}, {10, 4}, {12, 8}, {14, 8}};
  for (const auto& sweep : sweeps) {
    multipipe::PartitionConfig config;
    config.split_level = sweep.split;
    config.pipeline_count = sweep.pipelines;
    const multipipe::PartitionedTrie partition(trie, config);
    const multipipe::MultipipeReport report =
        multipipe::evaluate_multipipe(partition, device);
    out.add_row({std::to_string(sweep.split),
                 std::to_string(sweep.pipelines),
                 std::to_string(report.pipeline_depth),
                 TextTable::num(report.balance_factor, 2),
                 TextTable::num(report.freq_mhz.value(), 1),
                 TextTable::num(report.total_w().value(), 3),
                 TextTable::num(report.throughput_gbps.value(), 1),
                 TextTable::num(report.mw_per_gbps().value(), 2)});
  }
  vr::bench::emit(out);
  std::cout
      << "Splitting the trie bounds the pipeline depth (fewer stages\n"
         "clocked per lookup) and multiplies throughput across parallel\n"
         "pipelines -- the [7]/[8] result the paper builds on.\n";
  return 0;
}
