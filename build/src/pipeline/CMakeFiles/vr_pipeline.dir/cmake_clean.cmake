file(REMOVE_RECURSE
  "CMakeFiles/vr_pipeline.dir/energy.cpp.o"
  "CMakeFiles/vr_pipeline.dir/energy.cpp.o.d"
  "CMakeFiles/vr_pipeline.dir/lookup_engine.cpp.o"
  "CMakeFiles/vr_pipeline.dir/lookup_engine.cpp.o.d"
  "CMakeFiles/vr_pipeline.dir/router.cpp.o"
  "CMakeFiles/vr_pipeline.dir/router.cpp.o.d"
  "libvr_pipeline.a"
  "libvr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
