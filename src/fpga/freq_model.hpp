// Achievable-clock model.
//
// The paper observes (Sec. VI-B) that the merged scheme's operating
// frequency "decreases significantly" as virtual networks are added,
// because wide per-stage memories congest routing; the separate scheme is
// only mildly affected (its pipelines are small and identical). We model
// post-place-and-route Fmax as the base grade Fmax divided by a congestion
// factor driven by (a) the widest single-stage BRAM footprint and (b) the
// overall device BRAM utilization. Both the analytical model and the PnR
// simulator evaluate the same frequency (the paper's model likewise uses
// the implementation's operating frequency — its coefficients are ·f).
#pragma once

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"

namespace vr::fpga {

/// Calibration constants (DESIGN.md Sec. 4). Defaults put VM(α=20 %, K=15)
/// near half the base clock while leaving single-pipeline designs at base.
struct FreqModelParams {
  /// Penalty per additional 36 Kb-equivalent block in the widest stage.
  double gamma_stage_blocks = 0.065;
  /// Penalty proportional to device BRAM utilization in [0,1].
  double gamma_device_util = 0.25;
  /// Penalty per additional parallel pipeline beyond the first (placement
  /// spread of the separate scheme; mild).
  double gamma_pipelines = 0.004;
};

/// Resource summary of a placed design, as needed by the clock model.
struct DesignResources {
  /// Widest single-stage footprint across all pipelines, in 36 Kb
  /// equivalents.
  double max_stage_blocks36eq = 0.0;
  /// Total BRAM halves used across the design.
  std::uint64_t bram_halves = 0;
  /// Number of parallel pipelines (1 for NV per device, K for VS, 1 for VM).
  std::size_t pipelines = 1;
};

/// Post-PnR achievable clock for a design on a device/grade.
[[nodiscard]] units::Megahertz achievable_fmax_mhz(
    const DeviceSpec& spec, SpeedGrade grade,
    const DesignResources& resources, const FreqModelParams& params = {});

}  // namespace vr::fpga
