// Fixture: narrowing check (src/trie is lookup-critical). Expected: two
// narrowing findings (the unguarded cast, and the cast under a
// reason-less tag — a bare tag suppresses nothing) plus one annotations
// finding on the bare tag itself. The checked_* helper and the justified
// cast are clean.

#include <cstdint>

namespace vr::trie {

using NodeIndex = std::uint32_t;

NodeIndex checked_fixture_index(std::uint64_t value) {
  return static_cast<NodeIndex>(value);  // clean: inside a checked_* helper
}

std::uint16_t fixture_bad(std::uint64_t value) {
  return static_cast<std::uint16_t>(value);  // FINDING: unguarded
}

std::uint16_t fixture_bare_tag(std::uint64_t value) {
  // narrow-ok
  return static_cast<std::uint16_t>(value);  // FINDING: tag has no reason
}

std::uint8_t fixture_justified(std::uint64_t value) {
  // narrow-ok: the fixture value is masked to one byte first
  return static_cast<std::uint8_t>(value & 0xff);
}

}  // namespace vr::trie
