// IPv4 prefix (CIDR block) value type and longest-prefix-match semantics.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv4.hpp"

namespace vr::net {

/// Next-hop information (NHI): an output-port / adjacency identifier. The
/// paper stores NHI in 8-bit leaf entries; we allow 16 bits in software and
/// let the memory-encoding layer narrow it.
using NextHop = std::uint16_t;

/// Sentinel meaning "no route" (the trie root's default when no default
/// route is present).
inline constexpr NextHop kNoRoute = 0xffff;

/// An IPv4 CIDR prefix. The address is stored canonicalized: bits below the
/// prefix length are forced to zero, so equal prefixes compare equal.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Canonicalizes: host bits of `address` are cleared. length in [0,32].
  Prefix(Ipv4 address, unsigned length) noexcept;

  [[nodiscard]] constexpr Ipv4 address() const noexcept { return address_; }
  [[nodiscard]] constexpr unsigned length() const noexcept { return length_; }

  /// True if `addr` is covered by this prefix.
  [[nodiscard]] bool contains(Ipv4 addr) const noexcept;

  /// True if this prefix covers `other` entirely (i.e. is shorter or equal
  /// and matches on its own length).
  [[nodiscard]] bool covers(const Prefix& other) const noexcept;

  /// Bit `i` (0 = most significant) of the prefix address; only bits
  /// < length() are meaningful.
  [[nodiscard]] bool bit(unsigned i) const noexcept;

  /// "a.b.c.d/len" text form.
  [[nodiscard]] std::string to_string() const;

  /// Parses "a.b.c.d/len"; nullopt on error.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(const Prefix&,
                                    const Prefix&) noexcept = default;

 private:
  Ipv4 address_;
  unsigned length_ = 0;
};

/// A routing-table entry: prefix plus its next hop.
struct Route {
  Prefix prefix;
  NextHop next_hop = kNoRoute;

  friend constexpr auto operator<=>(const Route&, const Route&) noexcept =
      default;
};

}  // namespace vr::net
