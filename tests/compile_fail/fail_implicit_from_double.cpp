// MUST NOT COMPILE: quantity construction is explicit — a bare double has
// no unit and cannot silently become one.
#include "common/units.hpp"

int main() {
  vr::units::Megahertz f = 400.0;
  return static_cast<int>(f.value());
}
