# Empty dependencies file for vr_core.
# This may be replaced when dependencies are built.
