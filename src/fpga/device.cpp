#include "fpga/device.hpp"

#include "common/units.hpp"

namespace vr::fpga {

const char* to_string(SpeedGrade grade) noexcept {
  switch (grade) {
    case SpeedGrade::kMinus2:
      return "-2";
    case SpeedGrade::kMinus1L:
      return "-1L";
  }
  return "?";
}

units::Watts DeviceSpec::static_power_w(SpeedGrade grade) const noexcept {
  // Paper Sec. V-A: 4.5 W (-2) and 3.1 W (-1L) on the XC6VLX760. Scale by
  // device area (logic cells) so smaller catalog entries behave sensibly.
  const double reference_cells = 758'784.0;  // the XC6VLX760 itself
  const double scale =
      logic_cells == 0 ? 1.0
                       : static_cast<double>(logic_cells) / reference_cells;
  switch (grade) {
    case SpeedGrade::kMinus2:
      return units::Watts{4.5 * scale};
    case SpeedGrade::kMinus1L:
      return units::Watts{3.1 * scale};
  }
  return units::Watts{0.0};
}

units::Megahertz DeviceSpec::base_fmax_mhz(SpeedGrade grade) const noexcept {
  // DESIGN.md Sec. 4 calibration: -2 routes a light pipelined lookup design
  // at ~400 MHz; -1L at ~30 % lower clock (same mW/Gbps per Fig. 8).
  switch (grade) {
    case SpeedGrade::kMinus2:
      return units::Megahertz{400.0};
    case SpeedGrade::kMinus1L:
      return units::Megahertz{280.0};
  }
  return units::Megahertz{0.0};
}

DeviceSpec DeviceSpec::xc6vlx760() {
  DeviceSpec spec;
  spec.name = "XC6VLX760";
  spec.logic_cells = 758'784;
  spec.slices = 118'560;
  spec.luts = 474'240;
  spec.flip_flops = 948'480;
  spec.bram_bits = static_cast<std::uint64_t>(26.0 * units::kMibit);
  spec.distributed_ram_bits = static_cast<std::uint64_t>(8.0 * units::kMibit);
  spec.io_pins = 1200;
  return spec;
}

DeviceSpec DeviceSpec::xc6vlx550t() {
  DeviceSpec spec;
  spec.name = "XC6VLX550T";
  spec.logic_cells = 549'888;
  spec.slices = 85'920;
  spec.luts = 343'680;
  spec.flip_flops = 687'360;
  spec.bram_bits = static_cast<std::uint64_t>(22.0 * units::kMibit);
  spec.distributed_ram_bits = static_cast<std::uint64_t>(6.2 * units::kMibit);
  spec.io_pins = 840;
  return spec;
}

DeviceSpec DeviceSpec::xc6vsx475t() {
  DeviceSpec spec;
  spec.name = "XC6VSX475T";
  spec.logic_cells = 476'160;
  spec.slices = 74'400;
  spec.luts = 297'600;
  spec.flip_flops = 595'200;
  spec.bram_bits = static_cast<std::uint64_t>(38.0 * units::kMibit);
  spec.distributed_ram_bits = static_cast<std::uint64_t>(7.6 * units::kMibit);
  spec.io_pins = 840;
  return spec;
}

DeviceSpec DeviceSpec::xc6vlx240t() {
  DeviceSpec spec;
  spec.name = "XC6VLX240T";
  spec.logic_cells = 241'152;
  spec.slices = 37'680;
  spec.luts = 150'720;
  spec.flip_flops = 301'440;
  spec.bram_bits = static_cast<std::uint64_t>(14.0 * units::kMibit);
  spec.distributed_ram_bits = static_cast<std::uint64_t>(3.6 * units::kMibit);
  spec.io_pins = 720;
  return spec;
}

std::vector<DeviceSpec> DeviceSpec::catalog() {
  return {xc6vlx760(), xc6vlx550t(), xc6vsx475t(), xc6vlx240t()};
}

}  // namespace vr::fpga
