// Capacity planner: how many virtual networks fit on one XC6VLX760, per
// scheme? Reproduces the paper's scalability discussion (Sec. IV-B/C and
// VI-A): the separate scheme is I/O-pin limited (K = 15 on 1200 pins); the
// merged scheme is BRAM- and throughput-limited, with the limit depending
// strongly on the merging efficiency α. The planner also reports the
// per-VN throughput each deployment can still guarantee.
//
// Run: ./build/examples/capacity_planner [prefixes-per-table] [min-gbps-per-vn]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/estimator.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  std::size_t prefixes = 3725;
  double min_gbps_per_vn = 5.0;  // the SLA each VN was originally promised
  if (argc > 1) {
    prefixes = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
    if (prefixes == 0) {
      std::cerr << "usage: capacity_planner [prefixes] [min-gbps-per-vn]\n";
      return 2;
    }
  }
  if (argc > 2) min_gbps_per_vn = std::strtod(argv[2], nullptr);

  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const core::PowerEstimator estimator{device};
  constexpr std::size_t kScanLimit = 64;

  // A deployment is feasible when it fits the device AND still sustains
  // each VN's guaranteed throughput — the merged scheme's second limit
  // (Sec. IV-C: "the lookup engine may fail to sustain the required
  // throughput").
  const auto max_k = [&](power::Scheme scheme, double alpha) {
    std::size_t best = 0;
    for (std::size_t k = 1; k <= kScanLimit; ++k) {
      core::Scenario s;
      s.scheme = scheme;
      s.vn_count = k;
      s.alpha = alpha;
      s.table_profile.prefix_count = prefixes;
      try {
        const core::Estimate est = estimator.estimate(s);
        if (!est.fit.fits) break;
        if (est.throughput_gbps.value() / static_cast<double>(k) <
            min_gbps_per_vn) {
          break;
        }
      } catch (const CapacityError&) {
        break;
      }
      best = k;
    }
    return best;
  };

  TextTable table("Max virtual networks on " + device.name + " (" +
                  std::to_string(prefixes) + "-prefix tables)");
  table.set_header(
      {"scheme", "alpha", "max K", "limiting factor", "per-VN Gbps at max"});
  const struct {
    power::Scheme scheme;
    double alpha;
    const char* limit;
  } cases[] = {
      {power::Scheme::kSeparate, 1.0, "I/O pins"},
      {power::Scheme::kMerged, 0.8, "throughput SLA"},
      {power::Scheme::kMerged, 0.5, "throughput SLA"},
      {power::Scheme::kMerged, 0.2, "throughput SLA"},
  };
  for (const auto& c : cases) {
    const std::size_t k = max_k(c.scheme, c.alpha);
    double per_vn_gbps = 0.0;
    if (k > 0) {
      core::Scenario s;
      s.scheme = c.scheme;
      s.vn_count = k;
      s.alpha = c.alpha;
      s.table_profile.prefix_count = prefixes;
      const core::Estimate est = estimator.estimate(s);
      per_vn_gbps = est.throughput_gbps.value() / static_cast<double>(k);
    }
    table.add_row({power::to_string(c.scheme),
                   c.scheme == power::Scheme::kMerged
                       ? TextTable::num(c.alpha, 1)
                       : "-",
                   std::to_string(k), c.limit,
                   TextTable::num(per_vn_gbps, 1)});
  }
  table.render(std::cout);

  std::cout
      << "\nReading: the separate scheme scales until the device runs out\n"
         "of I/O interfaces; the merged scheme can pack more tables when\n"
         "they overlap heavily (high alpha), but each VN's guaranteed\n"
         "throughput shrinks because the single pipeline is time-shared\n"
         "and its clock degrades with the memory footprint (Sec. IV-C).\n";
  return 0;
}
