#include "power/activity.hpp"

#include "common/error.hpp"

namespace vr::power {

ActivityCounters::ActivityCounters(std::size_t vn_count,
                                   std::size_t stage_count)
    : parser_headers(vn_count, 0),
      buffer_writes(vn_count, 0),
      buffer_reads(vn_count, 0),
      crossbar_traversals(vn_count, 0),
      arbiter_decisions(vn_count, 0),
      arbiter_comparisons(vn_count, 0),
      editor_rewrites(vn_count, 0),
      stage_busy(vn_count * stage_count, 0),
      stage_reads(vn_count * stage_count, 0) {
  VR_REQUIRE(vn_count >= 1, "activity counters need at least one VN");
  VR_REQUIRE(stage_count >= 1, "activity counters need at least one stage");
}

namespace {

void add_vector(std::vector<std::uint64_t>* into,
                const std::vector<std::uint64_t>& from) {
  VR_REQUIRE(into->size() == from.size(),
             "activity counter shapes must match to merge");
  for (std::size_t i = 0; i < from.size(); ++i) (*into)[i] += from[i];
}

}  // namespace

void ActivityCounters::merge(const ActivityCounters& other) {
  cycles += other.cycles;
  add_vector(&parser_headers, other.parser_headers);
  add_vector(&buffer_writes, other.buffer_writes);
  add_vector(&buffer_reads, other.buffer_reads);
  add_vector(&crossbar_traversals, other.crossbar_traversals);
  add_vector(&arbiter_decisions, other.arbiter_decisions);
  add_vector(&arbiter_comparisons, other.arbiter_comparisons);
  add_vector(&editor_rewrites, other.editor_rewrites);
  add_vector(&stage_busy, other.stage_busy);
  add_vector(&stage_reads, other.stage_reads);
}

std::uint64_t ActivityCounters::total(
    const std::vector<std::uint64_t>& per_vn) noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : per_vn) sum += v;
  return sum;
}

}  // namespace vr::power
