#include "virt/merged_trie.hpp"

#include <algorithm>
#include <deque>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::virt {

double MergeStats::alpha_effective(std::size_t vn_count) const noexcept {
  if (vn_count <= 1) return 1.0;
  if (merged_nodes == 0) return 0.0;
  const double s = static_cast<double>(sum_input_nodes);
  const double t = static_cast<double>(merged_nodes);
  const double alpha = (s / t - 1.0) / static_cast<double>(vn_count - 1);
  return std::clamp(alpha, 0.0, 1.0);
}

MergedTrie::MergedTrie(std::span<const trie::UnibitTrie* const> tries)
    : vn_count_(tries.size()) {
  VR_REQUIRE(!tries.empty(), "merge requires at least one trie");
  for (const auto* t : tries) {
    VR_REQUIRE(t != nullptr, "null trie in merge input");
    stats_.sum_input_nodes += t->node_count();
  }

  // Breadth-first simultaneous walk of all K tries. A frame carries, for
  // each input trie, the index of its node at the current merged position
  // (kNullNode when that trie has no node here).
  std::vector<net::NextHop> next_hops;  // node-major, K entries per node
  struct Frame {
    std::vector<trie::NodeIndex> srcs;
  };
  std::deque<Frame> frontier;
  {
    Frame root;
    root.srcs.assign(vn_count_, 0);  // every trie has a root
    frontier.push_back(std::move(root));
  }
  level_offsets_.push_back(0);

  while (!frontier.empty()) {
    const std::size_t level_size = frontier.size();
    for (std::size_t i = 0; i < level_size; ++i) {
      Frame frame = std::move(frontier.front());
      frontier.pop_front();

      MergedNode node;
      std::uint16_t present = 0;
      bool any_left = false;
      bool any_right = false;
      for (std::size_t v = 0; v < vn_count_; ++v) {
        const trie::NodeIndex src = frame.srcs[v];
        net::NextHop hop = net::kNoRoute;
        if (src != trie::kNullNode) {
          ++present;
          const trie::TrieNode& n = tries[v]->node(src);
          hop = n.next_hop;
          any_left = any_left || n.left != trie::kNullNode;
          any_right = any_right || n.right != trie::kNullNode;
        }
        next_hops.push_back(hop);
      }
      node.present_in = present;

      if (any_left) {
        Frame child;
        child.srcs.resize(vn_count_);
        for (std::size_t v = 0; v < vn_count_; ++v) {
          const trie::NodeIndex src = frame.srcs[v];
          child.srcs[v] = src == trie::kNullNode ? trie::kNullNode
                                                 : tries[v]->node(src).left;
        }
        // Child indices are assigned in frontier order. At this point
        // nodes_ holds P + i nodes (P = nodes of all previous levels; the
        // current node is appended below) and the frontier holds the
        // remaining frames of this level plus the children queued so far,
        // so the child lands at P + level_size + children_so_far
        // = nodes_.size() + frontier.size() + 1.
        node.left = trie::checked_node_index(
            nodes_.size() + frontier.size() + 1, "merged trie");
        frontier.push_back(std::move(child));
      }
      if (any_right) {
        Frame child;
        child.srcs.resize(vn_count_);
        for (std::size_t v = 0; v < vn_count_; ++v) {
          const trie::NodeIndex src = frame.srcs[v];
          child.srcs[v] = src == trie::kNullNode ? trie::kNullNode
                                                 : tries[v]->node(src).right;
        }
        node.right = trie::checked_node_index(
            nodes_.size() + frontier.size() + 1, "merged trie");
        frontier.push_back(std::move(child));
      }
      nodes_.push_back(node);
      if (present >= 2) ++stats_.shared_any;
      if (present == vn_count_ && vn_count_ >= 2) ++stats_.shared_all;
    }
    level_offsets_.push_back(nodes_.size());
  }
  stats_.merged_nodes = nodes_.size();

  std::vector<trie::NodeIndex> left;
  std::vector<trie::NodeIndex> right;
  left.reserve(nodes_.size());
  right.reserve(nodes_.size());
  for (const MergedNode& node : nodes_) {
    left.push_back(node.left);
    right.push_back(node.right);
  }
  flat_ = std::make_shared<const trie::FlatTrie>(
      std::move(left), std::move(right), std::move(next_hops), vn_count_,
      level_count());
}

std::optional<net::NextHop> MergedTrie::lookup(net::Ipv4 addr,
                                               net::VnId vn) const {
  VR_REQUIRE(vn < vn_count_, "VNID out of range");
  return flat_->lookup(addr, vn);
}

std::span<const MergedNode> MergedTrie::level(std::size_t l) const {
  VR_REQUIRE(l < level_count(), "merged trie level out of range");
  return {nodes_.data() + level_offsets_[l],
          level_offsets_[l + 1] - level_offsets_[l]};
}

trie::TrieStats MergedTrie::stats_as_trie() const {
  trie::TrieStats stats;
  stats.total_nodes = nodes_.size();
  stats.height = height();
  const std::size_t levels = level_count();
  stats.nodes_per_level.assign(levels, 0);
  stats.internal_per_level.assign(levels, 0);
  stats.leaves_per_level.assign(levels, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    const auto lvl = level(l);
    stats.nodes_per_level[l] = lvl.size();
    for (const MergedNode& node : lvl) {
      if (node.is_leaf()) {
        ++stats.leaves_per_level[l];
      } else {
        ++stats.internal_per_level[l];
      }
    }
    stats.internal_nodes += stats.internal_per_level[l];
    stats.leaf_nodes += stats.leaves_per_level[l];
  }
  return stats;
}

}  // namespace vr::virt
