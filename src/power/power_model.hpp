// The two-backend dynamic-power architecture (DESIGN.md §13): one common
// DynamicPowerModel interface answered by
//
//   * MuModel       — the paper's analytical µ-weighting (Eqs. 2/4/6),
//                     delegating to AnalyticalModel so its numbers stay
//                     bit-identical to the golden figures; and
//   * ActivityModel — per-event energy accounting over measured dataplane
//                     activity (power/activity_model.hpp).
//
// Both backends draw every coefficient from the same XPE tables, so on a
// uniform trace they must agree (the `ctest -L power-model` cross-
// validation); on shaped traffic (bursty, diurnal, skewed) the divergence
// IS the measurement — what a single per-VN utilization scalar cannot
// express.
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "power/activity.hpp"
#include "power/analytical_model.hpp"
#include "power/scheme.hpp"

namespace vr::power {

/// Everything a dynamic-power backend may consult. The analytical backend
/// uses the engine specs and the operating point's µ vector; the activity
/// backend additionally requires `activity` (and charges what it counted).
struct ModelContext {
  Scheme scheme = Scheme::kSeparate;
  /// Per-VN engines (NV/VS); must have one entry per VN. Ignored by the
  /// merged scheme.
  std::span<const EngineSpec> engines;
  /// Merged engine (VM only).
  const EngineSpec* merged_engine = nullptr;
  std::size_t vn_count = 0;
  OperatingPoint op;
  /// Measured dataplane events; required by ActivityModel, ignored by
  /// MuModel.
  const ActivityCounters* activity = nullptr;
};

/// A dynamic-power estimator: attributes the lookup path's dynamic (logic
/// + memory) watts to each virtual network. Leakage is scheme bookkeeping
/// (devices × static power), not a per-VN quantity, and stays with
/// AnalyticalModel / the estimator layer.
class DynamicPowerModel {
 public:
  virtual ~DynamicPowerModel() = default;
  DynamicPowerModel() = default;
  DynamicPowerModel(const DynamicPowerModel&) = delete;
  DynamicPowerModel& operator=(const DynamicPowerModel&) = delete;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Dynamic watts of the lookup engines attributed to each VN.
  [[nodiscard]] virtual std::vector<units::Watts> per_vn_dynamic_w(
      const ModelContext& ctx) const = 0;
};

/// The analytical µ backend: P_i = µ_i · Σ_j (P(L) + P(M_{i,j})) for
/// NV/VS, and the Σµ-weighted merged engine split by offered share for VM
/// — exactly AnalyticalModel's arithmetic, resolved per VN.
class MuModel final : public DynamicPowerModel {
 public:
  explicit MuModel(fpga::DeviceSpec device);

  [[nodiscard]] const char* name() const noexcept override {
    return "mu-analytical";
  }

  [[nodiscard]] std::vector<units::Watts> per_vn_dynamic_w(
      const ModelContext& ctx) const override;

  /// The wrapped full-breakdown estimate (static + dynamic), for callers
  /// that also need leakage. Dispatches on ctx.scheme.
  [[nodiscard]] PowerBreakdown breakdown(const ModelContext& ctx) const;

  [[nodiscard]] const AnalyticalModel& analytical() const noexcept {
    return model_;
  }

 private:
  AnalyticalModel model_;
};

/// Resolves the context's µ vector the way AnalyticalModel does: the
/// operating point's explicit utilizations, or uniform 1/K when empty
/// (Assumption 1). Shared by backends and benches.
[[nodiscard]] std::vector<double> resolve_mu(const ModelContext& ctx);

}  // namespace vr::power
