#include "placement/controller.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace vr::placement {

namespace {

/// Bucket edges of the per-device watts histogram. Explicit bounds (not
/// the base-2 default): device watts cluster in [2, 60] W and base-2
/// buckets would collapse the whole fleet into three bins.
const std::vector<double>& device_watts_bounds() {
  static const std::vector<double> bounds = {2.0,  4.0,  6.0,  8.0,
                                             10.0, 12.0, 15.0, 20.0,
                                             25.0, 30.0, 40.0, 60.0};
  return bounds;
}

}  // namespace

PlacementController::PlacementController(CostOracle* oracle,
                                         ControllerConfig config,
                                         obs::Registry* registry)
    : oracle_(oracle),
      config_(config),
      policy_(make_policy(config.policy, config.exp_params)),
      fleet_(config.fleet_size),
      device_w_(config.fleet_size, 0.0) {
  VR_REQUIRE(oracle_ != nullptr, "placement controller needs a cost oracle");
  if (registry != nullptr) {
    requests_ = &registry->counter("placement.requests");
    accepted_ = &registry->counter("placement.accepted");
    rejected_ = &registry->counter("placement.rejected");
    infeasible_ = &registry->counter("placement.infeasible");
    departures_count_ = &registry->counter("placement.departures");
    migrations_ = &registry->counter("placement.migrations");
    devices_active_ = &registry->gauge("placement.devices_active");
    fleet_mw_ = &registry->gauge("placement.fleet_mw");
    device_w_hist_ =
        &registry->histogram("placement.device_w", device_watts_bounds());
  }
}

void PlacementController::apply_place(std::size_t device, const PlacedVn& vn,
                                      DeviceMode mode) {
  fleet_.place(device, vn, mode);
  const double new_w = oracle_->watts(fleet_.shape_of(device));
  fleet_w_ += new_w - device_w_[device];
  device_w_[device] = new_w;
  if (device_w_hist_ != nullptr) device_w_hist_->observe(new_w);
}

PlacedVn PlacementController::apply_remove(std::uint64_t request_id) {
  const Fleet::Removed removed = fleet_.remove(request_id);
  const DeviceShape shape = fleet_.shape_of(removed.device);
  const double new_w = shape.idle() ? 0.0 : oracle_->watts(shape);
  fleet_w_ += new_w - device_w_[removed.device];
  device_w_[removed.device] = new_w;
  return removed.vn;
}

void PlacementController::integrate_to(std::uint64_t tick,
                                       ControllerResult* result) {
  if (tick <= last_tick_) return;
  result->watt_ticks +=
      fleet_w_ * static_cast<double>(tick - last_tick_);
  last_tick_ = tick;
}

void PlacementController::handle_departures_until(std::uint64_t tick,
                                                  ControllerResult* result) {
  while (!departures_.empty() && departures_.begin()->first <= tick) {
    const auto [departure_tick, request_id] = *departures_.begin();
    departures_.erase(departures_.begin());
    if (!fleet_.contains(request_id)) continue;
    integrate_to(departure_tick, result);
    const std::size_t device = fleet_.device_of(request_id);
    apply_remove(request_id);
    ++result->departures;
    if (departures_count_ != nullptr) departures_count_->add(1);
    if (config_.consolidate) try_consolidate(device, result);
  }
}

void PlacementController::try_consolidate(std::size_t device,
                                          ControllerResult* result) {
  // Only lone survivors are re-homed: their device runs a whole static
  // power budget for one tenant, and moving a single VN is the cheapest
  // migration the dataplane can absorb.
  const DeviceState& state = fleet_.device(device);
  if (state.vns.size() != 1) return;
  const PlacedVn vn = state.vns.begin()->second;
  const Decision decision = policy_->decide(fleet_, *oracle_, vn, device);
  if (!decision.accept || decision.device == device) return;
  const double before_target_w = device_w_[decision.device];
  const DeviceShape target_after =
      fleet_.shape_with(decision.device, vn, decision.mode);
  const double added_w = oracle_->watts(target_after) - before_target_w;
  // Migrate only when emptying the source device is a net win.
  if (added_w >= device_w_[device]) return;
  apply_remove(vn.request_id);
  apply_place(decision.device, vn, decision.mode);
  ++result->migrations;
  if (migrations_ != nullptr) migrations_->add(1);
}

void PlacementController::handle_arrival(const VnRequest& request,
                                         ControllerResult* result) {
  ++result->requests;
  if (requests_ != nullptr) requests_->add(1);

  PlacedVn vn;
  vn.request_id = request.id;
  vn.bucket = oracle_->bucket_for(request.prefix_count);
  vn.mu_q = request.mu_q;
  vn.sla = request.sla;
  vn.departure_tick = request.departure_tick;

  const Decision decision = policy_->decide(fleet_, *oracle_, vn);
  if (config_.keep_trace) {
    result->trace.push_back({request.id, decision.accept, decision.device,
                             decision.mode});
  }
  if (!decision.accept) {
    ++result->rejected;
    if (rejected_ != nullptr) rejected_->add(1);
    if (!decision.feasible_exists) {
      ++result->infeasible;
      if (infeasible_ != nullptr) infeasible_->add(1);
    }
    return;
  }
  apply_place(decision.device, vn, decision.mode);
  ++result->accepted;
  if (accepted_ != nullptr) accepted_->add(1);
  if (vn.departure_tick > 0) {
    departures_.emplace(vn.departure_tick, vn.request_id);
  }
  result->peak_devices_active =
      std::max(result->peak_devices_active, fleet_.active_devices());
}

ControllerResult PlacementController::run(RequestStream& stream,
                                          std::uint64_t count) {
  ControllerResult result;
  for (std::uint64_t i = 0; i < count; ++i) {
    const VnRequest request = stream.next();
    handle_departures_until(request.arrival_tick, &result);
    integrate_to(request.arrival_tick, &result);
    handle_arrival(request, &result);
  }
  // Close the integration window one tick past the final arrival so the
  // last placement contributes energy.
  integrate_to(last_tick_ + 1, &result);
  result.devices_active = fleet_.active_devices();
  result.fleet_w = fleet_w_;
  publish_gauges(result);
  return result;
}

ControllerResult PlacementController::run(
    const std::vector<VnRequest>& requests) {
  ControllerResult result;
  for (const VnRequest& request : requests) {
    handle_departures_until(request.arrival_tick, &result);
    integrate_to(request.arrival_tick, &result);
    handle_arrival(request, &result);
  }
  integrate_to(last_tick_ + 1, &result);
  result.devices_active = fleet_.active_devices();
  result.fleet_w = fleet_w_;
  publish_gauges(result);
  return result;
}

void PlacementController::publish_gauges(const ControllerResult& result) {
  if (devices_active_ != nullptr) {
    devices_active_->set(static_cast<std::int64_t>(result.devices_active));
  }
  if (fleet_mw_ != nullptr) {
    fleet_mw_->set(std::llround(result.fleet_w * 1000.0));
  }
}

double PlacementController::recomputed_fleet_w() {
  double total_w = 0.0;
  for (const auto& [shape, devices] : fleet_.groups()) {
    total_w += oracle_->watts(shape) * static_cast<double>(devices.size());
  }
  return total_w;
}

}  // namespace vr::placement
