// Mapping of trie levels onto the stages of a linear lookup pipeline.
//
// The paper (Sec. V-D) maps each trie level onto one pipeline stage with an
// independently accessible per-stage memory, and fixes the pipeline depth at
// N = 28 stages (Sec. VI). A trie shallower than the pipeline leaves the
// tail stages empty (pass-through); a deeper trie is rejected unless a
// multi-level ("coalescing") mapping is requested, which packs consecutive
// levels into one stage (the stage then performs one memory access per
// packed level in series — its memory is the union of its levels).
#pragma once

#include <cstddef>
#include <vector>

#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {

/// Policy for fitting a trie of height H into N stages.
enum class MappingPolicy {
  /// Level i -> stage i. Requires level_count <= stage_count; trailing
  /// stages are empty.
  kOneLevelPerStage,
  /// Contiguous level ranges distributed as evenly as possible over the
  /// stages (used when the trie is deeper than the pipeline).
  kCoalesce,
};

/// An immutable level->stage assignment.
class StageMapping {
 public:
  /// Builds a mapping for `level_count` levels onto `stage_count` stages.
  /// Throws vr::CapacityError for kOneLevelPerStage when levels exceed
  /// stages.
  StageMapping(std::size_t level_count, std::size_t stage_count,
               MappingPolicy policy);

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stage_count_;
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return stage_of_level_.size();
  }

  /// Stage handling trie level `l`.
  [[nodiscard]] std::size_t stage_of(std::size_t level) const;

  /// Levels handled by stage `s` as an inclusive-exclusive [first, last)
  /// range; empty stages return an empty range.
  [[nodiscard]] std::pair<std::size_t, std::size_t> levels_of(
      std::size_t stage) const;

  /// Maximum number of levels packed into any one stage (1 for
  /// kOneLevelPerStage). The pipeline needs this many memory accesses per
  /// stage in the worst case, which divides the achievable packet rate.
  [[nodiscard]] std::size_t max_levels_per_stage() const noexcept {
    return max_levels_per_stage_;
  }

 private:
  std::size_t stage_count_;
  std::vector<std::size_t> stage_of_level_;
  std::size_t max_levels_per_stage_ = 0;
};

/// Per-stage node counts for a trie under a mapping: the M_{i,j} inputs of
/// the power model.
struct StageOccupancy {
  /// Per stage: total / internal / leaf node counts.
  std::vector<std::size_t> nodes;
  std::vector<std::size_t> internal_nodes;
  std::vector<std::size_t> leaf_nodes;
};

[[nodiscard]] StageOccupancy occupancy(const TrieStats& stats,
                                       const StageMapping& mapping);

}  // namespace vr::trie
