#include "netbase/table_gen.hpp"

#include <algorithm>
#include <set>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::net {

TableProfile TableProfile::edge_default() { return TableProfile{}; }

TableProfile TableProfile::worst_case() {
  TableProfile profile;
  profile.prefix_count = 10000;
  profile.provider_blocks = 20;
  profile.density_span = 8192;
  return profile;
}

SyntheticTableGenerator::SyntheticTableGenerator(TableProfile profile)
    : profile_(std::move(profile)) {
  VR_REQUIRE(profile_.prefix_count > 0, "prefix_count must be positive");
  VR_REQUIRE(profile_.provider_blocks > 0, "provider_blocks must be positive");
  VR_REQUIRE(profile_.provider_block_length <= 24,
             "provider blocks longer than /24 leave no room for prefixes");
  VR_REQUIRE(!profile_.length_weights.empty(), "length_weights empty");
  VR_REQUIRE(profile_.min_length >= profile_.provider_block_length,
             "prefixes must be at least as long as their provider block");
  VR_REQUIRE(profile_.min_length + profile_.length_weights.size() - 1 <= 32,
             "length distribution extends past /32");
  VR_REQUIRE(profile_.next_hop_count > 0, "need at least one next hop");
  VR_REQUIRE(profile_.density_span > 0, "density_span must be positive");
}

Route SyntheticTableGenerator::draw(
    Rng& rng, const std::vector<std::uint32_t>& blocks) const {
  const std::size_t block_index = rng.next_below(blocks.size());
  const std::uint32_t block = blocks[block_index];
  const auto length_offset = static_cast<unsigned>(rng.next_weighted(
      profile_.length_weights.data(), profile_.length_weights.size()));
  const unsigned length = profile_.min_length + length_offset;

  const unsigned suffix_bits = length - profile_.provider_block_length;
  const std::uint64_t space =
      suffix_bits >= 64 ? 0 : (std::uint64_t{1} << suffix_bits);
  const std::uint64_t span = std::min<std::uint64_t>(
      profile_.density_span, space == 0 ? profile_.density_span : space);
  const auto suffix = static_cast<std::uint32_t>(rng.next_below(span));

  const std::uint32_t address =
      block | (suffix << (32u - length)) ;
  const auto next_hop =
      static_cast<NextHop>(rng.next_below(profile_.next_hop_count));
  return Route{Prefix(Ipv4(address), length), next_hop};
}

RoutingTable SyntheticTableGenerator::generate(std::uint64_t seed) const {
  // Feasibility: the densest reachable suffix space must be able to hold the
  // requested number of unique prefixes across all blocks and lengths.
  std::uint64_t capacity = 0;
  for (std::size_t li = 0; li < profile_.length_weights.size(); ++li) {
    if (profile_.length_weights[li] <= 0.0) continue;
    const unsigned length = profile_.min_length + static_cast<unsigned>(li);
    const unsigned suffix_bits = length - profile_.provider_block_length;
    const std::uint64_t space = suffix_bits >= 63
                                    ? profile_.density_span
                                    : (std::uint64_t{1} << suffix_bits);
    capacity += static_cast<std::uint64_t>(profile_.provider_blocks) *
                std::min<std::uint64_t>(profile_.density_span, space);
    if (capacity >= profile_.prefix_count * 2) break;  // plenty
  }
  if (capacity < profile_.prefix_count) {
    throw InvalidArgumentError(
        "table profile cannot produce the requested number of unique "
        "prefixes; widen density_span or add provider blocks");
  }

  Rng rng(seed);

  // Pick distinct provider blocks.
  std::set<std::uint32_t> block_set;
  while (block_set.size() < profile_.provider_blocks) {
    const std::uint64_t raw =
        rng.next_below(std::uint64_t{1} << profile_.provider_block_length);
    block_set.insert(static_cast<std::uint32_t>(raw)
                     << (32u - profile_.provider_block_length));
  }
  const std::vector<std::uint32_t> blocks(block_set.begin(), block_set.end());

  std::set<Prefix> seen;
  std::vector<Route> routes;
  routes.reserve(profile_.prefix_count);
  // Rejection loop with a generous bound: duplicates are common by design
  // (clustering), but the feasibility check above guarantees progress.
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = profile_.prefix_count * 1000ULL + 100000;
  while (routes.size() < profile_.prefix_count) {
    VR_REQUIRE(attempts++ < max_attempts,
               "table generation failed to converge; profile too dense");
    // Nested draw: truncate a previously generated prefix (adds a covering
    // route without new trie nodes — the dominant structure of real edge
    // tables, see TableProfile::nested_fraction).
    if (!routes.empty() && rng.next_bool(profile_.nested_fraction)) {
      const Route& parent = routes[rng.next_below(routes.size())];
      if (parent.prefix.length() > profile_.min_length) {
        const unsigned new_len = static_cast<unsigned>(rng.next_in(
            profile_.min_length, parent.prefix.length() - 1));
        const Prefix truncated(parent.prefix.address(), new_len);
        if (seen.insert(truncated).second) {
          const auto next_hop =
              static_cast<NextHop>(rng.next_below(profile_.next_hop_count));
          routes.push_back(Route{truncated, next_hop});
        }
      }
      continue;
    }
    Route route = draw(rng, blocks);
    if (seen.insert(route.prefix).second) {
      routes.push_back(route);
    }
  }
  return RoutingTable(std::move(routes));
}

}  // namespace vr::net
