#include "netbase/prefix.hpp"

#include <charconv>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::net {

Prefix::Prefix(Ipv4 address, unsigned length) noexcept
    : address_(address.value() & prefix_mask(length)), length_(length) {
  VR_REQUIRE(length <= 32, "prefix length must be in [0,32]");
}

bool Prefix::contains(Ipv4 addr) const noexcept {
  return (addr.value() & prefix_mask(length_)) == address_.value();
}

bool Prefix::covers(const Prefix& other) const noexcept {
  return length_ <= other.length_ && contains(other.address_);
}

bool Prefix::bit(unsigned i) const noexcept {
  return bit_at(address_.value(), i);
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  const auto [next, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  // Require the address to already be canonical so that parsing round-trips.
  if ((addr->value() & ~prefix_mask(length)) != 0) return std::nullopt;
  return Prefix(*addr, length);
}

}  // namespace vr::net
