# Empty dependencies file for vr_netbase.
# This may be replaced when dependencies are built.
