// Software-prefetch tuning for the batched lookup hot paths.
//
// The batched lookup loops (FlatTrie::lookup_batch and
// FlatMultibitTrie::lookup_batch) keep a window of D lookups in flight and
// interleave their traversal steps: while lane i's node is being resolved,
// the node lane i will visit *next* round has already been prefetched, so
// the DRAM latency of up to D pointer chases overlaps instead of
// serializing. D is the prefetch distance; 1 disables pipelining (straight
// scalar loop per key).
//
// Each structure passes its own bench-chosen default (perf_lookup sweeps
// D): the stride-k image wants a deep window (few, expensive steps per
// key), the uni-bit trie a window of 1 (its per-step work is too small to
// amortize the lane bookkeeping). VR_PREFETCH_DIST overrides both.
#pragma once

namespace vr::trie {

/// Hard ceiling on the in-flight lookup window (lane state lives in a
/// fixed-size stack array).
inline constexpr unsigned kMaxPrefetchDistance = 32;

/// Bench-chosen per-structure defaults (see perf_lookup).
inline constexpr unsigned kUnibitPrefetchDistance = 1;
inline constexpr unsigned kMultibitPrefetchDistance = 8;

/// The batch pipelining window: the VR_PREFETCH_DIST environment variable
/// when it parses as an integer in [1, kMaxPrefetchDistance], else
/// `fallback`. Invalid values warn once on stderr and use the fallback.
[[nodiscard]] unsigned prefetch_distance(unsigned fallback);

/// Portable prefetch-for-read hint; compiles to nothing when the builtin
/// is unavailable.
inline void prefetch_read(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
#else
  (void)address;
#endif
}

}  // namespace vr::trie
