file(REMOVE_RECURSE
  "CMakeFiles/fig3_logic_power.dir/fig3_logic_power.cpp.o"
  "CMakeFiles/fig3_logic_power.dir/fig3_logic_power.cpp.o.d"
  "fig3_logic_power"
  "fig3_logic_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_logic_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
