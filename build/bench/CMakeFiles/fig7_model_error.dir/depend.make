# Empty dependencies file for fig7_model_error.
# This may be replaced when dependencies are built.
