// perf_sweep — times a full Figs. 5–8 regeneration (both speed grades)
// three ways and emits machine-readable JSON so future PRs have a perf
// trajectory:
//   1. serial-cold:     threads = 1, no workload cache (the seed behaviour)
//   2. parallel-cold:   N threads + WorkloadCache, cache cleared first
//   3. parallel-warm:   same builder against the warm cache
// It also cross-checks that all three runs produce byte-identical CSV (the
// determinism contract of SweepRunner + WorkloadCache) and measures the
// flat-SoA batched-lookup throughput. Exits non-zero if outputs diverge.
//
// Flags: --threads N, --output FILE (default BENCH_sweep.json), --quick
// (reduced table/sweep for CI smoke use). The obs registry (cache hit
// rate, per-task sweep timing, dataplane drop/latency stats) is embedded
// in the JSON under "metrics"; --metrics[=path] additionally dumps it to
// its own file.
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/sweep.hpp"
#include "core/workload_cache.hpp"
#include "dataplane/full_router.hpp"
#include "netbase/table_gen.hpp"
#include "trie/flat_trie.hpp"
#include "trie/unibit_trie.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Renders every table of the Figs. 5–8 regeneration to one CSV blob.
std::string regenerate(const vr::core::FigureBuilder& builder) {
  std::ostringstream os;
  for (const auto grade :
       {vr::fpga::SpeedGrade::kMinus2, vr::fpga::SpeedGrade::kMinus1L}) {
    builder.fig5_total_power(grade).render_csv(os);
    builder.fig6_virtualized_power(grade).render_csv(os);
    builder.fig7_model_error(grade).render_csv(os);
    builder.fig8_efficiency(grade).render_csv(os);
  }
  return os.str();
}

/// Million lookups per second of the batched flat-SoA hot path.
double batched_lookup_mlps(const vr::core::FigureOptions& opt) {
  const vr::net::SyntheticTableGenerator gen(opt.table_profile);
  const vr::trie::UnibitTrie trie =
      vr::trie::UnibitTrie(gen.generate(opt.seed)).leaf_pushed();
  vr::Rng rng(42);
  std::vector<vr::net::Ipv4> addrs;
  constexpr std::size_t kLookups = 1u << 20;
  addrs.reserve(kLookups);
  for (std::size_t i = 0; i < kLookups; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  const auto start = Clock::now();
  const std::vector<vr::net::NextHop> hops = trie.lookup_batch(addrs);
  const double ms = ms_since(start);
  // Fold the results so the loop cannot be optimized away.
  std::uint64_t sink = 0;
  for (const vr::net::NextHop hop : hops) sink += hop;
  if (sink == 0xdeadbeef) std::cerr << "";  // defeat DCE, never taken
  return static_cast<double>(kLookups) / 1e3 / ms;
}

/// One small deterministic end-to-end dataplane run (3 VNs, separate
/// engines, a tight queue to force some tail drops) so the embedded
/// metrics block carries scheduler drop and latency statistics.
vr::dataplane::FullRouterResult dataplane_phase(bool quick) {
  using namespace vr;
  net::TableProfile profile;
  profile.prefix_count = quick ? 200 : 600;
  const net::SyntheticTableGenerator gen(profile);
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  for (std::uint64_t v = 0; v < 3; ++v) tables.push_back(gen.generate(30 + v));
  for (const auto& t : tables) table_ptrs.push_back(&t);

  std::vector<trie::UnibitTrie> tries;
  std::vector<pipeline::TrieView> views;
  for (const auto& t : tables) {
    tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
  }
  for (const auto& t : tries) views.emplace_back(t);

  dataplane::FrameGenConfig frame_config;
  frame_config.traffic.cycles = quick ? 3000 : 10000;
  frame_config.traffic.load = 0.7;
  frame_config.corrupt_fraction = 0.02;
  const dataplane::FrameGenerator frames(frame_config, table_ptrs);

  dataplane::FullRouterConfig router_config;
  router_config.scheduler.vn_count = 3;
  router_config.scheduler.port_count = 16;
  router_config.scheduler.queue_capacity = 8;  // tight: provoke tail drops
  pipeline::SeparateRouter lookup(views, 28);
  return run_full_router(lookup, frames.generate(7), router_config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  core::FigureOptions base;
  std::string output = "BENCH_sweep.json";
  bool quick = false;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  if (quick) {
    base.table_profile.prefix_count = 600;
    base.max_vn = 6;
    base.memory_max_vn = 8;
  }
  const std::size_t parallel_threads =
      threads == 0 ? core::default_sweep_threads() : threads;
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();

  // 1. Serial cold: the seed behaviour (one thread, every workload
  //    rebuilt at every sweep point).
  core::FigureOptions serial = base;
  serial.threads = 1;
  serial.use_cache = false;
  core::WorkloadCache::global().clear();
  const auto serial_start = Clock::now();
  const std::string serial_csv =
      regenerate(core::FigureBuilder(device, serial));
  const double serial_ms = ms_since(serial_start);

  // 2. Parallel + cache, cold.
  core::FigureOptions parallel = base;
  parallel.threads = parallel_threads;
  parallel.use_cache = true;
  core::WorkloadCache::global().clear();
  const core::FigureBuilder parallel_builder(device, parallel);
  const auto cold_start = Clock::now();
  const std::string parallel_csv = regenerate(parallel_builder);
  const double parallel_cold_ms = ms_since(cold_start);
  const core::WorkloadCache::Stats cold_stats =
      core::WorkloadCache::global().stats();

  // 3. Same builder, warm cache.
  const auto warm_start = Clock::now();
  const std::string warm_csv = regenerate(parallel_builder);
  const double parallel_warm_ms = ms_since(warm_start);

  const bool identical =
      serial_csv == parallel_csv && parallel_csv == warm_csv;
  const double speedup_cold = serial_ms / parallel_cold_ms;
  const double speedup_warm = serial_ms / parallel_warm_ms;
  const double mlps = batched_lookup_mlps(base);
  const dataplane::FullRouterResult dataplane = dataplane_phase(quick);

  TextTable table("perf_sweep - full Figs. 5-8 regeneration, both grades" +
                  std::string(quick ? " (quick profile)" : ""));
  table.set_header({"mode", "wall ms", "speedup vs serial"});
  table.add_row({"serial cold (seed behaviour)", TextTable::num(serial_ms, 1),
                 "1.000"});
  table.add_row({"parallel cold (" + std::to_string(parallel_threads) +
                     " threads + cache)",
                 TextTable::num(parallel_cold_ms, 1),
                 TextTable::num(speedup_cold, 3)});
  table.add_row({"parallel warm (cache hit)",
                 TextTable::num(parallel_warm_ms, 1),
                 TextTable::num(speedup_warm, 3)});
  vr::bench::emit(table);
  std::cout << "outputs byte-identical across modes: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << '\n'
            << "workload cache: " << cold_stats.hits << " hits / "
            << cold_stats.misses << " misses on the cold parallel run\n"
            << "flat SoA batched lookup: " << TextTable::num(mlps, 2)
            << " Mlookups/s\n"
            << "dataplane phase: " << dataplane.scheduler.transmitted
            << " transmitted / " << dataplane.scheduler.tail_drops
            << " tail drops, p99 egress wait "
            << TextTable::num(dataplane.egress_wait.quantile(0.99), 1)
            << " cycles\n";

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_sweep\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"figures\": [\"fig5\", \"fig6\", \"fig7\", \"fig8\"],\n"
       << "  \"grades\": [\"-2\", \"-1L\"],\n"
       << "  \"threads\": " << parallel_threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"serial_cold_ms\": " << TextTable::num(serial_ms, 3) << ",\n"
       << "  \"parallel_cold_ms\": " << TextTable::num(parallel_cold_ms, 3)
       << ",\n"
       << "  \"parallel_warm_ms\": " << TextTable::num(parallel_warm_ms, 3)
       << ",\n"
       << "  \"speedup_parallel_cached_vs_serial\": "
       << TextTable::num(speedup_cold, 3) << ",\n"
       << "  \"speedup_warm_vs_serial\": " << TextTable::num(speedup_warm, 3)
       << ",\n"
       << "  \"outputs_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"cache_hits\": " << cold_stats.hits << ",\n"
       << "  \"cache_misses\": " << cold_stats.misses << ",\n"
       << "  \"batched_lookup_mlps\": " << TextTable::num(mlps, 3) << ",\n"
       << "  \"metrics\": "
       << obs::MetricsSink(obs::Registry::global()).json(2) << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';

  if (!identical) return 1;
  return 0;
}
