// BGP-like update-stream generation: announce/withdraw sequences against a
// base table, used to drive the incremental-update machinery (paper
// Sec. V-B's "low update rate" assumption and reference [6]).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netbase/routing_table.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/route_update.hpp"

namespace vr::net {

struct UpdateStreamConfig {
  std::size_t update_count = 1000;
  /// Mix of operations (need not be normalized): withdraw an installed
  /// route / announce a brand-new prefix / re-announce an installed prefix
  /// with a new next hop (path change — the dominant BGP churn in
  /// practice).
  double withdraw_weight = 0.25;
  double announce_new_weight = 0.25;
  double reannounce_weight = 0.50;
  /// Profile used to draw brand-new prefixes.
  TableProfile profile = TableProfile::edge_default();
};

/// Generates deterministic update streams that are *consistent*: withdraws
/// and re-announces always target a currently-installed prefix (the
/// generator tracks the evolving table).
class UpdateStreamGenerator {
 public:
  explicit UpdateStreamGenerator(UpdateStreamConfig config);

  /// Builds a stream starting from `base`. The returned updates, applied
  /// in order to `base`, keep the table valid at every step.
  [[nodiscard]] std::vector<RouteUpdate> generate(
      const RoutingTable& base, std::uint64_t seed) const;

  [[nodiscard]] const UpdateStreamConfig& config() const noexcept {
    return config_;
  }

 private:
  UpdateStreamConfig config_;
  SyntheticTableGenerator fresh_gen_;
};

}  // namespace vr::net
