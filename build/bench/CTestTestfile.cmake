# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig7_bound "/root/repo/build/bench/fig7_model_error")
set_tests_properties(bench_fig7_bound PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_seed_sweep_bound "/root/repo/build/bench/validation_seed_sweep")
set_tests_properties(bench_seed_sweep_bound PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
