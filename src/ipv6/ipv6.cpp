#include "ipv6/ipv6.hpp"

#include <algorithm>
#include <array>
#include <charconv>

#include "common/error.hpp"

namespace vr::ipv6 {

namespace {

std::array<std::uint16_t, 8> groups_of(const Ipv6& addr) {
  std::array<std::uint16_t, 8> groups{};
  for (unsigned i = 0; i < 4; ++i) {
    groups[i] = static_cast<std::uint16_t>(addr.hi() >> (48u - 16u * i));
    groups[4 + i] =
        static_cast<std::uint16_t>(addr.lo() >> (48u - 16u * i));
  }
  return groups;
}

}  // namespace

Ipv6 Ipv6::masked(unsigned length) const noexcept {
  if (length >= 128) return *this;
  if (length == 0) return Ipv6();
  if (length <= 64) {
    const std::uint64_t mask =
        length == 0 ? 0 : ~std::uint64_t{0} << (64u - length);
    return Ipv6(hi_ & mask, 0);
  }
  const std::uint64_t mask = ~std::uint64_t{0} << (128u - length);
  return Ipv6(hi_, lo_ & mask);
}

std::string Ipv6::to_string() const {
  const auto groups = groups_of(*this);
  // Find the longest run of zero groups (>= 2) for "::" compression.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[5];
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    const auto [end, ec] = std::to_chars(
        buf, buf + sizeof buf, groups[static_cast<std::size_t>(i)], 16);
    (void)ec;
    out.append(buf, end);
  }
  if (out.empty()) out = "::";
  return out;
}

std::optional<Ipv6> Ipv6::parse(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  // Split on "::" (at most one).
  const auto gap = text.find("::");
  std::string_view head = text;
  std::string_view tail;
  bool has_gap = false;
  if (gap != std::string_view::npos) {
    has_gap = true;
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
    if (tail.find("::") != std::string_view::npos) return std::nullopt;
  }

  auto parse_groups =
      [](std::string_view part,
         std::vector<std::uint16_t>* out) noexcept -> bool {
    if (part.empty()) return true;
    const char* it = part.data();
    const char* const end = part.data() + part.size();
    while (true) {
      std::uint32_t value = 0;
      const auto [next, ec] = std::from_chars(it, end, value, 16);
      if (ec != std::errc{} || next == it || value > 0xffff) return false;
      if (next - it > 4) return false;
      out->push_back(static_cast<std::uint16_t>(value));
      it = next;
      if (it == end) return true;
      if (*it != ':') return false;
      ++it;
      if (it == end) return false;  // trailing single colon
    }
  };

  std::vector<std::uint16_t> head_groups;
  std::vector<std::uint16_t> tail_groups;
  if (!parse_groups(head, &head_groups)) return std::nullopt;
  if (!parse_groups(tail, &tail_groups)) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  if (has_gap) {
    if (head_groups.size() + tail_groups.size() > 7) return std::nullopt;
    for (std::size_t i = 0; i < head_groups.size(); ++i) {
      groups[i] = head_groups[i];
    }
    for (std::size_t i = 0; i < tail_groups.size(); ++i) {
      groups[8 - tail_groups.size() + i] = tail_groups[i];
    }
  } else {
    if (head_groups.size() != 8) return std::nullopt;
    std::copy(head_groups.begin(), head_groups.end(), groups.begin());
  }

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (unsigned i = 0; i < 4; ++i) {
    hi |= std::uint64_t{groups[i]} << (48u - 16u * i);
    lo |= std::uint64_t{groups[4 + i]} << (48u - 16u * i);
  }
  return Ipv6(hi, lo);
}

Prefix6::Prefix6(Ipv6 address, unsigned length) noexcept
    : address_(address.masked(length)), length_(length) {
  VR_REQUIRE(length <= 128, "IPv6 prefix length must be in [0,128]");
}

bool Prefix6::contains(const Ipv6& addr) const noexcept {
  return addr.masked(length_) == address_;
}

std::string Prefix6::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

RoutingTable6::RoutingTable6(std::vector<Route6> routes)
    : routes_(std::move(routes)) {
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route6& a, const Route6& b) {
                     return a.prefix < b.prefix;
                   });
  const auto last = std::unique(
      routes_.rbegin(), routes_.rend(),
      [](const Route6& a, const Route6& b) { return a.prefix == b.prefix; });
  routes_.erase(routes_.begin(), last.base());
}

void RoutingTable6::add(const Prefix6& prefix, net::NextHop next_hop) {
  const Route6 key{prefix, next_hop};
  const auto it = std::lower_bound(
      routes_.begin(), routes_.end(), key,
      [](const Route6& a, const Route6& b) { return a.prefix < b.prefix; });
  if (it != routes_.end() && it->prefix == prefix) {
    it->next_hop = next_hop;
  } else {
    routes_.insert(it, key);
  }
}

std::optional<net::NextHop> RoutingTable6::lookup(const Ipv6& addr) const {
  std::optional<net::NextHop> best;
  unsigned best_len = 0;
  for (const Route6& route : routes_) {
    if (route.prefix.contains(addr) &&
        (!best || route.prefix.length() >= best_len)) {
      best = route.next_hop;
      best_len = route.prefix.length();
    }
  }
  return best;
}

unsigned RoutingTable6::max_prefix_length() const noexcept {
  unsigned max_len = 0;
  for (const Route6& route : routes_) {
    max_len = std::max(max_len, route.prefix.length());
  }
  return max_len;
}

}  // namespace vr::ipv6
