// perf_sweep — times a full Figs. 5–8 regeneration (both speed grades)
// three ways and emits machine-readable JSON so future PRs have a perf
// trajectory:
//   1. serial-cold:     threads = 1, no workload cache (the seed behaviour)
//   2. parallel-cold:   N threads + WorkloadCache, cache cleared first
//   3. parallel-warm:   same builder against the warm cache
// It also cross-checks that all three runs produce byte-identical CSV (the
// determinism contract of SweepRunner + WorkloadCache) and measures the
// flat-SoA batched-lookup throughput. Exits non-zero if outputs diverge.
//
// Flags: --threads N, --output FILE (default BENCH_sweep.json), --quick
// (reduced table/sweep for CI smoke use). The obs registry (cache hit
// rate, per-task sweep timing, dataplane drop/latency stats) is embedded
// in the JSON under "metrics"; --metrics[=path] additionally dumps it to
// its own file.
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/sweep.hpp"
#include "core/workload_cache.hpp"
#include "dataplane/full_router.hpp"
#include "lookup_bench.hpp"
#include "netbase/table_gen.hpp"
#include "trie/flat_multibit_trie.hpp"
#include "trie/flat_trie.hpp"
#include "trie/snapshot_publisher.hpp"
#include "trie/unibit_trie.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Renders every table of the Figs. 5–8 regeneration to one CSV blob.
std::string regenerate(const vr::core::FigureBuilder& builder) {
  std::ostringstream os;
  for (const auto grade :
       {vr::fpga::SpeedGrade::kMinus2, vr::fpga::SpeedGrade::kMinus1L}) {
    builder.fig5_total_power(grade).render_csv(os);
    builder.fig6_virtualized_power(grade).render_csv(os);
    builder.fig7_model_error(grade).render_csv(os);
    builder.fig8_efficiency(grade).render_csv(os);
  }
  return os.str();
}

/// The lookup-path numbers perf_sweep records next to the figure timings
/// (perf_lookup measures the same quantities in more depth).
struct LookupSection {
  double unibit_mlps = 0.0;
  double multibit_mlps = 0.0;      ///< stride-8 image, single thread
  double per_thread_mlps = 0.0;    ///< stride-8 image across the pool
  double update_publish_p99_us = 0.0;
};

/// Measures the batched flat-SoA hot paths and one churn run on the
/// bench's own table profile.
LookupSection lookup_section(const vr::core::FigureOptions& opt, bool quick,
                             std::size_t pool) {
  using namespace vr;
  LookupSection out;
  const net::RoutingTable table =
      net::SyntheticTableGenerator(opt.table_profile).generate(opt.seed);
  const std::size_t key_count = quick ? (1u << 16) : (1u << 20);
  const unsigned reps = quick ? 2 : 3;
  const std::vector<net::Ipv4> addrs = bench::random_addresses(key_count, 42);
  std::uint64_t sink = 0;

  const trie::UnibitTrie unibit = trie::UnibitTrie(table).leaf_pushed();
  out.unibit_mlps = bench::batch_mlps(
      addrs, [&] { return unibit.lookup_batch(addrs); }, reps, &sink);

  const trie::FlatMultibitTrie multibit(table, /*stride=*/8);
  out.multibit_mlps = bench::batch_mlps(
      addrs, [&] { return multibit.lookup_batch(addrs); }, reps, &sink);
  const bench::ThreadedMlps scaling = bench::threaded_mlps(
      addrs, [&] { return multibit.lookup_batch(addrs); }, pool, reps,
      &sink);
  out.per_thread_mlps = scaling.per_thread_mlps;

  trie::SnapshotPublisher publisher(table, /*stride=*/8);
  const bench::ChurnResult churn = bench::publisher_churn(
      publisher, table, /*batches=*/quick ? 8 : 32,
      /*updates_per_batch=*/64, /*seed=*/7);
  out.update_publish_p99_us = churn.publish_p99_us;
  if (sink == 0xdeadbeef) std::cerr << "";  // defeat DCE, never taken
  return out;
}

/// One small deterministic end-to-end dataplane run (3 VNs, separate
/// engines, a tight queue to force some tail drops) so the embedded
/// metrics block carries scheduler drop and latency statistics.
vr::dataplane::FullRouterResult dataplane_phase(bool quick) {
  using namespace vr;
  net::TableProfile profile;
  profile.prefix_count = quick ? 200 : 600;
  const net::SyntheticTableGenerator gen(profile);
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  for (std::uint64_t v = 0; v < 3; ++v) tables.push_back(gen.generate(30 + v));
  for (const auto& t : tables) table_ptrs.push_back(&t);

  std::vector<trie::UnibitTrie> tries;
  std::vector<pipeline::TrieView> views;
  for (const auto& t : tables) {
    tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
  }
  for (const auto& t : tries) views.emplace_back(t);

  dataplane::FrameGenConfig frame_config;
  frame_config.traffic.cycles = quick ? 3000 : 10000;
  frame_config.traffic.load = 0.7;
  frame_config.corrupt_fraction = 0.02;
  const dataplane::FrameGenerator frames(frame_config, table_ptrs);

  dataplane::FullRouterConfig router_config;
  router_config.scheduler.vn_count = 3;
  router_config.scheduler.port_count = 16;
  router_config.scheduler.queue_capacity = 8;  // tight: provoke tail drops
  pipeline::SeparateRouter lookup(views, 28);
  return run_full_router(lookup, frames.generate(7), router_config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  core::FigureOptions base;
  std::string output = "BENCH_sweep.json";
  bool quick = false;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  if (quick) {
    base.table_profile.prefix_count = 600;
    base.max_vn = 6;
    base.memory_max_vn = 8;
  }
  const core::ConcurrencyProbe probe = core::probe_concurrency();
  const std::size_t parallel_threads = threads == 0 ? probe.threads : threads;
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();

  // 1. Serial cold: the seed behaviour (one thread, every workload
  //    rebuilt at every sweep point).
  core::FigureOptions serial = base;
  serial.threads = 1;
  serial.use_cache = false;
  core::WorkloadCache::global().clear();
  const auto serial_start = Clock::now();
  const std::string serial_csv =
      regenerate(core::FigureBuilder(device, serial));
  const double serial_ms = ms_since(serial_start);

  // 2. Parallel + cache, cold.
  core::FigureOptions parallel = base;
  parallel.threads = parallel_threads;
  parallel.use_cache = true;
  core::WorkloadCache::global().clear();
  const core::FigureBuilder parallel_builder(device, parallel);
  const auto cold_start = Clock::now();
  const std::string parallel_csv = regenerate(parallel_builder);
  const double parallel_cold_ms = ms_since(cold_start);
  const core::WorkloadCache::Stats cold_stats =
      core::WorkloadCache::global().stats();

  // 3. Same builder, warm cache.
  const auto warm_start = Clock::now();
  const std::string warm_csv = regenerate(parallel_builder);
  const double parallel_warm_ms = ms_since(warm_start);

  const bool identical =
      serial_csv == parallel_csv && parallel_csv == warm_csv;
  const double speedup_cold = serial_ms / parallel_cold_ms;
  const double speedup_warm = serial_ms / parallel_warm_ms;
  const LookupSection lookup = lookup_section(base, quick, parallel_threads);
  const double mlps = lookup.unibit_mlps;
  const dataplane::FullRouterResult dataplane = dataplane_phase(quick);

  TextTable table("perf_sweep - full Figs. 5-8 regeneration, both grades" +
                  std::string(quick ? " (quick profile)" : ""));
  table.set_header({"mode", "wall ms", "speedup vs serial"});
  table.add_row({"serial cold (seed behaviour)", TextTable::num(serial_ms, 1),
                 "1.000"});
  table.add_row({"parallel cold (" + std::to_string(parallel_threads) +
                     " threads + cache)",
                 TextTable::num(parallel_cold_ms, 1),
                 TextTable::num(speedup_cold, 3)});
  table.add_row({"parallel warm (cache hit)",
                 TextTable::num(parallel_warm_ms, 1),
                 TextTable::num(speedup_warm, 3)});
  vr::bench::emit(table);
  std::cout << "outputs byte-identical across modes: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << '\n'
            << "workload cache: " << cold_stats.hits << " hits / "
            << cold_stats.misses << " misses on the cold parallel run\n"
            << "flat SoA batched lookup: " << TextTable::num(mlps, 2)
            << " Mlookups/s unibit, " << TextTable::num(lookup.multibit_mlps, 2)
            << " multibit (stride 8), "
            << TextTable::num(lookup.per_thread_mlps, 2) << " per thread ("
            << parallel_threads << " threads)\n"
            << "snapshot publisher: p99 "
            << TextTable::num(lookup.update_publish_p99_us, 1)
            << " us per publish\n"
            << "dataplane phase: " << dataplane.scheduler.transmitted
            << " transmitted / " << dataplane.scheduler.tail_drops
            << " tail drops, p99 egress wait "
            << TextTable::num(dataplane.egress_wait.quantile(0.99), 1)
            << " cycles\n";

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_sweep\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"figures\": [\"fig5\", \"fig6\", \"fig7\", \"fig8\"],\n"
       << "  \"grades\": [\"-2\", \"-1L\"],\n"
       << "  \"threads\": " << parallel_threads << ",\n"
       << "  \"hardware_concurrency\": " << probe.threads << ",\n"
       << "  \"hardware_concurrency_source\": \"" << probe.source << "\",\n"
       << "  \"serial_cold_ms\": " << TextTable::num(serial_ms, 3) << ",\n"
       << "  \"parallel_cold_ms\": " << TextTable::num(parallel_cold_ms, 3)
       << ",\n"
       << "  \"parallel_warm_ms\": " << TextTable::num(parallel_warm_ms, 3)
       << ",\n"
       << "  \"speedup_parallel_cached_vs_serial\": "
       << TextTable::num(speedup_cold, 3) << ",\n"
       << "  \"speedup_warm_vs_serial\": " << TextTable::num(speedup_warm, 3)
       << ",\n"
       << "  \"outputs_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"cache_hits\": " << cold_stats.hits << ",\n"
       << "  \"cache_misses\": " << cold_stats.misses << ",\n"
       << "  \"batched_lookup_mlps\": " << TextTable::num(mlps, 3) << ",\n"
       << "  \"lookup_mlps_multibit\": "
       << TextTable::num(lookup.multibit_mlps, 3) << ",\n"
       << "  \"lookup_mlps_per_thread\": "
       << TextTable::num(lookup.per_thread_mlps, 3) << ",\n"
       << "  \"update_publish_p99_us\": "
       << TextTable::num(lookup.update_publish_p99_us, 3) << ",\n"
       << "  \"metrics\": "
       << obs::MetricsSink(obs::Registry::global()).json(2) << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';

  if (!identical) return 1;
  return 0;
}
