#include <gtest/gtest.h>

#include <cmath>

#include "fpga/xpe_tables.hpp"
#include "power/analytical_model.hpp"
#include "power/efficiency.hpp"
#include "power/resource_model.hpp"
#include "power/scheme.hpp"

namespace vr::power {
namespace {

EngineSpec uniform_engine(std::size_t stages, std::uint64_t bits_per_stage) {
  EngineSpec engine;
  engine.stage_bits.assign(stages, bits_per_stage);
  return engine;
}

OperatingPoint default_op(double freq = 400.0,
                          fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2) {
  OperatingPoint op;
  op.grade = grade;
  op.freq_mhz = units::Megahertz{freq};
  return op;
}

class AnalyticalModelTest : public ::testing::Test {
 protected:
  fpga::DeviceSpec device_ = fpga::DeviceSpec::xc6vlx760();
  AnalyticalModel model_{device_};
};

// -------------------------------------------------------------- scheme --

TEST(SchemeTest, DeviceAndEngineCounts) {
  EXPECT_EQ(devices_for(Scheme::kNonVirtualized, 7), 7u);
  EXPECT_EQ(devices_for(Scheme::kSeparate, 7), 1u);
  EXPECT_EQ(devices_for(Scheme::kMerged, 7), 1u);
  EXPECT_EQ(engines_per_device(Scheme::kNonVirtualized, 7), 1u);
  EXPECT_EQ(engines_per_device(Scheme::kSeparate, 7), 7u);
  EXPECT_EQ(engines_per_device(Scheme::kMerged, 7), 1u);
}

TEST(SchemeTest, ThroughputScalesWithEnginesNotVns) {
  // NV and VS aggregate K engines; VM is time-shared (Sec. IV-C).
  const double one = aggregate_throughput_gbps(Scheme::kMerged, 8, units::Megahertz{400.0}).value();
  EXPECT_NEAR(one, 128.0, 1e-9);
  EXPECT_NEAR(aggregate_throughput_gbps(Scheme::kSeparate, 8, units::Megahertz{400.0}).value(),
              8 * 128.0, 1e-9);
  EXPECT_NEAR(aggregate_throughput_gbps(Scheme::kNonVirtualized, 8, units::Megahertz{400.0}).value(),
              8 * 128.0, 1e-9);
}

// ------------------------------------------------------------ equations --

TEST_F(AnalyticalModelTest, StageMemoryPowerFollowsTableIII) {
  OperatingPoint op = default_op(300.0);
  op.bram_policy = fpga::BramPolicy::k36Only;
  // 100 Kbit -> ceil(100K/36K) = 3 blocks of 36 Kb.
  const double expected = 3 * 24.60e-6 * 300.0;
  EXPECT_NEAR(model_.stage_memory_power_w(units::Bits{100 * 1024}, op).value(), expected, 1e-12);
}

TEST_F(AnalyticalModelTest, StageLogicPowerFollowsSectionVC) {
  EXPECT_NEAR(model_.stage_logic_power_w(default_op(250.0)).value(),
              5.18e-6 * 250.0, 1e-12);
  EXPECT_NEAR(model_.stage_logic_power_w(
                  default_op(250.0, fpga::SpeedGrade::kMinus1L)).value(),
              3.937e-6 * 250.0, 1e-12);
}

TEST_F(AnalyticalModelTest, NvStaticScalesWithK) {
  // Eq. 2: K devices each pay full leakage.
  const EngineSpec engine = uniform_engine(28, 30000);
  for (std::size_t k : {1u, 4u, 15u}) {
    const std::vector<EngineSpec> engines(k, engine);
    const PowerBreakdown p = model_.estimate_nv(engines, default_op());
    EXPECT_NEAR(p.static_w.value(), static_cast<double>(k) * 4.5, 1e-9);
    EXPECT_EQ(p.devices, k);
  }
}

TEST_F(AnalyticalModelTest, VsStaticPaidOnce) {
  // Eq. 4: leakage shared across the K virtual routers.
  const EngineSpec engine = uniform_engine(28, 30000);
  const std::vector<EngineSpec> engines(10, engine);
  const PowerBreakdown p = model_.estimate_vs(engines, default_op());
  EXPECT_NEAR(p.static_w.value(), 4.5, 1e-9);
  EXPECT_EQ(p.devices, 1u);
}

TEST_F(AnalyticalModelTest, NvAndVsShareDynamicPower) {
  // Eqs. 2 and 4 have identical dynamic terms.
  const EngineSpec engine = uniform_engine(28, 30000);
  const std::vector<EngineSpec> engines(6, engine);
  const PowerBreakdown nv = model_.estimate_nv(engines, default_op());
  const PowerBreakdown vs = model_.estimate_vs(engines, default_op());
  EXPECT_NEAR(nv.dynamic_w().value(), vs.dynamic_w().value(), 1e-12);
}

TEST_F(AnalyticalModelTest, UniformUtilizationMakesDynamicKIndependent) {
  // With µ_i = 1/K, the summed dynamic power equals one engine at µ=1
  // regardless of K (Assumption 1's consequence the paper discusses at
  // Fig. 6).
  const EngineSpec engine = uniform_engine(28, 30000);
  const PowerBreakdown p1 =
      model_.estimate_vs(std::vector<EngineSpec>(1, engine), default_op());
  const PowerBreakdown p12 =
      model_.estimate_vs(std::vector<EngineSpec>(12, engine), default_op());
  EXPECT_NEAR(p1.dynamic_w().value(), p12.dynamic_w().value(), 1e-12);
}

TEST_F(AnalyticalModelTest, ExplicitUtilizationWeighting) {
  const EngineSpec engine = uniform_engine(28, 30000);
  OperatingPoint op = default_op();
  op.utilization = {1.0, 0.0};
  const PowerBreakdown p =
      model_.estimate_vs(std::vector<EngineSpec>(2, engine), op);
  OperatingPoint op_single = default_op();
  op_single.utilization = {1.0};
  const PowerBreakdown single =
      model_.estimate_vs(std::vector<EngineSpec>(1, engine), op_single);
  EXPECT_NEAR(p.dynamic_w().value(), single.dynamic_w().value(), 1e-12);
}

TEST_F(AnalyticalModelTest, VmAggregatesUtilization) {
  // Eq. 6: the merged engine is busy whenever any VN offers traffic.
  const EngineSpec merged = uniform_engine(28, 200000);
  const PowerBreakdown p = model_.estimate_vm(merged, 8, default_op());
  const PowerBreakdown p1 = model_.estimate_vm(merged, 1, default_op());
  EXPECT_NEAR(p.dynamic_w().value(), p1.dynamic_w().value(), 1e-12);  // Σµ = 1 either way
  EXPECT_NEAR(p.static_w.value(), 4.5, 1e-9);
}

TEST_F(AnalyticalModelTest, PowerScalesLinearlyWithFrequency) {
  const EngineSpec engine = uniform_engine(28, 50000);
  const std::vector<EngineSpec> engines(4, engine);
  const PowerBreakdown lo = model_.estimate_vs(engines, default_op(100.0));
  const PowerBreakdown hi = model_.estimate_vs(engines, default_op(400.0));
  EXPECT_NEAR(hi.dynamic_w() / lo.dynamic_w(), 4.0, 1e-9);
  EXPECT_NEAR(hi.static_w.value(), lo.static_w.value(), 1e-12);  // static is f-independent
}

TEST_F(AnalyticalModelTest, LowPowerGradeSavesRoughlyThirtyPercent) {
  // Sec. VI-B: "30% less power ... when speed grade -1L was chosen".
  const EngineSpec engine = uniform_engine(28, 50000);
  const std::vector<EngineSpec> engines(8, engine);
  const PowerBreakdown hi = model_.estimate_vs(engines, default_op(300.0));
  const PowerBreakdown lo = model_.estimate_vs(
      engines, default_op(300.0, fpga::SpeedGrade::kMinus1L));
  const double saving = 1.0 - lo.total_w() / hi.total_w();
  EXPECT_GT(saving, 0.20);
  EXPECT_LT(saving, 0.40);
}

TEST_F(AnalyticalModelTest, UtilizationValidation) {
  const EngineSpec engine = uniform_engine(4, 1000);
  OperatingPoint op = default_op();
  op.utilization = {0.5};  // wrong size for 2 engines
  const std::vector<EngineSpec> engines(2, engine);
  EXPECT_DEATH((void)model_.estimate_vs(engines, op), "utilization");
}

// --------------------------------------------------------- resource model --

trie::StageMemory sample_memory() {
  trie::StageMemory memory;
  memory.pointer_bits = {1000, 36000, 72000};
  memory.nhi_bits = {0, 8000, 64000};
  return memory;
}

TEST(ResourceModelTest, NvVsDifferOnlyInDevicesAndIo) {
  const trie::StageMemory memory = sample_memory();
  const SchemeResources nv = replicated_resources(
      Scheme::kNonVirtualized, memory, 5, fpga::BramPolicy::kMixed);
  const SchemeResources vs = replicated_resources(
      Scheme::kSeparate, memory, 5, fpga::BramPolicy::kMixed);
  EXPECT_EQ(nv.devices, 5u);
  EXPECT_EQ(vs.devices, 1u);
  EXPECT_EQ(nv.pointer_bits, vs.pointer_bits);
  EXPECT_EQ(nv.nhi_bits, vs.nhi_bits);
  EXPECT_EQ(nv.luts, vs.luts);
  EXPECT_LT(nv.io_pins, vs.io_pins);  // VS packs all interfaces on one chip
  // VS's single device carries 5x the BRAM of one NV device.
  EXPECT_EQ(vs.bram_per_device.total.halves(),
            5 * nv.bram_per_device.total.halves());
}

TEST(ResourceModelTest, TotalsScaleWithK) {
  const trie::StageMemory memory = sample_memory();
  const SchemeResources one = replicated_resources(
      Scheme::kSeparate, memory, 1, fpga::BramPolicy::kMixed);
  const SchemeResources ten = replicated_resources(
      Scheme::kSeparate, memory, 10, fpga::BramPolicy::kMixed);
  EXPECT_EQ(ten.pointer_bits.value(), 10 * one.pointer_bits.value());
  EXPECT_EQ(ten.nhi_bits.value(), 10 * one.nhi_bits.value());
  EXPECT_EQ(ten.luts, 10 * one.luts);
}

TEST(ResourceModelTest, MergedSingleEngine) {
  const trie::StageMemory memory = sample_memory();
  const SchemeResources vm =
      merged_resources(memory, 12, fpga::BramPolicy::kMixed);
  EXPECT_EQ(vm.devices, 1u);
  EXPECT_EQ(vm.engines, 1u);
  EXPECT_EQ(vm.pointer_bits.value(), memory.total_pointer_bits());
  EXPECT_EQ(vm.io_pins, fpga::IoBudget{}.required(1));
}

TEST(ResourceModelTest, FitChecksIoLimit) {
  const trie::StageMemory memory = sample_memory();
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const SchemeResources fits = replicated_resources(
      Scheme::kSeparate, memory, 15, fpga::BramPolicy::kMixed);
  EXPECT_TRUE(check_fit(fits, device).fits);
  const SchemeResources too_many = replicated_resources(
      Scheme::kSeparate, memory, 16, fpga::BramPolicy::kMixed);
  const FitReport report = check_fit(too_many, device);
  EXPECT_FALSE(report.fits);
  EXPECT_FALSE(report.io_ok);
  EXPECT_TRUE(report.bram_ok);
}

TEST(ResourceModelTest, FitChecksBramLimit) {
  trie::StageMemory huge;
  huge.pointer_bits.assign(28, 1024 * 1024);
  huge.nhi_bits.assign(28, 0);
  const SchemeResources vm =
      merged_resources(huge, 2, fpga::BramPolicy::kMixed);
  const FitReport report =
      check_fit(vm, fpga::DeviceSpec::xc6vlx760());
  EXPECT_FALSE(report.fits);
  EXPECT_FALSE(report.bram_ok);
}

TEST(ResourceModelTest, MaxVnCountScansUpward) {
  const trie::StageMemory memory = sample_memory();
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const std::size_t max_k = max_vn_count(
      device, 40, [&](std::size_t k) {
        return replicated_resources(Scheme::kSeparate, memory, k,
                                    fpga::BramPolicy::kMixed);
      });
  EXPECT_EQ(max_k, 15u);  // pin-limited, Sec. VI-A
}

// ------------------------------------------------------------ efficiency --

TEST(EfficiencyTest, MwPerGbps) {
  EXPECT_DOUBLE_EQ(mw_per_gbps(units::Watts{4.5}, units::Gbps{128.0}).value(),
                   4500.0 / 128.0);
  EXPECT_DOUBLE_EQ(mw_per_gbps(units::Watts{4.5}, units::Gbps{0.0}).value(),
                   0.0);
}

TEST(EfficiencyTest, SchemeEfficiencyUsesAggregateThroughput) {
  PowerBreakdown p;
  p.static_w = units::Watts{4.5};
  p.freq_mhz = units::Megahertz{400.0};
  const double vs =
      scheme_efficiency_mw_per_gbps(Scheme::kSeparate, 8, p).value();
  const double vm =
      scheme_efficiency_mw_per_gbps(Scheme::kMerged, 8, p).value();
  EXPECT_NEAR(vm / vs, 8.0, 1e-9);  // VM divides by a single engine's rate
}

}  // namespace
}  // namespace vr::power
