#include "fpga/pnr_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace vr::fpga {

namespace {

/// Deterministic 64-bit fingerprint of a design (drives placement wobble).
std::uint64_t design_fingerprint(const PnrDesign& design) {
  SplitMix64 mix(0x9d39247e33776d41ULL);
  std::uint64_t h = mix.next() ^ static_cast<std::uint64_t>(design.grade);
  auto fold = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  fold(static_cast<std::uint64_t>(design.bram_policy));
  fold(design.pipelines.size());
  for (const PipelinePlacement& p : design.pipelines) {
    fold(p.stage_bits.size());
    for (const std::uint64_t bits : p.stage_bits) fold(bits);
    fold(static_cast<std::uint64_t>(p.activity * 1e6));
  }
  return h;
}

}  // namespace

PnrSimulator::PnrSimulator(DeviceSpec spec, PnrEffects effects)
    : spec_(std::move(spec)), effects_(effects) {}

PnrReport PnrSimulator::analyze(const PnrDesign& design) const {
  VR_REQUIRE(!design.pipelines.empty(), "design has no pipelines");
  for (const PipelinePlacement& p : design.pipelines) {
    VR_REQUIRE(!p.stage_bits.empty(), "pipeline has no stages");
    VR_REQUIRE(p.activity >= 0.0 && p.activity <= 1.0,
               "pipeline activity must be in [0,1]");
  }

  PnrReport report;
  const auto pipeline_count = design.pipelines.size();

  // ---- Placement: BRAM and logic accounting ------------------------------
  std::vector<StageBramPlan> plans;
  plans.reserve(pipeline_count);
  std::uint64_t total_halves = 0;
  std::size_t total_stages = 0;
  for (const PipelinePlacement& p : design.pipelines) {
    StageBramPlan plan = plan_stage_bram(p.stage_bits, design.bram_policy);
    total_halves += plan.total.halves();
    total_stages += p.stage_bits.size();
    report.resources.max_stage_blocks36eq = std::max(
        report.resources.max_stage_blocks36eq, plan.max_stage_blocks36eq);
    plans.push_back(std::move(plan));
  }
  report.resources.bram_halves = total_halves;
  report.resources.pipelines = pipeline_count;

  const std::uint64_t device_halves = device_bram_halves(spec_);
  if (total_halves > device_halves) {
    throw CapacityError("design needs " + std::to_string(total_halves) +
                        " BRAM halves; device " + spec_.name + " has " +
                        std::to_string(device_halves));
  }

  const auto pe = XpeTables::pe_footprint();
  report.luts_used = pe.total_luts() * total_stages;
  report.flip_flops_used = pe.slice_registers * total_stages;
  if (report.luts_used > spec_.luts) {
    throw CapacityError("design needs " + std::to_string(report.luts_used) +
                        " LUTs; device " + spec_.name + " has " +
                        std::to_string(spec_.luts));
  }
  if (report.flip_flops_used > spec_.flip_flops) {
    throw CapacityError("design needs " +
                        std::to_string(report.flip_flops_used) +
                        " flip-flops; device has " +
                        std::to_string(spec_.flip_flops));
  }

  report.bram_utilization = static_cast<double>(total_halves) /
                            static_cast<double>(device_halves);
  report.logic_utilization = static_cast<double>(report.luts_used) /
                             static_cast<double>(spec_.luts);
  report.area_utilization =
      0.5 * (report.bram_utilization + report.logic_utilization);

  // ---- Timing closure -----------------------------------------------------
  const units::Megahertz fmax = achievable_fmax_mhz(spec_, design.grade,
                                                    report.resources,
                                                    design.freq_params);
  report.clock_mhz = design.requested_freq_mhz > units::Megahertz{0.0}
                         ? std::min(design.requested_freq_mhz, fmax)
                         : fmax;

  // ---- Power --------------------------------------------------------------
  // Dynamic power from the coefficient tables, clock-gated by activity.
  units::Watts logic_w;
  units::Watts bram_w;
  for (std::size_t i = 0; i < pipeline_count; ++i) {
    const PipelinePlacement& p = design.pipelines[i];
    logic_w += XpeTables::logic_power_w(design.grade, p.stage_bits.size(),
                                        report.clock_mhz) *
               p.activity;
    bram_w += plans[i].total.power_w(design.grade, report.clock_mhz) *
              p.activity;
  }

  // Second-order: clock-tree/control amortization across P pipelines.
  const auto p_count = static_cast<double>(pipeline_count);
  const double share =
      effects_.share_max * (1.0 - 1.0 / p_count);
  logic_w *= 1.0 - share;

  // Second-order: routing congestion around BRAM-heavy stages adds signal
  // power proportional to the widest stage.
  const double congestion =
      effects_.congestion_max *
      std::min(1.0, std::max(0.0, report.resources.max_stage_blocks36eq -
                                      1.0) /
                        effects_.congestion_norm);
  bram_w *= 1.0 + congestion;

  // Second-order: deterministic placement wobble on dynamic power.
  const std::uint64_t fp = design_fingerprint(design);
  const double wobble =
      effects_.placement_noise *
      (static_cast<double>(fp >> 11) * 0x1.0p-53 * 2.0 - 1.0);
  logic_w *= 1.0 + wobble;
  bram_w *= 1.0 + wobble;

  // Leakage: area-dependent band, the replicated-design optimization, and
  // the routing-spread penalty of BRAM-heavy stages (merged designs).
  units::Watts static_w = spec_.static_power_w(design.grade);
  static_w *= 1.0 + effects_.static_area_slope *
                        (report.area_utilization - 0.5);
  static_w *= 1.0 - effects_.static_opt_max * (1.0 - 1.0 / p_count);
  static_w *=
      1.0 + effects_.static_congestion_max *
                std::min(1.0,
                         std::max(0.0,
                                  report.resources.max_stage_blocks36eq -
                                      1.0) /
                             effects_.congestion_norm);

  report.logic_w = logic_w;
  report.bram_w = bram_w;
  report.static_w = static_w;
  return report;
}

}  // namespace vr::fpga
