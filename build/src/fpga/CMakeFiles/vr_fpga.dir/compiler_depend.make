# Empty compiler generated dependencies file for vr_fpga.
# This may be replaced when dependencies are built.
