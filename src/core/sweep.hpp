// SweepRunner — the parallel sweep engine. Figure builders and the bench
// binaries fan sweep points (scheme × K × α × speed grade) out across a
// pool of std::threads. Work distribution is dynamic (threads claim the
// next unclaimed index from a shared atomic counter, so long points do not
// stall short ones), but results are stored by index, which makes the
// output ordering — and therefore every rendered table — bit-identical to
// a serial run regardless of the thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace vr::core {

/// Worker count used when a sweep does not pin one explicitly: the
/// VR_THREADS environment variable when set to a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] std::size_t default_sweep_threads();

class SweepRunner {
 public:
  /// `threads` = 0 picks default_sweep_threads().
  explicit SweepRunner(std::size_t threads = 0)
      : threads_(threads == 0 ? default_sweep_threads() : threads) {}

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

  /// Evaluates fn(0) .. fn(count-1) across the pool and returns the
  /// results in index order. fn must be invocable concurrently from
  /// multiple threads; the first exception thrown is rethrown here after
  /// all workers have stopped.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t count, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>, "use for_each for void functions");
    std::vector<std::optional<R>> slots(count);
    run_indexed(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Runs fn(0) .. fn(count-1) across the pool (no results collected).
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn) const {
    run_indexed(count, fn);
  }

 private:
  template <typename Fn>
  void run_indexed(std::size_t count, Fn&& fn) const {
    const std::size_t workers = std::min(threads_, count);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr error;
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
          }
          next.store(count, std::memory_order_relaxed);  // drain the queue
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
    if (error) std::rethrow_exception(error);
  }

  std::size_t threads_;
};

}  // namespace vr::core
