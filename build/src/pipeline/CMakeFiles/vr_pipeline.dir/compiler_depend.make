# Empty compiler generated dependencies file for vr_pipeline.
# This may be replaced when dependencies are built.
