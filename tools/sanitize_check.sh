#!/usr/bin/env bash
# Builds the full tree under a sanitizer and runs the tier-1 ctest suite.
# The thread-pool (SweepRunner), shared-cache (WorkloadCache) and
# flat-trie hot-path code must stay clean under every mode.
#
# Usage: tools/sanitize_check.sh [asan|ubsan|tsan] [build-dir] [ctest-regex]
#   mode         asan  -> -fsanitize=address (+ leak detection)
#                ubsan -> -fsanitize=undefined
#                tsan  -> -fsanitize=thread (cannot combine with asan)
#                default: asan+ubsan combined (the historical behaviour)
#   build-dir    defaults to build-sanitize-<mode>
#   ctest-regex  optional -R filter (default: everything)
#
# The script probes the compiler for the requested sanitizer first and
# fails loudly if it is unsupported — a sanitizer that silently does not
# instrument is worse than no sanitizer at all.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-asan+ubsan}"
ctest_filter="${3:-}"

case "${mode}" in
  asan)       sanitize="address" ;;
  ubsan)      sanitize="undefined" ;;
  tsan)       sanitize="thread" ;;
  asan+ubsan) sanitize="address,undefined" ;;
  *)
    echo "sanitize_check: unknown mode '${mode}'" >&2
    echo "usage: $0 [asan|ubsan|tsan] [build-dir] [ctest-regex]" >&2
    exit 2
    ;;
esac
build_dir="${2:-${repo_root}/build-sanitize-${mode}}"

# Probe: the compiler must accept AND link every requested -fsanitize flag.
cxx="${CXX:-c++}"
probe_dir="$(mktemp -d)"
trap 'rm -rf "${probe_dir}"' EXIT
echo 'int main() { return 0; }' > "${probe_dir}/probe.cpp"
IFS=',' read -ra requested <<< "${sanitize}"
for san in "${requested[@]}"; do
  if ! "${cxx}" -fsanitize="${san}" "${probe_dir}/probe.cpp" \
       -o "${probe_dir}/probe" > "${probe_dir}/probe.log" 2>&1; then
    echo "sanitize_check: FATAL — ${cxx} does not support" \
         "-fsanitize=${san} on this host:" >&2
    cat "${probe_dir}/probe.log" >&2
    exit 1
  fi
done

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVR_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

cd "${build_dir}"
if [[ -n "${ctest_filter}" ]]; then
  ctest --output-on-failure -R "${ctest_filter}"
else
  ctest --output-on-failure
fi
echo "sanitize_check[${mode}]: all tests clean"
