// Flat stride-k multibit lookup image — the line-rate end of the software
// lookup path. Where FlatTrie consumes one address bit per pointer chase
// (up to 33 dependent memory accesses per lookup), a stride-k image
// consumes k bits per level, so a full /32 walk needs only 32/k dependent
// accesses (4 for k = 8) at the price of controlled prefix expansion
// (each node stores 2^k entries, mirroring trie::MultibitTrie and the
// hardware-side stride ablation).
//
// The image is a structure of arrays shared by every consumer kind the
// unibit FlatTrie serves: scalar `lookup` (verified against the
// UnibitTrie oracle), the pipeline simulator via `pipeline::TrieView`
// (one stride-k level per stage), and the batched dataplane
// `lookup_batch`, which runs the prefetch-pipelined loop described in
// trie/prefetch.hpp.
//
// Like FlatTrie, one image can serve K virtual networks (the VM merged
// scheme): entries carry a K-wide next-hop vector indexed by VNID, and a
// node exists wherever *any* VN's own multibit trie has one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/routing_table.hpp"
#include "netbase/traffic.hpp"
#include "trie/multibit_trie.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {

class FlatMultibitTrie {
 public:
  /// Builds a single-VN stride-k image straight from a routing table
  /// (k in {2, 4, 8}; stride 1 is FlatTrie's domain).
  FlatMultibitTrie(const net::RoutingTable& table, unsigned stride);

  /// Flattens an existing MultibitTrie (same stride, single VN).
  explicit FlatMultibitTrie(const MultibitTrie& trie);

  /// Builds a K-way merged stride-k image: `tables[v]` is the routing
  /// table of virtual network v. All pointers non-null, K >= 1.
  FlatMultibitTrie(std::span<const net::RoutingTable* const> tables,
                   unsigned stride);

  [[nodiscard]] unsigned stride() const noexcept { return stride_; }
  /// Entries per node (2^stride).
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t vn_count() const noexcept { return vn_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return children_.size() / width_;
  }
  /// Total stored entries (nodes x 2^stride).
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return children_.size();
  }
  /// Allocated levels; a full /32 walk visits min(level_count, 32/stride)
  /// nodes.
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_count_;
  }
  /// Maximum levels a stride-k image can have (32 / stride).
  [[nodiscard]] std::size_t max_level_count() const noexcept {
    return 32u / stride_;
  }

  /// Child pointer of entry `slot` of node `n` (kNullNode when none).
  [[nodiscard]] NodeIndex child(NodeIndex n, std::size_t slot)
      const noexcept {
    return children_[static_cast<std::size_t>(n) * width_ + slot];
  }
  /// Next hop stored at entry (n, slot) for virtual network `vn`.
  [[nodiscard]] net::NextHop next_hop(NodeIndex n, std::size_t slot,
                                      net::VnId vn = 0) const noexcept {
    return next_hops_[(static_cast<std::size_t>(n) * width_ + slot) *
                          vn_count_ +
                      vn];
  }

  /// The address bits level `l` consumes, as an entry slot.
  [[nodiscard]] std::size_t slot_of(std::uint32_t addr, std::size_t level)
      const noexcept {
    return (addr >> (32u - (level + 1) * stride_)) & slot_mask_;
  }

  /// Longest-prefix match for virtual network `vn`; nullopt when no route
  /// covers `addr`. Identical results to UnibitTrie::lookup over the same
  /// table (the differential tests pin this).
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr,
                                                   net::VnId vn = 0) const;

  /// Batched longest-prefix match, prefetch-pipelined (trie/prefetch.hpp):
  /// one result per address, kNoRoute where no route covers it.
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Ipv4> addrs, net::VnId vn = 0) const;

  /// Batched lookup of VNID-tagged packets (merged-image dataplane path).
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Packet> packets) const;

  /// Memory footprint in bits under the same per-entry encoding as
  /// MultibitTrie::memory_bits.
  [[nodiscard]] std::uint64_t memory_bits(unsigned pointer_bits = 18,
                                          unsigned nhi_bits = 8) const
      noexcept {
    return std::uint64_t{entry_count()} *
           (pointer_bits + nhi_bits * vn_count_);
  }

 private:
  struct Builder;

  FlatMultibitTrie(unsigned stride, std::size_t vn_count);

  [[nodiscard]] net::NextHop lookup_raw(std::uint32_t addr,
                                        net::VnId vn) const noexcept;

  /// Pipelined batch core: resolves the key (addr_at(i), vn_at(i)) into
  /// `out[i]` for i in [0, count) with a `prefetch_distance()`-deep lane
  /// window. Defined in the implementation file; instantiated only there.
  template <typename AddrFn, typename VnFn>
  void lookup_batch_core(std::size_t count, AddrFn&& addr_at, VnFn&& vn_at,
                         net::NextHop* out) const;

  unsigned stride_;
  std::uint32_t slot_mask_;
  std::size_t width_;
  std::size_t vn_count_;
  std::size_t level_count_ = 1;
  std::vector<NodeIndex> children_;     // node-major, width_ per node
  std::vector<net::NextHop> next_hops_; // entry-major, vn_count_ per entry
};

}  // namespace vr::trie
