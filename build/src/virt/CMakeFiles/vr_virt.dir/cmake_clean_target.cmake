file(REMOVE_RECURSE
  "libvr_virt.a"
)
