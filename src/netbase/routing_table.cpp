#include "netbase/routing_table.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace vr::net {

namespace {

bool prefix_less(const Route& a, const Route& b) noexcept {
  return a.prefix < b.prefix;
}

}  // namespace

RoutingTable::RoutingTable(std::vector<Route> routes)
    : routes_(std::move(routes)) {
  // stable_sort keeps insertion order among equal prefixes so that "last
  // write wins" below is well-defined.
  std::stable_sort(routes_.begin(), routes_.end(), prefix_less);
  // Last write wins on duplicates: keep the final occurrence of each prefix.
  const auto last = std::unique(
      routes_.rbegin(), routes_.rend(),
      [](const Route& a, const Route& b) { return a.prefix == b.prefix; });
  routes_.erase(routes_.begin(), last.base());
}

void RoutingTable::add(const Route& route) {
  const auto it = std::lower_bound(routes_.begin(), routes_.end(), route,
                                   prefix_less);
  if (it != routes_.end() && it->prefix == route.prefix) {
    it->next_hop = route.next_hop;
  } else {
    routes_.insert(it, route);
  }
}

bool RoutingTable::remove(const Prefix& prefix) {
  const Route key{prefix, kNoRoute};
  const auto it =
      std::lower_bound(routes_.begin(), routes_.end(), key, prefix_less);
  if (it == routes_.end() || it->prefix != prefix) return false;
  routes_.erase(it);
  return true;
}

bool RoutingTable::contains(const Prefix& prefix) const noexcept {
  const Route key{prefix, kNoRoute};
  const auto it =
      std::lower_bound(routes_.begin(), routes_.end(), key, prefix_less);
  return it != routes_.end() && it->prefix == prefix;
}

std::optional<NextHop> RoutingTable::lookup(Ipv4 addr) const noexcept {
  std::optional<NextHop> best;
  unsigned best_len = 0;
  for (const Route& route : routes_) {
    if (route.prefix.contains(addr) &&
        (!best || route.prefix.length() >= best_len)) {
      best = route.next_hop;
      best_len = route.prefix.length();
    }
  }
  return best;
}

unsigned RoutingTable::max_prefix_length() const noexcept {
  unsigned max_len = 0;
  for (const Route& route : routes_) {
    max_len = std::max(max_len, route.prefix.length());
  }
  return max_len;
}

std::vector<std::size_t> RoutingTable::length_histogram() const {
  std::vector<std::size_t> hist(33, 0);
  for (const Route& route : routes_) ++hist[route.prefix.length()];
  return hist;
}

RoutingTable RoutingTable::parse(std::istream& in) {
  RoutingTable table;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string prefix_text;
    long next_hop = -1;
    fields >> prefix_text >> next_hop;
    if (fields.fail()) {
      throw ParseError("expected '<prefix> <next-hop>'", line_no);
    }
    std::string extra;
    if (fields >> extra) {
      throw ParseError("trailing field '" + extra + "'", line_no);
    }
    const auto prefix = Prefix::parse(prefix_text);
    if (!prefix) {
      throw ParseError("bad prefix '" + prefix_text + "'", line_no);
    }
    if (next_hop < 0 || next_hop >= kNoRoute) {
      throw ParseError("next hop out of range", line_no);
    }
    table.add(*prefix, static_cast<NextHop>(next_hop));
  }
  return table;
}

RoutingTable RoutingTable::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

void RoutingTable::serialize(std::ostream& out) const {
  for (const Route& route : routes_) {
    out << route.prefix.to_string() << ' ' << route.next_hop << '\n';
  }
}

}  // namespace vr::net
