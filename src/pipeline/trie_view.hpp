// Non-owning adapter over the two trie flavours (per-VN uni-bit trie and
// K-way merged trie) presenting the uniform node interface the pipeline
// simulator traverses.
#pragma once

#include <variant>

#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::pipeline {

class TrieView {
 public:
  explicit TrieView(const trie::UnibitTrie& t) noexcept : impl_(&t) {}
  explicit TrieView(const virt::MergedTrie& t) noexcept : impl_(&t) {}

  [[nodiscard]] trie::NodeIndex left(trie::NodeIndex n) const {
    return std::visit([n](const auto* t) { return node_of(*t, n).left; },
                      impl_);
  }
  [[nodiscard]] trie::NodeIndex right(trie::NodeIndex n) const {
    return std::visit([n](const auto* t) { return node_of(*t, n).right; },
                      impl_);
  }

  /// Next hop stored at node `n` for virtual network `vn` (kNoRoute when
  /// absent). Single tries ignore `vn`.
  [[nodiscard]] net::NextHop next_hop(trie::NodeIndex n, net::VnId vn) const {
    if (const auto* single = std::get_if<const trie::UnibitTrie*>(&impl_)) {
      return (*single)->node(n).next_hop;
    }
    return std::get<const virt::MergedTrie*>(impl_)->next_hop(n, vn);
  }

  [[nodiscard]] std::size_t level_count() const {
    return std::visit([](const auto* t) { return t->level_count(); }, impl_);
  }

  [[nodiscard]] std::size_t node_count() const {
    return std::visit([](const auto* t) { return t->node_count(); }, impl_);
  }

  /// Number of virtual networks the view serves (1 for a single trie).
  [[nodiscard]] std::size_t vn_count() const {
    if (std::holds_alternative<const trie::UnibitTrie*>(impl_)) return 1;
    return std::get<const virt::MergedTrie*>(impl_)->vn_count();
  }

 private:
  static const trie::TrieNode& node_of(const trie::UnibitTrie& t,
                                       trie::NodeIndex n) {
    return t.node(n);
  }
  static const virt::MergedNode& node_of(const virt::MergedTrie& t,
                                         trie::NodeIndex n) {
    return t.nodes()[n];
  }

  std::variant<const trie::UnibitTrie*, const virt::MergedTrie*> impl_;
};

}  // namespace vr::pipeline
