file(REMOVE_RECURSE
  "CMakeFiles/low_power_study.dir/low_power_study.cpp.o"
  "CMakeFiles/low_power_study.dir/low_power_study.cpp.o.d"
  "low_power_study"
  "low_power_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_power_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
