#include "dataplane/editor.hpp"

namespace vr::dataplane {

std::optional<ForwardedPacket> Editor::edit(
    const ParsedPacket& packet, std::optional<net::NextHop> next_hop) {
  if (!next_hop.has_value()) {
    ++stats_.no_route;
    return std::nullopt;
  }
  ForwardedPacket out;
  out.vnid = packet.vnid;
  out.port = *next_hop;
  out.header = packet.header;
  out.payload_bytes = packet.payload_bytes;
  if (!out.header.decrement_ttl() || out.header.ttl == 0) {
    ++stats_.ttl_expired;
    return std::nullopt;
  }
  ++stats_.forwarded;
  return out;
}

}  // namespace vr::dataplane
