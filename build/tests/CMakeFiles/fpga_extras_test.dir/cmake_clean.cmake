file(REMOVE_RECURSE
  "CMakeFiles/fpga_extras_test.dir/fpga_extras_test.cpp.o"
  "CMakeFiles/fpga_extras_test.dir/fpga_extras_test.cpp.o.d"
  "fpga_extras_test"
  "fpga_extras_test.pdb"
  "fpga_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
