// perf_placement — the online placement controller under a seeded VN
// arrival/departure stream, one run per policy (first-fit,
// best-fit-watts, exp-cost). Each run places the same request sequence
// onto its own fleet, sharing one CostOracle so every policy prices
// shapes identically; afterwards the offline bounds are computed on the
// resident set and the competitive ratio (online fleet watts over the
// fractional lower bound) is reported.
//
// The paper profile pushes 1.2 M requests through a 1000-device fleet —
// far past steady state (mean holding 50 k ticks, so offered load
// saturates the fleet and admission control starts to matter). The quick
// profile (bench-smoke) is a 100-device fleet with 20 k requests.
//
// BENCH_placement.json: per-policy acceptance/energy/competitive-ratio
// columns (deterministic, gated by tools/bench_diff.py) plus wall-clock
// requests-per-second under the top-level "metrics" subtree, which the
// diff gate skips.
//
// Flags: --quick, --output FILE, --metrics[=path].
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpga/device.hpp"
#include "placement/controller.hpp"
#include "placement/offline.hpp"

namespace {

using namespace vr;

constexpr placement::PolicyKind kAllPolicies[] = {
    placement::PolicyKind::kFirstFit, placement::PolicyKind::kBestFitWatts,
    placement::PolicyKind::kExpCost};

struct Run {
  placement::PolicyKind policy = placement::PolicyKind::kFirstFit;
  placement::ControllerResult result;
  placement::OfflineBound offline;
  std::size_t distinct_shapes = 0;
  double elapsed_s = 0.0;
  double requests_per_second = 0.0;

  [[nodiscard]] double competitive_ratio() const {
    return offline.fractional_lower_w > 0.0
               ? result.fleet_w / offline.fractional_lower_w
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::handle_metrics_flag(argc, argv);
  std::string output = "BENCH_placement.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }

  placement::RequestStreamConfig stream_config;
  stream_config.seed = 42;
  stream_config.mean_holding_ticks = quick ? 2000 : 50000;
  const std::uint64_t request_count = quick ? 20000 : 1200000;
  const std::size_t fleet_size = quick ? 100 : 1000;

  placement::CostOracle oracle(fpga::DeviceSpec::xc6vlx760());
  std::vector<Run> runs;
  for (const placement::PolicyKind policy : kAllPolicies) {
    placement::ControllerConfig config;
    config.policy = policy;
    config.fleet_size = fleet_size;
    placement::PlacementController controller(&oracle, config,
                                              &obs::Registry::global());
    placement::RequestStream stream(stream_config);
    const auto start = std::chrono::steady_clock::now();
    Run run;
    run.policy = policy;
    run.result = controller.run(stream, request_count);
    run.elapsed_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    run.requests_per_second =
        static_cast<double>(request_count) / run.elapsed_s;
    run.offline =
        placement::offline_bound(controller.fleet().resident_vns(), oracle);
    run.distinct_shapes = oracle.estimates_computed();
    runs.push_back(std::move(run));
  }

  TextTable table_out(
      "perf_placement - online VN placement, fleet watts vs offline" +
      std::string(quick ? " (quick profile)" : ""));
  table_out.set_header({"policy", "accepted", "rejected", "infeasible",
                        "migrations", "devices", "fleet W", "offline W",
                        "ratio", "req/s"});
  for (const Run& run : runs) {
    table_out.add_row(
        {to_string(run.policy), std::to_string(run.result.accepted),
         std::to_string(run.result.rejected),
         std::to_string(run.result.infeasible),
         std::to_string(run.result.migrations),
         std::to_string(run.result.devices_active),
         TextTable::num(run.result.fleet_w, 1),
         TextTable::num(run.offline.fractional_lower_w, 1),
         TextTable::num(run.competitive_ratio(), 3),
         TextTable::num(run.requests_per_second, 0)});
  }
  bench::emit(table_out);

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_placement\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"fleet_size\": " << fleet_size << ",\n"
       << "  \"requests\": " << request_count << ",\n"
       << "  \"mean_holding_ticks\": " << stream_config.mean_holding_ticks
       << ",\n"
       << "  \"seed\": " << stream_config.seed << ",\n"
       << "  \"policies\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"policy\": \"" << to_string(run.policy) << "\""
         << ", \"accepted\": " << run.result.accepted
         << ", \"rejected\": " << run.result.rejected
         << ", \"infeasible\": " << run.result.infeasible
         << ", \"departures\": " << run.result.departures
         << ", \"migrations\": " << run.result.migrations
         << ", \"devices_active\": " << run.result.devices_active
         << ", \"peak_devices_active\": " << run.result.peak_devices_active
         << ", \"fleet_w\": " << TextTable::num(run.result.fleet_w, 3)
         << ", \"watt_ticks\": " << TextTable::num(run.result.watt_ticks, 0)
         << ", \"offline_greedy_w\": "
         << TextTable::num(run.offline.greedy_w, 3)
         << ", \"offline_greedy_devices\": " << run.offline.greedy_devices
         << ", \"offline_fractional_lower_w\": "
         << TextTable::num(run.offline.fractional_lower_w, 3)
         << ", \"competitive_ratio\": "
         << TextTable::num(run.competitive_ratio(), 4)
         << ", \"distinct_shapes\": " << run.distinct_shapes << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"metrics\": {\n"
       << "    \"wall\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "      {\"policy\": \"" << to_string(run.policy) << "\""
         << ", \"elapsed_s\": " << TextTable::num(run.elapsed_s, 3)
         << ", \"requests_per_second\": "
         << TextTable::num(run.requests_per_second, 0) << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"registry\": "
       << obs::MetricsSink(obs::Registry::global()).json(4) << "\n"
       << "  }\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';
  return 0;
}
