#include "pipeline/router.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/registry.hpp"

namespace vr::pipeline {

namespace {

// One trace-driven simulation's activity, folded into the process-wide
// registry so `--metrics` sees pipeline behaviour without threading a
// registry through every figure builder.
void publish_trace_metrics(const VirtualRouter& router,
                           const SimulationResult& sim) {
  obs::Registry& registry = obs::Registry::global();
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t offers_rejected = 0;
  obs::Histogram& occupancy = registry.histogram("pipeline.stage_occupancy");
  for (std::size_t e = 0; e < router.engine_count(); ++e) {
    const ActivityCounters& activity = router.engine(e).activity();
    packets_in += activity.packets_in;
    packets_out += activity.packets_out;
    offers_rejected += activity.offers_rejected;
    if (activity.cycles == 0) continue;
    for (const std::uint64_t busy : activity.stage_busy) {
      occupancy.observe(static_cast<double>(busy) /
                        static_cast<double>(activity.cycles));
    }
  }
  registry.counter("pipeline.packets_in").add(packets_in);
  registry.counter("pipeline.packets_out").add(packets_out);
  registry.counter("pipeline.offers_rejected").add(offers_rejected);
  for (const double mu : sim.engine_utilization) {
    registry.histogram("pipeline.engine_utilization").observe(mu);
  }
  registry.histogram("pipeline.max_queue_depth")
      .observe(static_cast<double>(sim.max_queue_depth));
}

}  // namespace

SeparateRouter::SeparateRouter(std::vector<TrieView> tries,
                               std::size_t stage_count) {
  VR_REQUIRE(!tries.empty(), "separate router needs at least one VN");
  engines_.reserve(tries.size());
  for (const TrieView& view : tries) {
    VR_REQUIRE(view.vn_count() == 1,
               "separate engines take single-VN tries");
    engines_.emplace_back(view, stage_count);
  }
}

bool SeparateRouter::offer(const net::Packet& packet) {
  VR_REQUIRE(packet.vnid < engines_.size(),
             "packet VNID exceeds the engine count");
  // The distributor (Assumption 3) steers by VNID; the per-VN packet keeps
  // vnid 0 inside its dedicated engine's single-VN trie.
  net::Packet local = packet;
  const net::VnId vn = packet.vnid;
  local.vnid = 0;
  if (!engines_[vn].offer(local)) return false;
  return true;
}

void SeparateRouter::tick(std::vector<LookupResult>* out) {
  VR_REQUIRE(out != nullptr, "tick needs an output sink");
  for (std::size_t e = 0; e < engines_.size(); ++e) {
    const std::size_t before = out->size();
    engines_[e].tick(out);
    // Restore the owning VN on results produced by this engine.
    for (std::size_t i = before; i < out->size(); ++i) {
      (*out)[i].packet.vnid = static_cast<net::VnId>(e);
    }
  }
}

bool SeparateRouter::drained() const {
  return std::all_of(engines_.begin(), engines_.end(),
                     [](const LookupEngine& e) { return e.drained(); });
}

MergedRouter::MergedRouter(const virt::MergedTrie& merged,
                           std::size_t stage_count)
    : engine_(TrieView(merged), stage_count), vn_count_(merged.vn_count()) {}

bool MergedRouter::offer(const net::Packet& packet) {
  return engine_.offer(packet);
}

void MergedRouter::tick(std::vector<LookupResult>* out) {
  engine_.tick(out);
}

bool MergedRouter::drained() const { return engine_.drained(); }

SimulationResult run_trace(VirtualRouter& router,
                           std::span<const net::TimedPacket> trace) {
  SimulationResult sim;
  std::deque<net::Packet> pending;
  std::size_t next = 0;
  std::uint64_t cycle = 0;
  while (next < trace.size() || !pending.empty() || !router.drained()) {
    while (next < trace.size() && trace[next].cycle <= cycle) {
      pending.push_back(trace[next].packet);
      ++next;
    }
    sim.max_queue_depth = std::max(sim.max_queue_depth, pending.size());
    // Try to inject as many queued packets as the engines accept. A
    // separate router can accept up to one packet per engine per cycle;
    // the merged router one in total. Head-of-line packets that are
    // refused stay queued.
    for (std::size_t burst = 0; burst < pending.size();) {
      if (router.offer(pending[burst])) {
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(burst));
      } else {
        ++burst;
      }
    }
    router.tick(&sim.results);
    ++cycle;
  }
  sim.cycles = cycle;
  sim.engine_utilization.reserve(router.engine_count());
  for (std::size_t e = 0; e < router.engine_count(); ++e) {
    sim.engine_utilization.push_back(
        router.engine(e).activity().mean_stage_utilization());
  }
  publish_trace_metrics(router, sim);
  return sim;
}

}  // namespace vr::pipeline
