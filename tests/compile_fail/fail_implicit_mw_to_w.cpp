// MUST NOT COMPILE: assigning milliwatts to a watts quantity without an
// explicit conversion is exactly the 1000x mistake the types exist to stop.
#include "common/units.hpp"

int main() {
  vr::units::Watts w = vr::units::Milliwatts{1500.0};
  return static_cast<int>(w.value());
}
