// Shared plumbing for the figure/table bench binaries: every binary prints
// a human-readable table followed by machine-readable CSV so EXPERIMENTS.md
// can be regenerated from a single run.
#pragma once

#include <iostream>

#include "common/table.hpp"
#include "core/figures.hpp"

namespace vr::bench {

/// Paper-sized sweep options (3 725-prefix tables, K = 1..15, N = 28).
inline core::FigureOptions paper_options() { return core::FigureOptions{}; }

inline void emit(const SeriesTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

inline void emit(const TextTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

}  // namespace vr::bench
