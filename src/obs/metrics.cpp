#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace vr::obs {

namespace {

/// Bucket of a non-negative sample: 0 for [0,1), i for [2^(i-1), 2^i).
std::size_t bucket_of(double value) noexcept {
  if (value < 1.0) return 0;
  // 2^63 and above (including +inf) land in the last bucket.
  if (value >= 9.223372036854775808e18) return kHistogramBuckets - 1;
  const auto magnitude = static_cast<std::uint64_t>(value);
  // bit_width of a uint64 is at most 64, so the narrowing is exact.
  const auto index = static_cast<unsigned>(std::bit_width(magnitude));
  return std::min<std::size_t>(index, kHistogramBuckets - 1);
}

/// Inclusive value range covered by a bucket.
constexpr double bucket_lower(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  return static_cast<double>(std::uint64_t{1} << (bucket - 1));
}

constexpr double bucket_upper(std::size_t bucket) noexcept {
  if (bucket >= kHistogramBuckets - 1) return bucket_lower(bucket) * 2.0;
  return static_cast<double>(std::uint64_t{1} << bucket);
}

/// Bucket of a sample under custom upper bounds: the first bucket whose
/// exclusive upper edge exceeds the value; values at or above the last
/// edge land in the overflow bucket (index bounds.size()).
std::size_t bucket_of_custom(double value,
                             const std::vector<double>& bounds) noexcept {
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

void check_bounds(const std::vector<double>& bounds) {
  VR_REQUIRE(bounds.size() + 1 <= kHistogramBuckets,
             "histogram declares more bucket bounds than the fixed storage "
             "holds");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    VR_REQUIRE(std::isfinite(bounds[i]) && bounds[i] > 0.0,
               "histogram bucket bounds must be positive and finite");
    VR_REQUIRE(i == 0 || bounds[i - 1] < bounds[i],
               "histogram bucket bounds must be strictly increasing");
  }
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  VR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile rank must be in [0,1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return stats.min();
  if (q >= 1.0) return stats.max();
  const auto lower_of = [this](std::size_t b) {
    if (bounds.empty()) return bucket_lower(b);
    return b == 0 ? 0.0 : bounds[b - 1];
  };
  const auto upper_of = [this](std::size_t b) {
    if (bounds.empty()) return bucket_upper(b);
    // The overflow bucket has no upper edge; the clamp below substitutes
    // the observed max.
    return b < bounds.size() ? bounds[b] : stats.max();
  };
  // Target rank in [0, n-1]; walk buckets until it is covered, then
  // interpolate linearly inside the covering bucket.
  const double rank = q * static_cast<double>(n - 1);
  double seen = 0.0;
  for (std::size_t b = 0; b < used_buckets(); ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    if (rank < seen + in_bucket) {
      const double frac = (rank - seen) / in_bucket;
      const double lo = std::max(lower_of(b), stats.min());
      const double hi = std::min(upper_of(b), stats.max());
      return std::clamp(lo + (hi - lo) * frac, stats.min(), stats.max());
    }
    seen += in_bucket;
  }
  return stats.max();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  check_bounds(bounds_);
}

void Histogram::configure_bounds(std::vector<double> upper_bounds) {
  check_bounds(upper_bounds);
  const std::lock_guard<std::mutex> lock(mu_);
  if (bounds_ == upper_bounds) return;
  VR_REQUIRE(stats_.count() == 0,
             "histogram bucket bounds cannot change once samples were "
             "observed — the existing counts cannot be re-binned");
  VR_REQUIRE(bounds_.empty(),
             "histogram re-configured with different bucket bounds");
  bounds_ = std::move(upper_bounds);
}

void Histogram::observe(double value) {
  VR_REQUIRE(!std::isnan(value), "histogram sample is NaN");
  VR_REQUIRE(value >= 0.0, "histogram sample is negative");
  const std::lock_guard<std::mutex> lock(mu_);
  stats_.add(value);
  ++buckets_[bounds_.empty() ? bucket_of(value)
                             : bucket_of_custom(value, bounds_)];
}

HistogramSnapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.stats = stats_;
  snap.buckets = buckets_;
  snap.bounds = bounds_;
  return snap;
}

void Histogram::merge(const HistogramSnapshot& other) {
  const std::lock_guard<std::mutex> lock(mu_);
  // A shape mismatch would add counts bucket-index-wise across different
  // value ranges — every quantile would silently lie. Fail loudly instead;
  // Registry::merge wraps this with the metric's name.
  VR_REQUIRE(bounds_ == other.bounds,
             "histogram bucket bounds mismatch — refusing to merge "
             "differently-shaped histograms");
  stats_.merge(other.stats);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets[b];
  }
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = RunningStats{};
  buckets_.fill(0);
}

}  // namespace vr::obs
