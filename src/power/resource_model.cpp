#include "power/resource_model.hpp"

#include "common/error.hpp"
#include "fpga/xpe_tables.hpp"

namespace vr::power {

namespace {

void fill_logic(SchemeResources& r) {
  const auto pe = fpga::XpeTables::pe_footprint();
  const std::uint64_t stages =
      std::uint64_t{r.engines} * r.stages_per_engine;
  r.luts = pe.total_luts() * stages;
  r.flip_flops = pe.slice_registers * stages;
}

}  // namespace

SchemeResources replicated_resources(Scheme scheme,
                                     const trie::StageMemory& per_vn_memory,
                                     std::size_t vn_count,
                                     fpga::BramPolicy policy,
                                     const fpga::IoBudget& io) {
  VR_REQUIRE(scheme != Scheme::kMerged,
             "replicated_resources covers NV and VS only");
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  SchemeResources r;
  r.scheme = scheme;
  r.devices = devices_for(scheme, vn_count);
  r.engines = vn_count;
  r.stages_per_engine = per_vn_memory.stage_count();
  r.pointer_bits = units::Bits{per_vn_memory.total_pointer_bits() *
                               std::uint64_t{vn_count}};
  r.nhi_bits = units::Bits{per_vn_memory.total_nhi_bits() *
                           std::uint64_t{vn_count}};
  fill_logic(r);

  // BRAM plan of one device: NV has one engine per device, VS stacks all K.
  std::vector<std::uint64_t> device_stage_bits;
  const std::size_t engines_on_device = engines_per_device(scheme, vn_count);
  device_stage_bits.reserve(r.stages_per_engine * engines_on_device);
  for (std::size_t e = 0; e < engines_on_device; ++e) {
    for (std::size_t s = 0; s < r.stages_per_engine; ++s) {
      device_stage_bits.push_back(per_vn_memory.stage_bits(s));
    }
  }
  r.bram_per_device = fpga::plan_stage_bram(device_stage_bits, policy);

  // I/O: every engine on a device needs its own interface (Sec. VI-A).
  r.io_pins = io.required(engines_on_device);
  return r;
}

SchemeResources merged_resources(const trie::StageMemory& merged_memory,
                                 std::size_t vn_count,
                                 fpga::BramPolicy policy,
                                 const fpga::IoBudget& io) {
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  SchemeResources r;
  r.scheme = Scheme::kMerged;
  r.devices = 1;
  r.engines = 1;
  r.stages_per_engine = merged_memory.stage_count();
  r.pointer_bits = units::Bits{merged_memory.total_pointer_bits()};
  r.nhi_bits = units::Bits{merged_memory.total_nhi_bits()};
  fill_logic(r);

  std::vector<std::uint64_t> stage_bits;
  stage_bits.reserve(r.stages_per_engine);
  for (std::size_t s = 0; s < r.stages_per_engine; ++s) {
    stage_bits.push_back(merged_memory.stage_bits(s));
  }
  r.bram_per_device = fpga::plan_stage_bram(stage_bits, policy);
  r.io_pins = io.required(1);
  return r;
}

FitReport check_fit(const SchemeResources& resources,
                    const fpga::DeviceSpec& device) {
  FitReport report;
  report.bram_ok = resources.bram_per_device.total.halves() <=
                   fpga::device_bram_halves(device);
  // Logic is spread across `devices`; the per-device share must fit.
  const auto devices = static_cast<std::uint64_t>(resources.devices);
  report.luts_ok = resources.luts / devices <= device.luts;
  report.flip_flops_ok = resources.flip_flops / devices <= device.flip_flops;
  report.io_ok = resources.io_pins <= device.io_pins;
  report.fits = report.bram_ok && report.luts_ok && report.flip_flops_ok &&
                report.io_ok;
  return report;
}

}  // namespace vr::power
