# Empty dependencies file for qos_transparency.
# This may be replaced when dependencies are built.
