#include "trie/snapshot_publisher.hpp"

#include <chrono>
#include <utility>

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace vr::trie {

namespace {

struct PublishMetrics {
  obs::Counter& publishes;
  obs::Counter& updates;
  obs::Histogram& publish_ns;

  static const PublishMetrics& get() {
    static PublishMetrics metrics = [] {
      obs::Registry& reg = obs::Registry::global();
      return PublishMetrics{reg.counter("trie.publishes"),
                            reg.counter("trie.publish_updates"),
                            reg.histogram("trie.publish_ns")};
    }();
    return metrics;
  }
};

}  // namespace

SnapshotPublisher::SnapshotPublisher(const net::RoutingTable& base,
                                     unsigned stride)
    : stride_(stride), control_(base) {
  publish(std::make_shared<const FlatMultibitTrie>(base, stride_), 0);
}

void SnapshotPublisher::publish(
    std::shared_ptr<const FlatMultibitTrie> image, std::uint64_t version) {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  current_ = std::move(image);
  // Release-store inside the lock: a reader that observes the new version
  // via published_version() may acquire() next, and the lock there hands
  // it the matching image.
  version_.store(version, std::memory_order_release);
}

SnapshotPublisher::PublishReceipt SnapshotPublisher::apply_batch(
    std::span<const net::RouteUpdate> updates) {
  PublishReceipt receipt;
  receipt.updates_applied = updates.size();

  const auto apply_start = std::chrono::steady_clock::now();
  for (const net::RouteUpdate& update : updates) {
    receipt.cost += control_.apply(update);
  }
  receipt.apply_ns = obs::since(apply_start);

  const auto build_start = std::chrono::steady_clock::now();
  auto image = std::make_shared<const FlatMultibitTrie>(control_.to_table(),
                                                        stride_);
  receipt.build_ns = obs::since(build_start);

  const auto publish_start = std::chrono::steady_clock::now();
  receipt.version = version_.load(std::memory_order_relaxed) + 1;
  publish(std::move(image), receipt.version);
  receipt.publish_ns = obs::since(publish_start);

  const PublishMetrics& metrics = PublishMetrics::get();
  metrics.publishes.add(1);
  metrics.updates.add(updates.size());
  metrics.publish_ns.observe_duration(receipt.apply_ns + receipt.build_ns +
                                      receipt.publish_ns);
  return receipt;
}

SnapshotPublisher::Snapshot SnapshotPublisher::acquire() const {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return Snapshot{current_, version_.load(std::memory_order_relaxed)};
}

}  // namespace vr::trie
