#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/prefix.hpp"
#include "netbase/routing_table.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"

namespace vr::net {
namespace {

// ------------------------------------------------------------------ ipv4 --

TEST(Ipv4Test, RoundTripsText) {
  for (const char* text : {"0.0.0.0", "192.0.2.1", "255.255.255.255",
                           "10.0.0.1", "1.2.3.4"}) {
    const auto addr = Ipv4::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(Ipv4Test, OctetsAndValueAgree) {
  const Ipv4 addr(192, 0, 2, 33);
  EXPECT_EQ(addr.value(), 0xc0000221u);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 0);
  EXPECT_EQ(addr.octet(2), 2);
  EXPECT_EQ(addr.octet(3), 33);
}

TEST(Ipv4Test, RejectsMalformedText) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.x", " 1.2.3.4",
        "1.2.3.4 ", "01.2.3.4", "-1.2.3.4", "1..2.3"}) {
    EXPECT_FALSE(Ipv4::parse(text).has_value()) << text;
  }
}

TEST(Ipv4Test, OrdersNumerically) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(1, 0, 0, 1));
}

// ---------------------------------------------------------------- prefix --

TEST(PrefixTest, CanonicalizesHostBits) {
  const Prefix p(Ipv4(192, 0, 2, 255), 24);
  EXPECT_EQ(p.address(), Ipv4(192, 0, 2, 0));
  EXPECT_EQ(p.length(), 24u);
}

TEST(PrefixTest, ZeroLengthMatchesEverything) {
  const Prefix def(Ipv4(0, 0, 0, 0), 0);
  EXPECT_TRUE(def.contains(Ipv4(255, 255, 255, 255)));
  EXPECT_TRUE(def.contains(Ipv4(0, 0, 0, 0)));
}

TEST(PrefixTest, ContainsRespectsLength) {
  const Prefix p(Ipv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 200, 9)));
  EXPECT_FALSE(p.contains(Ipv4(10, 2, 0, 0)));
}

TEST(PrefixTest, CoversNestedPrefixes) {
  const Prefix outer(Ipv4(10, 0, 0, 0), 8);
  const Prefix inner(Ipv4(10, 5, 0, 0), 16);
  EXPECT_TRUE(outer.covers(inner));
  EXPECT_FALSE(inner.covers(outer));
  EXPECT_TRUE(outer.covers(outer));
}

TEST(PrefixTest, BitsAreMsbFirst) {
  const Prefix p(Ipv4(0x80, 0, 0, 0), 2);  // binary 10...
  EXPECT_TRUE(p.bit(0));
  EXPECT_FALSE(p.bit(1));
}

TEST(PrefixTest, ParseRoundTrip) {
  const auto p = Prefix::parse("10.20.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.20.0.0/16");
}

TEST(PrefixTest, ParseRejectsNonCanonical) {
  EXPECT_FALSE(Prefix::parse("10.20.0.1/16").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.0.0/1x").has_value());
}

TEST(PrefixTest, SlashZeroParses) {
  const auto p = Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 0u);
}

// --------------------------------------------------------- routing table --

TEST(RoutingTableTest, AddKeepsSortedUnique) {
  RoutingTable t;
  t.add(*Prefix::parse("10.0.0.0/8"), 1);
  t.add(*Prefix::parse("10.1.0.0/16"), 2);
  t.add(*Prefix::parse("10.0.0.0/8"), 3);  // replaces
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup(Ipv4(10, 200, 0, 1)), 3);
}

TEST(RoutingTableTest, LongestPrefixWins) {
  RoutingTable t;
  t.add(*Prefix::parse("10.0.0.0/8"), 1);
  t.add(*Prefix::parse("10.1.0.0/16"), 2);
  t.add(*Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(t.lookup(Ipv4(10, 1, 2, 3)), 3);
  EXPECT_EQ(t.lookup(Ipv4(10, 1, 9, 9)), 2);
  EXPECT_EQ(t.lookup(Ipv4(10, 9, 9, 9)), 1);
  EXPECT_EQ(t.lookup(Ipv4(11, 0, 0, 0)), std::nullopt);
}

TEST(RoutingTableTest, DefaultRouteCatchesAll) {
  RoutingTable t;
  t.add(*Prefix::parse("0.0.0.0/0"), 9);
  EXPECT_EQ(t.lookup(Ipv4(1, 2, 3, 4)), 9);
}

TEST(RoutingTableTest, RemoveExistingAndMissing) {
  RoutingTable t;
  t.add(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_TRUE(t.remove(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(t.remove(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(t.empty());
}

TEST(RoutingTableTest, ConstructorDeduplicatesLastWins) {
  std::vector<Route> routes{{*Prefix::parse("10.0.0.0/8"), 1},
                            {*Prefix::parse("10.0.0.0/8"), 2}};
  const RoutingTable t(std::move(routes));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(Ipv4(10, 0, 0, 1)), 2);
}

TEST(RoutingTableTest, ParseSkipsCommentsAndBlanks) {
  const RoutingTable t = RoutingTable::parse_text(
      "# edge table\n"
      "\n"
      "10.0.0.0/8 3\n"
      "   \n"
      "192.168.0.0/16 7\n");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup(Ipv4(192, 168, 1, 1)), 7);
}

TEST(RoutingTableTest, ParseReportsLineNumbers) {
  try {
    RoutingTable::parse_text("10.0.0.0/8 1\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(RoutingTableTest, ParseRejectsBadNextHop) {
  EXPECT_THROW(RoutingTable::parse_text("10.0.0.0/8 -1\n"), ParseError);
  EXPECT_THROW(RoutingTable::parse_text("10.0.0.0/8 65535\n"), ParseError);
  EXPECT_THROW(RoutingTable::parse_text("10.0.0.0/8 1 junk\n"), ParseError);
  EXPECT_THROW(RoutingTable::parse_text("10.0.0.0/8\n"), ParseError);
}

TEST(RoutingTableTest, SerializeParseRoundTrip) {
  RoutingTable t;
  t.add(*Prefix::parse("10.0.0.0/8"), 1);
  t.add(*Prefix::parse("172.16.0.0/12"), 2);
  std::ostringstream os;
  t.serialize(os);
  const RoutingTable back = RoutingTable::parse_text(os.str());
  EXPECT_EQ(back, t);
}

TEST(RoutingTableTest, LengthHistogram) {
  RoutingTable t;
  t.add(*Prefix::parse("10.0.0.0/8"), 1);
  t.add(*Prefix::parse("11.0.0.0/8"), 1);
  t.add(*Prefix::parse("10.1.0.0/16"), 2);
  const auto hist = t.length_histogram();
  EXPECT_EQ(hist[8], 2u);
  EXPECT_EQ(hist[16], 1u);
  EXPECT_EQ(t.max_prefix_length(), 16u);
}

// -------------------------------------------------------------- table gen --

TEST(TableGenTest, ProducesExactCountDeterministically) {
  const SyntheticTableGenerator gen(TableProfile::edge_default());
  const RoutingTable a = gen.generate(1);
  const RoutingTable b = gen.generate(1);
  EXPECT_EQ(a.size(), TableProfile::edge_default().prefix_count);
  EXPECT_EQ(a, b);
}

TEST(TableGenTest, DifferentSeedsGiveDifferentTables) {
  const SyntheticTableGenerator gen(TableProfile::edge_default());
  EXPECT_NE(gen.generate(1), gen.generate(2));
}

TEST(TableGenTest, LengthsWithinConfiguredRange) {
  TableProfile profile;
  profile.prefix_count = 500;
  const SyntheticTableGenerator gen(profile);
  const RoutingTable t = gen.generate(3);
  for (const Route& r : t.routes()) {
    EXPECT_GE(r.prefix.length(), profile.min_length);
    EXPECT_LE(r.prefix.length(),
              profile.min_length + profile.length_weights.size() - 1);
  }
}

TEST(TableGenTest, DistributionPeaksAtSlash24) {
  const SyntheticTableGenerator gen(TableProfile::edge_default());
  const auto hist = gen.generate(5).length_histogram();
  const auto peak = std::max_element(hist.begin(), hist.end());
  EXPECT_EQ(peak - hist.begin(), 24);
}

TEST(TableGenTest, NextHopsWithinRange) {
  TableProfile profile;
  profile.prefix_count = 300;
  profile.next_hop_count = 4;
  const SyntheticTableGenerator gen(profile);
  const RoutingTable table = gen.generate(7);
  for (const Route& r : table.routes()) {
    EXPECT_LT(r.next_hop, 4);
  }
}

TEST(TableGenTest, WorstCaseProfileSizes) {
  const SyntheticTableGenerator gen(TableProfile::worst_case());
  EXPECT_EQ(gen.generate(1).size(), 10000u);
}

TEST(TableGenTest, InfeasibleProfileThrows) {
  TableProfile profile;
  profile.prefix_count = 100000;
  profile.provider_blocks = 1;
  profile.density_span = 4;
  profile.length_weights = {1.0};  // only /16
  EXPECT_THROW(SyntheticTableGenerator(profile).generate(1),
               InvalidArgumentError);
}

TEST(TableGenTest, RejectsBadProfiles) {
  TableProfile zero;
  zero.prefix_count = 0;
  EXPECT_DEATH(SyntheticTableGenerator{zero}, "prefix_count");
  TableProfile deep;
  deep.min_length = 30;
  deep.length_weights = {1.0, 1.0, 1.0, 1.0};  // extends past /32
  EXPECT_DEATH(SyntheticTableGenerator{deep}, "past /32");
}

// ---------------------------------------------------------------- traffic --

class TrafficTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableProfile profile;
    profile.prefix_count = 200;
    const SyntheticTableGenerator gen(profile);
    for (std::uint64_t s = 0; s < 3; ++s) {
      tables_.push_back(gen.generate(s + 10));
    }
    for (const auto& t : tables_) ptrs_.push_back(&t);
  }

  std::vector<RoutingTable> tables_;
  std::vector<const RoutingTable*> ptrs_;
};

TEST_F(TrafficTest, DeterministicTraces) {
  TrafficConfig config;
  config.cycles = 2000;
  const TrafficGenerator gen(config, ptrs_);
  EXPECT_EQ(gen.generate(42), gen.generate(42));
}

TEST_F(TrafficTest, EveryPacketMatchesItsTable) {
  TrafficConfig config;
  config.cycles = 2000;
  const TrafficGenerator gen(config, ptrs_);
  for (const TimedPacket& tp : gen.generate(1)) {
    ASSERT_LT(tp.packet.vnid, tables_.size());
    EXPECT_TRUE(
        tables_[tp.packet.vnid].lookup(tp.packet.addr).has_value());
  }
}

TEST_F(TrafficTest, LoadControlsVolume) {
  TrafficConfig config;
  config.cycles = 20000;
  config.load = 0.25;
  const TrafficGenerator gen(config, ptrs_);
  const auto trace = gen.generate(2);
  EXPECT_NEAR(static_cast<double>(trace.size()) / 20000.0, 0.25, 0.02);
}

TEST_F(TrafficTest, UniformSharesByDefault) {
  TrafficConfig config;
  config.cycles = 30000;
  const TrafficGenerator gen(config, ptrs_);
  const auto shares =
      TrafficGenerator::measured_shares(gen.generate(3), 3);
  for (const double share : shares) EXPECT_NEAR(share, 1.0 / 3.0, 0.02);
}

TEST_F(TrafficTest, WeightedShares) {
  TrafficConfig config;
  config.cycles = 30000;
  config.vn_weights = {1.0, 1.0, 2.0};
  const TrafficGenerator gen(config, ptrs_);
  const auto shares =
      TrafficGenerator::measured_shares(gen.generate(4), 3);
  EXPECT_NEAR(shares[2], 0.5, 0.02);
}

TEST_F(TrafficTest, DutyCycleGatesArrivals) {
  TrafficConfig config;
  config.cycles = 10000;
  config.duty_period = 100;
  config.duty_on_fraction = 0.2;
  const TrafficGenerator gen(config, ptrs_);
  const auto trace = gen.generate(5);
  for (const TimedPacket& tp : trace) {
    EXPECT_LT(tp.cycle % 100, 20u);
  }
  EXPECT_NEAR(static_cast<double>(trace.size()) / 10000.0, 0.2, 0.02);
}

TEST_F(TrafficTest, CyclesAreMonotonic) {
  TrafficConfig config;
  config.cycles = 5000;
  const TrafficGenerator gen(config, ptrs_);
  const auto trace = gen.generate(6);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace[i - 1].cycle, trace[i].cycle);
  }
}

TEST_F(TrafficTest, RejectsBadConfig) {
  TrafficConfig config;
  config.load = 2.0;
  EXPECT_DEATH(TrafficGenerator(config, ptrs_), "load");
  TrafficConfig weights;
  weights.vn_weights = {1.0};  // wrong size for 3 tables
  EXPECT_DEATH(TrafficGenerator(weights, ptrs_), "vn_weights");
}

TEST_F(TrafficTest, PhasedWindowsGateEachVnSeparately) {
  TrafficConfig config;
  config.cycles = 12000;
  config.duty_period = 1000;
  config.duty_on_fraction = 0.25;
  config.vn_phase_offsets = {0.0, 0.25, 0.5};
  const TrafficGenerator gen(config, ptrs_);
  for (const TimedPacket& tp : gen.generate(41)) {
    const std::uint64_t phase = tp.cycle % 1000;
    const std::uint64_t start = 250ull * tp.packet.vnid;
    const std::uint64_t rel = (phase + 1000 - start) % 1000;
    EXPECT_LT(rel, 250u) << "vn " << tp.packet.vnid << " cycle "
                         << tp.cycle;
  }
}

TEST_F(TrafficTest, AlignedPhasesOfferIndependentLoads) {
  // Three tenants aligned at full load: ~3 packets per on-cycle.
  TrafficConfig config;
  config.cycles = 8000;
  config.duty_period = 1000;
  config.duty_on_fraction = 0.5;
  config.load = 1.0;
  config.vn_phase_offsets = {0.0, 0.0, 0.0};
  const TrafficGenerator gen(config, ptrs_);
  const auto trace = gen.generate(43);
  EXPECT_NEAR(static_cast<double>(trace.size()), 3.0 * 4000.0, 10.0);
}

TEST_F(TrafficTest, PhaseOffsetsValidated) {
  TrafficConfig config;
  config.vn_phase_offsets = {0.0, 0.5};  // wrong size for 3 tables
  EXPECT_DEATH(TrafficGenerator(config, ptrs_), "vn_phase_offsets");
  TrafficConfig bad;
  bad.vn_phase_offsets = {0.0, 0.5, 1.5};
  EXPECT_DEATH(TrafficGenerator(bad, ptrs_), "phase offsets");
}

TEST_F(TrafficTest, SamplePacketRandomizesHostBits) {
  TrafficConfig config;
  const TrafficGenerator gen(config, ptrs_);
  Rng rng(9);
  std::set<std::uint32_t> addrs;
  for (int i = 0; i < 200; ++i) {
    addrs.insert(gen.sample_packet(rng, 0).addr.value());
  }
  EXPECT_GT(addrs.size(), 50u);
}

}  // namespace
}  // namespace vr::net
