# Empty compiler generated dependencies file for vr_tcam.
# This may be replaced when dependencies are built.
