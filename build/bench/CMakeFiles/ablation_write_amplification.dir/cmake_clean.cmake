file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_amplification.dir/ablation_write_amplification.cpp.o"
  "CMakeFiles/ablation_write_amplification.dir/ablation_write_amplification.cpp.o.d"
  "ablation_write_amplification"
  "ablation_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
