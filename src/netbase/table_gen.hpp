// Synthetic edge-network routing-table generation.
//
// The paper evaluates on real edge tables from bgp.potaroo.net; the largest
// had 3 725 prefixes whose uni-bit trie had 9 726 nodes (16 127 after leaf
// pushing). We cannot ship that data, so this generator produces
// deterministic synthetic tables with the two structural properties the
// power models actually consume:
//   1. a realistic prefix-length distribution (mass concentrated at /24,
//      with the /16-/23 shoulder seen in BGP snapshots), and
//   2. provider-block clustering, so prefixes share long leading paths and
//      the trie nodes-per-prefix ratio lands near the paper's ~2.6 (and the
//      leaf-pushing expansion near ~1.66).
// The `tablev_trie_stats` bench reports the achieved ratios against the
// paper's numbers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netbase/routing_table.hpp"

namespace vr::net {

/// Tunable profile for the generator. The defaults model an edge-level
/// table per the paper's Sec. V-E.
struct TableProfile {
  /// Number of unique prefixes to produce.
  std::size_t prefix_count = 3725;

  /// Number of distinct provider blocks prefixes are drawn from. Fewer
  /// blocks => more path sharing => fewer trie nodes per prefix.
  std::size_t provider_blocks = 6;

  /// Length of each provider block (bits of shared leading path).
  unsigned provider_block_length = 12;

  /// Probability mass per prefix length. Index 0 corresponds to length
  /// `min_length`. Does not need to be normalized.
  unsigned min_length = 16;
  std::vector<double> length_weights = {
      // /16  /17  /18  /19  /20   /21   /22   /23   /24    (BGP-like shape)
      4.0, 1.5, 2.5, 3.5, 4.5, 5.0, 8.0, 8.5, 55.0};

  /// Within a provider block, suffixes are drawn from the first
  /// `density_span` values of the suffix space (clipped to the space size).
  /// Smaller spans make denser subtrees.
  std::uint64_t density_span = 8192;

  /// Fraction of prefixes produced by truncating an already-generated
  /// prefix to a shorter length (BGP tables are heavily nested: the
  /// paper's reference table has only ~1.7 k trie leaves for 3.7 k
  /// prefixes, i.e. most prefixes cover more-specific ones). Nesting adds
  /// prefixes without adding trie nodes.
  double nested_fraction = 0.32;

  /// Number of distinct next hops (ports) to assign round-robin-randomly.
  NextHop next_hop_count = 16;

  /// Returns the paper's default edge profile (3 725 prefixes).
  static TableProfile edge_default();

  /// Returns the worst-case profile of Assumption 2 (10 000 prefixes).
  static TableProfile worst_case();
};

/// Generates one synthetic routing table. Deterministic in (profile, seed).
class SyntheticTableGenerator {
 public:
  explicit SyntheticTableGenerator(TableProfile profile);

  /// Produces a table with exactly profile.prefix_count unique prefixes.
  /// Throws vr::InvalidArgumentError if the profile is infeasible (e.g. the
  /// requested count exceeds the representable unique prefixes).
  [[nodiscard]] RoutingTable generate(std::uint64_t seed) const;

  [[nodiscard]] const TableProfile& profile() const noexcept {
    return profile_;
  }

 private:
  /// Draws a single candidate route (may duplicate an earlier prefix; the
  /// caller deduplicates).
  [[nodiscard]] Route draw(Rng& rng,
                           const std::vector<std::uint32_t>& blocks) const;

  TableProfile profile_;
};

}  // namespace vr::net
