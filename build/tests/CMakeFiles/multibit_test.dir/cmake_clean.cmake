file(REMOVE_RECURSE
  "CMakeFiles/multibit_test.dir/multibit_test.cpp.o"
  "CMakeFiles/multibit_test.dir/multibit_test.cpp.o.d"
  "multibit_test"
  "multibit_test.pdb"
  "multibit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
