file(REMOVE_RECURSE
  "CMakeFiles/vr_power.dir/analytical_model.cpp.o"
  "CMakeFiles/vr_power.dir/analytical_model.cpp.o.d"
  "CMakeFiles/vr_power.dir/resource_model.cpp.o"
  "CMakeFiles/vr_power.dir/resource_model.cpp.o.d"
  "CMakeFiles/vr_power.dir/update_power.cpp.o"
  "CMakeFiles/vr_power.dir/update_power.cpp.o.d"
  "CMakeFiles/vr_power.dir/utilization.cpp.o"
  "CMakeFiles/vr_power.dir/utilization.cpp.o.d"
  "libvr_power.a"
  "libvr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
