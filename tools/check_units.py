#!/usr/bin/env python3
"""Project-specific unit lint for the vrpower tree.

Two rules, both about keeping physical quantities honest:

1. Typed boundary (src/power/*.hpp, src/core/*.hpp): public power-model
   headers must not declare naked-`double` parameters or members that carry
   a physical dimension (power, frequency, energy, throughput, memory
   size). Those must use the strong quantity types from common/units.hpp
   (units::Watts, units::Megahertz, units::Bits, ...). Dimensionless
   quantities (utilizations, alpha, percentages, rates) stay `double`.

2. Suffix convention (every other header under src/): a `double` whose
   name mentions a dimensioned concept must spell its unit as a suffix
   (`power_w`, `freq_mhz`, `throughput_gbps`, ...) so readers and future
   migrations know what the number means.

A declaration can be exempted with an inline comment on the same or the
preceding line:

    double weird_power;  // units-ok: calibration scratch value

Run:  tools/check_units.py [--root DIR]
Exit: 0 clean, 1 violations found, 2 usage error.
"""

import argparse
import pathlib
import re
import sys

# Concepts that imply a physical dimension when they appear in a name.
DIMENSIONED = re.compile(
    r"(?:^|_)(power|freq|frequency|energy|watt|watts|throughput)(?:_|$)|"
    r"_(w|mw|uw|mhz|ghz|pj|gbps|mbps|bits|kbits|joules)$"
)

# Unit suffixes that satisfy rule 2 (and names that *are* unit words,
# e.g. the conversion-helper parameters in common/units.hpp).
SUFFIX_OK = re.compile(
    r"_(w|mw|uw|mhz|ghz|hz|pj|pj_per_cycle|gbps|mbps|bits|kbits|bytes|"
    r"pct|percent|ns|us|ms|s|seconds|per_second|per_cycle|per_mhz)$"
)
UNIT_WORDS = {
    "watts", "milliwatts", "microwatts", "megahertz", "picojoules",
    "cycles", "gbps", "coefficient", "packet_bytes",
}

# `double name` as a parameter or member. Keeps to single declarations;
# good enough for this codebase's style (one declaration per line).
DOUBLE_DECL = re.compile(r"\bdouble\s+(?:&\s*)?([A-Za-z_][A-Za-z0-9_]*)")

SUPPRESS = re.compile(r"//\s*units-ok\b")


def strip_comment(line: str) -> str:
    return line.split("//", 1)[0]


def lint_file(path: pathlib.Path, typed_boundary: bool) -> list[str]:
    problems = []
    lines = path.read_text().splitlines()
    for i, raw in enumerate(lines):
        if SUPPRESS.search(raw) or (i > 0 and SUPPRESS.search(lines[i - 1])):
            continue
        code = strip_comment(raw)
        for m in DOUBLE_DECL.finditer(code):
            name = m.group(1)
            if name in UNIT_WORDS:
                continue
            if not DIMENSIONED.search(name):
                continue
            if typed_boundary:
                problems.append(
                    f"{path}:{i + 1}: naked-double dimensioned quantity "
                    f"'{name}' in a typed-boundary header — use a "
                    f"units:: quantity type (or annotate '// units-ok: "
                    f"<reason>')"
                )
            elif not SUFFIX_OK.search(name):
                problems.append(
                    f"{path}:{i + 1}: dimensioned double '{name}' has no "
                    f"unit suffix (expected e.g. '{name}_w', '{name}_mhz')"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"check_units: no src/ under {root}", file=sys.stderr)
        return 2

    problems = []
    for path in sorted(src.rglob("*.hpp")):
        rel = path.relative_to(src)
        typed = rel.parts[0] in ("power", "core")
        # units.hpp itself defines the raw conversion helpers.
        if rel == pathlib.Path("common/units.hpp"):
            typed = False
        problems += lint_file(path, typed)

    for p in problems:
        print(p)
    if problems:
        print(f"check_units: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("check_units: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
