#include "placement/request.hpp"

#include "common/error.hpp"

namespace vr::placement {

RequestStream::RequestStream(RequestStreamConfig config)
    : config_(config), rng_(SplitMix64(config.seed ^ 0x9e3779b97f4a7c15ULL)
                                .next()) {
  VR_REQUIRE(config_.size_classes >= 1 && config_.size_classes <= 16,
             "request stream needs between 1 and 16 size classes");
  VR_REQUIRE(config_.base_prefix_count >= 1,
             "base prefix count must be positive");
  VR_REQUIRE(config_.mu_levels >= 1 && config_.mu_levels <= kMuQuantum,
             "mu_levels must be in [1, kMuQuantum]");
  VR_REQUIRE(config_.gold_fraction >= 0.0 && config_.silver_fraction >= 0.0 &&
                 config_.gold_fraction + config_.silver_fraction <= 1.0,
             "SLA fractions must be non-negative and sum to at most 1");
  size_weights_.reserve(config_.size_classes);
  for (std::size_t c = 0; c < config_.size_classes; ++c) {
    size_weights_.push_back(static_cast<double>(
        std::uint64_t{1} << (config_.size_classes - 1 - c)));
  }
}

VnRequest RequestStream::next() {
  VnRequest request;
  request.id = next_id_;
  request.arrival_tick = next_id_;
  ++next_id_;

  const std::size_t size_class =
      rng_.next_weighted(size_weights_.data(), size_weights_.size());
  const std::size_t base = config_.base_prefix_count << size_class;
  // Jitter keeps prefix counts off the oracle's bucket boundaries, so the
  // bucket_for rounding path is exercised on every request.
  request.prefix_count = base + rng_.next_below(base / 2 + 1);

  request.mu_q = static_cast<std::uint32_t>(
      rng_.next_in(1, config_.mu_levels));

  const double sla_draw = rng_.next_double();
  if (sla_draw < config_.gold_fraction) {
    request.sla = SlaClass::kGold;
  } else if (sla_draw < config_.gold_fraction + config_.silver_fraction) {
    request.sla = SlaClass::kSilver;
  } else {
    request.sla = SlaClass::kBronze;
  }

  if (config_.mean_holding_ticks > 0) {
    // Uniform over [1, 2*mean]: integer-only, mean ≈ mean_holding_ticks,
    // and reproducible on every platform (no transcendental sampling).
    const std::uint64_t holding =
        rng_.next_in(1, 2 * config_.mean_holding_ticks);
    request.departure_tick = request.arrival_tick + holding;
  }
  return request;
}

std::vector<VnRequest> generate_requests(const RequestStreamConfig& config,
                                         std::size_t count) {
  RequestStream stream(config);
  std::vector<VnRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) requests.push_back(stream.next());
  return requests;
}

}  // namespace vr::placement
