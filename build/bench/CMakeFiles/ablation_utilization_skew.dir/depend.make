# Empty dependencies file for ablation_utilization_skew.
# This may be replaced when dependencies are built.
