// CostOracle — the placement controller's bridge to the paper's power and
// resource models. A fleet device hosting a set of VNs is abstracted into
// a DeviceShape (virtualization mode, VN count, largest table bucket,
// quantized aggregate load); the oracle maps each shape to a full
// core::Estimate via PowerEstimator and answers the two questions every
// policy asks: does this shape fit the device (power::FitReport + SLA
// floors), and what does it cost in watts?
//
// Scaling: a million-request run touches millions of (device, VN) pairs
// but only a few hundred distinct shapes, because requests are quantized
// into table-size buckets and 1/kMuQuantum load steps. Estimates are
// memoized per shape, and the trie realizations behind them are memoized
// again in a WorkloadCache whose key excludes utilization — so all load
// levels of one (mode, K, bucket) share a single table build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/estimator.hpp"
#include "core/workload_cache.hpp"
#include "placement/request.hpp"

namespace vr::placement {

/// How a fleet device is virtualized, mapping onto the paper's schemes.
enum class DeviceMode : std::uint8_t {
  kDedicated = 0,    ///< NV: the device carries exactly one VN
  kSpaceShared = 1,  ///< VS: K parallel engines on one device
  kTimeShared = 2,   ///< VM: one merged engine time-shared by K VNs
};

[[nodiscard]] constexpr const char* to_string(DeviceMode mode) noexcept {
  switch (mode) {
    case DeviceMode::kDedicated:
      return "dedicated";
    case DeviceMode::kSpaceShared:
      return "space-shared";
    case DeviceMode::kTimeShared:
      return "time-shared";
  }
  return "?";
}

[[nodiscard]] constexpr power::Scheme scheme_for(DeviceMode mode) noexcept {
  switch (mode) {
    case DeviceMode::kDedicated:
      return power::Scheme::kNonVirtualized;
    case DeviceMode::kSpaceShared:
      return power::Scheme::kSeparate;
    case DeviceMode::kTimeShared:
      return power::Scheme::kMerged;
  }
  return power::Scheme::kNonVirtualized;
}

/// The quantized state of one device — the oracle's memoization key and
/// the fleet's grouping key. sla_floor (the strictest SLA hosted) affects
/// feasibility but not the power estimate, so the estimate memo ignores it.
struct DeviceShape {
  DeviceMode mode = DeviceMode::kDedicated;
  std::uint32_t vn_count = 0;
  std::uint32_t max_bucket = 0;   ///< index into bucket_prefix_counts
  std::uint32_t mu_total_q = 0;   ///< Σµ over hosted VNs, in 1/kMuQuantum
  SlaClass sla_floor = SlaClass::kBronze;

  [[nodiscard]] bool operator==(const DeviceShape&) const = default;
  [[nodiscard]] auto operator<=>(const DeviceShape&) const = default;

  [[nodiscard]] bool idle() const noexcept { return vn_count == 0; }

  [[nodiscard]] double mu_total() const noexcept {
    return static_cast<double>(mu_total_q) / static_cast<double>(kMuQuantum);
  }
};

/// Clock floors each SLA class demands of its hosting device.
struct SlaPolicy {
  double gold_min_freq_mhz = 150.0;
  double silver_min_freq_mhz = 100.0;
};

struct OracleConfig {
  fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;
  fpga::BramPolicy bram_policy = fpga::BramPolicy::kMixed;
  std::size_t stages = 28;
  double alpha = 0.8;  ///< merging efficiency of time-shared devices
  std::uint64_t table_seed = 1;
  /// Co-location cap per device (keeps the candidate space and the
  /// merged-trie growth bounded; VS also self-limits via I/O pins).
  std::uint32_t max_vns_per_device = 8;
  /// Table-size quantization: a request is charged the smallest bucket
  /// that covers its prefix count (requests above the largest bucket
  /// are clamped to it and priced as full-size tables).
  std::vector<std::size_t> bucket_prefix_counts = {600, 1200, 2400, 4800};
  SlaPolicy sla;
};

class CostOracle {
 public:
  using Config = OracleConfig;

  explicit CostOracle(fpga::DeviceSpec device, Config config = {});

  /// Smallest bucket covering `prefix_count` (clamped to the largest).
  [[nodiscard]] std::uint32_t bucket_for(std::size_t prefix_count) const;

  /// The full analytical estimate of a shape (memoized). Shapes that do
  /// not fit the device still estimate finitely — the FitReport inside
  /// says so; policies must check feasible() before placing.
  [[nodiscard]] const core::Estimate& estimate(const DeviceShape& shape);

  /// Total watts of a device in this shape.
  [[nodiscard]] double watts(const DeviceShape& shape);

  /// True when the shape respects every hard constraint: device capacity
  /// (FitReport), the co-location cap, time-shared load ≤ 1, and the SLA
  /// floor's mode/clock demands.
  [[nodiscard]] bool feasible(const DeviceShape& shape);

  /// Scalar load measure in [0, 1] for the exponential-cost policy: the
  /// most binding of BRAM occupancy, VN-slot occupancy, and (time-shared
  /// only) engine utilization.
  [[nodiscard]] double congestion(const DeviceShape& shape);

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const fpga::DeviceSpec& device() const noexcept {
    return estimator_.device();
  }
  /// Distinct shapes estimated so far (memoization effectiveness; tests
  /// assert this stays ~constant as the request count grows).
  [[nodiscard]] std::size_t estimates_computed() const noexcept {
    return memo_.size();
  }
  [[nodiscard]] core::WorkloadCache::Stats workload_cache_stats() const {
    return cache_.stats();
  }

 private:
  [[nodiscard]] core::Scenario scenario_for(const DeviceShape& shape) const;

  Config config_;
  core::PowerEstimator estimator_;
  core::WorkloadCache cache_;
  std::map<DeviceShape, core::Estimate> memo_;
};

}  // namespace vr::placement
