#!/usr/bin/env bash
# The project static-analysis gate:
#
#   1. tools/check_units.py  — the unit lint (always runs; pure python3).
#   2. clang-tidy over src/  — runs when clang-tidy is on PATH and a
#      compile_commands.json exists; skipped with a notice otherwise
#      (this container ships gcc only — the gate must not silently rot,
#      but it also must not fail on a toolchain it cannot fix).
#
# Usage: tools/static_check.sh [build-dir]
#   build-dir  where compile_commands.json lives (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
status=0

echo "== static gate: unit lint =="
python3 "${repo_root}/tools/check_units.py" --root "${repo_root}" || status=1

echo "== static gate: clang-tidy =="
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "SKIP: clang-tidy not installed — the tidy prong did not run" \
       "(unit lint still gates)."
elif [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "no ${build_dir}/compile_commands.json — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  status=1
else
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet "${sources[@]}" || status=1
  else
    clang-tidy -p "${build_dir}" --quiet "${sources[@]}" || status=1
  fi
fi

if [[ ${status} -ne 0 ]]; then
  echo "static_check: FAILED" >&2
  exit 1
fi
echo "static_check: clean"
