#include "trie/trie_diff.hpp"

#include <vector>

namespace vr::trie {

namespace {

/// Counts all nodes in the subtree rooted at `node`.
std::size_t subtree_size(const UnibitTrie& trie, NodeIndex node) {
  std::size_t count = 0;
  std::vector<NodeIndex> stack{node};
  while (!stack.empty()) {
    const NodeIndex current = stack.back();
    stack.pop_back();
    ++count;
    const TrieNode& n = trie.node(current);
    if (n.left != kNullNode) stack.push_back(n.left);
    if (n.right != kNullNode) stack.push_back(n.right);
  }
  return count;
}

}  // namespace

TrieDiff diff_tries(const UnibitTrie& before, const UnibitTrie& after) {
  TrieDiff diff;
  struct Frame {
    NodeIndex b;
    NodeIndex a;
  };
  std::vector<Frame> stack{{before.root(), after.root()}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const TrieNode& b = before.node(frame.b);
    const TrieNode& a = after.node(frame.a);
    // Contents differ when the next hop differs or the child topology
    // differs (a pointer word rewrite either way).
    const bool topology_changed =
        (b.left == kNullNode) != (a.left == kNullNode) ||
        (b.right == kNullNode) != (a.right == kNullNode);
    if (b.next_hop != a.next_hop || topology_changed) {
      ++diff.nodes_changed;
    } else {
      ++diff.nodes_unchanged;
    }
    for (const bool right : {false, true}) {
      const NodeIndex bc = right ? b.right : b.left;
      const NodeIndex ac = right ? a.right : a.left;
      if (bc != kNullNode && ac != kNullNode) {
        stack.push_back(Frame{bc, ac});
      } else if (bc != kNullNode) {
        diff.nodes_removed += subtree_size(before, bc);
      } else if (ac != kNullNode) {
        diff.nodes_added += subtree_size(after, ac);
      }
    }
  }
  return diff;
}

}  // namespace vr::trie
