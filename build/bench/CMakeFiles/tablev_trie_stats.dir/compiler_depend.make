# Empty compiler generated dependencies file for tablev_trie_stats.
# This may be replaced when dependencies are built.
