// Dynamic provisioning on a merged virtual router: tenants come and go
// and push BGP-style updates at run time, all served in place by the
// incrementally updatable merged trie (the direction of the paper's
// reference [6] — no rebuild, no downtime). The example tracks the
// structural merging efficiency α, the memory footprint and the resulting
// power estimate as the tenant set evolves over a simulated day.
//
// Run: ./build/examples/dynamic_provisioning
#include <iostream>

#include "common/table.hpp"
#include "core/estimator.hpp"
#include "netbase/update_gen.hpp"
#include "virt/table_set_gen.hpp"
#include "virt/updatable_merged.hpp"

int main() {
  using namespace vr;

  // Capacity for up to 6 tenants; 4 are active at boot.
  constexpr std::size_t kMaxTenants = 6;
  net::TableProfile profile;
  profile.prefix_count = 1200;
  // Regional tenants share most of their routes (the case merging is for):
  // derive all prospective tables from one base with 25 % mutation.
  virt::TableSetConfig set_config;
  set_config.profile = profile;
  set_config.leaf_push = false;
  const virt::CorrelatedTableSetGenerator set_gen(set_config);
  std::vector<net::RoutingTable> all_tables =
      set_gen.generate(kMaxTenants, 0.25, 7).tables;
  std::vector<net::RoutingTable> tables(kMaxTenants);
  for (std::uint64_t v = 0; v < 4; ++v) {
    tables[v] = all_tables[v];
  }
  std::vector<const net::RoutingTable*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  virt::UpdatableMergedTrie merged{
      std::span<const net::RoutingTable* const>(ptrs)};

  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};
  TextTable table("A day on a merged virtual router (grade -2)");
  table.set_header({"event", "tenants", "merged nodes", "alpha",
                    "words written", "est. power W"});

  std::size_t active = 4;
  const auto snapshot = [&](const std::string& event,
                            std::size_t words_written) {
    // Analytical estimate driven by the live structure's α.
    core::Scenario s;
    s.scheme = power::Scheme::kMerged;
    s.vn_count = std::max<std::size_t>(active, 1);
    s.alpha = merged.alpha_effective();
    s.table_profile = profile;
    const core::Estimate est = estimator.estimate(s);
    table.add_row({event, std::to_string(active),
                   std::to_string(merged.node_count()),
                   TextTable::num(merged.alpha_effective(), 3),
                   std::to_string(words_written),
                   TextTable::num(est.power.total_w().value(), 3)});
  };
  snapshot("boot: 4 tenants", 0);

  // Morning: two new tenants are provisioned by streaming announcements.
  for (std::uint64_t v = 4; v < 6; ++v) {
    tables[v] = all_tables[v];
    std::size_t words = 0;
    for (const net::Route& route : tables[v].routes()) {
      words +=
          merged.announce(static_cast<net::VnId>(v), route).words_written;
    }
    ++active;
    snapshot("provision tenant " + std::to_string(v), words);
  }

  // Midday: every tenant churns 5% of its table (BGP path changes).
  net::UpdateStreamConfig churn;
  churn.update_count = 60;
  churn.profile = profile;
  const net::UpdateStreamGenerator churn_gen(churn);
  std::size_t churn_words = 0;
  for (net::VnId v = 0; v < 6; ++v) {
    for (const net::RouteUpdate& update :
         churn_gen.generate(merged.table_of(v), 100 + v)) {
      churn_words += merged.apply(v, update).words_written;
    }
  }
  snapshot("midday churn (6x60 updates)", churn_words);

  // Evening: tenant 2 is decommissioned route by route.
  {
    std::size_t words = 0;
    const net::RoutingTable leaving = merged.table_of(2);
    for (const net::Route& route : leaving.routes()) {
      words += merged.withdraw(2, route.prefix).words_written;
    }
    --active;
    snapshot("decommission tenant 2", words);
  }

  table.render(std::cout);
  std::cout << "\nEvery transition ran in place on the shared trie: no\n"
               "rebuild, no service interruption for the other tenants,\n"
               "with write costs small enough to stay far below the\n"
               "paper's 1% BRAM write-rate assumption.\n";
  return 0;
}
