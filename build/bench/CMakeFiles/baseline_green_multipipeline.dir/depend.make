# Empty dependencies file for baseline_green_multipipeline.
# This may be replaced when dependencies are built.
