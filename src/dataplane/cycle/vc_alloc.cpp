#include "dataplane/cycle/vc_alloc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::dataplane::cycle {

VcAllocator::VcAllocator(VcAllocConfig config) : config_(config) {
  VR_REQUIRE(config_.vn_count >= 1, "VC allocator needs at least one VN");
  VR_REQUIRE(config_.vc_count >= config_.vn_count,
             "every VN needs at least one VC in the pool");
  if (config_.policy == VcPolicy::kDynamic) {
    VR_REQUIRE(config_.dynamic_floor >= 1,
               "dynamic policy needs a per-VN floor of at least one VC");
    VR_REQUIRE(config_.vn_count * config_.dynamic_floor <= config_.vc_count,
               "per-VN floors must fit the VC pool");
    VR_REQUIRE(config_.dynamic_ceiling == 0 ||
                   config_.dynamic_ceiling >= config_.dynamic_floor,
               "dynamic ceiling must be at least the floor");
  }
  owner_.assign(config_.vc_count, kFree);
  allocated_per_vn_.assign(config_.vn_count, 0);
  free_count_ = config_.vc_count;
}

net::VnId VcAllocator::static_home(std::size_t vc) const {
  VR_REQUIRE(vc < config_.vc_count, "VC index out of range");
  // Contiguous blocks of floor(vc_count / vn_count); the first
  // (vc_count % vn_count) VNs absorb one extra VC each.
  const std::size_t base = config_.vc_count / config_.vn_count;
  const std::size_t extra = config_.vc_count % config_.vn_count;
  const std::size_t wide = (base + 1) * extra;  // VCs in widened partitions
  std::size_t home = 0;
  if (vc < wide) {
    home = vc / (base + 1);
  } else {
    home = extra + (vc - wide) / base;
  }
  // narrow-ok: home < vn_count, which a VnId (uint16) can always hold for
  // any deployment this library models (K <= a few thousand)
  return static_cast<net::VnId>(home);
}

std::size_t VcAllocator::effective_ceiling() const noexcept {
  if (config_.policy != VcPolicy::kDynamic || config_.dynamic_ceiling == 0) {
    return config_.vc_count;
  }
  return std::min(config_.dynamic_ceiling, config_.vc_count);
}

std::optional<std::size_t> VcAllocator::allocate(net::VnId vn) {
  VR_REQUIRE(vn < config_.vn_count, "VN out of range");
  if (free_count_ == 0) return std::nullopt;
  if (config_.policy != VcPolicy::kDynamic) {
    // Static partition: only VCs whose home is `vn` are eligible.
    for (std::size_t vc = 0; vc < config_.vc_count; ++vc) {
      if (owner_[vc] == kFree && static_home(vc) == vn) {
        owner_[vc] = vn;
        ++allocated_per_vn_[vn];
        --free_count_;
        return vc;
      }
    }
    return std::nullopt;
  }
  // Dynamic pool. A VN below its floor draws from the reserve it is
  // entitled to; beyond the floor it may only take a free VC that is not
  // needed to keep every *other* VN's unmet floor satisfiable.
  if (allocated_per_vn_[vn] >= effective_ceiling()) return std::nullopt;
  if (allocated_per_vn_[vn] >= config_.dynamic_floor) {
    std::size_t reserved = 0;
    for (std::size_t v = 0; v < config_.vn_count; ++v) {
      if (v == vn) continue;
      if (allocated_per_vn_[v] < config_.dynamic_floor) {
        reserved += config_.dynamic_floor - allocated_per_vn_[v];
      }
    }
    if (free_count_ <= reserved) return std::nullopt;
  }
  for (std::size_t vc = 0; vc < config_.vc_count; ++vc) {
    if (owner_[vc] == kFree) {
      owner_[vc] = vn;
      ++allocated_per_vn_[vn];
      --free_count_;
      return vc;
    }
  }
  VR_REQUIRE(false, "free_count_ said a VC was free but none was found");
  return std::nullopt;
}

void VcAllocator::release(std::size_t vc) {
  VR_REQUIRE(vc < config_.vc_count, "VC index out of range");
  VR_REQUIRE(owner_[vc] != kFree, "releasing a VC that is not allocated");
  const net::VnId vn = owner_[vc];
  VR_REQUIRE(allocated_per_vn_[vn] > 0, "per-VN allocation count underflow");
  owner_[vc] = kFree;
  --allocated_per_vn_[vn];
  ++free_count_;
}

std::optional<net::VnId> VcAllocator::owner(std::size_t vc) const {
  VR_REQUIRE(vc < config_.vc_count, "VC index out of range");
  if (owner_[vc] == kFree) return std::nullopt;
  return owner_[vc];
}

std::size_t VcAllocator::allocated_to(net::VnId vn) const {
  VR_REQUIRE(vn < config_.vn_count, "VN out of range");
  return allocated_per_vn_[vn];
}

}  // namespace vr::dataplane::cycle
