// Output scheduling stage with per-virtual-network QoS isolation.
//
// Router virtualization "must be transparent to the user ... ensuring the
// throughput and latency requirements guaranteed originally" (paper
// Sec. I). This stage realizes that guarantee at the egress: every output
// port runs Deficit Round Robin (DRR) across per-VN queues with
// configurable weights, so one tenant's burst cannot starve another's
// share of the link.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dataplane/editor.hpp"
#include "obs/metrics.hpp"

namespace vr::dataplane {

struct SchedulerConfig {
  std::size_t port_count = 16;
  std::size_t vn_count = 1;
  /// DRR quantum per VN per round, bytes. Per-VN weights scale the
  /// quantum; empty = equal weights.
  std::uint32_t base_quantum_bytes = 1500;
  std::vector<double> vn_weights;
  /// Per-(port, VN) queue capacity in packets; arrivals beyond it tail-drop.
  std::size_t queue_capacity = 64;
  /// Link rate in bytes per cycle per port (40 B/cycle = the minimum-size
  /// packet line rate the paper's throughput metric assumes).
  double bytes_per_cycle = 40.0;
};

/// One transmitted packet.
struct EgressRecord {
  std::uint64_t cycle = 0;
  net::VnId vnid = 0;
  net::NextHop port = 0;
  std::uint32_t bytes = 0;
  std::uint64_t queueing_cycles = 0;
};

struct SchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t tail_drops = 0;
  /// Packets enqueue() refused for any reason. Today every refusal is a
  /// tail drop (out-of-range ports and VNIDs abort via VR_REQUIRE instead
  /// of being silently remapped); future non-fatal admission checks count
  /// here too, so "refused" has one total regardless of cause.
  std::uint64_t rejected = 0;
  std::vector<std::uint64_t> bytes_per_vn;  ///< transmitted bytes by VN
  /// Tail drops resolved by VN — the backpressure each tenant felt.
  std::vector<std::uint64_t> tail_drops_per_vn;
  /// DRR grant decisions (a quantum awarded to a VN's queue) by VN; the
  /// arbiter events the activity power model charges.
  std::vector<std::uint64_t> arbiter_grants_per_vn;
  /// Queue examinations by the DRR cursor, by VN — the comparator work
  /// behind the grants (every queue the arbiter looked at while deciding,
  /// including empty skips and resumed rounds). >= arbiter_grants_per_vn.
  std::vector<std::uint64_t> arbiter_comparisons_per_vn;
};

class DrrScheduler {
 public:
  explicit DrrScheduler(SchedulerConfig config);

  /// Queues a forwarded packet at `cycle`. Returns false on tail drop.
  bool enqueue(const ForwardedPacket& packet, std::uint64_t cycle);

  /// Advances one cycle: each port transmits up to its byte budget,
  /// serving VN queues in DRR order. Appends egress records.
  void tick(std::uint64_t cycle, std::vector<EgressRecord>* out);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] const SchedulerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }
  /// Current depth of the (port, vn) queue.
  [[nodiscard]] std::size_t queue_depth(std::size_t port,
                                        net::VnId vn) const;

  /// Distribution of per-queue depth, sampled after every accepted
  /// enqueue (packets, not bytes).
  [[nodiscard]] obs::HistogramSnapshot queue_depth_histogram() const {
    return queue_depth_hist_.snapshot();
  }
  /// Distribution of egress queueing delay (cycles from enqueue to
  /// transmit), one sample per transmitted packet.
  [[nodiscard]] obs::HistogramSnapshot egress_wait_histogram() const {
    return egress_wait_hist_.snapshot();
  }

 private:
  struct QueuedPacket {
    std::uint64_t enqueue_cycle = 0;
    net::VnId vnid = 0;
    std::uint32_t bytes = 0;
  };
  struct PortState {
    std::vector<std::deque<QueuedPacket>> queues;  ///< one per VN
    std::vector<double> deficit;
    std::size_t round_robin_cursor = 0;
    /// Whether the cursor's queue already received its quantum for the
    /// current service round (service may span cycles when the link is
    /// slower than a packet).
    bool quantum_added = false;
    double byte_credit = 0.0;
  };

  [[nodiscard]] double quantum_for(net::VnId vn) const;

  SchedulerConfig config_;
  std::vector<PortState> ports_;
  SchedulerStats stats_;
  obs::Histogram queue_depth_hist_;
  obs::Histogram egress_wait_hist_;
};

}  // namespace vr::dataplane
