file(REMOVE_RECURSE
  "CMakeFiles/validation_seed_sweep.dir/validation_seed_sweep.cpp.o"
  "CMakeFiles/validation_seed_sweep.dir/validation_seed_sweep.cpp.o.d"
  "validation_seed_sweep"
  "validation_seed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_seed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
