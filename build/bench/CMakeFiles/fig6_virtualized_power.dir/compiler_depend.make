# Empty compiler generated dependencies file for fig6_virtualized_power.
# This may be replaced when dependencies are built.
