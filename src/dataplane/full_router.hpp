// The complete router data plane: parser -> VNID distributor -> pipelined
// Layer-3 lookup -> header editor -> DRR egress scheduler. Composes the
// stages the paper's Sec. VI-A names for a full router around the lookup
// engine this library models, and provides the end-to-end QoS/transparency
// measurements the paper's introduction promises ("the user should not
// experience any difference" after consolidation).
#pragma once

#include <deque>
#include <vector>

#include "dataplane/editor.hpp"
#include "dataplane/frame_gen.hpp"
#include "dataplane/parser.hpp"
#include "dataplane/scheduler.hpp"
#include "obs/metrics.hpp"
#include "pipeline/router.hpp"
#include "power/activity.hpp"

namespace vr::dataplane {

struct FullRouterConfig {
  SchedulerConfig scheduler;
};

/// End-to-end run summary.
struct FullRouterResult {
  std::vector<EgressRecord> egress;
  ParserStats parser;
  EditorStats editor;
  SchedulerStats scheduler;
  std::uint64_t cycles = 0;
  std::size_t max_lookup_queue = 0;
  /// Per-queue depth distribution, sampled after every accepted enqueue.
  obs::HistogramSnapshot queue_depths;
  /// Egress queueing delay distribution (cycles enqueue -> transmit).
  obs::HistogramSnapshot egress_wait;
  /// Per-stage, per-VN event counts of the run — the input of
  /// power::ActivityModel. Global VNIDs, regardless of the lookup
  /// arrangement (separate engines report under the VN they serve).
  power::ActivityCounters activity;

  /// Goodput share per VN (fraction of total transmitted bytes).
  [[nodiscard]] std::vector<double> goodput_shares() const;
  /// Mean egress queueing latency per VN, cycles.
  [[nodiscard]] std::vector<double> mean_queueing_cycles(
      std::size_t vn_count) const;
};

/// Drives a frame stream through the full data plane built around any
/// lookup engine arrangement (separate or merged). The lookup router's
/// vn_count must equal the scheduler's.
[[nodiscard]] FullRouterResult run_full_router(
    pipeline::VirtualRouter& lookup, std::vector<IngressFrame> frames,
    const FullRouterConfig& config);

/// Folds the engines' per-(VN, stage) matrices into `activity`, mapping
/// engine-local VNIDs back to global ones: separate arrangements rewrite
/// every packet to local VNID 0 inside the engine that serves global VN e,
/// while the merged engine sees real VNIDs. Shared by the per-packet
/// driver above and the cycle-level driver (dataplane/cycle/).
void fold_engine_activity(const pipeline::VirtualRouter& lookup,
                          power::ActivityCounters* activity);

}  // namespace vr::dataplane
