// Tests of the Assumption 2 relaxation (per-VN table-size spread).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/validator.hpp"
#include "core/workload.hpp"

namespace vr::core {
namespace {

Scenario spread_scenario(double spread, std::size_t k = 6) {
  Scenario s;
  s.scheme = power::Scheme::kSeparate;
  s.vn_count = k;
  s.table_size_spread = spread;
  s.table_profile.prefix_count = 800;
  return s;
}

std::uint64_t engine_bits(const power::EngineSpec& engine) {
  return std::accumulate(engine.stage_bits.begin(), engine.stage_bits.end(),
                         std::uint64_t{0});
}

TEST(HeterogeneousWorkloadTest, ZeroSpreadKeepsHomogeneousEngines) {
  const Workload w = realize_workload(spread_scenario(0.0));
  EXPECT_TRUE(w.heterogeneous_engines.empty());
}

TEST(HeterogeneousWorkloadTest, SpreadBuildsOneEnginePerVn) {
  const Workload w = realize_workload(spread_scenario(0.5));
  ASSERT_EQ(w.heterogeneous_engines.size(), 6u);
  for (const auto& engine : w.heterogeneous_engines) {
    EXPECT_EQ(engine.stage_count(), 28u);
    EXPECT_GT(engine_bits(engine), 0u);
  }
}

TEST(HeterogeneousWorkloadTest, EngineSizesActuallySpread) {
  const Workload w = realize_workload(spread_scenario(0.8));
  std::uint64_t smallest = engine_bits(w.heterogeneous_engines.front());
  std::uint64_t largest = smallest;
  for (const auto& engine : w.heterogeneous_engines) {
    smallest = std::min(smallest, engine_bits(engine));
    largest = std::max(largest, engine_bits(engine));
  }
  // spread 0.8 => size ratio ~ 1.8^2 = 3.24 between extremes; trie
  // structure compresses it somewhat but it must be clearly > 2.
  EXPECT_GT(static_cast<double>(largest) / static_cast<double>(smallest),
            2.0);
}

TEST(HeterogeneousWorkloadTest, MergedSchemeIgnoresSpread) {
  Scenario s = spread_scenario(0.5);
  s.scheme = power::Scheme::kMerged;
  const Workload w = realize_workload(s);
  EXPECT_TRUE(w.heterogeneous_engines.empty());
  EXPECT_FALSE(w.merged_engine.stage_bits.empty());
}

TEST(HeterogeneousWorkloadTest, RejectsExcessiveSpread) {
  EXPECT_DEATH((void)realize_workload(spread_scenario(0.95)),
               "table_size_spread");
}

class HeterogeneousEstimateTest : public ::testing::Test {
 protected:
  ModelValidator validator_{fpga::DeviceSpec::xc6vlx760()};
};

TEST_F(HeterogeneousEstimateTest, PowerChangesOnlyMildlyWithSpread) {
  // The geometric-mean-preserving spread keeps the aggregate table
  // volume, so total power moves by far less than the size extremes.
  const double base =
      validator_.estimator().estimate(spread_scenario(0.0))
          .power.total_w()
          .value();
  const double spread =
      validator_.estimator().estimate(spread_scenario(0.8))
          .power.total_w()
          .value();
  EXPECT_NEAR(spread / base, 1.0, 0.05);
}

TEST_F(HeterogeneousEstimateTest, ErrorBoundHoldsUnderSpread) {
  for (const double spread : {0.2, 0.5, 0.8}) {
    for (const auto scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate}) {
      Scenario s = spread_scenario(spread, 8);
      s.scheme = scheme;
      const ValidationPoint point = validator_.validate(s);
      EXPECT_LE(std::fabs(point.error_total_pct), 3.0)
          << power::to_string(scheme) << " spread " << spread;
    }
  }
}

TEST_F(HeterogeneousEstimateTest, NvDevicesDifferUnderSpread) {
  // With per-VN engines, the NV fleet's devices have different dynamic
  // power; the model and experiment must agree on the aggregation.
  Scenario s = spread_scenario(0.8, 4);
  s.scheme = power::Scheme::kNonVirtualized;
  const Workload w = realize_workload(s);
  const ExperimentResult exp = validator_.runner().run(s, w);
  EXPECT_EQ(exp.power.devices, 4u);
  EXPECT_GT(exp.power.total_w().value(), 4 * 4.0);
}

}  // namespace
}  // namespace vr::core
