"""metrics — every obs:: metric name lives in a checked-in manifest.

Dashboards, ``bench_diff`` keys and the golden ``--metrics`` output all
address metrics by their string name (``workload_cache.hits``,
``dataplane.egress_wait_cycles``, ...). A renamed or fat-fingered name
doesn't fail any compile — it just silently forks the time series. This
check pins the namespace:

* every literal name passed to ``Registry::counter/gauge/histogram`` in
  src/ and bench/ must appear in ``tools/vrlint/metrics.txt``;
* every manifest entry must still be registered somewhere — a stale
  entry means a dashboard key died and nobody noticed.

tests/ are deliberately out of scope (test-local throwaway names).
Dynamically composed names can't be checked and must be annotated
``// metric-ok: <reason>`` at the call site.
"""

from __future__ import annotations

import re
from typing import Iterable

import core

MANIFEST_REL = "tools/vrlint/metrics.txt"

REGISTRATION = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"")
DYNAMIC_REGISTRATION = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*(?!\")[A-Za-z_]")


@core.register
class MetricsRegistryCheck(core.Check):
    name = "metrics"
    description = ("obs:: metric names registered in src/ and bench/ match "
                   "the tools/vrlint/metrics.txt manifest, both ways")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        manifest_path = tree.root / MANIFEST_REL
        if not manifest_path.is_file():
            yield core.Finding(
                self.name, MANIFEST_REL, 1,
                "metric-name manifest is missing — every obs:: metric "
                "name must be declared there")
            return
        manifest: dict[str, int] = {}
        for i, raw in enumerate(manifest_path.read_text().splitlines()):
            entry = raw.split("#", 1)[0].strip()
            if entry:
                manifest[entry] = i + 1

        seen: set[str] = set()
        for f in tree.in_dirs("src", "bench"):
            for i, raw in enumerate(f.lines):
                code = core.strip_comment(raw)
                for m in REGISTRATION.finditer(code):
                    metric = m.group(1)
                    seen.add(metric)
                    if metric in manifest:
                        continue
                    if f.suppressed(i, "metric-ok"):
                        continue
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        f"metric name \"{metric}\" is not in "
                        f"{MANIFEST_REL} — add it (dashboards and "
                        f"bench_diff key on these names)")
                if (DYNAMIC_REGISTRATION.search(code)
                        and not REGISTRATION.search(code)
                        and "obs" in code
                        and not f.suppressed(i, "metric-ok")):
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        "dynamically composed metric name — the manifest "
                        "cannot check it; annotate "
                        "'// metric-ok: <naming scheme>'")
        for metric, line in sorted(manifest.items()):
            if metric not in seen:
                yield core.Finding(
                    self.name, MANIFEST_REL, line,
                    f"manifest entry \"{metric}\" is registered nowhere "
                    f"in src/ or bench/ — the series is dead; remove the "
                    f"entry or restore the metric")
