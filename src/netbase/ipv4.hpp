// IPv4 address value type: parsing, formatting, ordering.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vr::net {

/// An IPv4 address stored in host byte order (a.b.c.d => a is the most
/// significant byte). Trivially copyable value type.
class Ipv4 {
 public:
  constexpr Ipv4() noexcept = default;
  explicit constexpr Ipv4(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr std::uint8_t octet(unsigned i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (24u - 8u * i));
  }

  /// Dotted-quad text form, e.g. "192.0.2.1".
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad text; returns nullopt on any syntax error (missing
  /// octets, out-of-range values, trailing characters).
  static std::optional<Ipv4> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(Ipv4, Ipv4) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace vr::net
