// Post place-and-route power simulator — the stand-in for the Xilinx
// XPower Analyzer runs the paper validates its model against.
//
// The simulator places a design (a set of lookup pipelines with per-stage
// memories) on a device, checks capacity, determines the achievable clock,
// and computes power bottom-up from the published per-resource coefficients
// (xpe_tables.hpp) PLUS the second-order effects a synthesis/PnR toolflow
// introduces and the analytical model deliberately omits — the paper
// attributes its residual ±3 % error exactly to these "various hardware
// optimizations" (Sec. VI-A):
//
//   * clock-tree & control amortization across replicated pipelines
//     (reduces per-stage logic power as identical engines are packed),
//   * tool-side power optimization of large replicated designs (trims
//     effective leakage slightly as more of the fabric is structured),
//   * routing congestion around BRAM-heavy stages (adds signal power in
//     the merged scheme),
//   * leakage dependence on occupied area (the ±5 % band of Sec. V-A),
//   * deterministic placement variation (a small per-design wobble seeded
//     from the design itself, so repeated runs are bit-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "fpga/freq_model.hpp"

namespace vr::fpga {

/// One lookup pipeline to be placed.
struct PipelinePlacement {
  /// Memory demand per stage, bits. Size = pipeline depth N.
  std::vector<std::uint64_t> stage_bits;
  /// Fraction of cycles this pipeline processes a packet; idle cycles are
  /// clock-gated (Sec. IV: dynamic power ~ 0 off duty). For the separate
  /// scheme this is the VN's utilization µ_i.
  double activity = 1.0;
};

/// A design to place and analyze.
struct PnrDesign {
  SpeedGrade grade = SpeedGrade::kMinus2;
  BramPolicy bram_policy = BramPolicy::kMixed;
  std::vector<PipelinePlacement> pipelines;
  /// Clock to run at; 0 = run at the achievable Fmax.
  units::Megahertz requested_freq_mhz{0.0};
  FreqModelParams freq_params{};
};

/// Second-order effect calibration. The defaults keep every effect inside
/// the paper's reported ±3 % model-error envelope.
struct PnrEffects {
  /// Max fractional logic-power saving from clock-tree sharing across P
  /// identical pipelines: saving = share_max * (1 - 1/P).
  double share_max = 0.035;
  /// Max fractional leakage trim from tool optimization of replicated
  /// designs: trim = static_opt_max * (1 - 1/P).
  double static_opt_max = 0.022;
  /// Extra signal power per BRAM-heavy stage: overhead = congestion_max *
  /// min(1, (max_stage_blocks36eq - 1) / congestion_norm), applied to BRAM
  /// power.
  double congestion_max = 0.025;
  double congestion_norm = 8.0;
  /// Leakage area dependence: static *= 1 + static_area_slope*(util - 0.5),
  /// util = occupied-area fraction. Slope 0.02 spans ±1 %.
  double static_area_slope = 0.02;
  /// Amplitude of the deterministic placement wobble on dynamic power.
  double placement_noise = 0.004;
  /// Extra leakage from the spread-out routing of BRAM-heavy (merged)
  /// designs: static *= 1 + static_congestion_max * min(1,
  /// (max_stage_blocks36eq - 1)/congestion_norm). This is why the paper's
  /// merged-scheme error exceeds NV/VS (Sec. VI-A: "in the merged approach,
  /// we use more BRAM per pipeline stage ... which causes our predictions
  /// to deviate").
  double static_congestion_max = 0.032;
};

/// Power and resource report of a placed design.
struct PnrReport {
  units::Megahertz clock_mhz;
  units::Watts static_w;
  units::Watts logic_w;
  units::Watts bram_w;
  [[nodiscard]] units::Watts total_w() const noexcept {
    return static_w + logic_w + bram_w;
  }

  DesignResources resources;
  std::uint64_t luts_used = 0;
  std::uint64_t flip_flops_used = 0;
  double bram_utilization = 0.0;   ///< of device BRAM halves
  double logic_utilization = 0.0;  ///< of device LUTs
  double area_utilization = 0.0;   ///< blended, drives the leakage band
};

/// The simulator. Stateless apart from its calibration; all runs are
/// deterministic.
class PnrSimulator {
 public:
  explicit PnrSimulator(DeviceSpec spec, PnrEffects effects = {});

  /// Places and analyzes. Throws vr::CapacityError when the design exceeds
  /// the device's BRAM or logic (the caller checks I/O pins, which depend
  /// on the virtualization scheme's interface count).
  [[nodiscard]] PnrReport analyze(const PnrDesign& design) const;

  [[nodiscard]] const DeviceSpec& device() const noexcept { return spec_; }
  [[nodiscard]] const PnrEffects& effects() const noexcept {
    return effects_;
  }

 private:
  DeviceSpec spec_;
  PnrEffects effects_;
};

}  // namespace vr::fpga
