file(REMOVE_RECURSE
  "CMakeFiles/fig2_bram_power.dir/fig2_bram_power.cpp.o"
  "CMakeFiles/fig2_bram_power.dir/fig2_bram_power.cpp.o.d"
  "fig2_bram_power"
  "fig2_bram_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bram_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
