// Fixture: metrics check over the cycle-model namespace. Expected: one
// finding (an unlisted cycle counter); the manifest-listed name is clean.

namespace vr::obs {

class Registry;

void fixture_register_cycle(Registry& obs_registry) {
  obs_registry.counter("dataplane.cycle.flits_in");  // in the manifest: clean
  obs_registry.counter("dataplane.cycle.flits_bogus");  // FINDING: unlisted
}

}  // namespace vr::obs
