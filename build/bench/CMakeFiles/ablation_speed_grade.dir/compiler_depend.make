# Empty compiler generated dependencies file for ablation_speed_grade.
# This may be replaced when dependencies are built.
