#include "dataplane/cycle/cycle_router.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "dataplane/full_router.hpp"
#include "obs/registry.hpp"

namespace vr::dataplane::cycle {

namespace {

/// Folds one cycle-level run into the process-wide registry
/// ("dataplane.cycle.*") so `--metrics` reports flit flow, stall and
/// arbitration behaviour across every run a binary performed.
void publish_run_metrics(const CycleResult& result) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dataplane.cycle.flits_in").add(result.cycle.flits_in);
  registry.counter("dataplane.cycle.flits_out").add(result.cycle.flits_out);
  registry.counter("dataplane.cycle.flits_dropped")
      .add(result.cycle.flits_dropped);
  registry.counter("dataplane.cycle.vc_alloc_stalls")
      .add(result.cycle.vc_alloc_stalls);
  registry.counter("dataplane.cycle.credit_stalls")
      .add(result.cycle.credit_stalls);
  registry.counter("dataplane.cycle.arbiter_grants")
      .add(result.cycle.arbiter_grants);
  registry.counter("dataplane.cycle.arbiter_comparisons")
      .add(result.cycle.arbiter_comparisons);
  registry.histogram("dataplane.cycle.vc_occupancy")
      .merge(result.vc_occupancy);
  registry.histogram("dataplane.cycle.source_queue_depth")
      .merge(result.source_queue_depth);
}

}  // namespace

CycleRouter::CycleRouter(pipeline::VirtualRouter& lookup, CycleConfig config)
    : config_(config),
      lookup_(&lookup),
      scheduler_(config.scheduler),
      allocator_(config.vc) {
  VR_REQUIRE(config_.vc.vn_count == config_.scheduler.vn_count,
             "VC pool and egress scheduler must agree on the VN count");
  VR_REQUIRE(lookup.vn_count() == config_.vc.vn_count,
             "lookup arrangement and VC pool must agree on the VN count");
  if (separate_engines(config_.vc.policy)) {
    VR_REQUIRE(lookup.engine_count() == lookup.vn_count(),
               "NV/VS policies need one lookup engine per VN");
  } else {
    VR_REQUIRE(lookup.engine_count() == 1,
               "VM/DVC policies need one time-shared lookup engine");
  }
  VR_REQUIRE(config_.vc_capacity_flits >= 1, "VC buffers need capacity");
  VR_REQUIRE(config_.flit_bytes >= 1, "flits need a positive size");
  VR_REQUIRE(config_.ingress_flits_per_cycle >= 1,
             "ingress needs positive flit bandwidth");
  VR_REQUIRE(config_.switch_flits_per_cycle >= 1,
             "switch needs positive flit bandwidth");
  const std::size_t k = config_.vc.vn_count;
  vcs_.resize(config_.vc.vc_count);
  for (VcState& vc : vcs_) vc.credits = config_.vc_capacity_flits;
  source_.resize(k);
  issued_order_.resize(k);
  activity_ = power::ActivityCounters(k, lookup.engine(0).stage_count());
  stats_.alloc_stalls_per_vn.assign(k, 0);
  stats_.grants_per_vn.assign(k, 0);
}

void CycleRouter::accept_frame(const IngressFrame& frame) {
  VR_REQUIRE(!finished_, "router already finished");
  // Every arriving frame pays the parse, accepted or dropped.
  if (frame.vnid < activity_.vn_count()) {
    ++activity_.parser_headers[frame.vnid];
  }
  const auto parsed =
      parser_.accept(frame.vnid, frame.header, frame.payload_bytes);
  if (!parsed) return;
  SourcePacket packet;
  packet.parsed = *parsed;
  const std::size_t total_bytes =
      net::Ipv4Header::kSize + parsed->payload_bytes;
  packet.flits_total =
      (total_bytes + config_.flit_bytes - 1) / config_.flit_bytes;
  source_[parsed->vnid].push_back(packet);
}

void CycleRouter::allocate_vcs() {
  for (std::size_t vn = 0; vn < source_.size(); ++vn) {
    if (source_[vn].empty()) continue;
    SourcePacket& head = source_[vn].front();
    if (head.vc != kNoVc) continue;
    const auto vc =
        allocator_.allocate(static_cast<net::VnId>(vn));  // narrow-ok: vn <
    // source_.size() == vn_count, which fits VnId by construction
    if (!vc) {
      ++stats_.vc_alloc_stalls;
      ++stats_.alloc_stalls_per_vn[vn];
      continue;
    }
    head.vc = *vc;
    VcState& state = vcs_[*vc];
    VR_REQUIRE(!state.busy, "allocator granted an occupied VC");
    VR_REQUIRE(state.credits == config_.vc_capacity_flits,
               "freed VC must have returned all credits");
    state.busy = true;
    state.vn = head.parsed.vnid;
    state.parsed = head.parsed;
    state.flits_total = head.flits_total;
    state.flits_received = 0;
    state.flits_drained = 0;
    state.buffered = 0;
    state.transfer_done = false;
    state.issued = false;
    state.decided = false;
    state.forward.reset();
  }
}

void CycleRouter::ingress_flits() {
  for (std::size_t vn = 0; vn < source_.size(); ++vn) {
    if (source_[vn].empty()) continue;
    SourcePacket& head = source_[vn].front();
    if (head.vc == kNoVc) continue;
    VcState& vc = vcs_[head.vc];
    std::size_t budget = config_.ingress_flits_per_cycle;
    while (budget > 0 && head.flits_sent < head.flits_total) {
      if (vc.credits == 0) {
        ++stats_.credit_stalls;
        break;
      }
      --vc.credits;
      ++vc.buffered;
      ++vc.flits_received;
      ++head.flits_sent;
      ++stats_.flits_in;
      ++activity_.buffer_writes[vn];
      --budget;
    }
    if (head.flits_sent == head.flits_total) {
      vc.transfer_done = true;
      source_[vn].pop_front();
    }
  }
}

bool CycleRouter::issue_one(std::optional<net::VnId> vn_filter,
                            std::size_t* cursor) {
  // The arbiter examines every requesting candidate (its comparator
  // work, charged per comparison by the activity layer) and grants the
  // first one at or after the round-robin cursor.
  std::optional<std::size_t> grant;
  for (std::size_t i = 0; i < vcs_.size(); ++i) {
    const std::size_t vc = (*cursor + i) % vcs_.size();
    const VcState& state = vcs_[vc];
    const bool requesting = state.busy && !state.issued && !state.decided &&
                            state.flits_received >= 1 &&
                            (!vn_filter || state.vn == *vn_filter);
    if (!requesting) continue;
    ++stats_.arbiter_comparisons;
    ++activity_.arbiter_comparisons[state.vn];
    if (!grant) grant = vc;
  }
  if (!grant) return false;
  VcState& state = vcs_[*grant];
  const net::Packet request{state.parsed.header.destination, state.vn};
  if (!lookup_->offer(request)) return false;  // input slot taken: retry
  state.issued = true;
  issued_order_[state.vn].push_back(*grant);
  ++stats_.arbiter_grants;
  ++stats_.grants_per_vn[state.vn];
  ++activity_.arbiter_decisions[state.vn];
  // The issue reads the head flit's header out of the VC buffer.
  ++activity_.buffer_reads[state.vn];
  *cursor = (*grant + 1) % vcs_.size();
  return true;
}

void CycleRouter::issue_lookups() {
  if (separate_engines(config_.vc.policy)) {
    // One issue slot per VN engine; each VN arbitrates only its own VCs.
    // Cursors are per-VN in effect because the scan filters by VN.
    for (std::size_t vn = 0; vn < source_.size(); ++vn) {
      std::size_t cursor = arb_cursor_;
      // narrow-ok: vn < vn_count fits VnId by construction
      (void)issue_one(static_cast<net::VnId>(vn), &cursor);
    }
    arb_cursor_ = (arb_cursor_ + 1) % vcs_.size();
  } else {
    // One merged engine: a single issue slot all VNs contend for.
    (void)issue_one(std::nullopt, &arb_cursor_);
  }
}

void CycleRouter::apply_decision(const pipeline::LookupResult& done) {
  const net::VnId vn = done.packet.vnid;
  VR_REQUIRE(vn < issued_order_.size(), "lookup result for unknown VN");
  VR_REQUIRE(!issued_order_[vn].empty(),
             "lookup completed with no issued VC for its VN");
  const std::size_t vc = issued_order_[vn].front();
  issued_order_[vn].pop_front();
  VcState& state = vcs_[vc];
  VR_REQUIRE(state.busy && state.issued && !state.decided,
             "completion arrived for a VC in the wrong state");
  VR_REQUIRE(state.parsed.header.destination == done.packet.addr,
             "per-VN lookup completion order violated");
  state.decided = true;
  const auto forwarded = editor_.edit(state.parsed, done.next_hop);
  if (forwarded) {
    ++activity_.editor_rewrites[vn];
    state.forward = *forwarded;
    return;
  }
  // Drop verdict (no route / TTL expiry): discard what is buffered,
  // return its credits, and cancel any flits still upstream.
  stats_.flits_dropped += state.buffered;
  state.credits += state.buffered;
  state.buffered = 0;
  if (!state.transfer_done) {
    VR_REQUIRE(!source_[vn].empty() && source_[vn].front().vc == vc,
               "partially transferred packet must be its VN's head");
    source_[vn].pop_front();
  }
  free_vc(vc);
}

void CycleRouter::drain_switch() {
  std::size_t budget = config_.switch_flits_per_cycle;
  for (std::size_t i = 0; i < vcs_.size() && budget > 0; ++i) {
    const std::size_t vc = (drain_cursor_ + i) % vcs_.size();
    VcState& state = vcs_[vc];
    if (!state.busy || !state.decided || !state.forward.has_value() ||
        state.buffered == 0) {
      continue;
    }
    const std::size_t moved = std::min(budget, state.buffered);
    state.buffered -= moved;
    state.credits += moved;
    state.flits_drained += moved;
    budget -= moved;
    stats_.flits_out += moved;
    activity_.buffer_reads[state.vn] += moved;
    activity_.crossbar_traversals[state.vn] += moved;
    if (state.flits_drained == state.flits_total) {
      // Tail flit crossed: the whole packet enters the egress stage.
      if (scheduler_.enqueue(*state.forward, cycle_)) {
        ++activity_.buffer_writes[state.vn];
      }
      free_vc(vc);
    }
  }
  drain_cursor_ = (drain_cursor_ + 1) % vcs_.size();
}

void CycleRouter::free_vc(std::size_t vc) {
  VcState& state = vcs_[vc];
  VR_REQUIRE(state.buffered == 0, "freeing a VC with buffered flits");
  VR_REQUIRE(state.credits == config_.vc_capacity_flits,
             "freeing a VC before all credits returned");
  state = VcState{};
  state.credits = config_.vc_capacity_flits;
  allocator_.release(vc);
}

void CycleRouter::step() {
  VR_REQUIRE(!finished_, "router already finished");
  allocate_vcs();
  ingress_flits();
  issue_lookups();
  lookup_done_.clear();
  lookup_->tick(&lookup_done_);
  for (const pipeline::LookupResult& done : lookup_done_) {
    apply_decision(done);
  }
  drain_switch();
  const std::size_t egress_before = egress_.size();
  scheduler_.tick(cycle_, &egress_);
  for (std::size_t i = egress_before; i < egress_.size(); ++i) {
    ++activity_.buffer_reads[egress_[i].vnid];
  }
  vc_occupancy_hist_.observe(static_cast<double>(in_flight_flits()));
  for (const auto& queue : source_) {
    source_depth_hist_.observe(static_cast<double>(queue.size()));
  }
  ++cycle_;
}

bool CycleRouter::drained() const {
  if (allocator_.allocated_count() != 0) return false;
  for (const auto& queue : source_) {
    if (!queue.empty()) return false;
  }
  for (const auto& fifo : issued_order_) {
    if (!fifo.empty()) return false;
  }
  return lookup_->drained() && scheduler_.empty();
}

std::size_t CycleRouter::vc_credits(std::size_t vc) const {
  VR_REQUIRE(vc < vcs_.size(), "VC index out of range");
  return vcs_[vc].credits;
}

std::size_t CycleRouter::vc_buffered(std::size_t vc) const {
  VR_REQUIRE(vc < vcs_.size(), "VC index out of range");
  return vcs_[vc].buffered;
}

bool CycleRouter::vc_busy(std::size_t vc) const {
  VR_REQUIRE(vc < vcs_.size(), "VC index out of range");
  return vcs_[vc].busy;
}

std::uint64_t CycleRouter::in_flight_flits() const {
  std::uint64_t total = 0;
  for (const VcState& vc : vcs_) total += vc.buffered;
  return total;
}

std::size_t CycleRouter::source_depth(net::VnId vn) const {
  VR_REQUIRE(vn < source_.size(), "VN out of range");
  return source_[vn].size();
}

CycleResult CycleRouter::finish() {
  VR_REQUIRE(!finished_, "finish() may only be called once");
  VR_REQUIRE(drained(), "finish() requires a drained data plane");
  finished_ = true;
  CycleResult result;
  result.parser = parser_.stats();
  result.editor = editor_.stats();
  result.scheduler = scheduler_.stats();
  result.cycle = stats_;
  result.egress = std::move(egress_);
  result.cycles = cycle_;
  activity_.cycles = cycle_;
  // The egress DRR arbiter's grants and comparator examinations join the
  // issue arbiter's in the same per-VN activity columns.
  for (std::size_t vn = 0; vn < activity_.vn_count(); ++vn) {
    activity_.arbiter_decisions[vn] +=
        result.scheduler.arbiter_grants_per_vn[vn];
    activity_.arbiter_comparisons[vn] +=
        result.scheduler.arbiter_comparisons_per_vn[vn];
  }
  fold_engine_activity(*lookup_, &activity_);
  result.activity = std::move(activity_);
  result.vc_occupancy = vc_occupancy_hist_.snapshot();
  result.source_queue_depth = source_depth_hist_.snapshot();
  publish_run_metrics(result);
  return result;
}

CycleResult run_cycle_router(pipeline::VirtualRouter& lookup,
                             std::vector<IngressFrame> frames,
                             const CycleConfig& config) {
  std::sort(frames.begin(), frames.end(),
            [](const IngressFrame& a, const IngressFrame& b) {
              return a.cycle < b.cycle;
            });
  CycleRouter router(lookup, config);
  // Generous progress bound: a drained run never comes close, so hitting
  // it means the model deadlocked — abort loudly instead of hanging.
  const std::uint64_t last_arrival = frames.empty() ? 0 : frames.back().cycle;
  const std::uint64_t deadline = last_arrival + 10000 + 200 * frames.size();
  std::size_t next_frame = 0;
  while (next_frame < frames.size() || !router.drained()) {
    while (next_frame < frames.size() &&
           frames[next_frame].cycle <= router.now()) {
      router.accept_frame(frames[next_frame]);
      ++next_frame;
    }
    router.step();
    VR_REQUIRE(router.now() < deadline,
               "cycle model failed to drain (deadlock?)");
  }
  return router.finish();
}

}  // namespace vr::dataplane::cycle
