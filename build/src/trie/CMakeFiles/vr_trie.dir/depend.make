# Empty dependencies file for vr_trie.
# This may be replaced when dependencies are built.
