file(REMOVE_RECURSE
  "libvr_common.a"
)
