// WorkloadCache — memoizes realized workloads (routing tables, unibit
// tries, leaf pushing, merged tries) across sweep points. Figs. 4–8 and
// the ablations revisit the same (seed, table profile, K, α, merged-source)
// tuple dozens of times — once per speed grade, per figure, per estimator/
// experiment pair — and trie realization dominates a sweep point's cost by
// ~50×, so memoizing it is the difference between O(figures × K) and O(K)
// trie builds per regeneration.
//
// Keying: the cache key is the exact subset of Scenario fields that
// realize_workload() reads — (scheme, K, stages, seed, α, merged source,
// merged rule, leaf_push, table_size_spread, the full table profile) plus
// the keep_tables flag. Grade, operating frequency, BRAM policy and the
// utilization vector do NOT enter workload realization and are deliberately
// excluded, which is what lets the two speed-grade sweeps of every figure
// share one realization. Doubles are rendered in hexfloat so the key is
// exact.
//
// Concurrency: entries are shared_futures guarded by one mutex. The first
// thread to request a key installs a promise and builds outside the lock;
// concurrent requesters for the same key block on the future instead of
// duplicating the build. Values are immutable shared_ptr<const Workload>.
//
// Budget: completed entries are kept on an LRU list and evicted
// least-recently-used-first whenever the cache exceeds its byte or entry
// budget, so a long multi-scenario sweep cannot grow the process
// monotonically. In-flight builds are never evicted (their waiters hold
// the shared_future), and eviction cannot break build-once deduplication
// of concurrent requests — only completed entries leave. Observability:
// hits/misses/evictions/build time/resident bytes are obs metrics; the
// process-global cache registers them in obs::Registry::global() under
// "workload_cache.*".
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/scenario.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace vr::core {

class WorkloadCache {
 public:
  /// Point-in-time view of the cache counters (backed by the obs metrics).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;  ///< approximate, completed entries
    std::uint64_t entries = 0;         ///< completed entries resident
  };

  /// Replacement realization function (tests inject failing or latching
  /// builders to exercise the failure/race paths). Empty = the production
  /// realize_workload() path.
  using Builder = std::function<std::shared_ptr<const Workload>(
      const Scenario& scenario, bool keep_tables)>;

  /// A cache publishing into `registry` (nullptr = private standalone
  /// metrics, the default for test-local caches). Only pass a registry one
  /// cache will use — two caches sharing one registry would add into the
  /// same counters.
  explicit WorkloadCache(obs::Registry* registry = nullptr,
                         Builder builder = {});

  /// Returns the realized workload for `scenario`, building it at most
  /// once per distinct key. Thread-safe.
  [[nodiscard]] std::shared_ptr<const Workload> realize(
      const Scenario& scenario, bool keep_tables = false);

  [[nodiscard]] Stats stats() const;

  /// Caps the resident set: completed entries are LRU-evicted until both
  /// budgets hold. Applied on every completed build (and immediately).
  void set_budget(std::uint64_t max_resident_bytes, std::size_t max_entries);

  [[nodiscard]] std::uint64_t max_resident_bytes() const;
  [[nodiscard]] std::size_t max_entries() const;

  /// Drops all entries and resets the counters.
  void clear();

  /// The cache key of a scenario (exposed for tests and diagnostics).
  [[nodiscard]] static std::string key(const Scenario& scenario,
                                       bool keep_tables);

  /// Approximate heap footprint of one realized workload (the unit the
  /// byte budget is accounted in; exposed for tests).
  [[nodiscard]] static std::uint64_t approx_bytes(const Workload& workload);

  /// Process-wide cache shared by the figure builders and bench binaries.
  [[nodiscard]] static WorkloadCache& global();

 private:
  using Entry = std::shared_future<std::shared_ptr<const Workload>>;

  struct Slot {
    Entry future;
    std::uint64_t bytes = 0;
    bool ready = false;
    /// Identity of the in-flight build that installed this slot. A build
    /// finishing (successfully or not) only touches the slot if the
    /// generation still matches — clear() or a failed-then-retried build
    /// may have re-installed the key with a different build in between,
    /// and acting on someone else's slot would double-charge the byte
    /// budget or erase a healthy entry.
    std::uint64_t generation = 0;
    /// Position in lru_ (valid only when ready).
    std::list<std::string>::iterator lru_it;
  };

  /// Marks a finished build resident and enforces the budget. Must be
  /// called with mu_ held. No-op when the slot was removed or re-installed
  /// by a different build (generation mismatch).
  void complete_locked(const std::string& cache_key, std::uint64_t generation,
                       const Workload& workload);
  void enforce_budget_locked();

  Builder builder_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;  // guarded_by(mu_)
  /// Completed entries, most recently used first.
  std::list<std::string> lru_;         // guarded_by(mu_)
  std::uint64_t resident_bytes_ = 0;   // guarded_by(mu_)
  std::uint64_t ready_entries_ = 0;    // guarded_by(mu_)
  std::uint64_t next_generation_ = 0;  // guarded_by(mu_)
  std::uint64_t max_resident_bytes_;   // guarded_by(mu_)
  std::size_t max_entries_;            // guarded_by(mu_)

  // Metric cells: own_* back a standalone cache; the pointers target the
  // registry's cells when one was supplied.
  obs::Counter own_hits_, own_misses_, own_evictions_;
  obs::Histogram own_build_ns_;
  obs::Gauge own_resident_bytes_gauge_, own_entries_gauge_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Histogram* build_ns_;
  obs::Gauge* resident_bytes_gauge_;
  obs::Gauge* entries_gauge_;
};

/// Realizes `scenario` via the process-global cache.
[[nodiscard]] std::shared_ptr<const Workload> realize_workload_cached(
    const Scenario& scenario, bool keep_tables = false);

}  // namespace vr::core
