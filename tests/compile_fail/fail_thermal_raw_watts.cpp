// MUST NOT COMPILE: the thermal fixed point takes typed Watts for both
// the 25 degC leakage and the dynamic load; raw doubles must be rejected.
#include "fpga/thermal.hpp"

int main() {
  const auto point = vr::fpga::solve_thermal(4.5, 0.25);
  return point.within_limits ? 0 : 1;
}
