#include "power/analytical_model.hpp"

#include <numeric>

#include "common/error.hpp"
#include "fpga/xpe_tables.hpp"

namespace vr::power {

AnalyticalModel::AnalyticalModel(fpga::DeviceSpec device)
    : device_(std::move(device)) {}

std::vector<double> AnalyticalModel::resolve_utilization(
    const OperatingPoint& op, std::size_t vn_count) const {
  if (op.utilization.empty()) {
    return std::vector<double>(vn_count,
                               1.0 / static_cast<double>(vn_count));
  }
  VR_REQUIRE(op.utilization.size() == vn_count,
             "utilization vector size must equal the VN count");
  for (const double u : op.utilization) {
    VR_REQUIRE(u >= 0.0 && u <= 1.0, "utilization must be in [0,1]");
  }
  return op.utilization;
}

units::Watts AnalyticalModel::stage_memory_power_w(
    units::Bits bits, const OperatingPoint& op) const {
  const fpga::BramAllocation alloc =
      fpga::allocate_bram(bits.value(), op.bram_policy);
  return alloc.power_w(op.grade, op.freq_mhz);
}

units::Watts AnalyticalModel::stage_logic_power_w(
    const OperatingPoint& op) const {
  return fpga::XpeTables::logic_power_w(op.grade, 1, op.freq_mhz);
}

void AnalyticalModel::engine_dynamic_w(const EngineSpec& engine, double u,
                                       const OperatingPoint& op,
                                       units::Watts* logic_w,
                                       units::Watts* memory_w) const {
  VR_REQUIRE(!engine.stage_bits.empty(), "engine has no stages");
  units::Watts logic;
  units::Watts memory;
  for (const std::uint64_t bits : engine.stage_bits) {
    logic += stage_logic_power_w(op);
    memory += stage_memory_power_w(units::Bits{bits}, op);
  }
  *logic_w += logic * u;
  *memory_w += memory * u;
}

PowerBreakdown AnalyticalModel::estimate_nv(
    std::span<const EngineSpec> engines, const OperatingPoint& op) const {
  VR_REQUIRE(!engines.empty(), "NV estimate needs at least one engine");
  const auto mu = resolve_utilization(op, engines.size());
  PowerBreakdown out;
  out.devices = engines.size();
  out.freq_mhz = op.freq_mhz;
  // Eq. 2: each VN pays a full device's leakage.
  out.static_w = static_cast<double>(engines.size()) *
                 device_.static_power_w(op.grade);
  for (std::size_t i = 0; i < engines.size(); ++i) {
    engine_dynamic_w(engines[i], mu[i], op, &out.logic_w, &out.memory_w);
  }
  return out;
}

PowerBreakdown AnalyticalModel::estimate_vs(
    std::span<const EngineSpec> engines, const OperatingPoint& op) const {
  VR_REQUIRE(!engines.empty(), "VS estimate needs at least one engine");
  const auto mu = resolve_utilization(op, engines.size());
  PowerBreakdown out;
  out.devices = 1;
  out.freq_mhz = op.freq_mhz;
  // Eq. 4: leakage paid once; dynamic identical to NV.
  out.static_w = device_.static_power_w(op.grade);
  for (std::size_t i = 0; i < engines.size(); ++i) {
    engine_dynamic_w(engines[i], mu[i], op, &out.logic_w, &out.memory_w);
  }
  return out;
}

PowerBreakdown AnalyticalModel::estimate_vm(const EngineSpec& merged_engine,
                                            std::size_t vn_count,
                                            const OperatingPoint& op) const {
  VR_REQUIRE(vn_count >= 1, "VM estimate needs at least one VN");
  const auto mu = resolve_utilization(op, vn_count);
  const double aggregate =
      std::min(1.0, std::accumulate(mu.begin(), mu.end(), 0.0));
  PowerBreakdown out;
  out.devices = 1;
  out.freq_mhz = op.freq_mhz;
  // Eq. 6: leakage paid once; the single engine's dynamic power carries the
  // aggregate utilization (Σµ = 1 under Assumption 1 — the engine is busy
  // whenever any VN offers a packet).
  out.static_w = device_.static_power_w(op.grade);
  engine_dynamic_w(merged_engine, aggregate, op, &out.logic_w,
                   &out.memory_w);
  return out;
}

}  // namespace vr::power
