# Empty compiler generated dependencies file for fig2_bram_power.
# This may be replaced when dependencies are built.
