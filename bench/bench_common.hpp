// Shared plumbing for the figure/table bench binaries: every binary prints
// a human-readable table followed by machine-readable CSV so EXPERIMENTS.md
// can be regenerated from a single run.
//
// Sweep-heavy binaries accept:
//   --threads N   worker threads for the K sweeps (default: VR_THREADS env
//                 var, else the hardware concurrency; output is
//                 bit-identical for every thread count)
//   --serial      shorthand for --threads 1 --no-cache (the seed behaviour)
//   --no-cache    rebuild every workload instead of using WorkloadCache
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/figures.hpp"

namespace vr::bench {

/// Paper-sized sweep options (3 725-prefix tables, K = 1..15, N = 28).
inline core::FigureOptions paper_options() { return core::FigureOptions{}; }

/// Paper-sized options with the common command-line flags applied.
inline core::FigureOptions paper_options(int argc, char** argv) {
  core::FigureOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--serial") {
      opt.threads = 1;
      opt.use_cache = false;
    } else if (arg == "--no-cache") {
      opt.use_cache = false;
    }
  }
  return opt;
}

inline void emit(const SeriesTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

inline void emit(const TextTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

}  // namespace vr::bench
