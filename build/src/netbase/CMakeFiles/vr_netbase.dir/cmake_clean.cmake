file(REMOVE_RECURSE
  "CMakeFiles/vr_netbase.dir/ipv4.cpp.o"
  "CMakeFiles/vr_netbase.dir/ipv4.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/packet.cpp.o"
  "CMakeFiles/vr_netbase.dir/packet.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/prefix.cpp.o"
  "CMakeFiles/vr_netbase.dir/prefix.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/routing_table.cpp.o"
  "CMakeFiles/vr_netbase.dir/routing_table.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/table_gen.cpp.o"
  "CMakeFiles/vr_netbase.dir/table_gen.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/traffic.cpp.o"
  "CMakeFiles/vr_netbase.dir/traffic.cpp.o.d"
  "CMakeFiles/vr_netbase.dir/update_gen.cpp.o"
  "CMakeFiles/vr_netbase.dir/update_gen.cpp.o.d"
  "libvr_netbase.a"
  "libvr_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
