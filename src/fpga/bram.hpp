// BRAM allocation: maps a per-stage memory requirement in bits onto 18 Kb /
// 36 Kb physical blocks. "Despite how small the amount of memory required,
// a BRAM block has to be assigned" (Sec. V-B) — power is block-granular,
// which is why the Table III model uses ceilings.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fpga/device.hpp"
#include "fpga/xpe_tables.hpp"

namespace vr::fpga {

/// Block-granularity policy for a design.
enum class BramPolicy {
  k18Only,  ///< every requirement rounded up to 18 Kb blocks (Table III row 18Kb)
  k36Only,  ///< every requirement rounded up to 36 Kb blocks (Table III row 36Kb)
  kMixed,   ///< 36 Kb blocks for bulk, one 18 Kb block when the tail fits
};

[[nodiscard]] const char* to_string(BramPolicy policy) noexcept;

/// Blocks assigned to one memory (one pipeline stage).
struct BramAllocation {
  std::uint64_t blocks18 = 0;
  std::uint64_t blocks36 = 0;

  [[nodiscard]] std::uint64_t capacity_bits() const noexcept {
    return blocks18 * bram_capacity_bits(BramKind::k18) +
           blocks36 * bram_capacity_bits(BramKind::k36);
  }
  /// Physical footprint in 18 Kb halves (a 36 Kb block = 2 halves). The
  /// device's total BRAM is tracked in halves.
  [[nodiscard]] std::uint64_t halves() const noexcept {
    return blocks18 + 2 * blocks36;
  }
  /// Equivalent 36 Kb block count (for per-stage congestion metrics).
  [[nodiscard]] double blocks36_equivalent() const noexcept {
    return static_cast<double>(blocks36) +
           static_cast<double>(blocks18) / 2.0;
  }
  /// Dynamic power of this allocation at `freq_mhz` (Table III).
  [[nodiscard]] units::Watts power_w(SpeedGrade grade,
                                     units::Megahertz freq_mhz)
      const noexcept {
    return XpeTables::bram_power_w(BramKind::k18, grade, blocks18, freq_mhz) +
           XpeTables::bram_power_w(BramKind::k36, grade, blocks36, freq_mhz);
  }

  BramAllocation& operator+=(const BramAllocation& other) noexcept {
    blocks18 += other.blocks18;
    blocks36 += other.blocks36;
    return *this;
  }
};

/// Allocates blocks for a single memory of `bits` bits under a policy.
/// bits == 0 yields an empty allocation (an unused stage maps to LUTs).
[[nodiscard]] BramAllocation allocate_bram(std::uint64_t bits,
                                           BramPolicy policy) noexcept;

/// Allocates one memory per stage and reports the total plus the largest
/// single-stage footprint.
struct StageBramPlan {
  std::vector<BramAllocation> per_stage;
  BramAllocation total;
  double max_stage_blocks36eq = 0.0;

  [[nodiscard]] double mean_stage_blocks36eq() const noexcept;
};

[[nodiscard]] StageBramPlan plan_stage_bram(
    const std::vector<std::uint64_t>& stage_bits, BramPolicy policy);

/// Number of 18 Kb halves available on a device.
[[nodiscard]] std::uint64_t device_bram_halves(const DeviceSpec& spec) noexcept;

}  // namespace vr::fpga
