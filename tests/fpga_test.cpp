#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "fpga/freq_model.hpp"
#include "fpga/pnr_sim.hpp"
#include "fpga/xpe_tables.hpp"

namespace vr::fpga {
namespace {

// ---------------------------------------------------------------- device --

TEST(DeviceTest, Xc6vlx760MatchesTableII) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  EXPECT_EQ(spec.name, "XC6VLX760");
  EXPECT_NEAR(static_cast<double>(spec.logic_cells), 758e3, 1e3);
  EXPECT_EQ(spec.bram_bits, 26ull * 1024 * 1024);
  EXPECT_EQ(spec.distributed_ram_bits, 8ull * 1024 * 1024);
  EXPECT_EQ(spec.io_pins, 1200u);
}

TEST(DeviceTest, StaticPowerMatchesSectionVA) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  EXPECT_NEAR(spec.static_power_w(SpeedGrade::kMinus2).value(), 4.5, 0.01);
  EXPECT_NEAR(spec.static_power_w(SpeedGrade::kMinus1L).value(), 3.1, 0.01);
}

TEST(DeviceTest, LowPowerGradeHasLowerClockAndPower) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  EXPECT_LT(spec.base_fmax_mhz(SpeedGrade::kMinus1L),
            spec.base_fmax_mhz(SpeedGrade::kMinus2));
  EXPECT_LT(spec.static_power_w(SpeedGrade::kMinus1L),
            spec.static_power_w(SpeedGrade::kMinus2));
}

TEST(IoBudgetTest, FifteenEnginesSaturateTwelveHundredPins) {
  // Sec. VI-A: the separate scheme hit the pin limit at 15 VNs.
  const IoBudget io;
  EXPECT_LE(io.required(15), 1200u);
  EXPECT_GT(io.required(16), 1200u);
  EXPECT_EQ(io.max_engines(1200), 15u);
}

TEST(IoBudgetTest, DegenerateBudgets) {
  const IoBudget io;
  EXPECT_EQ(io.max_engines(0), 0u);
  EXPECT_EQ(io.max_engines(io.shared_pins), 0u);
}

// ------------------------------------------------------------ xpe tables --

TEST(XpeTablesTest, TableIIICoefficients) {
  EXPECT_DOUBLE_EQ(
      XpeTables::bram_uw_per_mhz(BramKind::k18, SpeedGrade::kMinus2).value(),
      13.65);
  EXPECT_DOUBLE_EQ(
      XpeTables::bram_uw_per_mhz(BramKind::k36, SpeedGrade::kMinus2).value(),
      24.60);
  EXPECT_DOUBLE_EQ(
      XpeTables::bram_uw_per_mhz(BramKind::k18, SpeedGrade::kMinus1L).value(),
      11.00);
  EXPECT_DOUBLE_EQ(
      XpeTables::bram_uw_per_mhz(BramKind::k36, SpeedGrade::kMinus1L).value(),
      19.70);
}

TEST(XpeTablesTest, BramPowerLinearInFrequencyAndBlocks) {
  const double p1 = XpeTables::bram_power_w(BramKind::k36, SpeedGrade::kMinus2,
                                            1, units::Megahertz{100.0})
                        .value();
  EXPECT_NEAR(p1, 24.60e-6 * 100.0, 1e-12);
  EXPECT_NEAR(XpeTables::bram_power_w(BramKind::k36, SpeedGrade::kMinus2, 3,
                                      units::Megahertz{200.0})
                  .value(),
              6.0 * p1, 1e-12);
}

TEST(XpeTablesTest, LogicCoefficientsMatchSectionVC) {
  EXPECT_DOUBLE_EQ(
      XpeTables::logic_stage_uw_per_mhz(SpeedGrade::kMinus2).value(), 5.180);
  EXPECT_DOUBLE_EQ(
      XpeTables::logic_stage_uw_per_mhz(SpeedGrade::kMinus1L).value(), 3.937);
  // 28 stages at 400 MHz, grade -2: 28 * 5.18 * 400 µW ≈ 58 mW.
  EXPECT_NEAR(XpeTables::logic_power_w(SpeedGrade::kMinus2, 28,
                                       units::Megahertz{400.0})
                  .value(),
              0.0580, 0.0005);
}

TEST(XpeTablesTest, PeFootprintMatchesSectionVC) {
  const auto pe = XpeTables::pe_footprint();
  EXPECT_EQ(pe.slice_registers, 1689u);
  EXPECT_EQ(pe.total_luts(), 336u + 126u + 376u);
}

TEST(XpeTablesTest, BramCapacities) {
  EXPECT_EQ(bram_capacity_bits(BramKind::k18), 18u * 1024);
  EXPECT_EQ(bram_capacity_bits(BramKind::k36), 36u * 1024);
}

// ---------------------------------------------------------------- bram --

TEST(BramTest, ZeroBitsNeedNoBlocks) {
  for (const auto policy :
       {BramPolicy::k18Only, BramPolicy::k36Only, BramPolicy::kMixed}) {
    const BramAllocation alloc = allocate_bram(0, policy);
    EXPECT_EQ(alloc.halves(), 0u);
  }
}

TEST(BramTest, TinyMemoryStillTakesAWholeBlock) {
  // Sec. V-B: "despite how small the amount of memory required, a BRAM
  // block has to be assigned".
  EXPECT_EQ(allocate_bram(1, BramPolicy::k18Only).blocks18, 1u);
  EXPECT_EQ(allocate_bram(1, BramPolicy::k36Only).blocks36, 1u);
  EXPECT_EQ(allocate_bram(1, BramPolicy::kMixed).blocks18, 1u);
}

TEST(BramTest, CeilingSemantics) {
  const std::uint64_t cap18 = bram_capacity_bits(BramKind::k18);
  EXPECT_EQ(allocate_bram(cap18, BramPolicy::k18Only).blocks18, 1u);
  EXPECT_EQ(allocate_bram(cap18 + 1, BramPolicy::k18Only).blocks18, 2u);
}

TEST(BramTest, MixedUsesSmallTailBlock) {
  const std::uint64_t cap36 = bram_capacity_bits(BramKind::k36);
  const std::uint64_t cap18 = bram_capacity_bits(BramKind::k18);
  const BramAllocation a = allocate_bram(cap36 + cap18, BramPolicy::kMixed);
  EXPECT_EQ(a.blocks36, 1u);
  EXPECT_EQ(a.blocks18, 1u);
  const BramAllocation b =
      allocate_bram(cap36 + cap18 + 1, BramPolicy::kMixed);
  EXPECT_EQ(b.blocks36, 2u);
  EXPECT_EQ(b.blocks18, 0u);
}

TEST(BramTest, AllocationCapacityCoversRequest) {
  for (const auto policy :
       {BramPolicy::k18Only, BramPolicy::k36Only, BramPolicy::kMixed}) {
    for (std::uint64_t bits = 1; bits < 300000; bits += 7919) {
      EXPECT_GE(allocate_bram(bits, policy).capacity_bits(), bits);
    }
  }
}

TEST(BramTest, MixedNeverWorseThan36Only) {
  for (std::uint64_t bits = 1; bits < 500000; bits += 4096) {
    const auto mixed = allocate_bram(bits, BramPolicy::kMixed);
    const auto only36 = allocate_bram(bits, BramPolicy::k36Only);
    EXPECT_LE(mixed.halves(), only36.halves());
    EXPECT_LE(mixed.power_w(SpeedGrade::kMinus2, units::Megahertz{400.0})
                  .value(),
              only36.power_w(SpeedGrade::kMinus2, units::Megahertz{400.0})
                      .value() +
                  1e-12);
  }
}

TEST(BramTest, HalvesAndEquivalents) {
  BramAllocation alloc;
  alloc.blocks18 = 3;
  alloc.blocks36 = 2;
  EXPECT_EQ(alloc.halves(), 7u);
  EXPECT_DOUBLE_EQ(alloc.blocks36_equivalent(), 3.5);
}

TEST(BramTest, PlanAggregates) {
  const std::vector<std::uint64_t> stage_bits{0, 18 * 1024, 200000};
  const StageBramPlan plan = plan_stage_bram(stage_bits, BramPolicy::kMixed);
  EXPECT_EQ(plan.per_stage.size(), 3u);
  EXPECT_EQ(plan.total.halves(), plan.per_stage[0].halves() +
                                     plan.per_stage[1].halves() +
                                     plan.per_stage[2].halves());
  EXPECT_DOUBLE_EQ(plan.max_stage_blocks36eq,
                   plan.per_stage[2].blocks36_equivalent());
  EXPECT_GT(plan.mean_stage_blocks36eq(), 0.0);
}

TEST(BramTest, DeviceHalves) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  EXPECT_EQ(device_bram_halves(spec),
            26ull * 1024 * 1024 / (18 * 1024));
}

// ------------------------------------------------------------ freq model --

TEST(FreqModelTest, LightDesignRunsNearBaseClock) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  DesignResources light;
  light.max_stage_blocks36eq = 1.0;
  light.bram_halves = 4;
  light.pipelines = 1;
  EXPECT_NEAR(achievable_fmax_mhz(spec, SpeedGrade::kMinus2, light).value(),
              spec.base_fmax_mhz(SpeedGrade::kMinus2).value(), 1.0);
}

TEST(FreqModelTest, WideStagesSlowTheClock) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  DesignResources narrow;
  narrow.max_stage_blocks36eq = 1.0;
  narrow.pipelines = 1;
  DesignResources wide = narrow;
  wide.max_stage_blocks36eq = 20.0;
  EXPECT_LT(achievable_fmax_mhz(spec, SpeedGrade::kMinus2, wide),
            achievable_fmax_mhz(spec, SpeedGrade::kMinus2, narrow));
}

TEST(FreqModelTest, MonotoneInEveryCongestionInput) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  DesignResources base;
  base.max_stage_blocks36eq = 3.0;
  base.bram_halves = 100;
  base.pipelines = 4;
  const units::Megahertz f0 =
      achievable_fmax_mhz(spec, SpeedGrade::kMinus2, base);
  for (auto mutate : {+[](DesignResources& r) { r.max_stage_blocks36eq *= 2; },
                      +[](DesignResources& r) { r.bram_halves *= 4; },
                      +[](DesignResources& r) { r.pipelines += 8; }}) {
    DesignResources worse = base;
    mutate(worse);
    EXPECT_LT(achievable_fmax_mhz(spec, SpeedGrade::kMinus2, worse), f0);
  }
}

TEST(FreqModelTest, LowPowerGradeScalesDown) {
  const DeviceSpec spec = DeviceSpec::xc6vlx760();
  DesignResources r;
  r.max_stage_blocks36eq = 2.0;
  r.bram_halves = 50;
  r.pipelines = 2;
  const units::Megahertz f2 = achievable_fmax_mhz(spec, SpeedGrade::kMinus2, r);
  const units::Megahertz f1l =
      achievable_fmax_mhz(spec, SpeedGrade::kMinus1L, r);
  EXPECT_NEAR(f1l / f2, 280.0 / 400.0, 1e-9);
}

// --------------------------------------------------------------- pnr sim --

class PnrSimTest : public ::testing::Test {
 protected:
  static PnrDesign simple_design(std::size_t pipelines, double activity,
                                 std::uint64_t stage_bits = 30000) {
    PnrDesign design;
    for (std::size_t p = 0; p < pipelines; ++p) {
      PipelinePlacement placement;
      placement.stage_bits.assign(28, stage_bits);
      placement.activity = activity;
      design.pipelines.push_back(std::move(placement));
    }
    return design;
  }

  PnrSimulator sim_{DeviceSpec::xc6vlx760()};
};

TEST_F(PnrSimTest, DeterministicReports) {
  const PnrDesign design = simple_design(4, 0.25);
  const PnrReport a = sim_.analyze(design);
  const PnrReport b = sim_.analyze(design);
  EXPECT_DOUBLE_EQ(a.total_w().value(), b.total_w().value());
  EXPECT_DOUBLE_EQ(a.clock_mhz.value(), b.clock_mhz.value());
}

TEST_F(PnrSimTest, StaticPowerNearGradeValue) {
  const PnrReport report = sim_.analyze(simple_design(1, 1.0));
  EXPECT_NEAR(report.static_w.value(), 4.5, 4.5 * 0.05);  // Sec. V-A ±5 %
}

TEST_F(PnrSimTest, ZeroActivityKillsDynamicPower) {
  const PnrReport report = sim_.analyze(simple_design(2, 0.0));
  EXPECT_DOUBLE_EQ(report.logic_w.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.bram_w.value(), 0.0);
  EXPECT_GT(report.static_w.value(), 0.0);
}

TEST_F(PnrSimTest, DynamicScalesWithActivity) {
  const PnrReport half = sim_.analyze(simple_design(1, 0.5));
  const PnrReport full = sim_.analyze(simple_design(1, 1.0));
  EXPECT_NEAR(full.logic_w / half.logic_w, 2.0, 0.05);
  EXPECT_NEAR(full.bram_w / half.bram_w, 2.0, 0.05);
}

TEST_F(PnrSimTest, RequestedFrequencyCapsClock) {
  PnrDesign design = simple_design(1, 1.0);
  design.requested_freq_mhz = units::Megahertz{150.0};
  EXPECT_NEAR(sim_.analyze(design).clock_mhz.value(), 150.0, 1e-9);
  // Above Fmax: clipped to Fmax.
  design.requested_freq_mhz = units::Megahertz{10000.0};
  EXPECT_LT(sim_.analyze(design).clock_mhz.value(), 10000.0);
}

TEST_F(PnrSimTest, BramOverflowThrows) {
  // 28 stages x 1 pipeline x 1 Mbit/stage = 28 Mbit > 26 Mbit device BRAM.
  EXPECT_THROW((void)sim_.analyze(simple_design(1, 1.0, 1024 * 1024)),
               CapacityError);
}

TEST_F(PnrSimTest, LogicOverflowThrows) {
  // 838 LUTs/stage * 28 stages * 21 pipelines ≈ 493k > 474k LUTs.
  PnrDesign design = simple_design(21, 0.1, 1024);
  EXPECT_THROW((void)sim_.analyze(design), CapacityError);
}

TEST_F(PnrSimTest, ReplicationReducesPerPipelineLogicPower) {
  // Clock-tree sharing: K pipelines consume < K × one pipeline's logic
  // power at the same clock and activity.
  PnrDesign one = simple_design(1, 1.0);
  one.requested_freq_mhz = units::Megahertz{200.0};
  PnrDesign eight = simple_design(8, 1.0);
  eight.requested_freq_mhz = units::Megahertz{200.0};
  const PnrReport r1 = sim_.analyze(one);
  const PnrReport r8 = sim_.analyze(eight);
  EXPECT_LT(r8.logic_w, 8.0 * r1.logic_w);
  EXPECT_GT(r8.logic_w, 7.0 * r1.logic_w);
}

TEST_F(PnrSimTest, ReplicationTrimsStaticPower) {
  const PnrReport r1 = sim_.analyze(simple_design(1, 0.1));
  const PnrReport r8 = sim_.analyze(simple_design(8, 0.1));
  EXPECT_LT(r8.static_w, r1.static_w * 1.03);
  // The trim plus area growth stays inside the ±5 % band.
  EXPECT_NEAR(r8.static_w.value(), 4.5, 4.5 * 0.05);
}

TEST_F(PnrSimTest, UtilizationFieldsPopulated) {
  const PnrReport report = sim_.analyze(simple_design(4, 0.5));
  EXPECT_GT(report.bram_utilization, 0.0);
  EXPECT_LT(report.bram_utilization, 1.0);
  EXPECT_GT(report.logic_utilization, 0.0);
  EXPECT_EQ(report.resources.pipelines, 4u);
  EXPECT_EQ(report.luts_used, 838u * 28u * 4u);
}

TEST_F(PnrSimTest, RejectsBadInput) {
  PnrDesign empty;
  EXPECT_DEATH((void)sim_.analyze(empty), "no pipelines");
  PnrDesign bad = simple_design(1, 2.0);
  EXPECT_DEATH((void)sim_.analyze(bad), "activity");
}

}  // namespace
}  // namespace vr::fpga
