#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace vr {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  VR_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  const std::size_t expected = column_count();
  if (expected != 0) {
    VR_REQUIRE(row.size() == expected, "row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(num(v, precision));
  add_row(std::move(row));
}

std::size_t TextTable::column_count() const noexcept {
  if (!header_.empty()) return header_.size();
  if (!rows_.empty()) return rows_.front().size();
  return 0;
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(column_count(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

void TextTable::render_csv(std::ostream& os) const {
  auto print_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series_labels)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_labels_(std::move(series_labels)) {
  VR_REQUIRE(!series_labels_.empty(), "SeriesTable needs at least one series");
}

void SeriesTable::add_point(double x, const std::vector<double>& ys) {
  VR_REQUIRE(ys.size() == series_labels_.size(),
             "point width must match series count");
  xs_.push_back(x);
  points_.push_back(ys);
}

std::vector<double> SeriesTable::series(std::size_t s) const {
  VR_REQUIRE(s < series_labels_.size(), "series index out of range");
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p[s]);
  return out;
}

void SeriesTable::render(std::ostream& os, int precision) const {
  TextTable table(title_);
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), series_labels_.begin(), series_labels_.end());
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    table.add_numeric_row(TextTable::num(xs_[i], 0), points_[i], precision);
  }
  table.render(os);
}

void SeriesTable::render_csv(std::ostream& os, int precision) const {
  TextTable table;
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), series_labels_.begin(), series_labels_.end());
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    table.add_numeric_row(TextTable::num(xs_[i], 0), points_[i], precision);
  }
  table.render_csv(os);
}

}  // namespace vr
