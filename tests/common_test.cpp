#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace vr {
namespace {

// ---------------------------------------------------------------- bitops --

TEST(BitopsTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
  EXPECT_EQ(ceil_div(7, 0), 0u);  // guarded degenerate
}

TEST(BitopsTest, PrefixMask) {
  EXPECT_EQ(prefix_mask(0), 0u);
  EXPECT_EQ(prefix_mask(1), 0x80000000u);
  EXPECT_EQ(prefix_mask(8), 0xff000000u);
  EXPECT_EQ(prefix_mask(24), 0xffffff00u);
  EXPECT_EQ(prefix_mask(32), 0xffffffffu);
}

TEST(BitopsTest, BitAtMsbFirst) {
  const std::uint32_t word = 0x80000001u;
  EXPECT_TRUE(bit_at(word, 0));
  EXPECT_FALSE(bit_at(word, 1));
  EXPECT_FALSE(bit_at(word, 30));
  EXPECT_TRUE(bit_at(word, 31));
}

TEST(BitopsTest, AddressBits) {
  EXPECT_EQ(address_bits(0), 0u);
  EXPECT_EQ(address_bits(1), 0u);
  EXPECT_EQ(address_bits(2), 1u);
  EXPECT_EQ(address_bits(3), 2u);
  EXPECT_EQ(address_bits(1024), 10u);
  EXPECT_EQ(address_bits(1025), 11u);
}

TEST(BitopsTest, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

// ------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(17);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.next_weighted(weights, 3), 1u);
  }
}

TEST(RngTest, WeightedApproximatesDistribution) {
  Rng rng(19);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_weighted(weights, 2)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

// ----------------------------------------------------------------- stats --

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentilesTest, MedianAndExtremes) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentilesTest, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(PercentilesTest, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
}

TEST(PercentilesTest, SingleSampleAtEveryRank) {
  const Percentiles p({7.5});
  EXPECT_DOUBLE_EQ(p.at(0.0), 7.5);
  EXPECT_DOUBLE_EQ(p.at(0.5), 7.5);
  EXPECT_DOUBLE_EQ(p.at(1.0), 7.5);
}

TEST(PercentilesTest, ExactBoundaryRanksHitMinAndMax) {
  // q = 0 and q = 1 must land exactly on the extremes (no interpolation
  // round-off), including with unsorted input and duplicates.
  const Percentiles p({9.0, -3.0, 4.0, 4.0, 12.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), -3.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 12.0);
}

TEST(PercentilesTest, NanSampleAborts) {
  // A NaN breaks std::sort's strict weak ordering (UB); the constructor
  // must refuse rather than silently produce garbage quantiles.
  EXPECT_DEATH(Percentiles({1.0, std::nan(""), 2.0}),
               "percentile sample is NaN");
}

TEST(StatsTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
}

TEST(StatsTest, PercentageErrorMatchesPaperDefinition) {
  // (model - experimental) / experimental * 100 (Sec. VI-A).
  EXPECT_DOUBLE_EQ(percentage_error(103.0, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentage_error(97.0, 100.0), -3.0);
  EXPECT_DOUBLE_EQ(percentage_error(0.0, 0.0), 0.0);
}

// ----------------------------------------------------------------- units --

TEST(UnitsTest, PowerConversions) {
  EXPECT_DOUBLE_EQ(units::uw_to_w(1e6), 1.0);
  EXPECT_DOUBLE_EQ(units::w_to_uw(2.5), 2.5e6);
  EXPECT_DOUBLE_EQ(units::w_to_mw(0.5), 500.0);
  EXPECT_DOUBLE_EQ(units::mw_to_w(250.0), 0.25);
}

TEST(UnitsTest, CoefficientIsPicojoulePerCycle) {
  // P = c µW at f MHz <=> E = c pJ per cycle: check the round trip.
  const double c = 24.6;  // 36Kb BRAM at -2
  const double f = 400.0;
  const double power_w = units::uw_to_w(c * f);
  const double cycles = 1e6;
  const double energy_pj = c * cycles;
  EXPECT_NEAR(units::pj_over_cycles_to_w(energy_pj, cycles, f), power_w,
              1e-12);
}

TEST(UnitsTest, ThroughputFortyBytePackets) {
  // Sec. VI-B: Gbps = 0.32 * f(MHz) at 40 B.
  EXPECT_NEAR(units::lookup_throughput_gbps(400.0, 40.0), 128.0, 1e-9);
  EXPECT_NEAR(units::lookup_throughput_gbps(100.0, 40.0), 32.0, 1e-9);
}

// ----------------------------------------------------------------- table --

TEST(TextTableTest, RendersAlignedWithHeader) {
  TextTable t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t;
  t.set_header({"x", "y"});
  t.add_row({"a,b", "q\"uote"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"q\"\"uote\""), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatsPrecision) {
  TextTable t;
  t.set_header({"label", "v"});
  t.add_numeric_row("row", {1.23456}, 2);
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_EQ(os.str().find("1.2345"), std::string::npos);
}

TEST(SeriesTableTest, StoresSeriesColumnwise) {
  SeriesTable t("s", "x", {"a", "b"});
  t.add_point(1.0, {10.0, 20.0});
  t.add_point(2.0, {11.0, 21.0});
  EXPECT_EQ(t.point_count(), 2u);
  EXPECT_EQ(t.series(0), (std::vector<double>{10.0, 11.0}));
  EXPECT_EQ(t.series(1), (std::vector<double>{20.0, 21.0}));
}

TEST(SeriesTableTest, CsvHasHeaderAndRows) {
  SeriesTable t("s", "k", {"m"});
  t.add_point(3.0, {7.0});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("k,m"), std::string::npos);
  EXPECT_NE(os.str().find("3,"), std::string::npos);
}

// ----------------------------------------------------------------- error --

TEST(ErrorTest, ParseErrorCarriesLine) {
  const ParseError err("bad token", 17);
  EXPECT_EQ(err.line(), 17u);
  EXPECT_NE(std::string(err.what()).find("17"), std::string::npos);
}

TEST(ErrorTest, HierarchyIsCatchable) {
  try {
    throw CapacityError("too big");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("too big"), std::string::npos);
  }
}

}  // namespace
}  // namespace vr
