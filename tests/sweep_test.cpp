// SweepRunner + WorkloadCache: the determinism contract (parallel sweeps
// and cache hits must be indistinguishable from serial cold builds) and
// the mechanics behind it (index-ordered results, exception propagation,
// key scheme, build-once semantics).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/figures.hpp"
#include "core/sweep.hpp"
#include "core/workload.hpp"
#include "core/workload_cache.hpp"

namespace vr::core {
namespace {

// ------------------------------------------------------------ SweepRunner --

TEST(SweepRunnerTest, MapReturnsResultsInIndexOrder) {
  const SweepRunner runner(4);
  const std::vector<std::size_t> out =
      runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(SweepRunnerTest, ZeroAndSingleCounts) {
  const SweepRunner runner(4);
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
  const std::vector<std::size_t> one =
      runner.map(1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(SweepRunnerTest, ForEachVisitsEveryIndexExactlyOnce) {
  const SweepRunner runner(4);
  std::vector<std::atomic<int>> visits(64);
  runner.for_each(64, [&](std::size_t i) { ++visits[i]; });
  for (const std::atomic<int>& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(SweepRunnerTest, ExceptionPropagatesAfterJoin) {
  const SweepRunner runner(4);
  EXPECT_THROW(runner.for_each(32,
                               [](std::size_t i) {
                                 if (i == 13) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
               std::runtime_error);
}

TEST(SweepRunnerTest, ThreadCountIsAtLeastOne) {
  EXPECT_GE(SweepRunner(0).thread_count(), 1u);
  EXPECT_EQ(SweepRunner(1).thread_count(), 1u);
  EXPECT_EQ(SweepRunner(6).thread_count(), 6u);
  EXPECT_GE(default_sweep_threads(), 1u);
}

TEST(SweepRunnerTest, VrThreadsEnvIsParsedStrictly) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      unsetenv("VR_THREADS");
    } else {
      setenv("VR_THREADS", value, 1);
    }
    return default_sweep_threads();
  };
  const std::size_t fallback = with_env(nullptr);
  EXPECT_GE(fallback, 1u);
  EXPECT_EQ(with_env("8"), 8u);
  EXPECT_EQ(with_env("3"), 3u);
  // Regression: the old std::stol parse read "8x" as 8 and silently
  // ignored non-positive values. Anything but a full positive integer is
  // now rejected (with a one-time stderr warning) and falls back.
  EXPECT_EQ(with_env("8x"), fallback);
  EXPECT_EQ(with_env("0"), fallback);
  EXPECT_EQ(with_env("-3"), fallback);
  EXPECT_EQ(with_env(""), fallback);
  EXPECT_EQ(with_env(" 4"), fallback);
  unsetenv("VR_THREADS");
}

// Regression: VR_THREADS had no upper cap — "VR_THREADS=1000000" would
// make every sweep try to spawn a million std::threads and die on
// resource exhaustion instead of falling back. Values above
// kMaxProbeThreads are now rejected like any other unusable setting.
TEST(SweepRunnerTest, VrThreadsIsCappedAtKMaxProbeThreads) {
  const auto with_env = [](const char* value) {
    setenv("VR_THREADS", value, 1);
    return default_sweep_threads();
  };
  unsetenv("VR_THREADS");
  const std::size_t fallback = default_sweep_threads();
  struct Case {
    const char* value;
    bool accepted;
    std::size_t expected;  // meaningful only when accepted
  };
  const Case cases[] = {
      {"1", true, 1},
      {"4095", true, 4095},
      {"4096", true, kMaxProbeThreads},  // the cap itself is usable
      {"4097", false, 0},
      {"65536", false, 0},
      {"9223372036854775807", false, 0},   // fits the parse, over the cap
      {"99999999999999999999", false, 0},  // overflows the parse entirely
  };
  for (const Case& c : cases) {
    EXPECT_EQ(with_env(c.value), c.accepted ? c.expected : fallback)
        << "VR_THREADS=" << c.value;
  }
  unsetenv("VR_THREADS");
}

TEST(SweepRunnerTest, ConcurrencyProbeRecordsItsSource) {
  setenv("VR_THREADS", "5", 1);
  const ConcurrencyProbe pinned = probe_concurrency();
  EXPECT_EQ(pinned.threads, 5u);
  EXPECT_STREQ(pinned.source, "env:VR_THREADS");
  unsetenv("VR_THREADS");

  // Without the env var the probe must still find at least one usable
  // thread and say where the number came from — the bench JSON records
  // the source so a hardware_concurrency()==0/1 container is
  // distinguishable from a genuinely single-core host.
  const ConcurrencyProbe probed = probe_concurrency();
  EXPECT_GE(probed.threads, 1u);
  const std::string source = probed.source;
  EXPECT_TRUE(source == "hardware_concurrency" ||
              source == "sysconf:_SC_NPROCESSORS_ONLN" ||
              source == "fallback")
      << source;
  EXPECT_EQ(default_sweep_threads(), probed.threads);
}

// ---------------------------------------------------------- WorkloadCache --

Scenario small_scenario() {
  Scenario s;
  s.table_profile.prefix_count = 400;
  s.vn_count = 3;
  s.scheme = power::Scheme::kMerged;
  return s;
}

TEST(WorkloadCacheTest, HitEqualsColdBuild) {
  const Scenario s = small_scenario();
  const Workload cold = realize_workload(s);

  WorkloadCache cache;
  const std::shared_ptr<const Workload> first = cache.realize(s);
  const std::shared_ptr<const Workload> second = cache.realize(s);

  // Second realize is a hit and returns the very same immutable object.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // And the cached workload is indistinguishable from a fresh build.
  EXPECT_EQ(first->prefix_count, cold.prefix_count);
  EXPECT_DOUBLE_EQ(first->alpha_used, cold.alpha_used);
  EXPECT_EQ(first->representative_stats.total_nodes,
            cold.representative_stats.total_nodes);
  EXPECT_EQ(first->per_vn_engine.stage_bits, cold.per_vn_engine.stage_bits);
  EXPECT_EQ(first->merged_engine.stage_bits, cold.merged_engine.stage_bits);
}

TEST(WorkloadCacheTest, ClearResetsEntriesAndStats) {
  const Scenario s = small_scenario();
  WorkloadCache cache;
  (void)cache.realize(s);
  (void)cache.realize(s);
  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  (void)cache.realize(s);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(WorkloadCacheTest, KeyIgnoresFieldsRealizationNeverReads) {
  Scenario a = small_scenario();
  Scenario b = a;
  // Grade, frequency, BRAM policy: power-model inputs, not workload inputs.
  b.grade = fpga::SpeedGrade::kMinus1L;
  b.freq_mhz = units::Megahertz{250.0};
  b.bram_policy = fpga::BramPolicy::k18Only;
  EXPECT_EQ(WorkloadCache::key(a, false), WorkloadCache::key(b, false));
}

TEST(WorkloadCacheTest, KeySeparatesFieldsRealizationReads) {
  const Scenario base = small_scenario();
  const std::string k0 = WorkloadCache::key(base, false);

  Scenario seed = base;
  seed.seed = 99;
  Scenario vns = base;
  vns.vn_count = 9;
  Scenario alpha = base;
  alpha.alpha = 0.21;
  Scenario scheme = base;
  scheme.scheme = power::Scheme::kSeparate;
  Scenario profile = base;
  profile.table_profile.prefix_count = 401;

  EXPECT_NE(WorkloadCache::key(seed, false), k0);
  EXPECT_NE(WorkloadCache::key(vns, false), k0);
  EXPECT_NE(WorkloadCache::key(alpha, false), k0);
  EXPECT_NE(WorkloadCache::key(scheme, false), k0);
  EXPECT_NE(WorkloadCache::key(profile, false), k0);
  EXPECT_NE(WorkloadCache::key(base, true), k0);  // keep_tables in the key
}

TEST(WorkloadCacheTest, ConcurrentRealizeBuildsOnce) {
  const Scenario s = small_scenario();
  WorkloadCache cache;
  const SweepRunner runner(8);
  const std::vector<const Workload*> ptrs =
      runner.map(16, [&](std::size_t) -> const Workload* {
        return cache.realize(s).get();
      });
  for (const Workload* p : ptrs) {
    EXPECT_EQ(p, ptrs.front());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 15u);
}

// ------------------------------------------------------- cache LRU budget --

Scenario seeded_scenario(std::uint64_t seed) {
  Scenario s = small_scenario();
  s.seed = seed;
  return s;
}

TEST(WorkloadCacheTest, EntryBudgetEvictsLeastRecentlyUsed) {
  WorkloadCache cache;
  cache.set_budget(std::uint64_t{1} << 40, 2);
  const std::shared_ptr<const Workload> a = cache.realize(seeded_scenario(1));
  (void)cache.realize(seeded_scenario(2));
  (void)cache.realize(seeded_scenario(1));  // touch: 2 is now least recent
  (void)cache.realize(seeded_scenario(3));  // over budget: evicts 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().entries, 2u);

  // The touched entry survived...
  const std::uint64_t hits_before = cache.stats().hits;
  const std::shared_ptr<const Workload> a2 =
      cache.realize(seeded_scenario(1));
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);

  // ...and the evicted one rebuilds on the next request.
  const std::uint64_t misses_before = cache.stats().misses;
  (void)cache.realize(seeded_scenario(2));
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(WorkloadCacheTest, ByteBudgetKeepsResidentSetBounded) {
  WorkloadCache cache;
  const std::shared_ptr<const Workload> first =
      cache.realize(seeded_scenario(10));
  const std::uint64_t one = WorkloadCache::approx_bytes(*first);
  ASSERT_GT(one, 0u);
  const std::uint64_t budget = one + one / 2;  // room for ~1.5 workloads
  cache.set_budget(budget, 1000);
  for (std::uint64_t seed = 11; seed < 16; ++seed) {
    (void)cache.realize(seeded_scenario(seed));
    EXPECT_LE(cache.stats().resident_bytes, budget);
  }
  EXPECT_GE(cache.stats().evictions, 4u);
  EXPECT_GE(cache.stats().entries, 1u);  // newest entry stays resident
}

TEST(WorkloadCacheTest, TightBudgetStillDeduplicatesConcurrentBuilds) {
  WorkloadCache cache;
  cache.set_budget(std::uint64_t{1} << 40, 1);
  const Scenario s = seeded_scenario(20);
  const SweepRunner runner(8);
  const std::vector<const Workload*> ptrs =
      runner.map(16, [&](std::size_t) -> const Workload* {
        return cache.realize(s).get();
      });
  for (const Workload* p : ptrs) {
    EXPECT_EQ(p, ptrs.front());
  }
  // Build-once held even though only one entry may stay resident.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 15u);
  // A second key forces the eviction of the only resident entry.
  (void)cache.realize(seeded_scenario(21));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().entries, 1u);
}

// ------------------------------------------- cache failure & clear races --

// A builder seam that runs a fixed script: each realize() call takes the
// next Step in order. Blocking steps wait on a future the test releases,
// which makes the clear()/failure interleavings deterministic.
struct ScriptedBuilder {
  struct Step {
    bool fail = false;
    std::shared_future<void> gate;  // wait before finishing (if valid)
  };

  std::shared_ptr<const Workload> product;
  std::vector<Step> steps;
  std::atomic<std::size_t> calls{0};

  WorkloadCache::Builder fn() {
    return [this](const Scenario&, bool) -> std::shared_ptr<const Workload> {
      const std::size_t index = calls.fetch_add(1);
      const Step& step = steps.at(index);
      if (step.gate.valid()) step.gate.wait();
      if (step.fail) throw std::runtime_error("scripted build failure");
      return product;
    };
  }
};

std::shared_ptr<const Workload> shared_small_workload() {
  static const std::shared_ptr<const Workload> workload =
      std::make_shared<const Workload>(realize_workload(small_scenario()));
  return workload;
}

TEST(WorkloadCacheTest, FailedBuildRecoversOnRetry) {
  ScriptedBuilder script;
  script.product = shared_small_workload();
  script.steps = {{.fail = true, .gate = {}}, {.fail = false, .gate = {}}};
  WorkloadCache cache(nullptr, script.fn());
  const Scenario s = small_scenario();

  EXPECT_THROW((void)cache.realize(s), std::runtime_error);
  // The failed slot is gone — the key is rebuildable, not poisoned.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  const std::shared_ptr<const Workload> retried = cache.realize(s);
  EXPECT_EQ(retried.get(), script.product.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.realize(s).get(), retried.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

// Regression: a build failing after clear() had re-installed its key used
// to erase the *retry's* slot from the catch path — the retry's waiters
// lost dedup and its completion then corrupted the byte accounting. The
// generation check must leave a slot it no longer owns alone.
TEST(WorkloadCacheTest, FailedBuildAfterClearDoesNotEraseTheRetrysSlot) {
  std::promise<void> release_failing;
  ScriptedBuilder script;
  script.product = shared_small_workload();
  script.steps = {{.fail = true, .gate = release_failing.get_future().share()},
                  {.fail = false, .gate = {}}};
  WorkloadCache cache(nullptr, script.fn());
  const Scenario s = small_scenario();

  std::thread failing([&] {
    EXPECT_THROW((void)cache.realize(s), std::runtime_error);
  });
  while (script.calls.load() == 0) std::this_thread::yield();

  // The in-flight build's slot is dropped, then the same key is rebuilt
  // successfully — a new slot with a new generation.
  cache.clear();
  const std::shared_ptr<const Workload> healthy = cache.realize(s);
  EXPECT_EQ(healthy.get(), script.product.get());
  EXPECT_EQ(cache.stats().entries, 1u);

  // Now the stale build fails. Its catch path must not tear down the
  // healthy slot it no longer owns.
  release_failing.set_value();
  failing.join();
  EXPECT_EQ(cache.stats().entries, 1u);
  const std::uint64_t hits_before = cache.stats().hits;
  EXPECT_EQ(cache.realize(s).get(), healthy.get());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

// Regression: a build completing after clear() had re-installed its key
// used to mark the new slot ready and charge its own bytes against it;
// when the new build then completed too, the entry was double-charged and
// the resident-byte budget drifted upward forever. The stale completion
// must be a no-op.
TEST(WorkloadCacheTest, StaleCompletionAfterClearDoesNotDoubleCharge) {
  std::promise<void> release_stale;
  std::promise<void> release_retry;
  ScriptedBuilder script;
  script.product = shared_small_workload();
  script.steps = {{.fail = false, .gate = release_stale.get_future().share()},
                  {.fail = false, .gate = release_retry.get_future().share()}};
  WorkloadCache cache(nullptr, script.fn());
  const Scenario s = small_scenario();

  std::thread stale([&] { (void)cache.realize(s); });
  while (script.calls.load() == 0) std::this_thread::yield();
  cache.clear();

  std::thread retry([&] { (void)cache.realize(s); });
  while (script.calls.load() < 2) std::this_thread::yield();

  // The stale build finishes first, against a slot that is no longer its
  // own; then the retry finishes and becomes the resident entry.
  release_stale.set_value();
  stale.join();
  release_retry.set_value();
  retry.join();

  const std::uint64_t one = WorkloadCache::approx_bytes(*script.product);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, one);  // charged exactly once
  EXPECT_EQ(cache.realize(s).get(), script.product.get());
}

// ------------------------------------------------- sweep determinism e2e --

std::string render_figures(const FigureOptions& options) {
  const FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(), options);
  std::ostringstream os;
  const FigureBuilder::Fig4 fig4 = builder.fig4_memory();
  fig4.pointer_memory.render_csv(os);
  fig4.nhi_memory.render_csv(os);
  builder.fig5_total_power(fpga::SpeedGrade::kMinus2).render_csv(os);
  builder.fig7_model_error(fpga::SpeedGrade::kMinus1L).render_csv(os);
  builder.fig8_efficiency(fpga::SpeedGrade::kMinus2).render_csv(os);
  return os.str();
}

TEST(SweepDeterminismTest, ParallelCachedOutputMatchesSerialByteForByte) {
  FigureOptions small;
  small.table_profile.prefix_count = 400;
  small.max_vn = 6;
  small.memory_max_vn = 8;

  FigureOptions serial = small;
  serial.threads = 1;
  serial.use_cache = false;

  FigureOptions parallel = small;
  parallel.threads = 4;
  parallel.use_cache = true;

  WorkloadCache::global().clear();
  const std::string serial_csv = render_figures(serial);
  WorkloadCache::global().clear();
  const std::string parallel_cold_csv = render_figures(parallel);
  const std::string parallel_warm_csv = render_figures(parallel);

  EXPECT_EQ(serial_csv, parallel_cold_csv);
  EXPECT_EQ(serial_csv, parallel_warm_csv);
  EXPECT_GT(WorkloadCache::global().stats().hits, 0u);
}

}  // namespace
}  // namespace vr::core
