"""lock-discipline — mutex-guarded members are touched under their mutex.

The concurrent components (obs::Registry, core::WorkloadCache,
trie::SnapshotPublisher) document which members a mutex guards. This
check makes that documentation machine-readable and enforced: a member
annotated

    std::map<...> metrics_;  // guarded_by(mu_)

may only appear in functions that visibly take that mutex. A function
complies when any of these holds:

* its body constructs a ``lock_guard`` / ``scoped_lock`` /
  ``unique_lock`` on the named mutex, or calls ``mutex.lock()``;
* its name ends in ``_locked`` (the project convention for helpers with
  a "must hold mu_" contract, checked at their call sites);
* it is a constructor or destructor (no concurrent access can exist
  before the object is shared or during teardown);
* it carries ``// lock-ok: <reason>`` — e.g. an atomic read deliberately
  outside the lock, or single-writer data read on the writer thread.

The annotation lives in the header; the check follows the companion
.cpp so out-of-line definitions are covered too.
"""

from __future__ import annotations

import re
from typing import Iterable

import core

GUARDED = re.compile(r"//.*\bguarded_by\(([A-Za-z_]\w*)\)")
MEMBER_DECL = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\{[^{}]*\}|=[^;]*)?\s*;")


def _declared_members(f: core.SourceFile) -> dict[str, str]:
    """member name -> guarding mutex, from guarded_by annotations."""
    members: dict[str, str] = {}
    for i, raw in enumerate(f.lines):
        m = GUARDED.search(raw)
        if not m:
            continue
        mutex = m.group(1)
        # The annotated declaration is on this line, or this is a
        # standalone comment annotating the next declaration line.
        for line in (core.strip_comment(raw), ):
            decl = MEMBER_DECL.search(line)
            if not decl and i + 1 < len(f.lines):
                decl = MEMBER_DECL.search(core.strip_comment(f.lines[i + 1]))
            if decl:
                members[decl.group(1)] = mutex
    return members


def _takes_lock(body: list[str], mutex: str) -> bool:
    lock_re = re.compile(
        r"(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b[^;]*"
        r"[({]\s*" + re.escape(mutex) + r"\s*[)}]"
        r"|\b" + re.escape(mutex) + r"\s*\.\s*lock\s*\(")
    return any(lock_re.search(core.strip_comment(line)) for line in body)


@core.register
class LockDisciplineCheck(core.Check):
    name = "lock-discipline"
    description = ("members annotated // guarded_by(mu) are only touched "
                   "under the mutex, in _locked helpers, or with lock-ok")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        for header in tree.in_dirs("src"):
            if not header.is_header:
                continue
            members = _declared_members(header)
            if not members:
                continue
            sources = [header]
            companion = tree.companion(header)
            if companion is not None:
                sources.append(companion)
            class_names = {
                m.group(1)
                for line in header.lines
                for m in [re.search(r"\b(?:class|struct)\s+(\w+)", line)]
                if m}
            for f in sources:
                yield from self._lint_file(f, members, class_names)

    def _lint_file(self, f: core.SourceFile, members: dict[str, str],
                   class_names: set[str]) -> Iterable[core.Finding]:
        for span in f.functions:
            if span.name.endswith("_locked"):
                continue
            if span.name.lstrip("~") in class_names:
                continue  # constructor/destructor
            body = f.lines[span.header_line - 1:span.close_line]
            header_text = " ".join(
                f.lines[span.header_line - 1:span.open_line])
            for member, mutex in members.items():
                use_re = re.compile(r"\b" + re.escape(member) + r"\b")
                hits = [
                    span.header_line + k
                    for k, line in enumerate(body)
                    if use_re.search(core.strip_comment(line))]
                # The declaration itself (and its annotation) is not a use.
                hits = [
                    h for h in hits
                    if not GUARDED.search(f.lines[h - 1])
                    and not f.suppressed(h - 1, "lock-ok")]
                if not hits:
                    continue
                if _takes_lock(body, mutex):
                    continue
                if re.search(r"//\s*lock-ok:", header_text):
                    continue
                yield core.Finding(
                    self.name, f.rel, hits[0],
                    f"'{span.qualifier + '::' if span.qualifier else ''}"
                    f"{span.name}' touches '{member}' (guarded_by "
                    f"{mutex}) without taking the lock — lock {mutex}, "
                    f"rename to *_locked, or annotate "
                    f"'// lock-ok: <reason>'")
