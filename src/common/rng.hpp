// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (synthetic routing tables,
// packet traces, correlated table sets) is seeded explicitly so that all
// experiments are bit-reproducible across runs and platforms. We implement
// SplitMix64 (for seeding) and xoshiro256** (for bulk generation) rather
// than relying on std::mt19937 so that the exact sequences are part of the
// library contract and documented here.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace vr {

/// SplitMix64: tiny, fast generator used to expand a single 64-bit seed into
/// the 256-bit state of Xoshiro256. Sequence is fixed by Steele et al.'s
/// reference implementation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it can be used with <random>
/// distributions, but the helpers below are preferred because their output
/// is platform-independent.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Samples an index from a discrete distribution given by non-negative
  /// weights. The weights need not be normalized; their sum must be > 0.
  std::size_t next_weighted(const double* weights, std::size_t count) noexcept;

  /// Derives an independent child generator; useful for giving each virtual
  /// network / pipeline its own reproducible stream.
  [[nodiscard]] Rng fork() noexcept {
    return Rng(next_u64() ^ 0xa0761d6478bd642fULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vr
