#include "dataplane/parser.hpp"

namespace vr::dataplane {

std::optional<ParsedPacket> Parser::parse(
    net::VnId vnid, std::span<const std::uint8_t> bytes) {
  const auto header = net::Ipv4Header::parse(bytes);
  if (!header) {
    ++stats_.malformed;
    return std::nullopt;
  }
  if (!header->verify_checksum()) {
    ++stats_.bad_checksum;
    return std::nullopt;
  }
  // narrow-ok: Ipv4Header::parse rejects total_length < kSize, so the
  // difference is a non-negative value below 2^16
  const auto payload = static_cast<std::uint16_t>(
      header->total_length - net::Ipv4Header::kSize);
  return accept_validated(vnid, *header, payload);
}

std::optional<ParsedPacket> Parser::accept(net::VnId vnid,
                                           const net::Ipv4Header& header,
                                           std::uint16_t payload_bytes) {
  if (!header.verify_checksum()) {
    ++stats_.bad_checksum;
    return std::nullopt;
  }
  return accept_validated(vnid, header, payload_bytes);
}

std::optional<ParsedPacket> Parser::accept_validated(
    net::VnId vnid, const net::Ipv4Header& header,
    std::uint16_t payload_bytes) {
  // A router decrements TTL before forwarding; packets arriving with
  // TTL <= 1 cannot be forwarded.
  if (header.ttl <= 1) {
    ++stats_.ttl_expired;
    return std::nullopt;
  }
  ++stats_.accepted;
  ParsedPacket out;
  out.vnid = vnid;
  out.header = header;
  out.payload_bytes = payload_bytes;
  return out;
}

}  // namespace vr::dataplane
