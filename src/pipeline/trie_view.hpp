// Adapter over the two trie flavours (per-VN uni-bit trie and K-way merged
// trie) presenting the uniform node interface the pipeline simulator
// traverses. Backed by the flat structure-of-arrays view (trie::FlatTrie),
// so every per-cycle stage access is a direct contiguous-array read —
// ownership of the arrays is shared, so a view outlives the trie object it
// was made from.
#pragma once

#include <memory>

#include "trie/flat_trie.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::pipeline {

class TrieView {
 public:
  explicit TrieView(const trie::UnibitTrie& t) noexcept
      : flat_(t.flat_shared()) {}
  explicit TrieView(const virt::MergedTrie& t) noexcept
      : flat_(t.flat_shared()) {}

  [[nodiscard]] trie::NodeIndex left(trie::NodeIndex n) const noexcept {
    return flat_->left(n);
  }
  [[nodiscard]] trie::NodeIndex right(trie::NodeIndex n) const noexcept {
    return flat_->right(n);
  }

  /// Next hop stored at node `n` for virtual network `vn` (kNoRoute when
  /// absent). Single tries ignore `vn`.
  [[nodiscard]] net::NextHop next_hop(trie::NodeIndex n, net::VnId vn)
      const noexcept {
    return flat_->next_hop(n, flat_->vn_count() == 1 ? net::VnId{0} : vn);
  }

  [[nodiscard]] std::size_t level_count() const noexcept {
    return flat_->level_count();
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return flat_->node_count();
  }

  /// Number of virtual networks the view serves (1 for a single trie).
  [[nodiscard]] std::size_t vn_count() const noexcept {
    return flat_->vn_count();
  }

  /// The underlying flat SoA trie (batched lookups etc.).
  [[nodiscard]] const trie::FlatTrie& flat() const noexcept { return *flat_; }

 private:
  std::shared_ptr<const trie::FlatTrie> flat_;
};

}  // namespace vr::pipeline
