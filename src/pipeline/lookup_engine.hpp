// Cycle-level model of one linear pipelined lookup engine (paper Sec. V-D):
// trie level i is handled by pipeline stage i with its own independently
// accessible memory; a packet enters at stage 0 and exits after the last
// stage with its next-hop information. Stages whose slot is empty (or whose
// packet's traversal has already terminated) are clock-gated and perform no
// memory access — the mechanism behind the paper's µ-weighted dynamic power
// (Sec. IV).
//
// The engine accepts at most one packet per cycle (the paper's architecture
// issues one lookup per cycle), has a fixed latency of `stage_count`
// cycles, and is restricted to one trie level per stage (the configuration
// the paper implements; analytical coalesced mappings are handled by the
// model layer only).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/traffic.hpp"
#include "pipeline/trie_view.hpp"
#include "trie/stage_mapping.hpp"

namespace vr::pipeline {

/// A completed lookup.
struct LookupResult {
  std::uint64_t exit_cycle = 0;
  net::Packet packet;
  std::optional<net::NextHop> next_hop;
};

/// Per-engine activity counters for energy accounting.
struct ActivityCounters {
  std::uint64_t cycles = 0;          ///< cycles simulated
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  /// offer() calls refused because the input slot was occupied — the
  /// engine's backpressure signal (the caller must retry next cycle).
  std::uint64_t offers_rejected = 0;
  /// Cycles in which stage s held a valid packet (its registers clocked).
  std::vector<std::uint64_t> stage_busy;
  /// Cycles in which stage s performed a memory read.
  std::vector<std::uint64_t> stage_reads;
  /// VNs the per-VN matrices below resolve over (0 when the engine predates
  /// per-VN tracking, e.g. a default-constructed counter in tests).
  std::size_t vn_count = 0;
  /// stage_busy resolved per VN, VN-major ([vn * stage_count + s]). Sums
  /// over VNs equal stage_busy.
  std::vector<std::uint64_t> vn_stage_busy;
  /// stage_reads resolved per VN, VN-major.
  std::vector<std::uint64_t> vn_stage_reads;

  /// Mean fraction of cycles a stage was busy (the measured utilization µ).
  [[nodiscard]] double mean_stage_utilization() const noexcept;

  /// Fraction of cycles VN `vn`'s packets occupied a stage, averaged over
  /// stages — the measured per-VN utilization µ_vn.
  [[nodiscard]] double vn_utilization(std::size_t vn) const noexcept;
};

class LookupEngine {
 public:
  /// Width of the lookup address in bits (IPv4). Because stage s inspects
  /// the address bits of trie level s, a trie may have at most
  /// TrieView::max_levels() levels (kAddressBits + 1 uni-bit, 32/stride
  /// for a stride-k image); the constructor rejects mismatched depths up
  /// front.
  static constexpr std::size_t kAddressBits = 32;

  /// Builds an engine over a trie view with `stage_count` stages; the trie
  /// must not be deeper than the pipeline (one level per stage) nor deeper
  /// than the lookup address is wide.
  LookupEngine(TrieView trie, std::size_t stage_count);

  /// Offers a packet this cycle. Returns false if the input slot is
  /// already taken (caller retries next cycle). At most one accept per
  /// cycle.
  bool offer(const net::Packet& packet);

  /// Advances one clock cycle; appends any completed lookup to `out`.
  void tick(std::vector<LookupResult>* out);

  /// True when no packet is in flight and no input is pending.
  [[nodiscard]] bool drained() const noexcept;

  [[nodiscard]] const ActivityCounters& activity() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::size_t stage_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::uint64_t now() const noexcept { return counters_.cycles; }

 private:
  struct Slot {
    bool valid = false;
    net::Packet packet;
    /// Node this stage must visit; kNullNode when traversal has terminated
    /// (the slot then just carries the result to the end of the pipe).
    trie::NodeIndex node = trie::kNullNode;
    net::NextHop best = net::kNoRoute;
  };

  TrieView trie_;
  std::vector<Slot> slots_;
  std::optional<net::Packet> input_;
  ActivityCounters counters_;
};

}  // namespace vr::pipeline
