// perf_cycle — throughput-per-watt of the cycle-level virtualized
// dataplane (DESIGN.md §15) across the four VC sharing policies. The
// per-packet benches answer what each scheme forwards; this one answers
// what the *finite buffering* costs: every run segments packets into
// flits, moves them under credit-based flow control through a bounded VC
// pool, and arbitrates the lookup issue slot — then prices the measured
// activity with power::ActivityModel plus per-device leakage.
//
// The experiment the paper does not have: under skewed per-VN utilization
// a static VC partition (NV/VS/VM) caps the hot VN at its fixed share of
// the pool while cold VNs' buffers sit idle; the dynamic policy (DVC,
// Onsori & Safaei arXiv:1412.2950) lets the hot VN borrow from the shared
// pool above its floor, draining the same traffic in fewer cycles — and
// since leakage accrues per cycle, fewer cycles is directly more
// throughput per watt. BENCH_cycle.json records the DVC-vs-VM ratio per K
// under skew, along with p99 occupancy/backlog and stall counters.
//
// Flags: --quick (K=2 only, fewer cycles), --output FILE, --metrics[=path].
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataplane/cycle/cycle_router.hpp"
#include "fpga/device.hpp"
#include "netbase/table_gen.hpp"
#include "power/activity_model.hpp"
#include "power/power_model.hpp"
#include "trie/memory_layout.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace {

using namespace vr;
using dataplane::cycle::VcPolicy;

constexpr std::size_t kStages = 28;
constexpr units::Megahertz kFreqMhz{300.0};
constexpr fpga::SpeedGrade kGrade = fpga::SpeedGrade::kMinus2;
constexpr fpga::BramPolicy kBramPolicy = fpga::BramPolicy::kMixed;

constexpr VcPolicy kAllPolicies[] = {VcPolicy::kNvStatic, VcPolicy::kVsStatic,
                                     VcPolicy::kVmStatic, VcPolicy::kDynamic};

/// Power-model scheme that prices each VC policy's hardware: NV pays K
/// devices, VS one device with K engines, VM/DVC one merged engine (the
/// dynamic pool changes buffering, not the lookup substrate).
power::Scheme scheme_of(VcPolicy policy) {
  switch (policy) {
    case VcPolicy::kNvStatic:
      return power::Scheme::kNonVirtualized;
    case VcPolicy::kVsStatic:
      return power::Scheme::kSeparate;
    case VcPolicy::kVmStatic:
    case VcPolicy::kDynamic:
      return power::Scheme::kMerged;
  }
  return power::Scheme::kMerged;
}

power::EngineSpec engine_spec_of(const trie::TrieStats& stats,
                                 std::size_t nhi_width) {
  const trie::StageMapping mapping(stats.nodes_per_level.size(), kStages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, nhi_width);
  power::EngineSpec spec;
  for (std::size_t s = 0; s < kStages; ++s) {
    spec.stage_bits.push_back(memory.stage_bits(s));
  }
  return spec;
}

/// The utilization the run actually exhibited (per-VN busy share of the
/// lookup stages) — the µ the operating point reports to the model.
std::vector<double> measured_mu(const power::ActivityCounters& activity) {
  const std::size_t stages = activity.stage_count();
  std::vector<double> mu(activity.vn_count(), 0.0);
  if (activity.cycles == 0 || stages == 0) return mu;
  for (std::size_t v = 0; v < activity.vn_count(); ++v) {
    std::uint64_t busy = 0;
    for (std::size_t s = 0; s < stages; ++s) busy += activity.busy(v, s);
    mu[v] = static_cast<double>(busy) / (static_cast<double>(stages) *
                                         static_cast<double>(activity.cycles));
  }
  return mu;
}

struct Row {
  net::TraceShape shape = net::TraceShape::kUniform;
  VcPolicy policy = VcPolicy::kVsStatic;
  std::size_t vn_count = 0;
  std::uint64_t cycles_to_drain = 0;
  double throughput_gbps = 0.0;
  double p99_vc_occupancy = 0.0;   ///< flits buffered across the pool
  double p99_source_depth = 0.0;   ///< packets backlogged awaiting a VC
  std::uint64_t vc_alloc_stalls = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t arbiter_grants = 0;
  std::uint64_t arbiter_comparisons = 0;
  double dynamic_mw = 0.0;
  double total_w = 0.0;  ///< devices x leakage + activity dynamic
  double tpw_gbps_per_w = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::handle_metrics_flag(argc, argv);
  std::string output = "BENCH_cycle.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  const std::uint64_t cycles = quick ? 2500 : 10000;
  const double load = 0.45;
  const std::vector<std::size_t> vn_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const std::vector<net::TraceShape> shapes = {net::TraceShape::kUniform,
                                               net::TraceShape::kSkewed};

  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const double static_per_device_w = device.static_power_w(kGrade).value();
  const power::ActivityModel act_model;
  std::vector<Row> rows;

  for (const std::size_t k : vn_counts) {
    net::TableProfile profile;
    profile.prefix_count = quick ? 200 : 500;
    const net::SyntheticTableGenerator table_gen(profile);
    std::vector<net::RoutingTable> tables;
    for (std::uint64_t v = 0; v < k; ++v) {
      tables.push_back(table_gen.generate(60 + v));
    }
    std::vector<const net::RoutingTable*> table_ptrs;
    for (const auto& t : tables) table_ptrs.push_back(&t);
    std::vector<trie::UnibitTrie> tries;
    for (const auto& t : tables) {
      tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
    }
    std::vector<pipeline::TrieView> views;
    std::vector<const trie::UnibitTrie*> trie_ptrs;
    std::vector<power::EngineSpec> engines;
    for (const auto& t : tries) {
      views.emplace_back(t);
      trie_ptrs.push_back(&t);
      engines.push_back(engine_spec_of(trie::compute_stats(t), 1));
    }
    const virt::MergedTrie merged{
        std::span<const trie::UnibitTrie* const>(trie_ptrs)};
    const power::EngineSpec merged_engine =
        engine_spec_of(merged.stats_as_trie(), k);

    for (std::size_t si = 0; si < shapes.size(); ++si) {
      const net::TraceShape shape = shapes[si];
      dataplane::FrameGenConfig frame_config;
      frame_config.traffic = net::make_shaped_config(shape, cycles, load, k);
      const dataplane::FrameGenerator frame_gen(frame_config, table_ptrs);
      const auto frames = frame_gen.generate(
          dataplane::FrameGenerator::derive_seed(23, si * 16 + k));

      for (const VcPolicy policy : kAllPolicies) {
        dataplane::cycle::CycleConfig config;
        config.vc.policy = policy;
        config.vc.vc_count = 2 * k;
        config.vc.vn_count = k;
        config.vc.dynamic_floor = 1;
        config.scheduler.vn_count = k;
        config.scheduler.port_count = 16;
        config.scheduler.queue_capacity = 256;

        dataplane::cycle::CycleResult result = [&] {
          if (dataplane::cycle::separate_engines(policy)) {
            pipeline::SeparateRouter lookup(views, kStages);
            return dataplane::cycle::run_cycle_router(lookup, frames, config);
          }
          pipeline::MergedRouter lookup(merged, kStages);
          return dataplane::cycle::run_cycle_router(lookup, frames, config);
        }();

        const power::Scheme scheme = scheme_of(policy);
        power::ModelContext ctx;
        ctx.scheme = scheme;
        ctx.vn_count = k;
        if (scheme == power::Scheme::kMerged) {
          ctx.merged_engine = &merged_engine;
        } else {
          ctx.engines = engines;
        }
        ctx.op.grade = kGrade;
        ctx.op.bram_policy = kBramPolicy;
        ctx.op.freq_mhz = kFreqMhz;
        ctx.op.utilization = measured_mu(result.activity);
        ctx.activity = &result.activity;
        const power::ActivityPower power = act_model.estimate(ctx);

        Row row;
        row.shape = shape;
        row.policy = policy;
        row.vn_count = k;
        row.cycles_to_drain = result.cycles;
        std::uint64_t bytes = 0;
        for (const std::uint64_t b : result.scheduler.bytes_per_vn) {
          bytes += b;
        }
        // bits / cycle x cycles / second, in Gbps.
        row.throughput_gbps = static_cast<double>(bytes) * 8.0 *
                              kFreqMhz.value() /
                              (static_cast<double>(result.cycles) * 1000.0);
        row.p99_vc_occupancy = result.vc_occupancy.quantile(0.99);
        row.p99_source_depth = result.source_queue_depth.quantile(0.99);
        row.vc_alloc_stalls = result.cycle.vc_alloc_stalls;
        row.credit_stalls = result.cycle.credit_stalls;
        row.arbiter_grants = result.cycle.arbiter_grants;
        row.arbiter_comparisons = result.cycle.arbiter_comparisons;
        row.dynamic_mw = units::w_to_mw(power.dynamic_w().value());
        const double devices =
            static_cast<double>(power::devices_for(scheme, k));
        row.total_w = devices * static_per_device_w +
                      power.dynamic_w().value();
        row.tpw_gbps_per_w = row.throughput_gbps / row.total_w;
        rows.push_back(row);
      }
    }
  }

  TextTable table_out(
      "perf_cycle - cycle-level VC policies, throughput per watt" +
      std::string(quick ? " (quick profile)" : ""));
  table_out.set_header({"shape", "policy", "K", "drain cyc", "Gbps",
                        "p99 occ", "p99 src", "alloc stall", "credit stall",
                        "total W", "Gbps/W"});
  for (const Row& row : rows) {
    table_out.add_row({net::to_string(row.shape), to_string(row.policy),
                       std::to_string(row.vn_count),
                       std::to_string(row.cycles_to_drain),
                       TextTable::num(row.throughput_gbps, 2),
                       TextTable::num(row.p99_vc_occupancy, 1),
                       TextTable::num(row.p99_source_depth, 1),
                       std::to_string(row.vc_alloc_stalls),
                       std::to_string(row.credit_stalls),
                       TextTable::num(row.total_w, 2),
                       TextTable::num(row.tpw_gbps_per_w, 3)});
  }
  bench::emit(table_out);

  // The headline comparison: DVC vs the static-partition VM under skew
  // (same merged-engine hardware, only the VC sharing rule differs).
  struct DvcVsVm {
    std::size_t vn_count = 0;
    double dvc_tpw = 0.0;
    double vm_tpw = 0.0;
  };
  std::vector<DvcVsVm> headline;
  for (const std::size_t k : vn_counts) {
    DvcVsVm entry;
    entry.vn_count = k;
    for (const Row& row : rows) {
      if (row.vn_count != k || row.shape != net::TraceShape::kSkewed) continue;
      if (row.policy == VcPolicy::kDynamic) entry.dvc_tpw = row.tpw_gbps_per_w;
      if (row.policy == VcPolicy::kVmStatic) entry.vm_tpw = row.tpw_gbps_per_w;
    }
    headline.push_back(entry);
  }

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_cycle\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"cycles\": " << cycles << ",\n"
       << "  \"load\": " << TextTable::num(load, 2) << ",\n"
       << "  \"freq_mhz\": " << TextTable::num(kFreqMhz.value(), 1) << ",\n"
       << "  \"dvc_vs_vm_skewed\": [\n";
  for (std::size_t i = 0; i < headline.size(); ++i) {
    const DvcVsVm& entry = headline[i];
    json << "    {\"vn_count\": " << entry.vn_count
         << ", \"dvc_tpw_gbps_per_w\": " << TextTable::num(entry.dvc_tpw, 4)
         << ", \"vm_tpw_gbps_per_w\": " << TextTable::num(entry.vm_tpw, 4)
         << ", \"dvc_over_vm\": "
         << TextTable::num(entry.vm_tpw > 0.0 ? entry.dvc_tpw / entry.vm_tpw
                                              : 0.0,
                           4)
         << "}" << (i + 1 < headline.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"shape\": \"" << net::to_string(row.shape)
         << "\", \"policy\": \"" << to_string(row.policy)
         << "\", \"vn_count\": " << row.vn_count
         << ", \"cycles_to_drain\": " << row.cycles_to_drain
         << ", \"throughput_gbps\": " << TextTable::num(row.throughput_gbps, 4)
         << ", \"p99_vc_occupancy\": "
         << TextTable::num(row.p99_vc_occupancy, 2)
         << ", \"p99_source_depth\": "
         << TextTable::num(row.p99_source_depth, 2)
         << ", \"vc_alloc_stalls\": " << row.vc_alloc_stalls
         << ", \"credit_stalls\": " << row.credit_stalls
         << ", \"arbiter_grants\": " << row.arbiter_grants
         << ", \"arbiter_comparisons\": " << row.arbiter_comparisons
         << ", \"dynamic_mw\": " << TextTable::num(row.dynamic_mw, 4)
         << ", \"total_w\": " << TextTable::num(row.total_w, 4)
         << ", \"tpw_gbps_per_w\": " << TextTable::num(row.tpw_gbps_per_w, 4)
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"metrics\": "
       << obs::MetricsSink(obs::Registry::global()).json(2) << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';
  return 0;
}
