#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "pipeline/energy.hpp"
#include "pipeline/lookup_engine.hpp"
#include "pipeline/router.hpp"
#include "trie/memory_layout.hpp"

namespace vr::pipeline {
namespace {

using net::Ipv4;
using net::Packet;
using net::RoutingTable;
using trie::UnibitTrie;

constexpr std::size_t kStages = 28;

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 400) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

// -------------------------------------------------------- lookup engine --

TEST(LookupEngineTest, LatencyIsExactlyStageCount) {
  const RoutingTable table = gen_table(1);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  std::vector<LookupResult> out;
  ASSERT_TRUE(engine.offer(Packet{Ipv4(10, 0, 0, 1), 0}));
  for (std::size_t c = 0; c < kStages; ++c) {
    engine.tick(&out);
  }
  // The packet enters the pipe on the first tick and exits after kStages
  // more stage traversals.
  EXPECT_TRUE(out.empty());
  engine.tick(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].exit_cycle, kStages + 1);
}

TEST(LookupEngineTest, SustainsOnePacketPerCycle) {
  const RoutingTable table = gen_table(2);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  std::vector<LookupResult> out;
  const std::size_t n = 500;
  std::size_t offered = 0;
  std::uint64_t cycles = 0;
  while (out.size() < n) {
    if (offered < n) {
      if (engine.offer(Packet{Ipv4(10, 0, 0, 1), 0})) ++offered;
    }
    engine.tick(&out);
    ++cycles;
  }
  // Full back-to-back throughput: n packets in n + latency cycles.
  EXPECT_LE(cycles, n + kStages + 1);
  EXPECT_EQ(engine.activity().packets_out, n);
}

TEST(LookupEngineTest, OfferRefusesSecondPacketSameCycle) {
  const RoutingTable table = gen_table(3);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  EXPECT_TRUE(engine.offer(Packet{Ipv4(1, 2, 3, 4), 0}));
  EXPECT_FALSE(engine.offer(Packet{Ipv4(1, 2, 3, 5), 0}));
  std::vector<LookupResult> out;
  engine.tick(&out);
  EXPECT_TRUE(engine.offer(Packet{Ipv4(1, 2, 3, 5), 0}));
}

TEST(LookupEngineTest, ResultsMatchTrieLookups) {
  const RoutingTable table = gen_table(4);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  Rng rng(4);
  std::vector<Packet> packets;
  for (int i = 0; i < 300; ++i) {
    packets.push_back(Packet{Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
                             0});
  }
  std::vector<LookupResult> out;
  std::size_t offered = 0;
  while (out.size() < packets.size()) {
    if (offered < packets.size() && engine.offer(packets[offered])) {
      ++offered;
    }
    engine.tick(&out);
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(out[i].packet, packets[i]);  // in-order completion
    EXPECT_EQ(out[i].next_hop, trie.lookup(packets[i].addr));
  }
}

TEST(LookupEngineTest, DeepTrieRejected) {
  const RoutingTable table = gen_table(5);
  const UnibitTrie trie(table);  // height ~24
  EXPECT_THROW(LookupEngine(TrieView(trie), 10), CapacityError);
}

TEST(LookupEngineTest, DrainedReflectsOccupancy) {
  const RoutingTable table = gen_table(6);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  EXPECT_TRUE(engine.drained());
  ASSERT_TRUE(engine.offer(Packet{Ipv4(9, 9, 9, 9), 0}));
  EXPECT_FALSE(engine.drained());
  std::vector<LookupResult> out;
  for (std::size_t c = 0; c <= kStages + 1; ++c) engine.tick(&out);
  EXPECT_TRUE(engine.drained());
}

TEST(LookupEngineTest, IdleStagesAreClockGated) {
  const RoutingTable table = gen_table(7);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  std::vector<LookupResult> out;
  // One packet through an otherwise idle pipe: each stage busy <= 1 cycle.
  ASSERT_TRUE(engine.offer(Packet{Ipv4(10, 0, 0, 1), 0}));
  for (std::size_t c = 0; c < kStages + 2; ++c) engine.tick(&out);
  const ActivityCounters& counters = engine.activity();
  for (const std::uint64_t busy : counters.stage_busy) {
    EXPECT_LE(busy, 1u);
  }
  // Reads stop once the traversal terminates (trie shallower than pipe).
  std::uint64_t total_reads = 0;
  for (const std::uint64_t reads : counters.stage_reads) {
    total_reads += reads;
  }
  EXPECT_LE(total_reads, trie.level_count());
  EXPECT_GE(total_reads, 1u);
}

TEST(LookupEngineTest, BusyFractionTracksOfferedLoad) {
  const RoutingTable table = gen_table(8);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  Rng rng(8);
  std::vector<LookupResult> out;
  const double load = 0.3;
  for (int c = 0; c < 20000; ++c) {
    if (rng.next_bool(load)) {
      (void)engine.offer(Packet{Ipv4(10, 0, 0, 1), 0});
    }
    engine.tick(&out);
  }
  EXPECT_NEAR(engine.activity().mean_stage_utilization(), load, 0.03);
}

TEST(LookupEngineTest, BackpressureAndDrainUnderBurst) {
  const RoutingTable table = gen_table(11);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  std::vector<LookupResult> out;
  // Saturate: the single input slot accepts exactly one packet per tick and
  // backpressures everything else offered in the same cycle.
  for (std::size_t c = 0; c < 40; ++c) {
    ASSERT_TRUE(
        engine.offer(Packet{Ipv4(10, 0, 0, static_cast<std::uint8_t>(c)), 0}));
    EXPECT_FALSE(engine.offer(Packet{Ipv4(10, 0, 0, 99), 0}));
    EXPECT_FALSE(engine.drained());
    engine.tick(&out);
  }
  // Stop offering; the pipe must fully drain within the pipeline depth and
  // deliver every accepted packet exactly once.
  for (std::size_t c = 0; c < kStages; ++c) engine.tick(&out);
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(out.size(), 40u);
}

TEST(LookupEngineTest, MalformedVnidRejectedEvenWhenBusy) {
  const RoutingTable table = gen_table(12);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  // Fill the input slot so the engine is busy, then offer an out-of-range
  // VNID: validation must fire before the busy check.
  ASSERT_TRUE(engine.offer(Packet{Ipv4(1, 1, 1, 1), 0}));
  EXPECT_DEATH((void)engine.offer(Packet{Ipv4(2, 2, 2, 2), 5}), "VNID");
}

TEST(LookupEngineTest, VnidValidatedAgainstTrie) {
  const RoutingTable table = gen_table(9);
  const UnibitTrie trie(table);
  LookupEngine engine{TrieView(trie), kStages};
  EXPECT_DEATH((void)engine.offer(Packet{Ipv4(1, 1, 1, 1), 3}),
               "VNID");
}

// --------------------------------------------------------------- routers --

class RouterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t v = 0; v < kVns; ++v) {
      tables_.push_back(gen_table(100 + v, 300));
      tries_.emplace_back(UnibitTrie(tables_.back()).leaf_pushed());
    }
    for (const auto& t : tries_) {
      views_.emplace_back(t);
      trie_ptrs_.push_back(&t);
    }
    merged_.emplace(std::span<const UnibitTrie* const>(trie_ptrs_));
    for (const auto& t : tables_) table_ptrs_.push_back(&t);
  }

  static constexpr std::size_t kVns = 4;
  std::vector<RoutingTable> tables_;
  std::vector<UnibitTrie> tries_;
  std::vector<TrieView> views_;
  std::vector<const UnibitTrie*> trie_ptrs_;
  std::vector<const RoutingTable*> table_ptrs_;
  std::optional<virt::MergedTrie> merged_;
};

TEST_F(RouterFixture, SeparateRouterRoutesByVnid) {
  SeparateRouter router(views_, kStages);
  net::TrafficConfig config;
  config.cycles = 3000;
  const net::TrafficGenerator gen(config, table_ptrs_);
  const auto trace = gen.generate(11);
  const SimulationResult sim = run_trace(router, trace);
  ASSERT_EQ(sim.results.size(), trace.size());
  for (const LookupResult& r : sim.results) {
    EXPECT_EQ(r.next_hop, tables_[r.packet.vnid].lookup(r.packet.addr));
  }
}

TEST_F(RouterFixture, MergedRouterMatchesPerVnTables) {
  MergedRouter router(*merged_, kStages);
  net::TrafficConfig config;
  config.cycles = 3000;
  config.load = 0.9;
  const net::TrafficGenerator gen(config, table_ptrs_);
  const auto trace = gen.generate(12);
  const SimulationResult sim = run_trace(router, trace);
  ASSERT_EQ(sim.results.size(), trace.size());
  for (const LookupResult& r : sim.results) {
    EXPECT_EQ(r.next_hop, tables_[r.packet.vnid].lookup(r.packet.addr));
  }
}

TEST_F(RouterFixture, SeparateAndMergedAgreeOnEveryPacket) {
  SeparateRouter separate(views_, kStages);
  MergedRouter merged_router(*merged_, kStages);
  net::TrafficConfig config;
  config.cycles = 2000;
  config.load = 0.5;
  const net::TrafficGenerator gen(config, table_ptrs_);
  const auto trace = gen.generate(13);
  const SimulationResult a = run_trace(separate, trace);
  const SimulationResult b = run_trace(merged_router, trace);
  ASSERT_EQ(a.results.size(), b.results.size());
  std::map<std::pair<std::uint32_t, net::VnId>,
           std::optional<net::NextHop>>
      separate_answers;
  for (const LookupResult& r : a.results) {
    separate_answers[{r.packet.addr.value(), r.packet.vnid}] = r.next_hop;
  }
  for (const LookupResult& r : b.results) {
    EXPECT_EQ(separate_answers.at({r.packet.addr.value(), r.packet.vnid}),
              r.next_hop);
  }
}

TEST_F(RouterFixture, SeparateEngineUtilizationFollowsShares) {
  SeparateRouter router(views_, kStages);
  net::TrafficConfig config;
  config.cycles = 30000;
  config.vn_weights = {4.0, 2.0, 1.0, 1.0};
  const net::TrafficGenerator gen(config, table_ptrs_);
  const SimulationResult sim = run_trace(router, gen.generate(14));
  // Engine 0 gets half the traffic.
  EXPECT_NEAR(sim.engine_utilization[0], 0.5, 0.04);
  EXPECT_NEAR(sim.engine_utilization[2], 0.125, 0.03);
}

TEST_F(RouterFixture, MergedRouterBackpressuresAtFullLoad) {
  MergedRouter router(*merged_, kStages);
  net::TrafficConfig config;
  config.cycles = 2000;
  config.load = 1.0;  // one packet per cycle = exactly engine capacity
  const net::TrafficGenerator gen(config, table_ptrs_);
  const SimulationResult sim = run_trace(router, gen.generate(15));
  EXPECT_LE(sim.max_queue_depth, 4u);
  EXPECT_GT(sim.results.size(), 1500u);
}

TEST_F(RouterFixture, SeparateRejectsMultiVnTrieViews) {
  std::vector<TrieView> bad{TrieView(*merged_)};
  EXPECT_DEATH(SeparateRouter(bad, kStages), "single-VN");
}

// ---------------------------------------------------------------- energy --

TEST_F(RouterFixture, MeasuredPowerMatchesAnalyticalAtUniformLoad) {
  // The reconciliation the paper's µ-weighted model relies on: simulated
  // activity-based power equals coefficient × measured utilization.
  MergedRouter router(*merged_, kStages);
  net::TrafficConfig config;
  config.cycles = 20000;
  config.load = 0.6;
  const net::TrafficGenerator gen(config, table_ptrs_);
  const SimulationResult sim = run_trace(router, gen.generate(16));

  // Build the stage BRAM plan of the merged engine.
  const trie::TrieStats stats = merged_->stats_as_trie();
  const trie::StageMapping mapping(stats.nodes_per_level.size(), kStages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::NodeEncoding enc;
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), enc, kVns);
  std::vector<std::uint64_t> stage_bits;
  for (std::size_t s = 0; s < kStages; ++s) {
    stage_bits.push_back(memory.stage_bits(s));
  }
  const fpga::StageBramPlan plan =
      fpga::plan_stage_bram(stage_bits, fpga::BramPolicy::kMixed);

  const units::Megahertz freq{300.0};
  const EnginePower measured = measure_engine_power(
      router.engine(0).activity(), plan, fpga::SpeedGrade::kMinus2, freq);

  // Analytical: coefficients × utilization (≈ 0.6 × trace-duty, slightly
  // below 0.6 because of drain cycles at the trace tail).
  const double util = router.engine(0).activity().mean_stage_utilization();
  const double logic_expected =
      fpga::XpeTables::logic_power_w(fpga::SpeedGrade::kMinus2, kStages, freq)
          .value() *
      util;
  EXPECT_NEAR(measured.logic_w.value(), logic_expected,
              logic_expected * 0.01);
  EXPECT_GT(measured.memory_w.value(), 0.0);
  EXPECT_GT(measured.dynamic_w(), measured.logic_w);
}

TEST(EnergyTest, ZeroCyclesGiveZeroPower) {
  ActivityCounters counters;
  counters.stage_busy.assign(4, 0);
  counters.stage_reads.assign(4, 0);
  fpga::StageBramPlan plan =
      fpga::plan_stage_bram({100, 100, 100, 100}, fpga::BramPolicy::kMixed);
  const EnginePower power = measure_engine_power(
      counters, plan, fpga::SpeedGrade::kMinus2, units::Megahertz{400.0});
  EXPECT_DOUBLE_EQ(power.dynamic_w().value(), 0.0);
}

TEST(EnergyTest, MismatchedStageCountsDie) {
  ActivityCounters counters;
  counters.cycles = 10;
  counters.stage_busy.assign(4, 1);
  counters.stage_reads.assign(4, 1);
  fpga::StageBramPlan plan =
      fpga::plan_stage_bram({100, 100}, fpga::BramPolicy::kMixed);
  EXPECT_DEATH(
      (void)measure_engine_power(counters, plan, fpga::SpeedGrade::kMinus2,
                                 units::Megahertz{400.0}),
      "stage count");
}

}  // namespace
}  // namespace vr::pipeline
