file(REMOVE_RECURSE
  "libvr_fpga.a"
)
