#include "core/sweep.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace vr::core {

ConcurrencyProbe probe_concurrency() {
  if (const char* env = std::getenv("VR_THREADS")) {
    const std::string_view text(env);
    long parsed = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    // The whole value must parse ("8x" is not 8) and describe a usable
    // pool ("0" and "-3" are not, nor is anything past kMaxProbeThreads —
    // a 2^40-thread "pool" is a typo, not a request). Anything else falls
    // through to the hardware probe — loudly, once, because a silently
    // ignored VR_THREADS turns every benchmark comparison into noise.
    if (ec == std::errc() && end == text.data() + text.size() &&
        parsed >= 1 &&
        static_cast<unsigned long long>(parsed) <= kMaxProbeThreads) {
      return {static_cast<std::size_t>(parsed), "env:VR_THREADS"};
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "vrpower: ignoring invalid VR_THREADS=\"%s\" "
                   "(expected an integer in [1, %zu]); using the hardware "
                   "concurrency\n",
                   env, kMaxProbeThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2) return {hw, "hardware_concurrency"};
  // hardware_concurrency() may legally return 0 ("not computable") or an
  // affinity-limited 1 even on multi-core hosts; cross-check the online-
  // CPU count before concluding the machine is single-core.
#if defined(_SC_NPROCESSORS_ONLN)
  const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (online >= 1 && static_cast<unsigned long>(online) > hw) {
    return {static_cast<std::size_t>(online),
            "sysconf:_SC_NPROCESSORS_ONLN"};
  }
#endif
  if (hw >= 1) return {hw, "hardware_concurrency"};
  return {1, "fallback"};
}

std::size_t default_sweep_threads() { return probe_concurrency().threads; }

}  // namespace vr::core
