// PlacementController — the online admission-and-placement loop. Consumes
// a VnRequest stream in arrival order; at each tick it retires VNs whose
// departure time passed, asks the configured policy where the arrival
// goes, places it (or rejects), and optionally consolidates: when a
// departure strands a lone VN on an otherwise-empty device, the controller
// asks the policy to re-home it and migrates if that empties a device for
// less marginal power than it saves.
//
// Accounting: fleet watts are tracked incrementally (Δ of the touched
// device per mutation, via the oracle) and integrated over ticks into
// watt-ticks — the energy proxy the competitive-ratio experiments compare
// against the offline bound. Every counter is mirrored into obs metrics
// under "placement.*" when a registry is supplied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "placement/policy.hpp"
#include "placement/request.hpp"

namespace vr::placement {

struct ControllerConfig {
  PolicyKind policy = PolicyKind::kBestFitWatts;
  std::size_t fleet_size = 100;
  ExpCostParams exp_params;
  /// Re-home lone VNs stranded by departures when it saves power.
  bool consolidate = true;
  /// Record a PlacementRecord per request (tests; off for benches).
  bool keep_trace = false;
};

/// The controller's verdict on one request (trace entry).
struct PlacementRecord {
  std::uint64_t request_id = 0;
  bool accepted = false;
  std::size_t device = 0;
  DeviceMode mode = DeviceMode::kDedicated;
};

struct ControllerResult {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  /// Subset of `rejected` where no feasible device existed at all (the
  /// rest are the admission policy declining on cost grounds).
  std::uint64_t infeasible = 0;
  std::uint64_t departures = 0;
  std::uint64_t migrations = 0;
  std::size_t devices_active = 0;       ///< at end of run
  std::size_t peak_devices_active = 0;  ///< high-water mark
  double fleet_w = 0.0;                 ///< at end of run
  // units-ok: watt-ticks is the run's energy proxy (W × request tick);
  // there is no canonical suffix for the composite unit.
  double watt_ticks = 0.0;
  std::vector<PlacementRecord> trace;  ///< filled when keep_trace
};

class PlacementController {
 public:
  /// `oracle` outlives the controller and is shared with the offline
  /// bound so both price shapes identically. `registry` may be null.
  PlacementController(CostOracle* oracle, ControllerConfig config,
                      obs::Registry* registry = nullptr);

  /// Pulls `count` requests from the stream and runs them to completion.
  [[nodiscard]] ControllerResult run(RequestStream& stream,
                                     std::uint64_t count);
  /// Runs a pre-materialized request list (must be in arrival order).
  [[nodiscard]] ControllerResult run(const std::vector<VnRequest>& requests);

  [[nodiscard]] const Fleet& fleet() const noexcept { return fleet_; }

  /// Fleet watts recomputed from scratch over the group index; the
  /// invariant tests compare this against the incremental tracker.
  [[nodiscard]] double recomputed_fleet_w();

 private:
  void handle_departures_until(std::uint64_t tick, ControllerResult* result);
  void handle_arrival(const VnRequest& request, ControllerResult* result);
  void try_consolidate(std::size_t device, ControllerResult* result);
  void apply_place(std::size_t device, const PlacedVn& vn, DeviceMode mode);
  PlacedVn apply_remove(std::uint64_t request_id);
  void integrate_to(std::uint64_t tick, ControllerResult* result);
  void publish_gauges(const ControllerResult& result);

  CostOracle* oracle_;
  ControllerConfig config_;
  std::unique_ptr<PlacementPolicy> policy_;
  Fleet fleet_;
  /// Watts of each device in its current shape (0 when idle).
  std::vector<double> device_w_;
  double fleet_w_ = 0.0;
  std::uint64_t last_tick_ = 0;
  /// Pending departures: tick -> request ids departing at that tick.
  std::multimap<std::uint64_t, std::uint64_t> departures_;

  obs::Counter* requests_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* infeasible_ = nullptr;
  obs::Counter* departures_count_ = nullptr;
  obs::Counter* migrations_ = nullptr;
  obs::Gauge* devices_active_ = nullptr;
  obs::Gauge* fleet_mw_ = nullptr;
  obs::Histogram* device_w_hist_ = nullptr;
};

}  // namespace vr::placement
