// Per-VN utilization (µ_i) generators — Assumption 1 (uniform 1/K) and
// the relaxations the paper mentions ("more complex distributions can be
// modeled by appropriately changing the µ_i values", Sec. IV-A).
//
// Utilizations are dimensionless fractions in [0,1]; they intentionally
// stay plain doubles under the unit-type system (common/units.hpp) — the
// unit lint only polices quantities that carry a physical dimension.
#pragma once

#include <cstddef>
#include <vector>

namespace vr::power {

/// Uniform µ_i = total_load / K (Assumption 1 at total_load = 1).
[[nodiscard]] std::vector<double> uniform_utilization(std::size_t vn_count,
                                                      double total_load = 1.0);

/// Zipf-skewed shares: µ_i ∝ 1/(i+1)^s, normalized to total_load. s = 0
/// degenerates to uniform; s ≈ 1 models a dominant tenant.
[[nodiscard]] std::vector<double> zipf_utilization(std::size_t vn_count,
                                                   double skew,
                                                   double total_load = 1.0);

/// Duty-cycled utilization: every VN offers `peak` during its on-fraction
/// `duty` and nothing otherwise, averaging to peak*duty (the edge-network
/// low-duty behaviour of Sec. I).
[[nodiscard]] std::vector<double> duty_cycled_utilization(
    std::size_t vn_count, double peak, double duty);

}  // namespace vr::power
