#!/usr/bin/env bash
# The project static-analysis gate, three prongs:
#
#   1. vrlint             — the project-native lint framework
#                           (tools/vrlint: units, determinism, narrowing,
#                           lock-discipline, metrics registry, include
#                           hygiene). Always runs; pure python3.
#   2. gcc-analyze        — tools/analyze_check.sh: a -DVR_ANALYZE=ON build
#                           (GCC -fanalyzer + escalated warnings-as-errors
#                           on src/). Runs when g++ >= 12 is available;
#                           skipped with a notice otherwise.
#   3. clang-tidy         — runs when clang-tidy is on PATH and a
#                           compile_commands.json exists; skipped with a
#                           notice otherwise (this container ships gcc only
#                           — the gate must not silently rot, but it also
#                           must not fail on a toolchain it cannot fix).
#
# A one-line PASS/SKIP/FAIL summary per prong is printed at the end.
#
# Usage: tools/static_check.sh [build-dir]
#   build-dir  where compile_commands.json lives (default: build); the
#              gcc-analyze prong uses its own tree (<build-dir>-analyze).
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

vrlint_status=FAIL
analyze_status=FAIL
tidy_status=FAIL

echo "== static gate: vrlint =="
if python3 "${repo_root}/tools/vrlint" --root "${repo_root}"; then
  vrlint_status=PASS
fi

echo "== static gate: gcc-analyze =="
gxx_major="$(g++ -dumpversion 2> /dev/null | cut -d. -f1 || true)"
if [[ -z "${gxx_major}" || "${gxx_major}" -lt 12 ]]; then
  echo "SKIP: g++ >= 12 not found — the -fanalyzer prong did not run" \
       "(vrlint still gates)."
  analyze_status=SKIP
elif "${repo_root}/tools/analyze_check.sh" "${build_dir}-analyze"; then
  analyze_status=PASS
fi

echo "== static gate: clang-tidy =="
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "SKIP: clang-tidy not installed — the tidy prong did not run" \
       "(vrlint and gcc-analyze still gate)."
  tidy_status=SKIP
elif [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "no ${build_dir}/compile_commands.json — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
else
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet "${sources[@]}" && tidy_status=PASS
  else
    clang-tidy -p "${build_dir}" --quiet "${sources[@]}" && tidy_status=PASS
  fi
fi

echo "== static gate summary =="
echo "  vrlint:      ${vrlint_status}"
echo "  gcc-analyze: ${analyze_status}"
echo "  clang-tidy:  ${tidy_status}"
if [[ "${vrlint_status}" == FAIL || "${analyze_status}" == FAIL ||
      "${tidy_status}" == FAIL ]]; then
  echo "static_check: FAILED" >&2
  exit 1
fi
echo "static_check: clean"
