#include "core/workload.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "trie/stage_mapping.hpp"

namespace vr::core {

namespace {

power::EngineSpec engine_from_memory(const trie::StageMemory& memory) {
  power::EngineSpec engine;
  engine.stage_bits.reserve(memory.stage_count());
  for (std::size_t s = 0; s < memory.stage_count(); ++s) {
    engine.stage_bits.push_back(memory.stage_bits(s));
  }
  return engine;
}

}  // namespace

Workload realize_workload(const Scenario& scenario, bool keep_tables) {
  VR_REQUIRE(scenario.vn_count >= 1, "scenario needs at least one VN");
  VR_REQUIRE(scenario.stages >= 1, "scenario needs at least one stage");
  Workload workload;

  const trie::NodeEncoding encoding;

  // Representative per-VN trie (Assumption 2: all tables equal size).
  const net::SyntheticTableGenerator base_gen(scenario.table_profile);
  net::RoutingTable base_table = base_gen.generate(scenario.seed);
  workload.prefix_count = base_table.size();
  trie::UnibitTrie base_trie(base_table);
  if (scenario.leaf_push) base_trie = base_trie.leaf_pushed();
  workload.representative_stats = trie::compute_stats(base_trie);

  const trie::StageMapping mapping(workload.representative_stats
                                       .nodes_per_level.size(),
                                   scenario.stages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory per_vn_memory = trie::stage_memory(
      trie::occupancy(workload.representative_stats, mapping), encoding, 1);
  workload.per_vn_engine = engine_from_memory(per_vn_memory);

  // Assumption 2 relaxation: per-VN tables of spread sizes. VN v's size
  // is nominal * spread^x with x swept linearly over [-1, 1] across the
  // VNs, so the geometric mean stays at the nominal count.
  if (scenario.table_size_spread > 0.0 && scenario.vn_count > 1 &&
      scenario.scheme != power::Scheme::kMerged) {
    VR_REQUIRE(scenario.table_size_spread <= 0.9,
               "table_size_spread must be in (0, 0.9]");
    workload.heterogeneous_engines.reserve(scenario.vn_count);
    for (std::size_t v = 0; v < scenario.vn_count; ++v) {
      const double x =
          scenario.vn_count == 1
              ? 0.0
              : 2.0 * static_cast<double>(v) /
                        static_cast<double>(scenario.vn_count - 1) -
                    1.0;
      const double factor = std::pow(1.0 + scenario.table_size_spread, x);
      net::TableProfile profile = scenario.table_profile;
      profile.prefix_count = std::max<std::size_t>(
          16, static_cast<std::size_t>(
                  std::llround(static_cast<double>(
                                   scenario.table_profile.prefix_count) *
                               factor)));
      const net::SyntheticTableGenerator vn_gen(profile);
      trie::UnibitTrie vn_trie(vn_gen.generate(scenario.seed + 1000 + v));
      if (scenario.leaf_push) vn_trie = vn_trie.leaf_pushed();
      const trie::TrieStats vn_stats = trie::compute_stats(vn_trie);
      const trie::StageMapping vn_mapping(
          vn_stats.nodes_per_level.size(), scenario.stages,
          trie::MappingPolicy::kOneLevelPerStage);
      workload.heterogeneous_engines.push_back(
          engine_from_memory(trie::stage_memory(
              trie::occupancy(vn_stats, vn_mapping), encoding, 1)));
    }
  }

  const bool structural =
      scenario.merged_source == MergedSource::kStructural;
  const bool need_tables = keep_tables || (structural &&
                                           scenario.scheme ==
                                               power::Scheme::kMerged);

  if (need_tables) {
    virt::TableSetConfig set_config;
    set_config.profile = scenario.table_profile;
    set_config.leaf_push = scenario.leaf_push;
    const virt::CorrelatedTableSetGenerator set_gen(set_config);
    virt::TableSet set =
        scenario.vn_count == 1
            ? set_gen.generate(1, 0.0, scenario.seed)
            : set_gen.generate_with_alpha(scenario.vn_count, scenario.alpha,
                                          scenario.seed);
    workload.tables = std::move(set.tables);
    workload.tries.reserve(workload.tables.size());
    for (const net::RoutingTable& table : workload.tables) {
      trie::UnibitTrie t(table);
      workload.tries.push_back(scenario.leaf_push ? t.leaf_pushed()
                                                  : std::move(t));
    }
    std::vector<const trie::UnibitTrie*> ptrs;
    ptrs.reserve(workload.tries.size());
    for (const trie::UnibitTrie& t : workload.tries) ptrs.push_back(&t);
    workload.merged_trie.emplace(
        std::span<const trie::UnibitTrie* const>(ptrs));
  }

  if (scenario.scheme == power::Scheme::kMerged) {
    if (structural) {
      VR_REQUIRE(workload.merged_trie.has_value(),
                 "structural merge missing");
      const trie::TrieStats merged_stats =
          workload.merged_trie->stats_as_trie();
      workload.alpha_used = workload.merged_trie->stats().alpha_effective(
          scenario.vn_count);
      const trie::StageMapping merged_mapping(
          merged_stats.nodes_per_level.size(), scenario.stages,
          trie::MappingPolicy::kOneLevelPerStage);
      const trie::StageMemory merged_memory = trie::stage_memory(
          trie::occupancy(merged_stats, merged_mapping), encoding,
          scenario.vn_count);
      workload.merged_engine = engine_from_memory(merged_memory);
    } else {
      workload.alpha_used = scenario.alpha;
      const trie::StageMemory merged_memory =
          virt::predict_merged_stage_memory(
              workload.representative_stats, mapping, encoding,
              scenario.vn_count, scenario.alpha, scenario.merged_rule);
      workload.merged_engine = engine_from_memory(merged_memory);
    }
  }
  return workload;
}

}  // namespace vr::core
