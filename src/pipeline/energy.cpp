#include "pipeline/energy.hpp"

#include "common/error.hpp"

namespace vr::pipeline {

EnginePower measure_engine_power(const ActivityCounters& counters,
                                 const fpga::StageBramPlan& plan,
                                 fpga::SpeedGrade grade,
                                 units::Megahertz freq_mhz) {
  VR_REQUIRE(plan.per_stage.size() == counters.stage_busy.size(),
             "BRAM plan and activity counters disagree on stage count");
  EnginePower power;
  if (counters.cycles == 0) return power;
  const auto cycles = static_cast<double>(counters.cycles);
  for (std::size_t s = 0; s < counters.stage_busy.size(); ++s) {
    const double busy_fraction =
        static_cast<double>(counters.stage_busy[s]) / cycles;
    const double read_fraction =
        static_cast<double>(counters.stage_reads[s]) / cycles;
    power.logic_w +=
        busy_fraction * fpga::XpeTables::logic_power_w(grade, 1, freq_mhz);
    power.memory_w +=
        read_fraction * plan.per_stage[s].power_w(grade, freq_mhz);
  }
  return power;
}

}  // namespace vr::pipeline
