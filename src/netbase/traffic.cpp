#include "netbase/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::net {

const char* to_string(TraceShape shape) noexcept {
  switch (shape) {
    case TraceShape::kUniform: return "uniform";
    case TraceShape::kBursty: return "bursty";
    case TraceShape::kDiurnal: return "diurnal";
    case TraceShape::kSkewed: return "skewed";
  }
  return "?";
}

TrafficConfig make_shaped_config(TraceShape shape, std::uint64_t cycles,
                                 double load, std::size_t vn_count) {
  TrafficConfig config;
  config.cycles = cycles;
  config.load = load;
  switch (shape) {
    case TraceShape::kUniform:
      break;
    case TraceShape::kBursty:
      // 25% burst duty at 4x the in-burst intensity keeps the mean load
      // equal to the uniform shape (clamped to the 1-packet/cycle line
      // rate — saturation during bursts is part of the shape).
      config.load = std::min(1.0, 4.0 * load);
      config.burst_mean_on_cycles = 200.0;
      config.burst_mean_off_cycles = 600.0;
      break;
    case TraceShape::kDiurnal:
      // Full swing from `load` at the peak to 0.2·load in the trough;
      // mean factor 0.6. Compensate so the mean matches uniform.
      config.load = std::min(1.0, load / 0.6);
      config.diurnal_period = 5000;
      config.diurnal_depth = 0.8;
      break;
    case TraceShape::kSkewed: {
      // Geometric 2^-i shares: VN 0 carries half the traffic.
      config.vn_weights.resize(vn_count);
      double weight = 1.0;
      for (std::size_t v = 0; v < vn_count; ++v, weight *= 0.5) {
        config.vn_weights[v] = weight;
      }
      break;
    }
  }
  return config;
}

std::vector<double> nominal_utilization(const TrafficConfig& config,
                                        std::size_t vn_count) {
  VR_REQUIRE(vn_count >= 1, "need at least one VN");
  const bool bursty = config.burst_mean_on_cycles > 0.0 &&
                      config.burst_mean_off_cycles > 0.0;
  const double burst_duty =
      bursty ? config.burst_mean_on_cycles /
                   (config.burst_mean_on_cycles + config.burst_mean_off_cycles)
             : 1.0;
  const double diurnal_mean =
      (config.diurnal_period > 0 && config.diurnal_depth > 0.0)
          ? 1.0 - config.diurnal_depth / 2.0
          : 1.0;
  const double base =
      config.load * config.duty_on_fraction * burst_duty * diurnal_mean;
  std::vector<double> mu(vn_count, 0.0);
  if (!config.vn_phase_offsets.empty()) {
    // Phased: every VN offers independently at `load` during its own
    // window of duty_on_fraction of the period.
    for (double& u : mu) u = std::min(1.0, base);
    return mu;
  }
  double total = 0.0;
  if (config.vn_weights.empty()) {
    mu.assign(vn_count, std::min(1.0, base / static_cast<double>(vn_count)));
    return mu;
  }
  VR_REQUIRE(config.vn_weights.size() == vn_count,
             "vn_weights size must match vn_count");
  for (const double w : config.vn_weights) total += w;
  VR_REQUIRE(total > 0.0, "vn weights must not all be zero");
  for (std::size_t v = 0; v < vn_count; ++v) {
    mu[v] = std::min(1.0, base * config.vn_weights[v] / total);
  }
  return mu;
}

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   std::vector<const RoutingTable*> tables)
    : config_(std::move(config)), tables_(std::move(tables)) {
  VR_REQUIRE(!tables_.empty(), "need at least one virtual network table");
  for (const RoutingTable* table : tables_) {
    VR_REQUIRE(table != nullptr, "null routing table");
    VR_REQUIRE(!table->empty(), "empty routing table cannot source traffic");
  }
  VR_REQUIRE(config_.load >= 0.0 && config_.load <= 1.0,
             "load must be in [0,1]");
  VR_REQUIRE(config_.duty_on_fraction >= 0.0 && config_.duty_on_fraction <= 1.0,
             "duty_on_fraction must be in [0,1]");
  VR_REQUIRE(config_.duty_period > 0, "duty_period must be positive");
  if (!config_.vn_phase_offsets.empty()) {
    VR_REQUIRE(config_.vn_phase_offsets.size() == tables_.size(),
               "vn_phase_offsets size must match the number of tables");
    for (const double offset : config_.vn_phase_offsets) {
      VR_REQUIRE(offset >= 0.0 && offset < 1.0,
                 "phase offsets must be in [0,1)");
    }
  }
  VR_REQUIRE(config_.burst_mean_on_cycles >= 0.0 &&
                 config_.burst_mean_off_cycles >= 0.0,
             "burst run-length means must be non-negative");
  VR_REQUIRE((config_.burst_mean_on_cycles > 0.0) ==
                 (config_.burst_mean_off_cycles > 0.0),
             "burst on/off means must both be set or both be zero");
  VR_REQUIRE(config_.diurnal_depth >= 0.0 && config_.diurnal_depth <= 1.0,
             "diurnal_depth must be in [0,1]");
  if (config_.diurnal_depth > 0.0) {
    VR_REQUIRE(config_.diurnal_period > 0,
               "diurnal modulation needs a positive period");
  }

  if (config_.vn_weights.empty()) {
    weights_.assign(tables_.size(), 1.0 / static_cast<double>(tables_.size()));
  } else {
    VR_REQUIRE(config_.vn_weights.size() == tables_.size(),
               "vn_weights size must match the number of tables");
    double total = 0.0;
    for (double w : config_.vn_weights) {
      VR_REQUIRE(w >= 0.0, "vn weights must be non-negative");
      total += w;
    }
    VR_REQUIRE(total > 0.0, "vn weights must not all be zero");
    weights_.reserve(config_.vn_weights.size());
    for (double w : config_.vn_weights) weights_.push_back(w / total);
  }
}

Packet TrafficGenerator::sample_packet(Rng& rng, VnId vn) const {
  const RoutingTable& table = *tables_[vn];
  const auto routes = table.routes();
  const Route& route = routes[rng.next_below(routes.size())];
  const unsigned host_bits = 32u - route.prefix.length();
  std::uint32_t addr = route.prefix.address().value();
  if (host_bits > 0) {
    const std::uint64_t space = std::uint64_t{1} << host_bits;
    addr |= static_cast<std::uint32_t>(rng.next_below(space));
  }
  return Packet{Ipv4(addr), vn};
}

std::vector<TimedPacket> TrafficGenerator::generate(
    std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<TimedPacket> trace;
  trace.reserve(static_cast<std::size_t>(
      static_cast<double>(config_.cycles) * config_.load *
          config_.duty_on_fraction +
      16.0));
  const auto on_cycles = static_cast<std::uint64_t>(
      std::llround(config_.duty_on_fraction *
                   static_cast<double>(config_.duty_period)));
  const bool phased = !config_.vn_phase_offsets.empty();

  // The burst process draws from its own derived stream so that disabling
  // it (the default) leaves the arrival stream byte-identical.
  const bool bursty = config_.burst_mean_on_cycles > 0.0;
  Rng burst_rng(SplitMix64(seed ^ 0x6275727374ULL).next());
  bool burst_on = true;
  const double p_burst_off =
      bursty ? 1.0 / config_.burst_mean_on_cycles : 0.0;
  const double p_burst_on =
      bursty ? 1.0 / config_.burst_mean_off_cycles : 0.0;
  const bool diurnal =
      config_.diurnal_period > 0 && config_.diurnal_depth > 0.0;
  constexpr double kTau = 6.283185307179586;

  for (std::uint64_t cycle = 0; cycle < config_.cycles; ++cycle) {
    if (bursty) {
      burst_on = burst_on ? !burst_rng.next_bool(p_burst_off)
                          : burst_rng.next_bool(p_burst_on);
      if (!burst_on) continue;
    }
    // Deterministic diurnal swing: scale == 1.0 when disabled, so the
    // Bernoulli draw below is bit-identical to the unmodulated build.
    double load_scale = 1.0;
    if (diurnal) {
      const double diurnal_phase =
          static_cast<double>(cycle % config_.diurnal_period) /
          static_cast<double>(config_.diurnal_period);
      load_scale = 1.0 - config_.diurnal_depth *
                             (1.0 - std::cos(kTau * diurnal_phase)) / 2.0;
    }
    const std::uint64_t phase = cycle % config_.duty_period;
    if (!phased) {
      if (phase >= on_cycles) continue;
      if (!rng.next_bool(config_.load * load_scale)) continue;
      const auto vn = static_cast<VnId>(
          rng.next_weighted(weights_.data(), weights_.size()));
      trace.push_back(TimedPacket{cycle, sample_packet(rng, vn)});
      continue;
    }
    // Staggered windows: a VN is on when the cycle's phase falls in its
    // own (wrapping) window. Each ON tenant offers traffic INDEPENDENTLY
    // at `load` packets/cycle, so coinciding peaks genuinely overload a
    // single time-shared engine (several packets may share a cycle; the
    // router's injection queue absorbs them).
    for (std::size_t v = 0; v < weights_.size(); ++v) {
      const auto start = static_cast<std::uint64_t>(std::llround(
          config_.vn_phase_offsets[v] *
          static_cast<double>(config_.duty_period)));
      const std::uint64_t rel =
          (phase + config_.duty_period - start % config_.duty_period) %
          config_.duty_period;
      if (rel >= on_cycles) continue;
      if (!rng.next_bool(config_.load * load_scale)) continue;
      trace.push_back(TimedPacket{
          cycle, sample_packet(rng, static_cast<VnId>(v))});
    }
  }
  return trace;
}

std::vector<double> TrafficGenerator::measured_shares(
    const std::vector<TimedPacket>& trace, std::size_t vn_count) {
  std::vector<double> shares(vn_count, 0.0);
  if (trace.empty()) return shares;
  for (const TimedPacket& tp : trace) {
    VR_REQUIRE(tp.packet.vnid < vn_count, "trace references unknown VN");
    shares[tp.packet.vnid] += 1.0;
  }
  for (double& s : shares) s /= static_cast<double>(trace.size());
  return shares;
}

}  // namespace vr::net
