// MUST NOT COMPILE: watts + milliwatts is dimensionally incoherent without
// an explicit conversion through units::to_watts / units::to_milliwatts.
#include "common/units.hpp"

int main() {
  const auto sum = vr::units::Watts{1.0} + vr::units::Milliwatts{1.0};
  return static_cast<int>(sum.value());
}
