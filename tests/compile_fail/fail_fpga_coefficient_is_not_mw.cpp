// MUST NOT COMPILE: the Table III coefficient times a clock is microwatts;
// binding it to a Milliwatts quantity is the silent 1000x error the typed
// coefficient identity exists to stop.
#include "common/units.hpp"
#include "fpga/xpe_tables.hpp"

int main() {
  const vr::units::Milliwatts mw =
      vr::fpga::XpeTables::bram_uw_per_mhz(vr::fpga::BramKind::k18,
                                           vr::fpga::SpeedGrade::kMinus2) *
      vr::units::Megahertz{400.0};
  return static_cast<int>(mw.value());
}
