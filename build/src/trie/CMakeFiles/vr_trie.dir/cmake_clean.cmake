file(REMOVE_RECURSE
  "CMakeFiles/vr_trie.dir/memory_layout.cpp.o"
  "CMakeFiles/vr_trie.dir/memory_layout.cpp.o.d"
  "CMakeFiles/vr_trie.dir/multibit_trie.cpp.o"
  "CMakeFiles/vr_trie.dir/multibit_trie.cpp.o.d"
  "CMakeFiles/vr_trie.dir/stage_mapping.cpp.o"
  "CMakeFiles/vr_trie.dir/stage_mapping.cpp.o.d"
  "CMakeFiles/vr_trie.dir/trie_diff.cpp.o"
  "CMakeFiles/vr_trie.dir/trie_diff.cpp.o.d"
  "CMakeFiles/vr_trie.dir/trie_stats.cpp.o"
  "CMakeFiles/vr_trie.dir/trie_stats.cpp.o.d"
  "CMakeFiles/vr_trie.dir/unibit_trie.cpp.o"
  "CMakeFiles/vr_trie.dir/unibit_trie.cpp.o.d"
  "CMakeFiles/vr_trie.dir/updatable_trie.cpp.o"
  "CMakeFiles/vr_trie.dir/updatable_trie.cpp.o.d"
  "libvr_trie.a"
  "libvr_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
