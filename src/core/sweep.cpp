#include "core/sweep.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace vr::core {

std::size_t default_sweep_threads() {
  if (const char* env = std::getenv("VR_THREADS")) {
    const std::string_view text(env);
    long parsed = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    // The whole value must parse ("8x" is not 8) and describe a usable
    // pool ("0" and "-3" are not). Anything else falls through to the
    // hardware concurrency — loudly, once, because a silently ignored
    // VR_THREADS turns every benchmark comparison into noise.
    if (ec == std::errc() && end == text.data() + text.size() &&
        parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "vrpower: ignoring invalid VR_THREADS=\"%s\" "
                   "(expected a positive integer); using the hardware "
                   "concurrency\n",
                   env);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace vr::core
