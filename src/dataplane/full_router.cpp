#include "dataplane/full_router.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "obs/registry.hpp"

namespace vr::dataplane {

namespace {

// Folds one end-to-end run into the process-wide registry ("dataplane.*")
// so `--metrics` reports drop and latency behaviour across every run a
// binary performed.
void publish_run_metrics(const FullRouterResult& result) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dataplane.parser_accepted").add(result.parser.accepted);
  registry.counter("dataplane.parser_dropped").add(result.parser.dropped());
  registry.counter("dataplane.editor_forwarded").add(result.editor.forwarded);
  registry.counter("dataplane.editor_no_route").add(result.editor.no_route);
  registry.counter("dataplane.editor_ttl_expired")
      .add(result.editor.ttl_expired);
  registry.counter("dataplane.enqueued").add(result.scheduler.enqueued);
  registry.counter("dataplane.transmitted").add(result.scheduler.transmitted);
  registry.counter("dataplane.tail_drops").add(result.scheduler.tail_drops);
  registry.counter("dataplane.rejected").add(result.scheduler.rejected);
  for (std::size_t vn = 0; vn < result.scheduler.bytes_per_vn.size(); ++vn) {
    registry
        .counter("dataplane.vn_bytes", {{"vn", std::to_string(vn)}})
        .add(result.scheduler.bytes_per_vn[vn]);
  }
  registry.histogram("dataplane.queue_depth").merge(result.queue_depths);
  registry.histogram("dataplane.egress_wait_cycles").merge(result.egress_wait);
  const power::ActivityCounters& act = result.activity;
  for (std::size_t vn = 0; vn < act.vn_count(); ++vn) {
    const obs::Labels labels{{"vn", std::to_string(vn)}};
    registry.counter("dataplane.activity.parser_headers", labels)
        .add(act.parser_headers[vn]);
    registry.counter("dataplane.activity.buffer_writes", labels)
        .add(act.buffer_writes[vn]);
    registry.counter("dataplane.activity.buffer_reads", labels)
        .add(act.buffer_reads[vn]);
    registry.counter("dataplane.activity.crossbar_traversals", labels)
        .add(act.crossbar_traversals[vn]);
    registry.counter("dataplane.activity.arbiter_decisions", labels)
        .add(act.arbiter_decisions[vn]);
    registry.counter("dataplane.activity.arbiter_comparisons", labels)
        .add(act.arbiter_comparisons[vn]);
    registry.counter("dataplane.activity.editor_rewrites", labels)
        .add(act.editor_rewrites[vn]);
  }
}

}  // namespace

void fold_engine_activity(const pipeline::VirtualRouter& lookup,
                          power::ActivityCounters* activity) {
  const std::size_t stages = activity->stage_count();
  for (std::size_t e = 0; e < lookup.engine_count(); ++e) {
    const pipeline::ActivityCounters& eng = lookup.engine(e).activity();
    VR_REQUIRE(eng.stage_busy.size() == stages,
               "engines must share the activity record's stage count");
    for (std::size_t lv = 0; lv < eng.vn_count; ++lv) {
      const std::size_t global_vn =
          (lookup.engine_count() == lookup.vn_count() && eng.vn_count == 1)
              ? e
              : lv;
      for (std::size_t s = 0; s < stages; ++s) {
        activity->busy(global_vn, s) += eng.vn_stage_busy[lv * stages + s];
        activity->reads(global_vn, s) += eng.vn_stage_reads[lv * stages + s];
      }
    }
  }
}

std::vector<double> FullRouterResult::goodput_shares() const {
  std::vector<double> shares(scheduler.bytes_per_vn.size(), 0.0);
  std::uint64_t total = 0;
  for (const std::uint64_t b : scheduler.bytes_per_vn) total += b;
  if (total == 0) return shares;
  for (std::size_t v = 0; v < shares.size(); ++v) {
    shares[v] = static_cast<double>(scheduler.bytes_per_vn[v]) /
                static_cast<double>(total);
  }
  return shares;
}

std::vector<double> FullRouterResult::mean_queueing_cycles(
    std::size_t vn_count) const {
  std::vector<double> sums(vn_count, 0.0);
  std::vector<std::uint64_t> counts(vn_count, 0);
  for (const EgressRecord& record : egress) {
    sums[record.vnid] += static_cast<double>(record.queueing_cycles);
    ++counts[record.vnid];
  }
  for (std::size_t v = 0; v < vn_count; ++v) {
    if (counts[v] > 0) sums[v] /= static_cast<double>(counts[v]);
  }
  return sums;
}

FullRouterResult run_full_router(pipeline::VirtualRouter& lookup,
                                 std::vector<IngressFrame> frames,
                                 const FullRouterConfig& config) {
  VR_REQUIRE(config.scheduler.vn_count == lookup.vn_count(),
             "scheduler and lookup must agree on the VN count");
  std::sort(frames.begin(), frames.end(),
            [](const IngressFrame& a, const IngressFrame& b) {
              return a.cycle < b.cycle;
            });

  FullRouterResult result;
  Parser parser;
  Editor editor;
  DrrScheduler scheduler(config.scheduler);
  VR_REQUIRE(lookup.engine_count() >= 1, "router needs at least one engine");
  power::ActivityCounters activity(lookup.vn_count(),
                                   lookup.engine(0).stage_count());

  // Per-VN FIFO of parsed packets awaiting their lookup result. Both the
  // separate router (per-engine in-order pipelines) and the merged router
  // (single in-order pipeline) preserve per-VN completion order, so a
  // FIFO per VN reassociates results with full packets.
  std::vector<std::deque<ParsedPacket>> awaiting(lookup.vn_count());
  std::deque<ParsedPacket> lookup_backlog;
  std::vector<pipeline::LookupResult> lookup_done;

  std::size_t next_frame = 0;
  std::uint64_t cycle = 0;
  const auto work_pending = [&] {
    if (next_frame < frames.size() || !lookup_backlog.empty()) return true;
    if (!lookup.drained() || !scheduler.empty()) return true;
    for (const auto& fifo : awaiting) {
      if (!fifo.empty()) return true;
    }
    return false;
  };

  while (work_pending()) {
    // 1. Arrivals through the parser.
    while (next_frame < frames.size() &&
           frames[next_frame].cycle <= cycle) {
      const IngressFrame& frame = frames[next_frame];
      // Every arriving frame pays the parse, accepted or dropped.
      if (frame.vnid < activity.vn_count()) {
        ++activity.parser_headers[frame.vnid];
      }
      if (const auto parsed = parser.accept(frame.vnid, frame.header,
                                            frame.payload_bytes)) {
        ++activity.buffer_writes[parsed->vnid];
        lookup_backlog.push_back(*parsed);
      }
      ++next_frame;
    }
    result.max_lookup_queue =
        std::max(result.max_lookup_queue, lookup_backlog.size());

    // 2. Inject into the lookup stage (back-pressure respected).
    for (std::size_t burst = 0; burst < lookup_backlog.size();) {
      const ParsedPacket& head = lookup_backlog[burst];
      const net::Packet request{head.header.destination, head.vnid};
      if (lookup.offer(request)) {
        ++activity.buffer_reads[head.vnid];
        awaiting[head.vnid].push_back(head);
        lookup_backlog.erase(lookup_backlog.begin() +
                             static_cast<std::ptrdiff_t>(burst));
      } else {
        ++burst;
      }
    }

    // 3. Lookup pipeline advances; completed lookups go to the editor and
    //    then the scheduler.
    lookup_done.clear();
    lookup.tick(&lookup_done);
    for (const pipeline::LookupResult& done : lookup_done) {
      auto& fifo = awaiting[done.packet.vnid];
      VR_REQUIRE(!fifo.empty(), "lookup completed with no awaiting packet");
      const ParsedPacket parsed = fifo.front();
      fifo.pop_front();
      VR_REQUIRE(parsed.header.destination == done.packet.addr,
                 "per-VN completion order violated");
      if (const auto forwarded = editor.edit(parsed, done.next_hop)) {
        ++activity.editor_rewrites[forwarded->vnid];
        ++activity.crossbar_traversals[forwarded->vnid];
        if (scheduler.enqueue(*forwarded, cycle)) {
          ++activity.buffer_writes[forwarded->vnid];
        }
      }
    }

    // 4. Egress transmission (each transmit reads its queue once).
    const std::size_t egress_before = result.egress.size();
    scheduler.tick(cycle, &result.egress);
    for (std::size_t i = egress_before; i < result.egress.size(); ++i) {
      ++activity.buffer_reads[result.egress[i].vnid];
    }
    ++cycle;
  }

  result.parser = parser.stats();
  result.editor = editor.stats();
  result.scheduler = scheduler.stats();
  result.cycles = cycle;
  activity.cycles = cycle;
  activity.arbiter_decisions = result.scheduler.arbiter_grants_per_vn;
  activity.arbiter_comparisons = result.scheduler.arbiter_comparisons_per_vn;
  fold_engine_activity(lookup, &activity);
  result.activity = std::move(activity);
  result.queue_depths = scheduler.queue_depth_histogram();
  result.egress_wait = scheduler.egress_wait_histogram();
  publish_run_metrics(result);
  return result;
}

}  // namespace vr::dataplane
