// Metric primitives of the observability layer: Counter and Gauge are
// lock-free std::atomic cells; Histogram combines RunningStats (exact
// count/mean/variance/min/max via Welford) with base-2 exponential buckets
// for approximate quantiles in O(1) memory. All three are safe to update
// from many threads concurrently and are deliberately zero-dependency —
// nothing here knows about registries, names, or serialization, so the
// primitives can also be embedded directly in a component (the
// DrrScheduler's queue-depth histogram, the WorkloadCache counters) and
// published later.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace vr::obs {

/// Monotonically increasing event count. Lock-free; relaxed ordering is
/// sufficient because counters carry no synchronization semantics.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written signed level (queue depths, resident bytes, worker counts).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Bucket count of the default Histogram scheme: bucket 0 covers [0, 1),
/// bucket i >= 1 covers [2^(i-1), 2^i), and the last bucket absorbs
/// everything above. Custom-bounds histograms reuse the same fixed-size
/// storage, so they may declare at most kHistogramBuckets - 1 bounds.
inline constexpr std::size_t kHistogramBuckets = 64;

/// A point-in-time copy of a Histogram: exact summary statistics plus the
/// bucket counts the quantile estimator interpolates over. Plain data —
/// safe to copy into result structs (FullRouterResult) and to merge.
/// `bounds` empty means the default base-2 exponential scheme; otherwise
/// bucket i covers [bounds[i-1], bounds[i]) (bucket 0 starts at 0) and the
/// last used bucket, index bounds.size(), absorbs everything at or above
/// bounds.back().
struct HistogramSnapshot {
  RunningStats stats;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::vector<double> bounds;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return std::uint64_t{stats.count()};
  }

  /// Buckets actually addressable under this snapshot's bounds scheme.
  [[nodiscard]] std::size_t used_buckets() const noexcept {
    return bounds.empty() ? kHistogramBuckets : bounds.size() + 1;
  }

  /// Approximate q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket holding the target rank, clamped to the exact observed
  /// [min, max]. Exact for q = 0 and q = 1; empty histograms answer 0.
  [[nodiscard]] double quantile(double q) const;
};

/// Thread-safe sample accumulator for durations, depths, sizes — any
/// non-negative quantity whose distribution (not just total) matters.
/// Rejects NaN and negative samples via VR_REQUIRE: a poisoned histogram
/// would silently corrupt every percentile derived from it.
///
/// Bucketing defaults to the base-2 exponential scheme (right for
/// nanosecond timings spanning orders of magnitude); a histogram whose
/// domain is known — device watts, utilization fractions — can instead be
/// constructed with explicit bucket upper bounds. Two histograms only
/// merge when their bounds agree: silently adding counts across different
/// bucket shapes would mis-bin every quantile, so the mismatch aborts.
class Histogram {
 public:
  Histogram() = default;
  /// Custom bucketing: `upper_bounds` are the exclusive upper edges,
  /// strictly increasing, all positive, at most kHistogramBuckets - 1 of
  /// them. Bucket 0 covers [0, upper_bounds[0]); one extra bucket absorbs
  /// everything at or above upper_bounds.back().
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  /// Typed entry point for timers: durations always enter in nanoseconds.
  void observe_duration(units::Nanoseconds elapsed) {
    observe(elapsed.value());
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// The custom bucket upper bounds; empty = default base-2 scheme.
  /// Immutable once the histogram holds samples.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// Re-shapes an empty histogram (used by Registry to configure a
  /// default-constructed cell). Aborts if samples were already observed
  /// or if the histogram already has different bounds.
  void configure_bounds(std::vector<double> upper_bounds);

  /// Folds another histogram's snapshot into this one (bucket-wise add +
  /// RunningStats::merge). Used to publish component-owned histograms into
  /// the process-wide registry. The bucket bounds must match — merging
  /// differently-shaped histograms aborts rather than mis-binning.
  void merge(const HistogramSnapshot& other);

  void reset();

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
  /// Custom bucket upper edges; empty = base-2 default. Set only at
  /// construction or via configure_bounds() while empty.
  std::vector<double> bounds_;
};

}  // namespace vr::obs
