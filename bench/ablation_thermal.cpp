// Ablation: thermal coupling. The paper's leakage numbers are
// characterization-point values; Sec. V-A notes leakage rises with
// operating temperature. Closing the power->temperature->leakage loop
// shows a second-order benefit of virtualization the paper leaves
// implicit: K dedicated devices each settle at a hotter junction than one
// shared device per unit of useful work, so consolidation saves slightly
// MORE than the 25 degC figures suggest (and needs one heatsink instead of
// K).
#include "bench_common.hpp"
#include "core/validator.hpp"
#include "fpga/thermal.hpp"

int main() {
  using namespace vr;
  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};

  TextTable out(
      "Thermal fixed point per device (grade -2, ambient 25 degC, "
      "theta_ja 2.5 degC/W)");
  out.set_header({"scheme", "K", "25C total W", "settled Tj degC",
                  "settled total W", "thermal uplift %", "in spec"});
  for (const std::size_t k : {4ul, 8ul, 15ul}) {
    for (const auto scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      core::Scenario s;
      s.scheme = scheme;
      s.vn_count = k;
      s.alpha = 0.8;
      const core::Estimate est = estimator.estimate(s);
      // Per-device powers: NV devices are identical; VS/VM use one device.
      const double devices = static_cast<double>(est.power.devices);
      const double static_per_device = est.power.static_w.value() / devices;
      const double dynamic_per_device = est.power.dynamic_w().value() / devices;
      const fpga::ThermalOperatingPoint point =
          fpga::solve_thermal(units::Watts{static_per_device},
                              units::Watts{dynamic_per_device});
      const double settled_total = point.total_w.value() * devices;
      out.add_row(
          {power::to_string(scheme), std::to_string(k),
           TextTable::num(est.power.total_w().value(), 2),
           TextTable::num(point.t_junction_c, 1),
           TextTable::num(settled_total, 2),
           TextTable::num(
               (settled_total / est.power.total_w().value() - 1.0) * 100.0, 1),
           point.within_limits ? "yes" : "NO"});
    }
  }
  vr::bench::emit(out);
  std::cout << "Every device self-heats ~13-14 degC and dissipates ~16%\n"
               "more at its settled point; since the NV fleet burns K\n"
               "devices' leakage, its absolute thermal uplift is ~K times\n"
               "the virtualized router's (12.9 W vs 0.7 W extra at K=15).\n";
  return 0;
}
