// Fixture: units check, suffix mode (src/netbase is not a typed layer).
// Expected: one finding on link_throughput; rx_power_w carries its unit
// suffix and is clean.

namespace vr::net {

double fixture_sum() {
  double link_throughput = 2.5;  // FINDING: no unit suffix
  double rx_power_w = 1.25;
  return link_throughput + rx_power_w;
}

}  // namespace vr::net
