#include "trie/updatable_trie.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::trie {

UpdatableTrie::UpdatableTrie(const net::RoutingTable& table) {
  nodes_.push_back(Node{});
  live_nodes_ = 1;
  nodes_per_depth_[0] = 1;
  for (const net::Route& route : table.routes()) {
    announce(route);
  }
}

NodeIndex UpdatableTrie::allocate(unsigned depth) {
  NodeIndex index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    nodes_[index] = Node{};
  } else {
    index = checked_node_index(nodes_.size(), "updatable trie");
    nodes_.push_back(Node{});
  }
  ++live_nodes_;
  ++nodes_per_depth_[depth];
  return index;
}

void UpdatableTrie::release(NodeIndex index, unsigned depth) {
  free_list_.push_back(index);
  --live_nodes_;
  --nodes_per_depth_[depth];
}

UpdateCost UpdatableTrie::apply(const net::RouteUpdate& update) {
  switch (update.kind) {
    case net::RouteUpdate::Kind::kAnnounce:
      return do_announce(update.route);
    case net::RouteUpdate::Kind::kWithdraw:
      return do_withdraw(update.route.prefix);
  }
  return {};
}

UpdateCost UpdatableTrie::do_announce(const net::Route& route) {
  VR_REQUIRE(route.next_hop != net::kNoRoute,
             "announce requires a real next hop");
  UpdateCost cost;
  NodeIndex current = 0;
  for (unsigned depth = 0; depth < route.prefix.length(); ++depth) {
    const bool go_right = route.prefix.bit(depth);
    NodeIndex& child =
        go_right ? nodes_[current].right : nodes_[current].left;
    if (child == kNullNode) {
      const NodeIndex fresh = allocate(depth + 1);
      // allocate() may reallocate nodes_, invalidating `child`.
      NodeIndex& slot =
          go_right ? nodes_[current].right : nodes_[current].left;
      slot = fresh;
      ++cost.nodes_created;
      // Writing the parent's pointer word plus the fresh node's word.
      cost.words_written += 2;
    }
    current = go_right ? nodes_[current].right : nodes_[current].left;
  }
  Node& target = nodes_[current];
  if (target.next_hop != route.next_hop) {
    const bool fresh_route = target.next_hop == net::kNoRoute;
    target.next_hop = route.next_hop;
    if (fresh_route) ++route_count_;
    if (cost.nodes_created == 0 || !fresh_route) {
      // Created nodes were already counted; an in-place NHI change is one
      // extra word.
      ++cost.words_written;
    }
  }
  cost.max_depth_touched = route.prefix.length();
  return cost;
}

UpdateCost UpdatableTrie::do_withdraw(const net::Prefix& prefix) {
  UpdateCost cost;
  // Walk down recording the path.
  std::vector<NodeIndex> path{0};
  NodeIndex current = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const Node& node = nodes_[current];
    const NodeIndex child = prefix.bit(depth) ? node.right : node.left;
    if (child == kNullNode) return cost;  // prefix not present: no-op
    current = child;
    path.push_back(current);
  }
  if (nodes_[current].next_hop == net::kNoRoute) return cost;  // no route
  nodes_[current].next_hop = net::kNoRoute;
  --route_count_;
  ++cost.words_written;
  cost.max_depth_touched = prefix.length();

  // Prune now-useless leaves (no route, no children) bottom-up.
  for (std::size_t i = path.size(); i-- > 1;) {
    const NodeIndex index = path[i];
    const Node& node = nodes_[index];
    if (!node.is_leaf() || node.next_hop != net::kNoRoute) break;
    const NodeIndex parent = path[i - 1];
    if (nodes_[parent].left == index) {
      nodes_[parent].left = kNullNode;
    } else {
      nodes_[parent].right = kNullNode;
    }
    release(index, static_cast<unsigned>(i));
    ++cost.nodes_removed;
    ++cost.words_written;  // parent pointer word rewrite
  }
  return cost;
}

std::optional<net::NextHop> UpdatableTrie::lookup(net::Ipv4 addr) const {
  std::optional<net::NextHop> best;
  NodeIndex current = 0;
  for (unsigned depth = 0;; ++depth) {
    const Node& node = nodes_[current];
    if (node.next_hop != net::kNoRoute) best = node.next_hop;
    if (depth >= 32) break;
    const NodeIndex child =
        bit_at(addr.value(), depth) ? node.right : node.left;
    if (child == kNullNode) break;
    current = child;
  }
  return best;
}

net::RoutingTable UpdatableTrie::to_table() const {
  std::vector<net::Route> routes;
  routes.reserve(route_count_);
  // Iterative DFS reconstructing prefixes from paths.
  struct Frame {
    NodeIndex node;
    std::uint32_t bits;
    unsigned depth;
  };
  std::vector<Frame> stack{{0, 0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    if (node.next_hop != net::kNoRoute) {
      routes.push_back(net::Route{
          net::Prefix(net::Ipv4(frame.bits), frame.depth), node.next_hop});
    }
    if (frame.depth < 32) {
      if (node.left != kNullNode) {
        stack.push_back(Frame{node.left, frame.bits, frame.depth + 1});
      }
      if (node.right != kNullNode) {
        stack.push_back(Frame{
            node.right,
            frame.bits | (std::uint32_t{1} << (31u - frame.depth)),
            frame.depth + 1});
      }
    }
  }
  return net::RoutingTable(std::move(routes));
}

UpdateCost apply_all(UpdatableTrie& trie,
                     const std::vector<net::RouteUpdate>& updates) {
  UpdateCost total;
  for (const net::RouteUpdate& update : updates) {
    total += trie.apply(update);
  }
  return total;
}

}  // namespace vr::trie
