// Per-stage, per-VN dataplane activity: the discrete-event record the
// activity-driven power backend charges (DESIGN.md §13). The paper's
// dynamic power scales every stage by one utilization scalar µ_i (Eqs.
// 2/5); hornet's Orion integration shows the stronger model — count the
// events a packet actually causes (buffer reads/writes, lookup-stage
// accesses, crossbar traversals, arbiter decisions, header rewrites) and
// charge per-event energy. This struct is the contract between the
// dataplane, which counts, and power::ActivityModel, which charges: pure
// data, no dependencies above common/, so every layer can link it.
#pragma once

#include <cstdint>
#include <vector>

namespace vr::power {

/// Event counts of one end-to-end dataplane run, resolved per virtual
/// network (and, for the lookup pipeline, per stage). Filled by
/// dataplane::run_full_router; consumed by power::ActivityModel.
struct ActivityCounters {
  ActivityCounters() = default;
  ActivityCounters(std::size_t vn_count, std::size_t stage_count);

  /// Cycles the counters cover (the run's simulated duration).
  std::uint64_t cycles = 0;

  // Per-VN event counts, indexed by VNID. ----------------------------------
  /// Headers the ingress parser processed (every arriving frame pays the
  /// parse, accepted or dropped).
  std::vector<std::uint64_t> parser_headers;
  /// Packet writes into a queue (lookup backlog, egress queues).
  std::vector<std::uint64_t> buffer_writes;
  /// Packet reads out of a queue (backlog drain, egress transmit).
  std::vector<std::uint64_t> buffer_reads;
  /// Ingress-to-egress-port fabric traversals (one per forwarded packet).
  std::vector<std::uint64_t> crossbar_traversals;
  /// DRR grant decisions (the egress arbiter electing a VN's queue).
  std::vector<std::uint64_t> arbiter_decisions;
  /// Candidate queues the arbiters *examined* while deciding — the
  /// comparator work behind each grant. Always >= arbiter_decisions;
  /// the gap is the contention the grant count alone cannot see.
  std::vector<std::uint64_t> arbiter_comparisons;
  /// Header rewrites by the editor (TTL decrement + checksum update).
  std::vector<std::uint64_t> editor_rewrites;

  // Per-(VN, stage) lookup-pipeline counts, VN-major. ----------------------
  /// Cycles stage s clocked a valid packet of VN v ([v * stages + s]).
  std::vector<std::uint64_t> stage_busy;
  /// Cycles stage s performed a memory read for VN v (a live traversal;
  /// terminated traversals carry their result without reading).
  std::vector<std::uint64_t> stage_reads;

  [[nodiscard]] std::size_t vn_count() const noexcept {
    return parser_headers.size();
  }
  [[nodiscard]] std::size_t stage_count() const noexcept {
    return parser_headers.empty() ? 0
                                  : stage_busy.size() / parser_headers.size();
  }

  [[nodiscard]] std::uint64_t& busy(std::size_t vn, std::size_t stage) {
    return stage_busy[vn * stage_count() + stage];
  }
  [[nodiscard]] std::uint64_t busy(std::size_t vn,
                                   std::size_t stage) const noexcept {
    return stage_busy[vn * stage_count() + stage];
  }
  [[nodiscard]] std::uint64_t& reads(std::size_t vn, std::size_t stage) {
    return stage_reads[vn * stage_count() + stage];
  }
  [[nodiscard]] std::uint64_t reads(std::size_t vn,
                                    std::size_t stage) const noexcept {
    return stage_reads[vn * stage_count() + stage];
  }

  /// Folds another run's counts into this one (element-wise sum; cycles
  /// add, modelling consecutive or sharded windows). Shapes must match.
  void merge(const ActivityCounters& other);

  /// Sum of one per-VN event vector (helper for reports).
  [[nodiscard]] static std::uint64_t total(
      const std::vector<std::uint64_t>& per_vn) noexcept;
};

}  // namespace vr::power
