# Empty dependencies file for ablation_table_spread.
# This may be replaced when dependencies are built.
