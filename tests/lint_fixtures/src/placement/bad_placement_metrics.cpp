// Fixture: metrics check over the placement namespace. Expected: one
// finding (a typo'd counter name); the manifest-listed name is clean.

namespace vr::obs {

class Registry;

void fixture_register_placement(Registry& obs_registry) {
  obs_registry.counter("placement.accepted");    // in the manifest: clean
  obs_registry.counter("placement.typo_total");  // FINDING: unlisted
}

}  // namespace vr::obs
