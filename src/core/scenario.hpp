// Scenario: a complete description of one virtual-router deployment to be
// power-analyzed — the tuple the paper varies across its evaluation
// (scheme, K, α, speed grade, pipeline depth, table profile, utilization).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "netbase/table_gen.hpp"
#include "power/scheme.hpp"
#include "virt/overlap_model.hpp"

namespace vr::core {

/// How the merged trie's size is obtained.
enum class MergedSource {
  /// Closed-form overlap model at `alpha` (the paper's parametric mode).
  kAnalyticAlpha,
  /// Build K correlated tables targeting `alpha`, structurally merge them
  /// and measure (slower; used for validation and the table-driven benches).
  kStructural,
};

struct Scenario {
  power::Scheme scheme = power::Scheme::kSeparate;
  std::size_t vn_count = 4;  ///< K
  fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;
  fpga::BramPolicy bram_policy = fpga::BramPolicy::kMixed;
  std::size_t stages = 28;  ///< N (Sec. VI: all pipelines 28 stages)

  /// Operating clock; 0 = run at the post-PnR achievable Fmax.
  units::Megahertz freq_mhz{0.0};

  /// Merging efficiency for the merged scheme.
  double alpha = 0.8;
  MergedSource merged_source = MergedSource::kAnalyticAlpha;
  virt::MergedMemoryRule merged_rule =
      virt::MergedMemoryRule::kOverlapConsistent;

  /// Routing-table profile for the representative per-VN table
  /// (Assumption 2: all VNs equal).
  net::TableProfile table_profile = net::TableProfile::edge_default();
  std::uint64_t seed = 1;
  bool leaf_push = true;  ///< deploy leaf-pushed tries (Sec. V-D)

  /// Assumption 2 relaxation: per-VN table sizes are spread geometrically
  /// around the profile's prefix_count by this factor (0 = all equal;
  /// 0.5 = VN sizes range over roughly [2/3, 3/2] of the nominal count).
  /// Only NV/VS use per-VN engines; the merged scheme keeps the
  /// α-parameterized aggregate.
  double table_size_spread = 0.0;

  /// Per-VN utilizations µ_i; empty = uniform 1/K (Assumption 1).
  std::vector<double> utilization;

  [[nodiscard]] std::string describe() const;
};

}  // namespace vr::core
