#include "fpga/xpe_tables.hpp"

#include "common/units.hpp"

namespace vr::fpga {

const char* to_string(BramKind kind) noexcept {
  switch (kind) {
    case BramKind::k18:
      return "18Kb";
    case BramKind::k36:
      return "36Kb";
  }
  return "?";
}

std::uint64_t bram_capacity_bits(BramKind kind) noexcept {
  switch (kind) {
    case BramKind::k18:
      return 18 * 1024;
    case BramKind::k36:
      return 36 * 1024;
  }
  return 0;
}

units::PjPerCycle XpeTables::bram_uw_per_mhz(BramKind kind,
                                             SpeedGrade grade) noexcept {
  switch (grade) {
    case SpeedGrade::kMinus2:
      return units::PjPerCycle{kind == BramKind::k18 ? 13.65 : 24.60};
    case SpeedGrade::kMinus1L:
      return units::PjPerCycle{kind == BramKind::k18 ? 11.00 : 19.70};
  }
  return units::PjPerCycle{0.0};
}

units::Watts XpeTables::bram_power_w(BramKind kind, SpeedGrade grade,
                                     std::uint64_t blocks,
                                     units::Megahertz freq_mhz) noexcept {
  return units::to_watts(static_cast<double>(blocks) *
                         bram_uw_per_mhz(kind, grade) * freq_mhz);
}

units::PjPerCycle XpeTables::logic_stage_uw_per_mhz(
    SpeedGrade grade) noexcept {
  switch (grade) {
    case SpeedGrade::kMinus2:
      return units::PjPerCycle{5.180};
    case SpeedGrade::kMinus1L:
      return units::PjPerCycle{3.937};
  }
  return units::PjPerCycle{0.0};
}

units::Watts XpeTables::logic_power_w(SpeedGrade grade, std::size_t stages,
                                      units::Megahertz freq_mhz) noexcept {
  return units::to_watts(static_cast<double>(stages) *
                         logic_stage_uw_per_mhz(grade) * freq_mhz);
}

}  // namespace vr::fpga
