// Uni-bit trie over IPv6 prefixes — the 128-bit counterpart of
// trie::UnibitTrie, used by the IPv6 scaling study (`extension_ipv6`).
// Kept structurally identical so the paper's per-stage power model applies
// unchanged: one trie level per pipeline stage, leaf pushing optional.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ipv6/ipv6.hpp"
#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::ipv6 {

/// Reuses trie::TrieNode (child indices + next hop); only the traversal
/// key width differs.
class UnibitTrie6 {
 public:
  explicit UnibitTrie6(const RoutingTable6& table);

  [[nodiscard]] std::optional<net::NextHop> lookup(const Ipv6& addr) const;

  /// Leaf pushing, exactly as in the IPv4 trie.
  [[nodiscard]] UnibitTrie6 leaf_pushed() const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned height() const noexcept {
    return static_cast<unsigned>(level_offsets_.size() - 2);
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const trie::TrieNode> nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::span<const std::size_t> level_offsets() const noexcept {
    return level_offsets_;
  }

  /// Per-level node counts split into internal/leaf (feeds the stage
  /// memory model with the same shapes the IPv4 path uses).
  [[nodiscard]] trie::TrieStats stats() const;

 private:
  UnibitTrie6() = default;
  void canonicalize();

  std::vector<trie::TrieNode> nodes_;
  std::vector<std::size_t> level_offsets_;
};

/// Synthetic IPv6 edge-table generation: prefixes under a handful of
/// provider /32 allocations, lengths concentrated at /48 (delegations)
/// and /64 (subnets), with nesting.
struct TableProfile6 {
  std::size_t prefix_count = 3725;
  std::size_t provider_blocks = 6;
  unsigned provider_block_length = 32;
  unsigned min_length = 40;
  /// Weights for lengths min_length..min_length+len(weights)-1 step 4:
  /// /40 /44 /48 /52 /56 /60 /64
  std::vector<double> length_weights = {2.0, 3.0, 30.0, 4.0,
                                        6.0, 8.0, 47.0};
  std::uint64_t density_span = 8192;
  double nested_fraction = 0.25;
  net::NextHop next_hop_count = 16;
};

class SyntheticTableGenerator6 {
 public:
  explicit SyntheticTableGenerator6(TableProfile6 profile);
  [[nodiscard]] RoutingTable6 generate(std::uint64_t seed) const;

 private:
  TableProfile6 profile_;
};

}  // namespace vr::ipv6
