// Regenerates paper Fig. 7: percentage error of the analytical model
// against the (simulated) post place-and-route results, per scheme and
// speed grade. The paper reports a ±3 % maximum; the run prints the
// observed maximum at the end.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options(argc, argv));
  double worst = 0.0;
  for (const auto grade :
       {fpga::SpeedGrade::kMinus2, fpga::SpeedGrade::kMinus1L}) {
    const SeriesTable fig = builder.fig7_model_error(grade);
    bench::emit(fig);
    for (std::size_t s = 0; s < fig.labels().size(); ++s) {
      for (const double err : fig.series(s)) {
        worst = std::max(worst, std::fabs(err));
      }
    }
  }
  std::cout << "max |error| over the sweep: " << worst
            << " % (paper bound: 3 %)\n";
  return worst <= 3.0 ? 0 : 1;
}
