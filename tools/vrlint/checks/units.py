"""units — naked ``double``s must not carry a physical dimension.

Absorbed from the pre-vrlint ``tools/check_units.py`` (PR 2/PR 4), rules
unchanged:

1. Typed boundary (headers of src/{power,core,fpga,pipeline,multipipe,
   tcam,obs}): no naked-``double`` parameter/member/return with a
   dimensioned name — use the strong quantity types from
   ``common/units.hpp``.
2. Typed return types (.cpp of the same layers): a function definition
   returning naked ``double`` with a dimensioned name is a boundary
   leak even in the implementation file.
3. Suffix convention (everything else under src/): a dimensioned
   ``double`` must spell its unit as a suffix (``power_w``,
   ``freq_mhz``, ...).

Escape: ``// units-ok: <reason>`` on the same or preceding line.
"""

from __future__ import annotations

import re
from typing import Iterable

import core

TYPED_DIRS = {"power", "core", "fpga", "pipeline", "multipipe", "tcam", "obs"}

DIMENSIONED = re.compile(
    r"(?:^|_)(power|freq|frequency|energy|watt|watts|throughput|"
    r"duration|latency|elapsed)(?:_|$)|"
    r"_(w|mw|uw|mhz|ghz|pj|gbps|mbps|bits|kbits|joules)$"
)
SUFFIX_OK = re.compile(
    r"_(w|mw|uw|mhz|ghz|hz|j|pj|pj_per_cycle|gbps|mbps|bits|kbits|bytes|"
    r"pct|percent|ns|us|ms|s|seconds|per_second|per_cycle|per_mhz)$"
)
UNIT_WORDS = {
    "watts", "milliwatts", "microwatts", "megahertz", "picojoules",
    "cycles", "gbps", "coefficient", "packet_bytes",
}
DOUBLE_DECL = re.compile(r"\bdouble\s+(?:&\s*)?([A-Za-z_][A-Za-z0-9_]*)")
RETURN_DECL = re.compile(
    r"\bdouble\s+(?:[A-Za-z_][A-Za-z0-9_]*::)*([A-Za-z_][A-Za-z0-9_]*)\s*\("
)


@core.register
class UnitsCheck(core.Check):
    name = "units"
    description = ("dimensioned doubles use units:: quantity types in "
                   "typed layers and unit suffixes elsewhere")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        for f in tree.in_dirs("src"):
            typed = f.src_subdir in TYPED_DIRS
            # units.hpp itself defines the raw conversion helpers.
            if f.rel == "src/common/units.hpp":
                typed = False
            if typed:
                mode = "typed-header" if f.is_header else "typed-impl"
            else:
                mode = "suffix"
            yield from self._lint(f, mode)

    def _lint(self, f: core.SourceFile,
              mode: str) -> Iterable[core.Finding]:
        for i, raw in enumerate(f.lines):
            if f.suppressed(i, "units-ok"):
                continue
            code = core.strip_comment(raw)
            return_names = {m.group(1) for m in RETURN_DECL.finditer(code)}
            for m in DOUBLE_DECL.finditer(code):
                ident = m.group(1)
                if ident in UNIT_WORDS or not DIMENSIONED.search(ident):
                    continue
                typed_violation = mode == "typed-header" or (
                    mode == "typed-impl" and ident in return_names)
                if typed_violation:
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        f"naked-double dimensioned quantity '{ident}' in a "
                        f"typed layer — use a units:: quantity type (or "
                        f"annotate '// units-ok: <reason>')")
                elif not SUFFIX_OK.search(ident):
                    yield core.Finding(
                        self.name, f.rel, i + 1,
                        f"dimensioned double '{ident}' has no unit suffix "
                        f"(expected e.g. '{ident}_w', '{ident}_mhz')")
