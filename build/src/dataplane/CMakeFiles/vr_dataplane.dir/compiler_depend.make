# Empty compiler generated dependencies file for vr_dataplane.
# This may be replaced when dependencies are built.
