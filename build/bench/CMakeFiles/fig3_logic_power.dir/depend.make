# Empty dependencies file for fig3_logic_power.
# This may be replaced when dependencies are built.
