// vrpower_report — command-line front end to the estimator/validator:
// describe a deployment on the command line, get the full power report
// (analytical model, simulated post-PnR experiment, error, resources,
// efficiency).
//
// Usage:
//   vrpower_report [--scheme nv|vs|vm] [--vns K] [--grade -2|-1L]
//                  [--alpha F] [--freq MHZ] [--stages N]
//                  [--prefixes P] [--seed S] [--structural]
//
// Example: ./build/examples/vrpower_report --scheme vm --vns 12 --alpha 0.3
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/validator.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--scheme nv|vs|vm] [--vns K] [--grade -2|-1L] [--alpha F]\n"
         "       [--freq MHZ] [--stages N] [--prefixes P] [--seed S]\n"
         "       [--structural]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vr;
  core::Scenario scenario;
  scenario.scheme = power::Scheme::kSeparate;
  scenario.vn_count = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scheme") {
      const std::string v = need_value();
      if (v == "nv") {
        scenario.scheme = power::Scheme::kNonVirtualized;
      } else if (v == "vs") {
        scenario.scheme = power::Scheme::kSeparate;
      } else if (v == "vm") {
        scenario.scheme = power::Scheme::kMerged;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--vns") {
      scenario.vn_count = std::strtoul(need_value(), nullptr, 10);
      if (scenario.vn_count == 0) usage(argv[0]);
    } else if (arg == "--grade") {
      const std::string v = need_value();
      if (v == "-2") {
        scenario.grade = fpga::SpeedGrade::kMinus2;
      } else if (v == "-1L" || v == "-1l") {
        scenario.grade = fpga::SpeedGrade::kMinus1L;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--alpha") {
      scenario.alpha = std::strtod(need_value(), nullptr);
      if (scenario.alpha < 0.0 || scenario.alpha > 1.0) usage(argv[0]);
    } else if (arg == "--freq") {
      scenario.freq_mhz =
          units::Megahertz{std::strtod(need_value(), nullptr)};
    } else if (arg == "--stages") {
      scenario.stages = std::strtoul(need_value(), nullptr, 10);
      if (scenario.stages == 0) usage(argv[0]);
    } else if (arg == "--prefixes") {
      scenario.table_profile.prefix_count =
          std::strtoul(need_value(), nullptr, 10);
      if (scenario.table_profile.prefix_count == 0) usage(argv[0]);
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(need_value(), nullptr, 10);
    } else if (arg == "--structural") {
      scenario.merged_source = core::MergedSource::kStructural;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    }
  }

  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const core::ModelValidator validator(device);
  try {
    const core::ValidationPoint point = validator.validate(scenario);

    std::cout << "Scenario: " << scenario.describe() << "\n";
    std::cout << "Device:   " << device.name << "\n\n";

    TextTable table("Power report");
    table.set_header({"quantity", "model", "experimental"});
    table.add_row({"static W",
                   TextTable::num(point.model.power.static_w.value(), 3),
                   TextTable::num(point.experiment.power.static_w.value(),
                                  3)});
    table.add_row({"logic W",
                   TextTable::num(point.model.power.logic_w.value(), 4),
                   TextTable::num(point.experiment.power.logic_w.value(),
                                  4)});
    table.add_row({"memory W",
                   TextTable::num(point.model.power.memory_w.value(), 4),
                   TextTable::num(point.experiment.power.memory_w.value(),
                                  4)});
    table.add_row({"total W",
                   TextTable::num(point.model.power.total_w().value(), 3),
                   TextTable::num(point.experiment.power.total_w().value(),
                                  3)});
    table.add_row({"error %", TextTable::num(point.error_total_pct, 2), "-"});
    table.add_row({"clock MHz",
                   TextTable::num(point.model.freq_mhz.value(), 1),
                   TextTable::num(point.experiment.freq_mhz.value(), 1)});
    table.add_row({"throughput Gbps",
                   TextTable::num(point.model.throughput_gbps.value(), 1),
                   TextTable::num(point.experiment.throughput_gbps.value(),
                                  1)});
    table.add_row({"mW/Gbps",
                   TextTable::num(point.model.mw_per_gbps.value(), 2),
                   TextTable::num(point.experiment.mw_per_gbps.value(),
                                  2)});
    table.render(std::cout);

    const auto& r = point.model.resources;
    std::cout << "\nResources: " << r.devices << " device(s), " << r.engines
              << " engine(s), " << r.stages_per_engine << " stages each; "
              << TextTable::num(units::bits_to_kbits(r.pointer_bits), 1)
              << " Kb pointer + "
              << TextTable::num(units::bits_to_kbits(r.nhi_bits), 1)
              << " Kb NHI memory; "
              << r.bram_per_device.total.halves()
              << " BRAM halves on the busiest device; " << r.io_pins
              << " I/O pins.\n";
    std::cout << "Fits device: " << (point.model.fit.fits ? "yes" : "NO")
              << (point.model.fit.io_ok ? "" : " (I/O pins exceeded)")
              << (point.model.fit.bram_ok ? "" : " (BRAM exceeded)")
              << (point.model.fit.luts_ok ? "" : " (LUTs exceeded)")
              << "\n";
    if (scenario.scheme == power::Scheme::kMerged) {
      std::cout << "Merging efficiency used: "
                << TextTable::num(point.model.alpha_used, 3) << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
