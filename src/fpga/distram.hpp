// Distributed (LUT) RAM model — the alternative on-chip memory the paper
// sets aside ("for simplicity, we assume only BRAM is used", Sec. V-B).
// Virtex-6 6-input LUTs configure as 64-bit RAMs; distributed RAM has no
// block-granularity floor, so it beats BRAM for the tiny memories of the
// top trie levels, while its per-bit dynamic cost overtakes BRAM's
// block-amortized cost for large stages. The `ablation_memory_tech` bench
// quantifies how much the paper's simplification leaves on the table.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"

namespace vr::fpga {

/// Calibration of the distributed-RAM power model:
///   P(M) = (base + per_kbit * M/1Kb) * f   [µW, f in MHz]
/// With the defaults, distRAM beats one 18 Kb BRAM block below ~11 Kbit
/// and loses beyond it — the crossover that makes hybrid mapping useful.
struct DistRamParams {
  /// Addressing/control overhead, µW per MHz.
  double base_uw_per_mhz = 0.4;  // units-ok: µW/MHz calibration scalar
  /// Per-Kbit read power, µW per MHz per Kbit (a compound coefficient the
  /// quantity system does not model; the formula above fixes its meaning).
  double per_kbit_uw_per_mhz = 1.2;  // units-ok: µW/MHz/Kbit calibration
  unsigned bits_per_lut = 64;        ///< Virtex-6 LUT-RAM capacity
};

/// Dynamic power of an `bits`-bit distributed RAM at `freq_mhz`.
[[nodiscard]] units::Watts distram_power_w(std::uint64_t bits,
                                           units::Megahertz freq_mhz,
                                           const DistRamParams& params = {});

/// LUTs consumed by an `bits`-bit distributed RAM.
[[nodiscard]] std::uint64_t distram_luts(std::uint64_t bits,
                                         const DistRamParams& params = {});

/// Memory technology choice per pipeline stage.
enum class MemoryTech {
  kBram,     ///< the paper's assumption: block RAM regardless of size
  kDistRam,  ///< LUT RAM
};

/// One stage's memory decision under the hybrid policy.
struct StageMemoryChoice {
  MemoryTech tech = MemoryTech::kBram;
  units::Watts power_w;
  std::uint64_t luts = 0;
  std::uint64_t bram_halves = 0;
};

/// Picks the cheaper technology for one stage at the operating point.
[[nodiscard]] StageMemoryChoice choose_stage_memory(
    std::uint64_t bits, SpeedGrade grade, units::Megahertz freq_mhz,
    BramPolicy bram_policy = BramPolicy::kMixed,
    const DistRamParams& params = {});

/// Bit-size below which distRAM wins at any frequency (the technologies'
/// power ratio is frequency-independent since both are linear in f).
[[nodiscard]] std::uint64_t distram_crossover_bits(
    SpeedGrade grade, BramPolicy bram_policy = BramPolicy::kMixed,
    const DistRamParams& params = {});

}  // namespace vr::fpga
