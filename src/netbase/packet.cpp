#include "netbase/packet.hpp"

namespace vr::net {

namespace {

void put_u16(std::uint8_t* out, std::uint16_t value) {
  out[0] = static_cast<std::uint8_t>(value >> 8);
  out[1] = static_cast<std::uint8_t>(value & 0xff);
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value & 0xff);
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>((in[0] << 8) | in[1]);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += get_u16(bytes.data() + i);
  }
  if (i < bytes.size()) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::array<std::uint8_t, Ipv4Header::kSize> Ipv4Header::serialize() const {
  std::array<std::uint8_t, kSize> out{};
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp;
  put_u16(&out[2], total_length);
  put_u16(&out[4], identification);
  put_u16(&out[6], 0);  // flags/fragment offset: not modelled
  out[8] = ttl;
  out[9] = protocol;
  put_u16(&out[10], checksum);
  put_u32(&out[12], source.value());
  put_u32(&out[16], destination.value());
  return out;
}

std::uint16_t Ipv4Header::compute_checksum() const {
  Ipv4Header zeroed = *this;
  zeroed.checksum = 0;
  const auto bytes = zeroed.serialize();
  return internet_checksum(bytes);
}

std::array<std::uint8_t, Ipv4Header::kSize>
Ipv4Header::serialize_with_checksum() const {
  Ipv4Header filled = *this;
  filled.checksum = filled.compute_checksum();
  return filled.serialize();
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  if (bytes[0] != 0x45) return std::nullopt;  // only version 4, IHL 5
  Ipv4Header header;
  header.dscp = bytes[1];
  header.total_length = get_u16(bytes.data() + 2);
  header.identification = get_u16(bytes.data() + 4);
  header.ttl = bytes[8];
  header.protocol = bytes[9];
  header.checksum = get_u16(bytes.data() + 10);
  header.source = Ipv4(get_u32(bytes.data() + 12));
  header.destination = Ipv4(get_u32(bytes.data() + 16));
  if (header.total_length < kSize) return std::nullopt;
  return header;
}

bool Ipv4Header::decrement_ttl() {
  if (ttl == 0) return false;
  // RFC 1624 incremental update: HC' = ~(~HC + ~m + m'), where the changed
  // 16-bit field is the (TTL, protocol) word.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((ttl << 8) | protocol);
  --ttl;
  const std::uint16_t new_word =
      static_cast<std::uint16_t>((ttl << 8) | protocol);
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum & 0xffff);
  sum += static_cast<std::uint16_t>(~old_word & 0xffff);
  sum += new_word;
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  checksum = static_cast<std::uint16_t>(~sum & 0xffff);
  return true;
}

}  // namespace vr::net
