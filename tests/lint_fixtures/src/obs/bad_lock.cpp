#include "bad_lock.hpp"

namespace vr::obs {

void FixtureGuarded::bump_unlocked_bug() {
  counter_ += 1;  // FINDING: no lock taken, no _locked contract
}

void FixtureGuarded::bump_properly() {
  const std::lock_guard<std::mutex> lock(mu_);
  counter_ += 1;
}

std::int64_t FixtureGuarded::total_locked() const { return counter_; }

}  // namespace vr::obs
