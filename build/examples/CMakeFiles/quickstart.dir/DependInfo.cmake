
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/vr_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/vr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vr_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/vr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
