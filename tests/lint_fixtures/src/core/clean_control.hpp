// Fixture: clean control — the same shapes as the bad fixtures, in their
// compliant form. Expected: no findings. Guards the selftest against
// checks "passing" by firing on everything.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace vr::core {

class CleanControl {
 public:
  void record(std::uint64_t value);
  [[nodiscard]] std::uint64_t total() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> history_;  // guarded_by(mu_)
  double utilization_ = 0.0;  // dimensionless: no unit type needed
};

}  // namespace vr::core
