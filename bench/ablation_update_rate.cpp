// Ablation: control-plane update rate (extends the paper's Sec. V-B 1 %
// write-rate assumption and its reference [6]). Replays BGP-like update
// streams on the deployment trie to measure the real words-written-per-
// update, then sweeps updates/second to show (a) the BRAM power shift away
// from the Table III baseline and (b) the lookup capacity lost to write
// slots.
#include "bench_common.hpp"
#include "fpga/xpe_tables.hpp"
#include "netbase/update_gen.hpp"
#include "power/update_power.hpp"
#include "trie/trie_stats.hpp"

int main() {
  using namespace vr;
  constexpr units::Megahertz kFreq{350.0};

  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable base = gen.generate(1);

  net::UpdateStreamConfig stream_config;
  stream_config.update_count = 5000;
  const net::UpdateStreamGenerator stream_gen(stream_config);
  const auto stream = stream_gen.generate(base, 7);
  power::UpdateLoad probe = power::measure_update_load(base, stream, 1.0);
  std::cout << "Measured words written per update (5000-update BGP-like "
               "stream): "
            << TextTable::num(probe.words_per_update, 2) << "\n\n";

  // Baseline Table III BRAM power of the deployment (one engine).
  const trie::UnibitTrie trie = trie::UnibitTrie(base).leaf_pushed();
  const trie::TrieStats stats = trie::compute_stats(trie);
  const trie::StageMapping mapping(stats.nodes_per_level.size(), 28,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, 1);
  std::vector<std::uint64_t> stage_bits;
  for (std::size_t s = 0; s < 28; ++s) {
    stage_bits.push_back(memory.stage_bits(s));
  }
  const double bram_w =
      fpga::plan_stage_bram(stage_bits, fpga::BramPolicy::kMixed)
          .total.power_w(fpga::SpeedGrade::kMinus2, kFreq)
          .value();

  SeriesTable table(
      "Ablation - update rate: BRAM power shift and capacity loss "
      "(grade -2, 350 MHz)",
      "updates_per_sec",
      {"write rate", "BRAM mW (Table III)", "BRAM mW (adjusted)",
       "lookup Gbps", "capacity loss %"});
  for (const double ups : {0.0, 1e3, 1e4, 1e5, 1e6, 5e6, 1e7}) {
    power::UpdateLoad load = probe;
    load.updates_per_second = ups;
    const double write_rate = load.write_slot_fraction(kFreq);
    const double adjusted =
        power::adjusted_bram_power_w(units::Watts{bram_w},
                                     std::min(1.0, write_rate))
            .value();
    const double gbps = power::effective_lookup_gbps(kFreq, load).value();
    const double full =
        units::lookup_throughput(kFreq, units::kMinPacketBytes).value();
    table.add_point(ups, {write_rate, units::w_to_mw(bram_w),
                          units::w_to_mw(adjusted), gbps,
                          (1.0 - gbps / full) * 100.0});
  }
  vr::bench::emit(table);
  std::cout << "At BGP-realistic rates (<= ~100k updates/s) the write rate\n"
               "stays below the paper's 1% assumption and both the power\n"
               "and throughput effects are negligible, validating\n"
               "Assumption 'low update rate' (Sec. V-B).\n";
  return 0;
}
