file(REMOVE_RECURSE
  "libvr_multipipe.a"
)
