file(REMOVE_RECURSE
  "CMakeFiles/baseline_green_multipipeline.dir/baseline_green_multipipeline.cpp.o"
  "CMakeFiles/baseline_green_multipipeline.dir/baseline_green_multipipeline.cpp.o.d"
  "baseline_green_multipipeline"
  "baseline_green_multipipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_green_multipipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
