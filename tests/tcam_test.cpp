#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "tcam/tcam.hpp"
#include "tcam/tcam_power.hpp"

namespace vr::tcam {
namespace {

using net::Ipv4;
using net::Prefix;
using net::RoutingTable;

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 500) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

// ------------------------------------------------------------- flat TCAM --

TEST(FlatTcamTest, EntriesAreLongestFirst) {
  const FlatTcam tcam(gen_table(1));
  const auto& entries = tcam.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].prefix_length, entries[i].prefix_length);
  }
}

TEST(FlatTcamTest, SearchEqualsTableOracle) {
  const RoutingTable table = gen_table(2);
  const FlatTcam tcam(table);
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(tcam.search(addr), table.lookup(addr));
  }
}

TEST(FlatTcamTest, AllEntriesTriggeredPerSearch) {
  const FlatTcam tcam(gen_table(3));
  EXPECT_EQ(tcam.entries_triggered_per_search(), tcam.entry_count());
  EXPECT_EQ(tcam.entry_count(), 500u);
}

TEST(FlatTcamTest, EmptyTable) {
  const FlatTcam tcam((RoutingTable()));
  EXPECT_EQ(tcam.entry_count(), 0u);
  EXPECT_EQ(tcam.search(Ipv4(1, 2, 3, 4)), std::nullopt);
}

TEST(FlatTcamTest, DefaultRouteMatchesLast) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/0"), 1);
  table.add(*Prefix::parse("10.0.0.0/8"), 2);
  const FlatTcam tcam(table);
  EXPECT_EQ(tcam.search(Ipv4(10, 1, 1, 1)), 2);
  EXPECT_EQ(tcam.search(Ipv4(11, 1, 1, 1)), 1);
}

// ------------------------------------------------------ partitioned TCAM --

class PartitionedTcamProperty
    : public ::testing::TestWithParam<unsigned /*index_bits*/> {};

TEST_P(PartitionedTcamProperty, SearchEqualsFlat) {
  const RoutingTable table = gen_table(4);
  const FlatTcam flat(table);
  const PartitionedTcam partitioned(table, GetParam());
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(partitioned.search(addr), flat.search(addr));
  }
}

TEST_P(PartitionedTcamProperty, TriggersFewerEntriesThanFlat) {
  const RoutingTable table = gen_table(5);
  const FlatTcam flat(table);
  const PartitionedTcam partitioned(table, GetParam());
  EXPECT_LT(partitioned.entries_triggered_per_search(),
            flat.entries_triggered_per_search());
}

INSTANTIATE_TEST_SUITE_P(IndexBits, PartitionedTcamProperty,
                         ::testing::Values(2u, 4u, 6u, 8u));

TEST(PartitionedTcamTest, BankCountAndSelection) {
  const PartitionedTcam tcam(gen_table(6), 4);
  EXPECT_EQ(tcam.bank_count(), 16u);
  EXPECT_EQ(tcam.index_bits(), 4u);
}

TEST(PartitionedTcamTest, ShortPrefixesReplicate) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/1"), 1);  // covers 8 of 16 banks at /4
  const PartitionedTcam tcam(table, 4);
  EXPECT_EQ(tcam.entry_count(), 8u);
  EXPECT_GT(tcam.replication_factor(1), 1.0);
  // The replicated entry must match in every covered bank.
  EXPECT_EQ(tcam.search(Ipv4(0x10, 0, 0, 0)), 1);
  EXPECT_EQ(tcam.search(Ipv4(0x70, 0, 0, 0)), 1);
  EXPECT_EQ(tcam.search(Ipv4(0x90, 0, 0, 0)), std::nullopt);
}

TEST(PartitionedTcamTest, LongPrefixesLandInOneBank) {
  RoutingTable table;
  table.add(*Prefix::parse("192.0.2.0/24"), 3);
  const PartitionedTcam tcam(table, 8);
  EXPECT_EQ(tcam.entry_count(), 1u);
  EXPECT_EQ(tcam.bank(192).size(), 1u);
}

TEST(PartitionedTcamTest, RejectsBadIndexBits) {
  const RoutingTable table = gen_table(7, 50);
  EXPECT_DEATH(PartitionedTcam(table, 0), "index_bits");
  EXPECT_DEATH(PartitionedTcam(table, 13), "index_bits");
}

// ------------------------------------------------------------- power --

TEST(TcamPowerTest, DynamicScalesWithTriggeredEntries) {
  const TcamPowerReport full = tcam_power(1000, 1000);
  const TcamPowerReport banked = tcam_power(1000, 125);
  EXPECT_NEAR(full.dynamic_w / banked.dynamic_w, 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(full.static_w.value(),
                   banked.static_w.value());  // same stored bits
}

TEST(TcamPowerTest, MagnitudeMatchesLiterature) {
  // A 512K x 36b (18 Mbit-class) TCAM searching every entry at 150 MHz
  // lands in the ~15 W regime the paper's related work describes.
  const TcamPowerReport report = tcam_power(512 * 1024, 512 * 1024);
  EXPECT_GT(report.total_w().value(), 10.0);
  EXPECT_LT(report.total_w().value(), 25.0);
}

TEST(TcamPowerTest, PartitioningCutsMwPerGbps) {
  const RoutingTable table = gen_table(8, 2000);
  const FlatTcam flat(table);
  const PartitionedTcam banked(table, 6);
  const TcamPowerReport flat_power = tcam_power(flat);
  const TcamPowerReport banked_power = tcam_power(banked);
  EXPECT_LT(banked_power.dynamic_w, flat_power.dynamic_w);
  EXPECT_LT(banked_power.mw_per_gbps(), flat_power.mw_per_gbps());
}

TEST(TcamPowerTest, ThroughputFromClock) {
  TcamPowerParams params;
  params.clock_mhz = units::Megahertz{150.0};
  const TcamPowerReport report = tcam_power(100, 100, params);
  EXPECT_NEAR(report.throughput_gbps.value(), 48.0, 1e-9);  // 0.32 * 150
}

}  // namespace
}  // namespace vr::tcam
