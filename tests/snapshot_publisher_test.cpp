// SnapshotPublisher: correctness of the published images (every snapshot
// equals a from-scratch build of the control-plane table at that epoch),
// version/staleness accounting, and a reader/updater stress test that a
// thread-sanitizer build (VR_SANITIZE=thread) checks for races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/update_gen.hpp"
#include "trie/snapshot_publisher.hpp"
#include "trie/unibit_trie.hpp"
#include "trie/updatable_trie.hpp"

namespace vr::trie {
namespace {

using net::Ipv4;
using net::RoutingTable;
using net::RouteUpdate;

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 300) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

std::vector<RouteUpdate> gen_updates(const RoutingTable& base,
                                     std::size_t count, std::uint64_t seed) {
  net::UpdateStreamConfig config;
  config.update_count = count;
  return net::UpdateStreamGenerator(config).generate(base, seed);
}

TEST(SnapshotPublisherTest, InitialImageMatchesBaseTable) {
  const RoutingTable base = gen_table(1);
  const SnapshotPublisher publisher(base, /*stride=*/4);
  EXPECT_EQ(publisher.published_version(), 0u);
  EXPECT_EQ(publisher.route_count(), base.routes().size());
  const SnapshotPublisher::Snapshot snap = publisher.acquire();
  ASSERT_NE(snap.image, nullptr);
  EXPECT_EQ(snap.version, 0u);
  EXPECT_EQ(publisher.staleness_of(snap), 0u);
  const UnibitTrie oracle(base);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(snap.image->lookup(addr), oracle.lookup(addr));
  }
}

TEST(SnapshotPublisherTest, EveryEpochMatchesControlPlaneRebuild) {
  const RoutingTable base = gen_table(3);
  SnapshotPublisher publisher(base, /*stride=*/4);
  UpdatableTrie mirror(base);  // applies the same stream independently
  const std::vector<RouteUpdate> stream = gen_updates(base, 200, 5);
  constexpr std::size_t kBatch = 50;
  for (std::size_t b = 0; b < stream.size() / kBatch; ++b) {
    const std::span<const RouteUpdate> batch(stream.data() + b * kBatch,
                                             kBatch);
    const SnapshotPublisher::PublishReceipt receipt =
        publisher.apply_batch(batch);
    EXPECT_EQ(receipt.version, b + 1);
    EXPECT_EQ(receipt.updates_applied, kBatch);
    EXPECT_GE(receipt.apply_ns.value(), 0.0);
    EXPECT_GE(receipt.build_ns.value(), 0.0);
    EXPECT_GE(receipt.publish_ns.value(), 0.0);
    for (const RouteUpdate& update : batch) (void)mirror.apply(update);

    const SnapshotPublisher::Snapshot snap = publisher.acquire();
    EXPECT_EQ(snap.version, b + 1);
    EXPECT_EQ(publisher.published_version(), b + 1);
    EXPECT_EQ(publisher.route_count(), mirror.route_count());
    const FlatMultibitTrie rebuilt(mirror.to_table(), /*stride=*/4);
    Rng rng(b);
    for (int i = 0; i < 500; ++i) {
      const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
      EXPECT_EQ(snap.image->lookup(addr), rebuilt.lookup(addr));
    }
  }
}

TEST(SnapshotPublisherTest, HeldSnapshotSurvivesLaterPublishes) {
  const RoutingTable base = gen_table(7);
  SnapshotPublisher publisher(base, /*stride=*/8);
  const SnapshotPublisher::Snapshot old_snap = publisher.acquire();
  const UnibitTrie oracle(base);

  const std::vector<RouteUpdate> stream = gen_updates(base, 120, 9);
  for (std::size_t b = 0; b < 3; ++b) {
    (void)publisher.apply_batch(
        std::span<const RouteUpdate>(stream.data() + b * 40, 40));
  }
  EXPECT_EQ(publisher.published_version(), 3u);
  EXPECT_EQ(publisher.staleness_of(old_snap), 3u);
  EXPECT_EQ(publisher.staleness_of(publisher.acquire()), 0u);
  // The retired image is still fully readable (deferred reclamation).
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(old_snap.image->lookup(addr), oracle.lookup(addr));
  }
}

// Reader/updater stress: concurrent readers acquire snapshots and run
// batched lookups while the writer keeps publishing churn batches. Under
// VR_SANITIZE=thread this is the race detector's target; in a plain build
// it still pins that every observed result is internally consistent
// (valid staleness, readable image, stable batch results).
TEST(SnapshotPublisherTest, ConcurrentReadersUnderChurn) {
  const RoutingTable base = gen_table(13);
  SnapshotPublisher publisher(base, /*stride=*/4);
  const std::vector<RouteUpdate> stream = gen_updates(base, 800, 17);
  constexpr std::size_t kBatch = 40;
  const std::size_t batches = stream.size() / kBatch;

  std::vector<Ipv4> addrs;
  {
    Rng rng(19);
    for (int i = 0; i < 256; ++i) {
      addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> failed{false};
  const auto reader = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      const SnapshotPublisher::Snapshot snap = publisher.acquire();
      if (snap.image == nullptr) {
        failed.store(true);
        return;
      }
      const std::vector<net::NextHop> once = snap.image->lookup_batch(addrs);
      const std::vector<net::NextHop> twice =
          snap.image->lookup_batch(addrs);
      // The image is immutable: re-running the batch must be identical
      // no matter how many publishes happened in between.
      if (once != twice ||
          publisher.staleness_of(snap) >
              publisher.published_version() - snap.version) {
        failed.store(true);
        return;
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (std::size_t b = 0; b < batches; ++b) {
    (void)publisher.apply_batch(
        std::span<const RouteUpdate>(stream.data() + b * kBatch, kBatch));
  }
  // On a single-core host the writer can finish before the readers are
  // even scheduled; keep the snapshots churn-adjacent by letting each
  // reader complete at least one pass before stopping.
  while (reads.load(std::memory_order_relaxed) < 2 && !failed.load()) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(reads.load(), 1u);
  EXPECT_EQ(publisher.published_version(), batches);
}

}  // namespace
}  // namespace vr::trie
