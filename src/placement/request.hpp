// VN request stream for the placement controller: a seeded, reproducible
// sequence of virtual-network arrivals (prefix-table size, offered load,
// SLA class, optional departure time). The stream is the experiment input
// of the competitive-ratio study — same seed, same requests, bit-identical
// controller output — so everything here is integer-quantized and driven
// by vr::Rng only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace vr::placement {

/// Service class of a VN, in increasing strictness. Gold tenants demand a
/// dedicated engine (never the time-shared merged trie) and a floor on the
/// operating clock; silver demands only the clock floor; bronze takes
/// whatever fits.
enum class SlaClass : std::uint8_t { kBronze = 0, kSilver = 1, kGold = 2 };

[[nodiscard]] constexpr const char* to_string(SlaClass sla) noexcept {
  switch (sla) {
    case SlaClass::kBronze:
      return "bronze";
    case SlaClass::kSilver:
      return "silver";
    case SlaClass::kGold:
      return "gold";
  }
  return "?";
}

/// Utilizations are quantized to multiples of 1/kMuQuantum so that sums
/// over co-located VNs stay exact integers (no float drift in the fleet's
/// shape index) and the oracle's memoization key space stays small.
inline constexpr std::uint32_t kMuQuantum = 32;

/// One VN arrival. Ticks are the request sequence numbers (one arrival per
/// tick); departure_tick == 0 means the VN never leaves.
struct VnRequest {
  std::uint64_t id = 0;
  std::uint64_t arrival_tick = 0;
  std::uint64_t departure_tick = 0;
  std::size_t prefix_count = 0;  ///< requested FIB size (routes)
  std::uint32_t mu_q = 1;        ///< offered load, in 1/kMuQuantum units
  SlaClass sla = SlaClass::kBronze;

  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(mu_q) / static_cast<double>(kMuQuantum);
  }
};

struct RequestStreamConfig {
  std::uint64_t seed = 1;
  /// Table-size classes: class c draws prefix counts around
  /// base_prefix_count * 2^c, with small classes geometrically more
  /// common (weight 2^(classes-1-c)) — edge tenants dominate.
  std::size_t size_classes = 4;
  std::size_t base_prefix_count = 400;
  /// Offered load µ is uniform over {1, ..., mu_levels}/kMuQuantum.
  std::uint32_t mu_levels = 12;
  double gold_fraction = 0.10;
  double silver_fraction = 0.30;
  /// Mean VN lifetime in ticks (uniform over [1, 2*mean]); 0 = VNs are
  /// permanent and the run is pure accumulation.
  std::uint64_t mean_holding_ticks = 0;
};

/// Generates VnRequests one at a time (no O(run) allocation for the
/// million-request benches). Deterministic: the n-th request depends only
/// on (config, n).
class RequestStream {
 public:
  explicit RequestStream(RequestStreamConfig config);

  [[nodiscard]] VnRequest next();

  [[nodiscard]] const RequestStreamConfig& config() const noexcept {
    return config_;
  }

 private:
  RequestStreamConfig config_;
  Rng rng_;
  std::vector<double> size_weights_;
  std::uint64_t next_id_ = 0;
};

/// Materializes the first `count` requests of a stream (test convenience).
[[nodiscard]] std::vector<VnRequest> generate_requests(
    const RequestStreamConfig& config, std::size_t count);

}  // namespace vr::placement
