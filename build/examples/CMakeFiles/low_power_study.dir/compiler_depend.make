# Empty compiler generated dependencies file for low_power_study.
# This may be replaced when dependencies are built.
