// Cross-validation of the two dynamic-power backends (DESIGN.md §13),
// run under `ctest -L power-model`. The acceptance bound: on a uniform
// trace, the activity backend's per-VN dynamic watts agree with the
// analytical µ backend within 10% per VN, for all three schemes and
// K ∈ {2, 4, 8}. Both backends price the same XPE coefficients, so on
// steady traffic the only gap is pipeline ramp-up/drain edges and BRAM
// block quantization — far inside 10%. Shaped traffic is the benches'
// business (bench/perf_activity); this file pins the agreement that makes
// their divergence meaningful.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dataplane/full_router.hpp"
#include "fpga/device.hpp"
#include "fpga/xpe_tables.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "power/activity_model.hpp"
#include "power/power_model.hpp"
#include "trie/memory_layout.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::power {
namespace {

constexpr std::size_t kStages = 28;
constexpr units::Megahertz kFreqMhz{300.0};

EngineSpec engine_spec_of(const trie::TrieStats& stats,
                          std::size_t nhi_width) {
  const trie::StageMapping mapping(stats.nodes_per_level.size(), kStages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, nhi_width);
  EngineSpec spec;
  for (std::size_t s = 0; s < kStages; ++s) {
    spec.stage_bits.push_back(memory.stage_bits(s));
  }
  return spec;
}

/// The utilization the run actually exhibited: each VN's busy stage-cycles
/// over the engine's total stage-cycles. This is the µ a perfectly informed
/// capacity planner would have written down — feeding it to MuModel is what
/// makes the 10% bound a model-equivalence statement rather than a test of
/// the traffic generator's accuracy.
std::vector<double> measured_mu(const ActivityCounters& activity) {
  const std::size_t stages = activity.stage_count();
  std::vector<double> mu(activity.vn_count(), 0.0);
  if (activity.cycles == 0 || stages == 0) return mu;
  for (std::size_t v = 0; v < activity.vn_count(); ++v) {
    std::uint64_t busy = 0;
    for (std::size_t s = 0; s < stages; ++s) busy += activity.busy(v, s);
    mu[v] = static_cast<double>(busy) /
            (static_cast<double>(stages) * static_cast<double>(activity.cycles));
  }
  return mu;
}

/// One uniform-trace run of every scheme at VN count `k`, with everything
/// both backends need to price it.
struct UniformRun {
  std::vector<net::RoutingTable> tables;
  std::vector<trie::UnibitTrie> tries;
  std::vector<EngineSpec> engines;
  EngineSpec merged_engine;
  ActivityCounters separate_activity;
  ActivityCounters merged_activity;
};

UniformRun run_uniform(std::size_t k) {
  UniformRun run;
  net::TableProfile profile;
  profile.prefix_count = 200;
  const net::SyntheticTableGenerator table_gen(profile);
  std::vector<const net::RoutingTable*> table_ptrs;
  for (std::uint64_t v = 0; v < k; ++v) {
    run.tables.push_back(table_gen.generate(30 + v));
  }
  for (const auto& t : run.tables) table_ptrs.push_back(&t);
  std::vector<pipeline::TrieView> views;
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  for (const auto& t : run.tables) {
    run.tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
  }
  for (const auto& t : run.tries) {
    views.emplace_back(t);
    trie_ptrs.push_back(&t);
    run.engines.push_back(engine_spec_of(trie::compute_stats(t), 1));
  }
  const virt::MergedTrie merged{
      std::span<const trie::UnibitTrie* const>(trie_ptrs)};
  run.merged_engine = engine_spec_of(merged.stats_as_trie(), k);

  dataplane::FrameGenConfig frame_config;
  frame_config.traffic =
      net::make_shaped_config(net::TraceShape::kUniform, 8000, 0.6, k);
  const dataplane::FrameGenerator frame_gen(frame_config, table_ptrs);
  const auto frames =
      frame_gen.generate(dataplane::FrameGenerator::derive_seed(99, k));

  dataplane::FullRouterConfig router_config;
  router_config.scheduler.vn_count = k;
  router_config.scheduler.port_count = 16;
  router_config.scheduler.queue_capacity = 256;
  {
    pipeline::SeparateRouter lookup(views, kStages);
    run.separate_activity =
        dataplane::run_full_router(lookup, frames, router_config).activity;
  }
  {
    pipeline::MergedRouter lookup(merged, kStages);
    run.merged_activity =
        dataplane::run_full_router(lookup, frames, router_config).activity;
  }
  return run;
}

OperatingPoint operating_point(std::vector<double> mu) {
  OperatingPoint op;
  op.grade = fpga::SpeedGrade::kMinus2;
  op.bram_policy = fpga::BramPolicy::kMixed;
  op.freq_mhz = kFreqMhz;
  op.utilization = std::move(mu);
  return op;
}

// ------------------------------------------- uniform-trace cross-validation

/// The `ctest -L power-model` acceptance bound.
TEST(PowerModelCrossValidation, BackendsAgreeWithinTenPercentPerVn) {
  const MuModel mu_model(fpga::DeviceSpec::xc6vlx760());
  const ActivityModel act_model;
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const UniformRun run = run_uniform(k);
    for (const Scheme scheme :
         {Scheme::kNonVirtualized, Scheme::kSeparate, Scheme::kMerged}) {
      const bool is_merged = scheme == Scheme::kMerged;
      const ActivityCounters& activity =
          is_merged ? run.merged_activity : run.separate_activity;
      ModelContext ctx;
      ctx.scheme = scheme;
      ctx.vn_count = k;
      if (is_merged) {
        ctx.merged_engine = &run.merged_engine;
      } else {
        ctx.engines = run.engines;
      }
      ctx.op = operating_point(measured_mu(activity));
      ctx.activity = &activity;

      const std::vector<units::Watts> mu_w = mu_model.per_vn_dynamic_w(ctx);
      const std::vector<units::Watts> act_w = act_model.per_vn_dynamic_w(ctx);
      ASSERT_EQ(mu_w.size(), k);
      ASSERT_EQ(act_w.size(), k);
      for (std::size_t v = 0; v < k; ++v) {
        ASSERT_GT(mu_w[v].value(), 0.0)
            << "scheme " << to_string(scheme) << " K=" << k << " vn=" << v;
        const double div =
            act_w[v].value() / mu_w[v].value() - 1.0;
        EXPECT_NEAR(div, 0.0, 0.10)
            << "scheme " << to_string(scheme) << " K=" << k << " vn=" << v
            << ": mu=" << mu_w[v].value() << " W, activity="
            << act_w[v].value() << " W";
      }
    }
  }
}

/// NV and VS have identical dynamic terms (Eqs. 2 vs 4 differ only in
/// leakage bookkeeping); both backends must reproduce that identity.
TEST(PowerModelCrossValidation, NvAndVsDynamicTermsAreIdentical) {
  const MuModel mu_model(fpga::DeviceSpec::xc6vlx760());
  const ActivityModel act_model;
  const UniformRun run = run_uniform(3);
  ModelContext ctx;
  ctx.vn_count = 3;
  ctx.engines = run.engines;
  ctx.op = operating_point(measured_mu(run.separate_activity));
  ctx.activity = &run.separate_activity;
  for (const DynamicPowerModel* model :
       {static_cast<const DynamicPowerModel*>(&mu_model),
        static_cast<const DynamicPowerModel*>(&act_model)}) {
    ctx.scheme = Scheme::kNonVirtualized;
    const auto nv = model->per_vn_dynamic_w(ctx);
    ctx.scheme = Scheme::kSeparate;
    const auto vs = model->per_vn_dynamic_w(ctx);
    ASSERT_EQ(nv.size(), vs.size());
    for (std::size_t v = 0; v < nv.size(); ++v) {
      EXPECT_DOUBLE_EQ(nv[v].value(), vs[v].value()) << model->name();
    }
  }
}

/// MuModel is a per-VN resolution of AnalyticalModel, not a reimplementation:
/// its per-VN watts must sum to exactly the wrapped estimator's dynamic
/// total for every scheme (the bit-identity that keeps the goldens honest).
TEST(PowerModelCrossValidation, MuModelSumsToAnalyticalDynamic) {
  const MuModel mu_model(fpga::DeviceSpec::xc6vlx760());
  const UniformRun run = run_uniform(4);
  // Skewed but sub-saturation µ so the VM served/offered clamp stays inert.
  const std::vector<double> mu = {0.4, 0.2, 0.1, 0.05};
  ModelContext ctx;
  ctx.vn_count = 4;
  ctx.engines = run.engines;
  ctx.merged_engine = &run.merged_engine;
  ctx.op = operating_point(mu);
  for (const Scheme scheme :
       {Scheme::kNonVirtualized, Scheme::kSeparate, Scheme::kMerged}) {
    ctx.scheme = scheme;
    units::Watts sum_w{0.0};
    for (const units::Watts& w : mu_model.per_vn_dynamic_w(ctx)) sum_w += w;
    const PowerBreakdown breakdown = mu_model.breakdown(ctx);
    EXPECT_NEAR(sum_w.value(), breakdown.dynamic_w().value(), 1e-12)
        << to_string(scheme);
  }
}

// ------------------------------------------------------- component pieces

TEST(EventEnergiesTest, DerivesFromXpeTables) {
  using fpga::XpeTables;
  for (const fpga::SpeedGrade grade :
       {fpga::SpeedGrade::kMinus2, fpga::SpeedGrade::kMinus1L}) {
    const EventEnergies e = EventEnergies::from_xpe(grade);
    const double bram18_pj =
        XpeTables::bram_uw_per_mhz(fpga::BramKind::k18, grade).value();
    const double logic_pj = XpeTables::logic_stage_uw_per_mhz(grade).value();
    EXPECT_DOUBLE_EQ(e.buffer_read_pj.value(), bram18_pj);
    EXPECT_DOUBLE_EQ(e.buffer_write_pj.value(), bram18_pj);
    EXPECT_DOUBLE_EQ(e.parser_pj.value(), logic_pj);
    EXPECT_DOUBLE_EQ(e.crossbar_pj.value(), logic_pj);
    EXPECT_DOUBLE_EQ(e.editor_pj.value(), logic_pj);
    EXPECT_DOUBLE_EQ(e.arbiter_pj.value(), 0.5 * logic_pj);
  }
}

// ---------------------------------------------- arbiter comparison counts

/// Hand-built DRR round: one port, two VNs, one packet for VN0, a link
/// fast enough to transmit it in the first cycle. The arbiter examines
/// VN0 (granting a quantum) and then VN1 (an empty skip) — two
/// comparisons for one grant, the work the grant count alone misses.
TEST(SchedulerArbiterTest, ComparisonsCountQueueExaminations) {
  dataplane::SchedulerConfig config;
  config.port_count = 1;
  config.vn_count = 2;
  config.bytes_per_cycle = 2000.0;
  dataplane::DrrScheduler scheduler(config);
  dataplane::ForwardedPacket packet;
  packet.vnid = 0;
  packet.port = 0;
  packet.payload_bytes = 100;
  ASSERT_TRUE(scheduler.enqueue(packet, 0));
  std::vector<dataplane::EgressRecord> egress;
  scheduler.tick(0, &egress);
  ASSERT_EQ(egress.size(), 1u);
  const dataplane::SchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.arbiter_grants_per_vn[0], 1u);
  EXPECT_EQ(stats.arbiter_grants_per_vn[1], 0u);
  EXPECT_EQ(stats.arbiter_comparisons_per_vn[0], 1u);
  EXPECT_EQ(stats.arbiter_comparisons_per_vn[1], 1u);
}

/// On real end-to-end runs the two counters cross-validate: every grant
/// required at least one examination, so comparisons dominate grants per
/// VN, and strictly in total (idle queues are examined without granting).
TEST(SchedulerArbiterTest, ComparisonsDominateGrantsOnRealRuns) {
  const UniformRun run = run_uniform(4);
  for (const ActivityCounters* act :
       {&run.separate_activity, &run.merged_activity}) {
    for (std::size_t v = 0; v < act->vn_count(); ++v) {
      EXPECT_GE(act->arbiter_comparisons[v], act->arbiter_decisions[v])
          << "vn=" << v;
    }
    EXPECT_GT(ActivityCounters::total(act->arbiter_comparisons),
              ActivityCounters::total(act->arbiter_decisions));
  }
}

TEST(ActivityCountersTest, MergeSumsElementwise) {
  ActivityCounters a(2, 3);
  ActivityCounters b(2, 3);
  a.cycles = 100;
  b.cycles = 50;
  a.parser_headers = {1, 2};
  b.parser_headers = {10, 20};
  a.busy(1, 2) = 7;
  b.busy(1, 2) = 5;
  b.reads(0, 0) = 4;
  a.merge(b);
  EXPECT_EQ(a.cycles, 150u);
  EXPECT_EQ(a.parser_headers[0], 11u);
  EXPECT_EQ(a.parser_headers[1], 22u);
  EXPECT_EQ(a.busy(1, 2), 12u);
  EXPECT_EQ(a.reads(0, 0), 4u);
}

TEST(ActivityCountersTest, MergeRejectsShapeMismatch) {
  ActivityCounters a(2, 3);
  const ActivityCounters b(3, 3);
  EXPECT_DEATH(a.merge(b), "shape");
}

TEST(ActivityModelTest, RequiresActivityCounters) {
  const ActivityModel model;
  const UniformRun run = run_uniform(2);
  ModelContext ctx;
  ctx.scheme = Scheme::kSeparate;
  ctx.vn_count = 2;
  ctx.engines = run.engines;
  ctx.op = operating_point({0.3, 0.3});
  EXPECT_DEATH((void)model.per_vn_dynamic_w(ctx), "activity");
}

TEST(ActivityModelTest, GatedMemoryNeverExceedsBusyCharged) {
  // stage_reads counts a subset of stage_busy cycles (a traversal that
  // already terminated occupies the stage without reading), so the
  // read-gated memory figure is bounded by the busy-charged one.
  const ActivityModel model;
  const UniformRun run = run_uniform(2);
  ModelContext ctx;
  ctx.scheme = Scheme::kSeparate;
  ctx.vn_count = 2;
  ctx.engines = run.engines;
  ctx.op = operating_point(measured_mu(run.separate_activity));
  ctx.activity = &run.separate_activity;
  const ActivityPower power = model.estimate(ctx);
  EXPECT_GT(power.memory_w.value(), 0.0);
  EXPECT_LE(power.memory_gated_w.value(), power.memory_w.value());
  EXPECT_GT(power.overhead_w().value(), 0.0);
  EXPECT_DOUBLE_EQ(power.dynamic_w().value(),
                   power.core_w().value() + power.overhead_w().value());
}

TEST(ResolveMuTest, EmptyUtilizationMeansUniformShare) {
  ModelContext ctx;
  ctx.vn_count = 4;
  const std::vector<double> mu = resolve_mu(ctx);
  ASSERT_EQ(mu.size(), 4u);
  for (const double m : mu) EXPECT_DOUBLE_EQ(m, 0.25);
}

TEST(ResolveMuTest, RejectsWrongSizeVector) {
  ModelContext ctx;
  ctx.vn_count = 4;
  ctx.op.utilization = {0.5, 0.5};
  EXPECT_DEATH((void)resolve_mu(ctx), "utilization");
}

}  // namespace
}  // namespace vr::power
