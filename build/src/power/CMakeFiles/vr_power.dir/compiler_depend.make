# Empty compiler generated dependencies file for vr_power.
# This may be replaced when dependencies are built.
