file(REMOVE_RECURSE
  "CMakeFiles/vr_ipv6.dir/ipv6.cpp.o"
  "CMakeFiles/vr_ipv6.dir/ipv6.cpp.o.d"
  "CMakeFiles/vr_ipv6.dir/ipv6_trie.cpp.o"
  "CMakeFiles/vr_ipv6.dir/ipv6_trie.cpp.o.d"
  "libvr_ipv6.a"
  "libvr_ipv6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
