// Regenerates paper Fig. 5: total power of NV / VS / VM(80 %) / VM(20 %)
// vs number of virtual networks, for speed grades -2 and -1L, with both
// the analytical-model and the simulated post-PnR ("experimental") values.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options(argc, argv));
  bench::emit(builder.fig5_total_power(fpga::SpeedGrade::kMinus2));
  bench::emit(builder.fig5_total_power(fpga::SpeedGrade::kMinus1L));
  return 0;
}
