// RAII timing: ScopedTimer records one steady-clock duration into a
// Histogram on destruction (or an explicit stop()); TraceSpan additionally
// tracks how many spans of a region are simultaneously open. steady_clock
// is monotonic, so recorded durations are never negative — the obs tests
// pin that invariant without asserting on wall-clock magnitudes.
#pragma once

#include <chrono>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace vr::obs {

/// Monotonic nanoseconds elapsed since `start`.
[[nodiscard]] inline units::Nanoseconds since(
    std::chrono::steady_clock::time_point start) {
  return units::Nanoseconds{
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count()};
}

/// Times a scope into a Histogram of nanoseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { (void)stop(); }

  /// Records the elapsed duration exactly once and returns it; later calls
  /// (including the destructor's) record nothing and return zero.
  units::Nanoseconds stop() {
    if (stopped_) return units::Nanoseconds{0.0};
    stopped_ = true;
    const units::Nanoseconds elapsed = since(start_);
    sink_->observe_duration(elapsed);
    return elapsed;
  }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// A trace span: times the region like ScopedTimer and keeps `active`
/// incremented while the span is open, so a gauge shows instantaneous
/// concurrency (e.g. busy sweep workers).
class TraceSpan {
 public:
  TraceSpan(Histogram& latency, Gauge& active)
      : timer_(latency), active_(&active) {
    active_->add(1);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { active_->add(-1); }

 private:
  ScopedTimer timer_;
  Gauge* active_;
};

}  // namespace vr::obs
