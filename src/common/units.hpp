// Unit conventions, conversion helpers and compile-time quantity types.
//
// Historically the library passed physical quantities as plain doubles with
// the unit encoded in the identifier name (e.g. `power_w`, `freq_mhz`,
// `memory_bits`). That convention now survives only in calibration scalars
// (parameter-struct coefficients annotated `// units-ok`) and in `.cpp`
// intermediates: every power- or frequency-carrying API — the public
// src/power + src/core surface AND the fpga/pipeline/multipipe/tcam
// internals down to the XPE coefficient tables — trades in the strong
// quantity types below, so a mW/W or µW-per-MHz-coefficient confusion is a
// compile error instead of a ±3 %-validation surprise. The conventions are:
//
//   power        watts (W)            — model outputs
//   energy       picojoules (pJ)      — per-cycle accounting in the simulator
//   frequency    megahertz (MHz)      — matches the paper's coefficient units
//   memory       bits                 — BRAM sizing
//   throughput   gigabits/second      — the paper's efficiency denominator
//
// The quantity types are thin constexpr wrappers over their representation:
// construction is explicit, same-unit arithmetic and dimensionless scaling
// are allowed, cross-unit arithmetic exists only where dimensionally
// meaningful (e.g. Picojoules / Cycles * Megahertz -> Microwatts), and
// `.value()` is the escape hatch back to the raw representation for I/O and
// for suffix-convention intermediates. tools/check_units.py enforces that
// the typed layers (src/power, src/core, src/fpga, src/pipeline,
// src/multipipe, src/tcam) do not reintroduce naked-double power or
// frequency parameters, members or return types, and that `.cpp` locals
// keep their unit suffixes.
#pragma once

#include <compare>
#include <cstdint>
#include <type_traits>

namespace vr::units {

inline constexpr double kMicroPerUnit = 1e6;
inline constexpr double kMilliPerUnit = 1e3;

/// Converts microwatts to watts.
constexpr double uw_to_w(double microwatts) noexcept {
  return microwatts / kMicroPerUnit;
}

/// Converts watts to microwatts.
constexpr double w_to_uw(double watts) noexcept {
  return watts * kMicroPerUnit;
}

/// Converts watts to milliwatts.
constexpr double w_to_mw(double watts) noexcept {
  return watts * kMilliPerUnit;
}

/// Converts milliwatts to watts.
constexpr double mw_to_w(double milliwatts) noexcept {
  return milliwatts / kMilliPerUnit;
}

/// Kib/Mib in bits, as used for BRAM capacities ("18 Kb block", "26 Mb").
inline constexpr double kKibit = 1024.0;
inline constexpr double kMibit = 1024.0 * 1024.0;

/// A power coefficient of the form `P(µW) = c · f(MHz)` is numerically equal
/// to an energy of `c` picojoules per clock cycle:
///   P = c·f µW = c·f·1e-6 W; cycles/s = f·1e6; E = P/cycles = c·1e-12 J.
/// This identity lets the cycle-level pipeline simulator account energy with
/// the same coefficients the analytical model uses.
constexpr double uw_per_mhz_to_pj_per_cycle(double coefficient) noexcept {
  return coefficient;
}

/// Average power (W) of `energy_pj` picojoules spent over `cycles` cycles at
/// `freq_mhz` MHz: P = E / t, t = cycles / (f·1e6). A non-positive cycle
/// count or frequency describes a clock-gated (idle) operating point, whose
/// average power is zero — not a division by zero.
constexpr double pj_over_cycles_to_w(double energy_pj, double cycles,
                                     double freq_mhz) noexcept {
  if (cycles <= 0.0 || freq_mhz <= 0.0) return 0.0;
  return energy_pj * 1e-12 / (cycles / (freq_mhz * 1e6));
}

/// Throughput in Gbps of one lookup pipeline issuing one packet per cycle at
/// `freq_mhz` MHz with minimum-size packets of `packet_bytes` bytes.
/// The paper (Sec. VI-B) uses 40-byte packets: Gbps = 0.32 · f(MHz).
constexpr double lookup_throughput_gbps(double freq_mhz,
                                        double packet_bytes) noexcept {
  return freq_mhz * 1e6 * packet_bytes * 8.0 / 1e9;
}

inline constexpr double kMinPacketBytes = 40.0;

// --------------------------------------------------------------------------
// Strong quantity types
// --------------------------------------------------------------------------

/// One physical quantity: a `Rep` tagged with its unit. Same-unit addition
/// and dimensionless scaling only; everything else must go through the
/// explicit conversions / dimensional operators below or through `.value()`.
template <class Tag, class Rep = double>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() noexcept = default;
  explicit constexpr Quantity(Rep value) noexcept : value_(value) {}

  /// Escape hatch to the raw representation (printing, suffix-convention
  /// internals). Deliberately the only way out.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  constexpr Quantity& operator+=(Quantity other) noexcept {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) noexcept {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep scale) noexcept {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(Rep scale) noexcept {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity q, Rep scale) noexcept {
    return Quantity{q.value_ * scale};
  }
  friend constexpr Quantity operator*(Rep scale, Quantity q) noexcept {
    return Quantity{scale * q.value_};
  }
  friend constexpr Quantity operator/(Quantity q, Rep scale) noexcept {
    return Quantity{q.value_ / scale};
  }
  /// Same-unit ratio is dimensionless.
  friend constexpr Rep operator/(Quantity a, Quantity b) noexcept {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity, Quantity) noexcept = default;

 private:
  Rep value_{};
};

struct WattsTag {};
struct MilliwattsTag {};
struct MicrowattsTag {};
struct JoulesTag {};
struct PicojoulesTag {};
struct PjPerCycleTag {};
struct MegahertzTag {};
struct GbpsTag {};
struct MwPerGbpsTag {};
struct CyclesTag {};
struct SecondsTag {};
struct NanosecondsTag {};
struct BitsTag {};

using Watts = Quantity<WattsTag>;
using Milliwatts = Quantity<MilliwattsTag>;
using Microwatts = Quantity<MicrowattsTag>;
using Joules = Quantity<JoulesTag>;
using Picojoules = Quantity<PicojoulesTag>;
using PjPerCycle = Quantity<PjPerCycleTag>;
using Megahertz = Quantity<MegahertzTag>;
using Gbps = Quantity<GbpsTag>;
using MwPerGbps = Quantity<MwPerGbpsTag>;
using Cycles = Quantity<CyclesTag>;
using Seconds = Quantity<SecondsTag>;
using Nanoseconds = Quantity<NanosecondsTag>;
/// Memory sizes are exact bit counts, so Bits carries an integer rep.
using Bits = Quantity<BitsTag, std::uint64_t>;

// ------------------------------------------------------ unit conversions --

[[nodiscard]] constexpr Watts to_watts(Milliwatts mw) noexcept {
  return Watts{mw.value() / kMilliPerUnit};
}
[[nodiscard]] constexpr Watts to_watts(Microwatts uw) noexcept {
  return Watts{uw.value() / kMicroPerUnit};
}
[[nodiscard]] constexpr Milliwatts to_milliwatts(Watts w) noexcept {
  return Milliwatts{w.value() * kMilliPerUnit};
}
[[nodiscard]] constexpr Microwatts to_microwatts(Watts w) noexcept {
  return Microwatts{w.value() * kMicroPerUnit};
}
[[nodiscard]] constexpr double bits_to_kbits(Bits bits) noexcept {
  return static_cast<double>(bits.value()) / kKibit;
}

// -------------------------------------------------- dimensional algebra --

/// Per-cycle energy of a total energy spread over a cycle count.
[[nodiscard]] constexpr PjPerCycle operator/(Picojoules energy,
                                             Cycles cycles) noexcept {
  return PjPerCycle{energy.value() / cycles.value()};
}

/// The µW/MHz ≡ pJ/cycle coefficient identity, now type-checked:
/// P(µW) = c(pJ/cycle) · f(MHz).
[[nodiscard]] constexpr Microwatts operator*(PjPerCycle coefficient,
                                             Megahertz freq) noexcept {
  return Microwatts{coefficient.value() * freq.value()};
}
[[nodiscard]] constexpr Microwatts operator*(Megahertz freq,
                                             PjPerCycle coefficient) noexcept {
  return Microwatts{freq.value() * coefficient.value()};
}

/// The paper's Sec. VI-B efficiency metric: mW of power per Gbps of
/// capacity.
[[nodiscard]] constexpr MwPerGbps operator/(Milliwatts mw,
                                            Gbps throughput) noexcept {
  return MwPerGbps{mw.value() / throughput.value()};
}

/// Total energy of a per-cycle budget sustained for a cycle count.
[[nodiscard]] constexpr Picojoules operator*(PjPerCycle per_cycle,
                                             Cycles cycles) noexcept {
  return Picojoules{per_cycle.value() * cycles.value()};
}
[[nodiscard]] constexpr Picojoules operator*(Cycles cycles,
                                             PjPerCycle per_cycle) noexcept {
  return Picojoules{cycles.value() * per_cycle.value()};
}

/// Energy is power sustained over time: W × s → J.
[[nodiscard]] constexpr Joules operator*(Watts power, Seconds time) noexcept {
  return Joules{power.value() * time.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds time, Watts power) noexcept {
  return Joules{time.value() * power.value()};
}
/// ... and dividing it back out recovers the average power.
[[nodiscard]] constexpr Watts operator/(Joules energy, Seconds time) noexcept {
  return Watts{energy.value() / time.value()};
}

/// Clock period of a frequency: 1/f(MHz) µs = 1000/f ns. A non-positive
/// frequency (a clock-gated point) has no finite period; report zero so the
/// degenerate case stays inert in downstream arithmetic.
[[nodiscard]] constexpr Nanoseconds period(Megahertz freq) noexcept {
  return freq.value() <= 0.0 ? Nanoseconds{0.0}
                             : Nanoseconds{1e3 / freq.value()};
}

/// Wall-clock duration of a cycle count at a clock: cycles / (f·1e6) s.
/// Clock-gated (non-positive) frequencies yield zero elapsed time.
[[nodiscard]] constexpr Seconds elapsed(Cycles cycles,
                                        Megahertz freq) noexcept {
  return freq.value() <= 0.0
             ? Seconds{0.0}
             : Seconds{cycles.value() / (freq.value() * 1e6)};
}

[[nodiscard]] constexpr Joules to_joules(Picojoules pj) noexcept {
  return Joules{pj.value() * 1e-12};
}
[[nodiscard]] constexpr Picojoules to_picojoules(Joules j) noexcept {
  return Picojoules{j.value() * 1e12};
}

// ------------------------------------------------------- typed helpers --

/// Typed form of `pj_over_cycles_to_w`: Picojoules / Cycles / Megahertz ->
/// Watts, with the same idle-point guards as the raw helper.
[[nodiscard]] constexpr Watts average_power(Picojoules energy, Cycles cycles,
                                            Megahertz freq) noexcept {
  return Watts{pj_over_cycles_to_w(energy.value(), cycles.value(),
                                   freq.value())};
}

/// Typed form of `lookup_throughput_gbps`.
[[nodiscard]] constexpr Gbps lookup_throughput(Megahertz freq,
                                               double packet_bytes) noexcept {
  return Gbps{lookup_throughput_gbps(freq.value(), packet_bytes)};
}

// Compile-time proofs of the dimensional algebra: the result types and a
// few exact identities the power model depends on.
static_assert(std::is_same_v<decltype(PjPerCycle{2.0} * Megahertz{3.0}),
                             Microwatts>);
static_assert((PjPerCycle{2.0} * Megahertz{3.0}).value() == 6.0);
static_assert(std::is_same_v<decltype(PjPerCycle{2.0} * Cycles{4.0}),
                             Picojoules>);
static_assert((Cycles{4.0} * PjPerCycle{2.0}).value() == 8.0);
static_assert(std::is_same_v<decltype(Watts{5.0} * Seconds{2.0}), Joules>);
static_assert((Watts{5.0} * Seconds{2.0}).value() == 10.0);
static_assert(std::is_same_v<decltype(Joules{10.0} / Seconds{2.0}), Watts>);
static_assert((Joules{10.0} / Seconds{2.0}).value() == 5.0);
static_assert(std::is_same_v<decltype(period(Megahertz{250.0})),
                             Nanoseconds>);
static_assert(period(Megahertz{250.0}).value() == 4.0);
static_assert(period(Megahertz{0.0}).value() == 0.0);
static_assert(elapsed(Cycles{4e6}, Megahertz{400.0}).value() == 0.01);
static_assert(elapsed(Cycles{1e6}, Megahertz{0.0}).value() == 0.0);
static_assert(to_joules(Picojoules{1e12}).value() == 1.0);
static_assert(to_picojoules(Joules{1.0}).value() == 1e12);
// Conversion round-trips stay exact for powers of ten and of two.
static_assert(to_watts(to_milliwatts(Watts{4.5})).value() == 4.5);
static_assert(to_watts(Microwatts{1.0}).value() == 1e-6);
static_assert(bits_to_kbits(Bits{18 * 1024}) == 18.0);
static_assert(bits_to_kbits(Bits{512}) == 0.5);

}  // namespace vr::units
