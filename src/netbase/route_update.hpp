// A routing-plane update event (BGP-style announce/withdraw), consumed by
// the incremental-update machinery in the trie and virt layers.
#pragma once

#include <cstdint>

#include "netbase/prefix.hpp"

namespace vr::net {

struct RouteUpdate {
  enum class Kind : std::uint8_t {
    kAnnounce,  ///< insert a route or change an existing route's next hop
    kWithdraw,  ///< remove a route
  };
  Kind kind = Kind::kAnnounce;
  Route route;

  friend bool operator==(const RouteUpdate&, const RouteUpdate&) = default;
};

}  // namespace vr::net
