#include "fpga/thermal.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vr::fpga {

double leakage_multiplier(double t_junction_c, const ThermalParams& params) {
  return 1.0 + params.leakage_slope_per_c * (t_junction_c - 25.0);
}

ThermalOperatingPoint solve_thermal(units::Watts static_25c_w,
                                    units::Watts dynamic_w,
                                    const ThermalParams& params) {
  VR_REQUIRE(static_25c_w >= units::Watts{0.0} &&
                 dynamic_w >= units::Watts{0.0},
             "power inputs must be non-negative");
  ThermalOperatingPoint point;
  point.t_junction_c = params.ambient_c;
  // Fixed point of T = ambient + theta * (s0 * m(T) + d). The map is
  // affine in T with slope theta*s0*slope < 1 for sane inputs, so plain
  // iteration converges geometrically.
  for (unsigned i = 0; i < 100; ++i) {
    ++point.iterations;
    const units::Watts static_w =
        static_25c_w * leakage_multiplier(point.t_junction_c, params);
    const double next_t =
        params.ambient_c +
        params.theta_ja_c_per_w * (static_w + dynamic_w).value();
    if (std::fabs(next_t - point.t_junction_c) < 1e-9) {
      point.t_junction_c = next_t;
      break;
    }
    point.t_junction_c = next_t;
  }
  point.static_w =
      static_25c_w * leakage_multiplier(point.t_junction_c, params);
  point.total_w = point.static_w + dynamic_w;
  point.within_limits = point.t_junction_c <= params.t_junction_max_c;
  return point;
}

}  // namespace vr::fpga
