#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vr {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Percentiles::Percentiles(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  VR_REQUIRE(!sorted_.empty(), "percentile of an empty sample set");
  // NaN violates std::sort's strict weak ordering: sorting a vector that
  // contains one is undefined behaviour and in practice leaves the data
  // partially ordered, so every later at() silently answers garbage.
  for (const double sample : sorted_) {
    VR_REQUIRE(!std::isnan(sample), "percentile sample is NaN");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const {
  VR_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

double percentile(std::vector<double> samples, double q) {
  return Percentiles(std::move(samples)).at(q);
}

double relative_difference(double a, double b) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

double percentage_error(double model, double experimental) noexcept {
  if (experimental == 0.0) return model == 0.0 ? 0.0 : HUGE_VAL;
  return (model - experimental) / experimental * 100.0;
}

}  // namespace vr
