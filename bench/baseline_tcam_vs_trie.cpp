// Baseline comparison: TCAM vs pipelined-trie IP lookup (paper Sec. II-B).
// The paper motivates algorithmic (trie) lookup on FPGA by TCAM's power
// hunger ("massively parallel search") and cites load-balanced TCAM
// organizations ([20]) as the mitigation. This bench quantifies all three
// on the same 3 725-prefix edge table:
//   flat TCAM  ->  index-partitioned TCAM (2^b banks)  ->  BRAM trie pipeline.
#include "bench_common.hpp"
#include "fpga/xpe_tables.hpp"
#include "netbase/table_gen.hpp"
#include "tcam/tcam_power.hpp"
#include "trie/trie_stats.hpp"

int main() {
  using namespace vr;
  const net::SyntheticTableGenerator gen(net::TableProfile::edge_default());
  const net::RoutingTable table = gen.generate(1);

  TextTable out("TCAM vs trie pipeline on a 3725-prefix edge table");
  out.set_header({"engine", "entries/nodes", "triggered/search", "dynamic W",
                  "static W", "Gbps", "mW/Gbps"});

  const tcam::TcamPowerParams tcam_params;
  const tcam::FlatTcam flat(table);
  const tcam::TcamPowerReport flat_power = tcam::tcam_power(flat);
  out.add_row({"flat TCAM", std::to_string(flat.entry_count()),
               std::to_string(tcam_params.chip_capacity_entries) + " (array)",
               TextTable::num(flat_power.dynamic_w.value(), 3),
               TextTable::num(flat_power.static_w.value(), 3),
               TextTable::num(flat_power.throughput_gbps.value(), 1),
               TextTable::num(flat_power.mw_per_gbps().value(), 2)});

  for (const unsigned bits : {3u, 6u}) {
    const tcam::PartitionedTcam banked(table, bits);
    const tcam::TcamPowerReport power = tcam::tcam_power(banked);
    out.add_row({"TCAM " + std::to_string(banked.bank_count()) + " banks",
                 std::to_string(banked.entry_count()),
                 std::to_string(tcam_params.chip_capacity_entries /
                                banked.bank_count()) +
                     " (bank)",
                 TextTable::num(power.dynamic_w.value(), 3),
                 TextTable::num(power.static_w.value(), 3),
                 TextTable::num(power.throughput_gbps.value(), 1),
                 TextTable::num(power.mw_per_gbps().value(), 2)});
  }

  // Trie pipeline (this paper's substrate): 28 stages on the XC6VLX760,
  // dynamic power only (the FPGA's leakage serves the whole router, so for
  // an engine-vs-engine comparison we also report it separately).
  const trie::UnibitTrie trie = trie::UnibitTrie(table).leaf_pushed();
  const trie::TrieStats stats = trie::compute_stats(trie);
  const trie::StageMapping mapping(stats.nodes_per_level.size(), 28,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, 1);
  std::vector<std::uint64_t> stage_bits;
  for (std::size_t s = 0; s < 28; ++s) {
    stage_bits.push_back(memory.stage_bits(s));
  }
  const auto plan = fpga::plan_stage_bram(stage_bits,
                                          fpga::BramPolicy::kMixed);
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  fpga::DesignResources resources;
  resources.bram_halves = plan.total.halves();
  resources.max_stage_blocks36eq = plan.max_stage_blocks36eq;
  resources.pipelines = 1;
  const units::Megahertz freq = fpga::achievable_fmax_mhz(
      device, fpga::SpeedGrade::kMinus2, resources);
  const double trie_dynamic =
      (fpga::XpeTables::logic_power_w(fpga::SpeedGrade::kMinus2, 28, freq) +
       plan.total.power_w(fpga::SpeedGrade::kMinus2, freq))
          .value();
  const double trie_gbps =
      units::lookup_throughput(freq, units::kMinPacketBytes).value();
  const double trie_static =
      device.static_power_w(fpga::SpeedGrade::kMinus2).value();
  out.add_row({"BRAM trie pipeline", std::to_string(trie.node_count()),
               "1 stage-word/stage", TextTable::num(trie_dynamic, 3),
               TextTable::num(trie_static, 3), TextTable::num(trie_gbps, 1),
               TextTable::num((trie_dynamic + trie_static) * 1e3 /
                                  trie_gbps,
                              2)});
  vr::bench::emit(out);

  std::cout << "The flat TCAM's per-search activation of every entry makes\n"
               "its dynamic power orders of magnitude above the trie\n"
               "pipeline's; bank partitioning ([20]) closes much of the\n"
               "gap at the cost of replicated entries.\n";
  return 0;
}
