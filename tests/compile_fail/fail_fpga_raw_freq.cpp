// MUST NOT COMPILE: the XPE table lookups take units::Megahertz; a raw
// double frequency (the pre-migration signature) must be rejected.
#include "fpga/xpe_tables.hpp"

int main() {
  const auto p = vr::fpga::XpeTables::bram_power_w(
      vr::fpga::BramKind::k36, vr::fpga::SpeedGrade::kMinus2, 1, 400.0);
  return static_cast<int>(p.value());
}
