// Edge-network consolidation study — the paper's motivating scenario
// (Sec. I): an ISP owns 12 underutilized edge routers (low duty cycle) and
// wants to consolidate them onto one FPGA. This example
//   1. builds 12 realistic per-network routing tables,
//   2. runs real traffic through the cycle-level pipeline simulator for the
//      separate and merged data planes, verifying every lookup against the
//      routing tables,
//   3. prices the three deployments (power, energy per year, efficiency).
//
// Run: ./build/examples/edge_consolidation
#include <iostream>

#include "common/table.hpp"
#include "core/estimator.hpp"
#include "netbase/traffic.hpp"
#include "pipeline/router.hpp"
#include "power/efficiency.hpp"

namespace {

constexpr std::size_t kNetworks = 12;
constexpr std::size_t kStages = 28;
constexpr double kHoursPerYear = 24.0 * 365.0;
constexpr double kUsdPerKwh = 0.15;

double annual_cost_usd(double watts) {
  return watts / 1000.0 * kHoursPerYear * kUsdPerKwh;
}

}  // namespace

int main() {
  using namespace vr;

  // --- Realize the consolidated workload (12 correlated edge tables). ---
  core::Scenario scenario;
  scenario.scheme = power::Scheme::kMerged;
  scenario.vn_count = kNetworks;
  scenario.alpha = 0.6;  // realistic regional overlap
  scenario.merged_source = core::MergedSource::kStructural;
  scenario.table_profile.prefix_count = 1500;  // small edge PoPs
  const core::Workload workload = core::realize_workload(scenario);
  std::cout << "Built " << workload.tables.size()
            << " edge tables; structural merge measured alpha = "
            << TextTable::num(workload.alpha_used, 3) << "\n\n";

  // --- Functional check: drive real traffic through both data planes. ---
  std::vector<const net::RoutingTable*> table_ptrs;
  for (const auto& t : workload.tables) table_ptrs.push_back(&t);
  net::TrafficConfig traffic_config;
  traffic_config.cycles = 50000;
  traffic_config.load = 0.8;
  traffic_config.duty_on_fraction = 0.35;  // low-duty edge networks
  const net::TrafficGenerator traffic(traffic_config, table_ptrs);
  const auto trace = traffic.generate(2026);

  std::vector<pipeline::TrieView> views;
  for (const auto& t : workload.tries) views.emplace_back(t);
  pipeline::SeparateRouter separate(views, kStages);
  pipeline::MergedRouter merged(*workload.merged_trie, kStages);

  std::size_t mismatches = 0;
  for (auto* router :
       std::initializer_list<pipeline::VirtualRouter*>{&separate, &merged}) {
    const pipeline::SimulationResult sim = run_trace(*router, trace);
    for (const pipeline::LookupResult& r : sim.results) {
      if (r.next_hop !=
          workload.tables[r.packet.vnid].lookup(r.packet.addr)) {
        ++mismatches;
      }
    }
  }
  std::cout << "Simulated " << 2 * trace.size()
            << " lookups across both data planes; mismatches vs the "
               "routing tables: "
            << mismatches << "\n\n";

  // --- Price the three deployments. ---
  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};
  TextTable table("Consolidating " + std::to_string(kNetworks) +
                  " edge networks (grade -2)");
  table.set_header({"scheme", "devices", "power W", "USD/year", "Gbps",
                    "mW/Gbps", "fits"});
  for (const auto scheme :
       {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
        power::Scheme::kMerged}) {
    core::Scenario s = scenario;
    s.scheme = scheme;
    const core::Estimate est = estimator.estimate(s, workload);
    table.add_row({power::to_string(scheme),
                   std::to_string(est.power.devices),
                   TextTable::num(est.power.total_w().value(), 2),
                   TextTable::num(annual_cost_usd(est.power.total_w().value()), 0),
                   TextTable::num(est.throughput_gbps.value(), 0),
                   TextTable::num(est.mw_per_gbps.value(), 2),
                   est.fit.fits ? "yes" : "NO"});
  }
  table.render(std::cout);

  const double nv_w =
      estimator
          .estimate(
              [&] {
                core::Scenario s = scenario;
                s.scheme = power::Scheme::kNonVirtualized;
                return s;
              }(),
              workload)
          .power.total_w()
          .value();
  const double vs_w =
      estimator
          .estimate(
              [&] {
                core::Scenario s = scenario;
                s.scheme = power::Scheme::kSeparate;
                return s;
              }(),
              workload)
          .power.total_w()
          .value();
  std::cout << "\nConsolidation saves "
            << TextTable::num(annual_cost_usd(nv_w - vs_w), 0)
            << " USD/year in energy alone (separate scheme vs " << kNetworks
            << " dedicated devices).\n";
  return 0;
}
