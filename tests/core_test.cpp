#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/validator.hpp"
#include "core/workload.hpp"

namespace vr::core {
namespace {

Scenario base_scenario(power::Scheme scheme, std::size_t k,
                       fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2) {
  Scenario s;
  s.scheme = scheme;
  s.vn_count = k;
  s.grade = grade;
  return s;
}

// A smaller profile keeps the structural tests fast.
net::TableProfile small_profile() {
  net::TableProfile profile;
  profile.prefix_count = 600;
  return profile;
}

// ---------------------------------------------------------------- workload --

TEST(WorkloadTest, RepresentativeEngineHas28Stages) {
  const Workload w = realize_workload(base_scenario(power::Scheme::kSeparate,
                                                    4));
  EXPECT_EQ(w.per_vn_engine.stage_count(), 28u);
  EXPECT_EQ(w.prefix_count, 3725u);
  EXPECT_TRUE(w.merged_engine.stage_bits.empty());
  EXPECT_TRUE(w.tables.empty());  // analytic mode keeps nothing
}

TEST(WorkloadTest, MergedAnalyticUsesScenarioAlpha) {
  Scenario s = base_scenario(power::Scheme::kMerged, 6);
  s.alpha = 0.35;
  const Workload w = realize_workload(s);
  EXPECT_DOUBLE_EQ(w.alpha_used, 0.35);
  EXPECT_EQ(w.merged_engine.stage_count(), 28u);
  EXPECT_GT(w.merged_engine.stage_bits[20], 0u);
}

TEST(WorkloadTest, MergedMemoryShrinksWithAlpha) {
  Scenario lo = base_scenario(power::Scheme::kMerged, 8);
  lo.alpha = 0.2;
  Scenario hi = lo;
  hi.alpha = 0.8;
  const Workload wlo = realize_workload(lo);
  const Workload whi = realize_workload(hi);
  std::uint64_t lo_total = 0;
  std::uint64_t hi_total = 0;
  for (const auto b : wlo.merged_engine.stage_bits) lo_total += b;
  for (const auto b : whi.merged_engine.stage_bits) hi_total += b;
  EXPECT_GT(lo_total, hi_total);
}

TEST(WorkloadTest, StructuralModeBuildsTablesAndMeasuresAlpha) {
  Scenario s = base_scenario(power::Scheme::kMerged, 3);
  s.merged_source = MergedSource::kStructural;
  s.alpha = 0.5;
  s.table_profile = small_profile();
  const Workload w = realize_workload(s);
  EXPECT_EQ(w.tables.size(), 3u);
  EXPECT_EQ(w.tries.size(), 3u);
  ASSERT_TRUE(w.merged_trie.has_value());
  EXPECT_EQ(w.merged_trie->vn_count(), 3u);
  EXPECT_NEAR(w.alpha_used, 0.5, 0.1);
}

TEST(WorkloadTest, KeepTablesForcesArtifacts) {
  Scenario s = base_scenario(power::Scheme::kSeparate, 2);
  s.table_profile = small_profile();
  const Workload w = realize_workload(s, /*keep_tables=*/true);
  EXPECT_EQ(w.tables.size(), 2u);
  ASSERT_TRUE(w.merged_trie.has_value());
}

TEST(WorkloadTest, DeterministicInSeed) {
  Scenario s = base_scenario(power::Scheme::kMerged, 4);
  const Workload a = realize_workload(s);
  const Workload b = realize_workload(s);
  EXPECT_EQ(a.per_vn_engine.stage_bits, b.per_vn_engine.stage_bits);
  EXPECT_EQ(a.merged_engine.stage_bits, b.merged_engine.stage_bits);
}

// --------------------------------------------------------------- estimator --

class EstimatorTest : public ::testing::Test {
 protected:
  fpga::DeviceSpec device_ = fpga::DeviceSpec::xc6vlx760();
  PowerEstimator estimator_{device_};
};

TEST_F(EstimatorTest, NvPowerScalesLinearlyWithK) {
  std::vector<double> totals;
  for (std::size_t k : {1u, 5u, 10u, 15u}) {
    totals.push_back(
        estimator_.estimate(base_scenario(power::Scheme::kNonVirtualized, k))
            .power.total_w()
            .value());
  }
  // Slope ≈ one device's leakage (4.5 W) as in Fig. 5.
  const double slope = (totals[3] - totals[0]) / 14.0;
  EXPECT_NEAR(slope, 4.5, 0.2);
}

TEST_F(EstimatorTest, VirtualizedPowerIsRoughlyFlatInK) {
  const double p2 =
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 2))
          .power.total_w()
          .value();
  const double p15 =
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 15))
          .power.total_w()
          .value();
  EXPECT_LT(std::fabs(p15 - p2), 0.5);  // watts, vs ~60 W swing for NV
}

TEST_F(EstimatorTest, SavingsProportionalToK) {
  // The paper's headline: virtualizing saves power proportional to K.
  for (std::size_t k : {4u, 8u, 15u}) {
    const double nv =
        estimator_.estimate(base_scenario(power::Scheme::kNonVirtualized, k))
            .power.total_w()
            .value();
    const double vs =
        estimator_.estimate(base_scenario(power::Scheme::kSeparate, k))
            .power.total_w()
            .value();
    EXPECT_NEAR(nv / vs, static_cast<double>(k), 0.18 * static_cast<double>(k));
  }
}

TEST_F(EstimatorTest, MergedClockDegradesWithK) {
  Scenario s = base_scenario(power::Scheme::kMerged, 2);
  s.alpha = 0.2;
  const double f2 = estimator_.estimate(s).freq_mhz.value();
  s.vn_count = 15;
  const double f15 = estimator_.estimate(s).freq_mhz.value();
  EXPECT_LT(f15, 0.75 * f2);  // Sec. VI-B "decreases significantly"
}

TEST_F(EstimatorTest, SeparateClockStaysHigh) {
  const double f1 =
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 1))
          .freq_mhz.value();
  const double f15 =
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 15))
          .freq_mhz.value();
  EXPECT_GT(f15, 0.8 * f1);
}

TEST_F(EstimatorTest, EfficiencyOrderingMatchesFig8) {
  // VS best, NV second, VM worst (Sec. VI-B).
  for (std::size_t k : {4u, 8u, 15u}) {
    const double vs =
        estimator_.estimate(base_scenario(power::Scheme::kSeparate, k))
            .mw_per_gbps.value();
    const double nv =
        estimator_.estimate(base_scenario(power::Scheme::kNonVirtualized, k))
            .mw_per_gbps.value();
    Scenario vm = base_scenario(power::Scheme::kMerged, k);
    vm.alpha = 0.8;
    const double vm80 = estimator_.estimate(vm).mw_per_gbps.value();
    EXPECT_LT(vs, nv);
    EXPECT_LT(nv, vm80);
  }
}

TEST_F(EstimatorTest, LowAlphaMergedWorseThanHighAlpha) {
  Scenario s = base_scenario(power::Scheme::kMerged, 10);
  s.alpha = 0.8;
  const Estimate hi = estimator_.estimate(s);
  s.alpha = 0.2;
  const Estimate lo = estimator_.estimate(s);
  EXPECT_GT(lo.mw_per_gbps.value(), hi.mw_per_gbps.value());
  EXPECT_GT(lo.power.memory_w.value(), hi.power.memory_w.value());
  EXPECT_LT(lo.freq_mhz.value(), hi.freq_mhz.value());
}

TEST_F(EstimatorTest, SeparateFitsExactlyFifteenVns) {
  EXPECT_TRUE(
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 15))
          .fit.fits);
  EXPECT_FALSE(
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 16))
          .fit.io_ok);
}

TEST_F(EstimatorTest, RequestedFrequencyHonored) {
  Scenario s = base_scenario(power::Scheme::kSeparate, 4);
  s.freq_mhz = units::Megahertz{123.0};
  const Estimate est = estimator_.estimate(s);
  EXPECT_DOUBLE_EQ(est.freq_mhz.value(), 123.0);
  EXPECT_DOUBLE_EQ(est.power.freq_mhz.value(), 123.0);
}

TEST_F(EstimatorTest, MinusOneLPowerThirtyPercentLower) {
  const Estimate hi =
      estimator_.estimate(base_scenario(power::Scheme::kSeparate, 8));
  const Estimate lo = estimator_.estimate(
      base_scenario(power::Scheme::kSeparate, 8, fpga::SpeedGrade::kMinus1L));
  const double saving = 1.0 - lo.power.total_w() / hi.power.total_w();
  EXPECT_NEAR(saving, 0.30, 0.06);  // Sec. VI-B
  // ...at similar mW/Gbps (low-power grade trades clock for power).
  EXPECT_NEAR(lo.mw_per_gbps / hi.mw_per_gbps, 1.0, 0.12);
}

// -------------------------------------------------------------- experiment --

class ExperimentTest : public ::testing::Test {
 protected:
  fpga::DeviceSpec device_ = fpga::DeviceSpec::xc6vlx760();
  ExperimentRunner runner_{device_};
  PowerEstimator estimator_{device_};
};

TEST_F(ExperimentTest, ExperimentAndModelShareClock) {
  for (const auto scheme :
       {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
        power::Scheme::kMerged}) {
    const Scenario s = base_scenario(scheme, 6);
    const Workload w = realize_workload(s);
    EXPECT_NEAR(runner_.run(s, w).freq_mhz.value(),
                estimator_.estimate(s, w).freq_mhz.value(), 1e-9)
        << power::to_string(scheme);
  }
}

TEST_F(ExperimentTest, NvUsesKDevices) {
  const ExperimentResult r =
      runner_.run(base_scenario(power::Scheme::kNonVirtualized, 7));
  EXPECT_EQ(r.power.devices, 7u);
  EXPECT_GT(r.power.static_w.value(), 6.0 * 4.0);
}

TEST_F(ExperimentTest, DeterministicRuns) {
  const Scenario s = base_scenario(power::Scheme::kMerged, 5);
  const ExperimentResult a = runner_.run(s);
  const ExperimentResult b = runner_.run(s);
  EXPECT_DOUBLE_EQ(a.power.total_w().value(), b.power.total_w().value());
}

TEST_F(ExperimentTest, VsExperimentalPowerDecreasesWithK) {
  // Fig. 6's observation: tool optimizations shave power as identical
  // engines are replicated, while the model stays flat.
  const double p2 = runner_.run(base_scenario(power::Scheme::kSeparate, 2))
                        .power.total_w()
                        .value();
  const double p15 = runner_.run(base_scenario(power::Scheme::kSeparate, 15))
                         .power.total_w()
                         .value();
  EXPECT_LT(p15, p2);
}

// --------------------------------------------------------------- validator --

class ValidatorTest : public ::testing::Test {
 protected:
  ModelValidator validator_{fpga::DeviceSpec::xc6vlx760()};
};

TEST_F(ValidatorTest, ErrorWithinPaperBound) {
  // The paper's headline validation: max |error| <= 3 % (Sec. VI-A).
  std::vector<Scenario> grid;
  for (const auto grade :
       {fpga::SpeedGrade::kMinus2, fpga::SpeedGrade::kMinus1L}) {
    for (std::size_t k : {1u, 4u, 8u, 15u}) {
      grid.push_back(
          base_scenario(power::Scheme::kNonVirtualized, k, grade));
      grid.push_back(base_scenario(power::Scheme::kSeparate, k, grade));
      Scenario vm = base_scenario(power::Scheme::kMerged, k, grade);
      vm.alpha = 0.8;
      grid.push_back(vm);
      vm.alpha = 0.2;
      grid.push_back(vm);
    }
  }
  const auto points = validator_.validate_all(grid);
  EXPECT_LE(ModelValidator::max_abs_error_pct(points), 3.0);
}

TEST_F(ValidatorTest, ErrorSignsAndComponents) {
  const ValidationPoint p =
      validator_.validate(base_scenario(power::Scheme::kSeparate, 8));
  EXPECT_NE(p.error_total_pct, 0.0);  // effects are on by default
  EXPECT_GT(p.model.power.total_w().value(), 0.0);
  EXPECT_GT(p.experiment.power.total_w().value(), 0.0);
  // Total error is a power-weighted blend of the component errors.
  const double lo = std::min(p.error_static_pct, p.error_dynamic_pct);
  const double hi = std::max(p.error_static_pct, p.error_dynamic_pct);
  EXPECT_GE(p.error_total_pct, lo - 1e-9);
  EXPECT_LE(p.error_total_pct, hi + 1e-9);
}

TEST_F(ValidatorTest, MergedErrorExceedsNonVirtualized) {
  // Sec. VI-A: "for non-virtualized and virtualized-separate, the error is
  // much less compared to that of virtualized-merged".
  Scenario vm = base_scenario(power::Scheme::kMerged, 12);
  vm.alpha = 0.2;
  const double vm_err =
      std::fabs(validator_.validate(vm).error_total_pct);
  const double nv_err = std::fabs(
      validator_
          .validate(base_scenario(power::Scheme::kNonVirtualized, 12))
          .error_total_pct);
  EXPECT_GT(vm_err, nv_err);
}

TEST_F(ValidatorTest, ZeroEffectsGiveNearZeroError) {
  const fpga::PnrEffects none{0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0};
  const ModelValidator exact(fpga::DeviceSpec::xc6vlx760(), none);
  for (const auto scheme :
       {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
        power::Scheme::kMerged}) {
    const ValidationPoint p = exact.validate(base_scenario(scheme, 6));
    EXPECT_NEAR(p.error_total_pct, 0.0, 1e-6) << power::to_string(scheme);
  }
}

}  // namespace
}  // namespace vr::core
