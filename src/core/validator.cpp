#include "core/validator.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "core/sweep.hpp"

namespace vr::core {

ModelValidator::ModelValidator(fpga::DeviceSpec device,
                               fpga::PnrEffects effects,
                               fpga::FreqModelParams freq_params)
    : estimator_(device, freq_params),
      runner_(std::move(device), effects, freq_params) {}

ValidationPoint ModelValidator::validate(const Scenario& scenario) const {
  const Workload workload = realize_workload(scenario);
  return validate(scenario, workload);
}

ValidationPoint ModelValidator::validate(const Scenario& scenario,
                                         const Workload& workload) const {
  ValidationPoint point;
  point.scenario = scenario;
  point.model = estimator_.estimate(scenario, workload);
  point.experiment = runner_.run(scenario, workload);
  point.error_total_pct =
      percentage_error(point.model.power.total_w().value(),
                       point.experiment.power.total_w().value());
  point.error_static_pct =
      percentage_error(point.model.power.static_w.value(),
                       point.experiment.power.static_w.value());
  point.error_dynamic_pct =
      percentage_error(point.model.power.dynamic_w().value(),
                       point.experiment.power.dynamic_w().value());
  return point;
}

std::vector<ValidationPoint> ModelValidator::validate_all(
    const std::vector<Scenario>& scenarios, std::size_t threads) const {
  const SweepRunner runner(threads);
  return runner.map(scenarios.size(), [&](std::size_t i) {
    return validate(scenarios[i]);
  });
}

double ModelValidator::max_abs_error_pct(
    const std::vector<ValidationPoint>& points) {
  double worst = 0.0;
  for (const ValidationPoint& p : points) {
    worst = std::max(worst, std::fabs(p.error_total_pct));
  }
  return worst;
}

}  // namespace vr::core
