// MUST NOT COMPILE: MHz * MHz has no meaning in this model; only the
// pJ/cycle * MHz coefficient identity is defined.
#include "common/units.hpp"

int main() {
  const auto nonsense =
      vr::units::Megahertz{400.0} * vr::units::Megahertz{400.0};
  return static_cast<int>(nonsense.value());
}
