# Empty compiler generated dependencies file for fpga_extras_test.
# This may be replaced when dependencies are built.
