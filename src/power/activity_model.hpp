// The activity-driven dynamic-power backend (DESIGN.md §13): charges a
// per-event energy for every discrete event the dataplane counted, in the
// Orion/hornet style, instead of scaling full-engine power by a per-VN
// utilization scalar. Every coefficient derives from the same XPE tables
// the analytical model uses, so on a uniform trace the two backends must
// agree; on shaped traffic the divergence is the measurement.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "fpga/xpe_tables.hpp"
#include "power/power_model.hpp"

namespace vr::power {

/// Energy charged per discrete dataplane event. Defaults derive from the
/// XPE tables at the operating point's speed grade (`from_xpe`): a queue
/// access costs one 18 Kb BRAM cycle, a header parse / rewrite and a
/// crossbar traversal each cost one logic-stage cycle, and a DRR grant —
/// comparator-and-accumulator logic, roughly half a PE stage — costs half
/// of one.
struct EventEnergies {
  units::Picojoules buffer_read_pj;
  units::Picojoules buffer_write_pj;
  units::Picojoules parser_pj;
  units::Picojoules crossbar_pj;
  units::Picojoules arbiter_pj;
  units::Picojoules editor_pj;

  [[nodiscard]] static EventEnergies from_xpe(fpga::SpeedGrade grade) noexcept;
};

/// The activity backend's full answer. `per_vn_w` is the lookup-core
/// dynamic power (logic + memory, charged per busy stage-cycle) — the
/// quantity directly comparable with MuModel::per_vn_dynamic_w. Everything
/// else is refinement the µ-model cannot express: the clock-gating-aware
/// memory figure (only stages that actually read charge BRAM energy) and
/// the non-lookup overheads (parser, buffers, crossbar, arbiter, editor).
struct ActivityPower {
  /// Lookup-core (logic + memory) watts per VN, busy-charged.
  std::vector<units::Watts> per_vn_w;
  /// Non-lookup event watts per VN (parser + buffers + crossbar + arbiter
  /// + editor).
  std::vector<units::Watts> per_vn_overhead_w;

  units::Watts logic_w;
  units::Watts memory_w;
  /// Memory charged per *actual read* (stage_reads) instead of per busy
  /// cycle: what fine-grained BRAM-enable gating would save.
  units::Watts memory_gated_w;

  units::Watts parser_w;
  units::Watts buffer_w;
  units::Watts crossbar_w;
  units::Watts arbiter_w;
  units::Watts editor_w;

  units::Cycles cycles;
  units::Megahertz freq_mhz;

  [[nodiscard]] units::Watts core_w() const noexcept {
    return logic_w + memory_w;
  }
  [[nodiscard]] units::Watts overhead_w() const noexcept {
    return parser_w + buffer_w + crossbar_w + arbiter_w + editor_w;
  }
  [[nodiscard]] units::Watts dynamic_w() const noexcept {
    return core_w() + overhead_w();
  }
};

/// Per-event energy accounting over measured ActivityCounters. Requires
/// ctx.activity; stage counts must match the context's engine specs.
class ActivityModel final : public DynamicPowerModel {
 public:
  /// Charges `energies` per overhead event; when unset, energies derive
  /// from the operating point's speed grade at estimate time.
  explicit ActivityModel(std::optional<EventEnergies> energies = std::nullopt)
      : energies_(energies) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "activity-events";
  }

  [[nodiscard]] std::vector<units::Watts> per_vn_dynamic_w(
      const ModelContext& ctx) const override;

  /// The rich entry point: every component the counters can resolve.
  [[nodiscard]] ActivityPower estimate(const ModelContext& ctx) const;

 private:
  std::optional<EventEnergies> energies_;
};

}  // namespace vr::power
