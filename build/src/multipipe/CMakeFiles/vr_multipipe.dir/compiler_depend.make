# Empty compiler generated dependencies file for vr_multipipe.
# This may be replaced when dependencies are built.
