#include "trie/stage_mapping.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::trie {

StageMapping::StageMapping(std::size_t level_count, std::size_t stage_count,
                           MappingPolicy policy)
    : stage_count_(stage_count) {
  VR_REQUIRE(stage_count > 0, "pipeline needs at least one stage");
  VR_REQUIRE(level_count > 0, "trie has at least the root level");
  stage_of_level_.resize(level_count);
  switch (policy) {
    case MappingPolicy::kOneLevelPerStage: {
      if (level_count > stage_count) {
        throw CapacityError(
            "trie of " + std::to_string(level_count) +
            " levels does not fit a " + std::to_string(stage_count) +
            "-stage pipeline with one level per stage; use kCoalesce");
      }
      for (std::size_t l = 0; l < level_count; ++l) stage_of_level_[l] = l;
      max_levels_per_stage_ = 1;
      break;
    }
    case MappingPolicy::kCoalesce: {
      // Distribute `level_count` levels over min(level_count, stage_count)
      // stages in contiguous, near-equal runs.
      const std::size_t used = std::min(level_count, stage_count);
      const std::size_t base = level_count / used;
      const std::size_t extra = level_count % used;
      std::size_t level = 0;
      for (std::size_t s = 0; s < used; ++s) {
        const std::size_t run = base + (s < extra ? 1 : 0);
        for (std::size_t i = 0; i < run; ++i) stage_of_level_[level++] = s;
        max_levels_per_stage_ = std::max(max_levels_per_stage_, run);
      }
      break;
    }
  }
}

std::size_t StageMapping::stage_of(std::size_t level) const {
  VR_REQUIRE(level < stage_of_level_.size(), "level out of range");
  return stage_of_level_[level];
}

std::pair<std::size_t, std::size_t> StageMapping::levels_of(
    std::size_t stage) const {
  VR_REQUIRE(stage < stage_count_, "stage out of range");
  const auto first = std::find(stage_of_level_.begin(), stage_of_level_.end(),
                               stage);
  if (first == stage_of_level_.end()) return {0, 0};
  auto last = first;
  while (last != stage_of_level_.end() && *last == stage) ++last;
  return {static_cast<std::size_t>(first - stage_of_level_.begin()),
          static_cast<std::size_t>(last - stage_of_level_.begin())};
}

StageOccupancy occupancy(const TrieStats& stats, const StageMapping& mapping) {
  VR_REQUIRE(stats.nodes_per_level.size() == mapping.level_count(),
             "mapping was built for a different trie");
  StageOccupancy occ;
  occ.nodes.assign(mapping.stage_count(), 0);
  occ.internal_nodes.assign(mapping.stage_count(), 0);
  occ.leaf_nodes.assign(mapping.stage_count(), 0);
  for (std::size_t l = 0; l < stats.nodes_per_level.size(); ++l) {
    const std::size_t s = mapping.stage_of(l);
    occ.nodes[s] += stats.nodes_per_level[l];
    occ.internal_nodes[s] += stats.internal_per_level[l];
    occ.leaf_nodes[s] += stats.leaves_per_level[l];
  }
  return occ;
}

}  // namespace vr::trie
