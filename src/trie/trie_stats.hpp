// Structural statistics of a trie — the quantities the power models consume
// (node counts per level, pointer vs. NHI nodes) and the numbers Sec. V-E
// of the paper reports (3 725 prefixes -> 9 726 nodes -> 16 127 leaf-pushed).
#pragma once

#include <cstddef>
#include <vector>

#include "trie/unibit_trie.hpp"

namespace vr::trie {

struct TrieStats {
  std::size_t total_nodes = 0;
  std::size_t internal_nodes = 0;  // pointer nodes (have >=1 child)
  std::size_t leaf_nodes = 0;      // NHI nodes
  unsigned height = 0;
  /// Nodes per level, internal and leaf separately. Size = height+1.
  std::vector<std::size_t> nodes_per_level;
  std::vector<std::size_t> internal_per_level;
  std::vector<std::size_t> leaves_per_level;

  /// total_nodes / prefix_count given the source table size.
  [[nodiscard]] double nodes_per_prefix(std::size_t prefix_count) const {
    return prefix_count == 0
               ? 0.0
               : static_cast<double>(total_nodes) /
                     static_cast<double>(prefix_count);
  }
};

/// Computes statistics in one pass over the (level-ordered) node array.
[[nodiscard]] TrieStats compute_stats(const UnibitTrie& trie);

}  // namespace vr::trie
