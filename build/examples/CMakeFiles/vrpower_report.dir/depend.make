# Empty dependencies file for vrpower_report.
# This may be replaced when dependencies are built.
