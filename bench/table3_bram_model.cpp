// Regenerates paper Table III: the BRAM power model, and cross-checks the
// closed form (⌈M/size⌉ · coeff · f) against the PnR simulator's
// block-level accounting for a sweep of memory sizes.
#include "bench_common.hpp"
#include "common/bitops.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/xpe_tables.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  using fpga::BramKind;
  using fpga::SpeedGrade;
  bench::handle_metrics_flag(argc, argv);

  TextTable table("Table III - BRAM power model (uW at f MHz)");
  table.set_header({"setup", "model", "coefficient uW/MHz"});
  const struct {
    BramKind kind;
    SpeedGrade grade;
  } rows[] = {{BramKind::k18, SpeedGrade::kMinus2},
              {BramKind::k36, SpeedGrade::kMinus2},
              {BramKind::k18, SpeedGrade::kMinus1L},
              {BramKind::k36, SpeedGrade::kMinus1L}};
  for (const auto& row : rows) {
    const double c =
        fpga::XpeTables::bram_uw_per_mhz(row.kind, row.grade).value();
    table.add_row({std::string(to_string(row.kind)) + " (" +
                       fpga::to_string(row.grade) + ")",
                   "ceil(M/" + std::string(to_string(row.kind)) + ") x " +
                       TextTable::num(c, 2) + " x f",
                   TextTable::num(c, 2)});
  }
  vr::bench::emit(table);

  // Cross-check: closed form vs block-level allocation power at 400 MHz.
  SeriesTable check("Closed form vs allocator (36Kb-only, -2, 400 MHz, W)",
                    "memory_kbits", {"closed form", "allocator"});
  for (std::uint64_t kbits = 9; kbits <= 720; kbits += 54) {
    const std::uint64_t bits = kbits * 1024;
    const double closed =
        units::uw_to_w(static_cast<double>(ceil_div(bits, 36 * 1024)) *
                       24.60 * 400.0);
    const auto alloc = fpga::allocate_bram(bits, fpga::BramPolicy::k36Only);
    const double from_alloc =
        alloc.power_w(SpeedGrade::kMinus2, units::Megahertz{400.0}).value();
    check.add_point(static_cast<double>(kbits), {closed, from_alloc});
  }
  vr::bench::emit(check);
  return 0;
}
