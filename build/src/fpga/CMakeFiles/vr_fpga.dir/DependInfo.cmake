
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bram.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/bram.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/bram.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/distram.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/distram.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/distram.cpp.o.d"
  "/root/repo/src/fpga/freq_model.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/freq_model.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/freq_model.cpp.o.d"
  "/root/repo/src/fpga/pnr_sim.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/pnr_sim.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/pnr_sim.cpp.o.d"
  "/root/repo/src/fpga/thermal.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/thermal.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/thermal.cpp.o.d"
  "/root/repo/src/fpga/xpe_tables.cpp" "src/fpga/CMakeFiles/vr_fpga.dir/xpe_tables.cpp.o" "gcc" "src/fpga/CMakeFiles/vr_fpga.dir/xpe_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
