#include "power/power_model.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace vr::power {

std::vector<double> resolve_mu(const ModelContext& ctx) {
  VR_REQUIRE(ctx.vn_count >= 1, "model context needs at least one VN");
  if (ctx.op.utilization.empty()) {
    return std::vector<double>(ctx.vn_count,
                               1.0 / static_cast<double>(ctx.vn_count));
  }
  VR_REQUIRE(ctx.op.utilization.size() == ctx.vn_count,
             "utilization vector size must equal the VN count");
  for (const double u : ctx.op.utilization) {
    VR_REQUIRE(u >= 0.0 && u <= 1.0, "utilization must be in [0,1]");
  }
  return ctx.op.utilization;
}

MuModel::MuModel(fpga::DeviceSpec device) : model_(std::move(device)) {}

std::vector<units::Watts> MuModel::per_vn_dynamic_w(
    const ModelContext& ctx) const {
  const std::vector<double> mu = resolve_mu(ctx);
  std::vector<units::Watts> out(ctx.vn_count);
  if (ctx.scheme == Scheme::kMerged) {
    VR_REQUIRE(ctx.merged_engine != nullptr,
               "merged scheme needs a merged engine spec");
    // Eq. 6: one engine at the aggregate utilization; each VN's share of
    // the time-shared engine is its share of the offered load.
    units::Watts per_pass;  // one packet's worth: every stage, full power
    for (const std::uint64_t bits : ctx.merged_engine->stage_bits) {
      per_pass += model_.stage_logic_power_w(ctx.op);
      per_pass += model_.stage_memory_power_w(units::Bits{bits}, ctx.op);
    }
    const double offered = std::accumulate(mu.begin(), mu.end(), 0.0);
    const double served = std::min(1.0, offered);
    for (std::size_t i = 0; i < ctx.vn_count; ++i) {
      const double share = offered <= 0.0 ? 0.0 : mu[i] / offered;
      out[i] = per_pass * (served * share);
    }
    return out;
  }
  // Eqs. 2/4 (NV and VS share the dynamic term): VN i's dedicated engine
  // at µ_i.
  VR_REQUIRE(ctx.engines.size() == ctx.vn_count,
             "separate schemes need one engine spec per VN");
  for (std::size_t i = 0; i < ctx.vn_count; ++i) {
    units::Watts engine_w;
    for (const std::uint64_t bits : ctx.engines[i].stage_bits) {
      engine_w += model_.stage_logic_power_w(ctx.op);
      engine_w += model_.stage_memory_power_w(units::Bits{bits}, ctx.op);
    }
    out[i] = engine_w * mu[i];
  }
  return out;
}

PowerBreakdown MuModel::breakdown(const ModelContext& ctx) const {
  switch (ctx.scheme) {
    case Scheme::kNonVirtualized:
      return model_.estimate_nv(ctx.engines, ctx.op);
    case Scheme::kSeparate:
      return model_.estimate_vs(ctx.engines, ctx.op);
    case Scheme::kMerged:
      VR_REQUIRE(ctx.merged_engine != nullptr,
                 "merged scheme needs a merged engine spec");
      return model_.estimate_vm(*ctx.merged_engine, ctx.vn_count, ctx.op);
  }
  VR_REQUIRE(false, "unknown scheme");
  return {};
}

}  // namespace vr::power
