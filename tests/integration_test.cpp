// End-to-end shape tests: run every figure builder and assert the
// qualitative structure of the paper's results (who wins, what grows,
// where the error stays bounded) — the reproduction contract listed in
// DESIGN.md Sec. 6.
#include <gtest/gtest.h>

#include <cmath>

#include "core/figures.hpp"

namespace vr::core {
namespace {

class FigureShapes : public ::testing::Test {
 protected:
  static FigureOptions options() {
    FigureOptions opt;
    // A lighter table keeps the full-sweep test fast; the shapes are
    // size-independent (the bench binaries run the paper-sized table).
    opt.table_profile.prefix_count = 1200;
    return opt;
  }

  FigureBuilder builder_{fpga::DeviceSpec::xc6vlx760(), options()};
};

TEST_F(FigureShapes, Fig2BramPowerShape) {
  const SeriesTable fig = builder_.fig2_bram_power();
  ASSERT_EQ(fig.point_count(), 9u);  // 100..500 step 50
  const auto k18m2 = fig.series(0);
  const auto k36m2 = fig.series(1);
  const auto k18m1l = fig.series(2);
  const auto k36m1l = fig.series(3);
  for (std::size_t i = 0; i < fig.point_count(); ++i) {
    // 36 Kb blocks burn more than 18 Kb; -1L less than -2 (Fig. 2).
    EXPECT_GT(k36m2[i], k18m2[i]);
    EXPECT_LT(k18m1l[i], k18m2[i]);
    EXPECT_LT(k36m1l[i], k36m2[i]);
    if (i > 0) {
      EXPECT_GT(k18m2[i], k18m2[i - 1]);  // monotone in frequency
    }
  }
  // Linearity: value at 500 MHz = 5x value at 100 MHz.
  EXPECT_NEAR(k36m2.back() / k36m2.front(), 5.0, 1e-9);
  // Absolute anchor: 36Kb(-2) at 500 MHz = 24.6 µW/MHz * 500 = 12.3 mW.
  EXPECT_NEAR(k36m2.back(), 12.3, 1e-9);
}

TEST_F(FigureShapes, Fig3LogicPowerShape) {
  const SeriesTable fig = builder_.fig3_logic_power();
  const auto m2 = fig.series(0);
  const auto m1l = fig.series(1);
  for (std::size_t i = 0; i < fig.point_count(); ++i) {
    EXPECT_LT(m1l[i], m2[i]);
  }
  // Anchor: 5.18 µW/MHz * 500 MHz = 2.59 mW (Fig. 3 tops out ~2.5 mW).
  EXPECT_NEAR(m2.back(), 2.59, 1e-9);
  EXPECT_NEAR(m1l.back(), 1.9685, 1e-9);
}

TEST_F(FigureShapes, Fig4MemoryShape) {
  const FigureBuilder::Fig4 fig = builder_.fig4_memory();
  const auto ptr_vm80 = fig.pointer_memory.series(0);
  const auto ptr_vm20 = fig.pointer_memory.series(1);
  const auto ptr_vs = fig.pointer_memory.series(2);
  const auto nhi_vm80 = fig.nhi_memory.series(0);
  const auto nhi_vm20 = fig.nhi_memory.series(1);
  const auto nhi_vs = fig.nhi_memory.series(2);
  ASSERT_EQ(ptr_vs.size(), 30u);
  for (std::size_t i = 1; i < ptr_vs.size(); ++i) {
    // Pointer memory: high overlap saves most; separate is worst and
    // exactly linear (Fig. 4 left).
    EXPECT_LT(ptr_vm80[i], ptr_vm20[i]);
    EXPECT_LT(ptr_vm20[i], ptr_vs[i]);
    // NHI memory: merged vector leaves exceed separate (Fig. 4 right).
    EXPECT_GT(nhi_vm20[i], nhi_vs[i]);
    EXPECT_GT(nhi_vm20[i], nhi_vm80[i] * 0.999);
    EXPECT_GE(nhi_vm80[i], nhi_vs[i] * 0.999);
  }
  // Separate grows exactly linearly with K.
  EXPECT_NEAR(ptr_vs[29] / ptr_vs[0], 30.0, 1e-6);
  // α=80 % pointer memory saturates: "pointer saving becomes less and less
  // effective as the number of virtual routers increase" — the K=30 value
  // stays far below separate.
  EXPECT_LT(ptr_vm80[29], 0.2 * ptr_vs[29]);
}

TEST_F(FigureShapes, Fig5TotalPowerShape) {
  const SeriesTable fig =
      builder_.fig5_total_power(fpga::SpeedGrade::kMinus2);
  const auto nv_model = fig.series(0);
  const auto nv_exp = fig.series(1);
  const auto vs_model = fig.series(2);
  const auto vm20_model = fig.series(6);
  ASSERT_EQ(fig.point_count(), 15u);
  // NV grows linearly at ~4.5 W per added network (Fig. 5).
  const double slope = (nv_model[14] - nv_model[0]) / 14.0;
  EXPECT_NEAR(slope, 4.5, 0.25);
  // Virtualized schemes sit near one device's power for every K.
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_LT(vs_model[i], 6.0);
    EXPECT_LT(vm20_model[i], 7.5);
    EXPECT_NEAR(nv_exp[i] / nv_model[i], 1.0, 0.03);
  }
  // At K = 15 the savings are ~proportional to K.
  EXPECT_GT(nv_model[14] / vs_model[14], 10.0);
}

TEST_F(FigureShapes, Fig5MinusOneLThirtyPercentLower) {
  const SeriesTable m2 = builder_.fig5_total_power(fpga::SpeedGrade::kMinus2);
  const SeriesTable m1l =
      builder_.fig5_total_power(fpga::SpeedGrade::kMinus1L);
  const auto nv2 = m2.series(0);
  const auto nv1l = m1l.series(0);
  for (std::size_t i = 0; i < nv2.size(); ++i) {
    EXPECT_NEAR(1.0 - nv1l[i] / nv2[i], 0.30, 0.05);
  }
}

TEST_F(FigureShapes, Fig6VirtualizedExperimentalTrends) {
  const SeriesTable fig =
      builder_.fig6_virtualized_power(fpga::SpeedGrade::kMinus2);
  const auto vs = fig.series(0);
  const auto vm80 = fig.series(1);
  const auto vm20 = fig.series(2);
  // VS experimental decreases from K=1 to K=15 (tool optimizations).
  EXPECT_LT(vs[14], vs[0]);
  // Low-α merged overtakes VS as its memory balloons.
  EXPECT_GT(vm20[14], vs[14]);
  // All virtualized schemes stay within a ~1.5x band of one device.
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_GT(vs[i], 3.0);
    EXPECT_LT(vm20[i], 7.0);
    EXPECT_LT(vm80[i], vm20[i] + 0.2);
  }
}

TEST_F(FigureShapes, Fig7ErrorWithinThreePercentEverywhere) {
  for (const auto grade :
       {fpga::SpeedGrade::kMinus2, fpga::SpeedGrade::kMinus1L}) {
    const SeriesTable fig = builder_.fig7_model_error(grade);
    for (std::size_t s = 0; s < 4; ++s) {
      for (const double err : fig.series(s)) {
        EXPECT_LE(std::fabs(err), 3.0)
            << "grade " << fpga::to_string(grade) << " series " << s;
      }
    }
  }
}

TEST_F(FigureShapes, Fig8EfficiencyOrdering) {
  const SeriesTable fig = builder_.fig8_efficiency(fpga::SpeedGrade::kMinus2);
  const auto nv = fig.series(0);
  const auto vs = fig.series(1);
  const auto vm80 = fig.series(2);
  const auto vm20 = fig.series(3);
  for (std::size_t i = 1; i < 15; ++i) {  // K >= 2
    EXPECT_LT(vs[i], nv[i]);     // separate best (Sec. VI-B)
    EXPECT_GT(vm80[i], nv[i]);   // merged worst
    EXPECT_GE(vm20[i], vm80[i] * 0.98);  // low α no better than high α
  }
  // NV is ~flat; VM rises steeply with K (frequency loss + time sharing).
  EXPECT_NEAR(nv[14] / nv[1], 1.0, 0.15);
  // The rise steepens with table size (the paper-sized bench shows ~3x);
  // this reduced table still rises markedly.
  EXPECT_GT(vm20[14], 1.5 * vm20[1]);
  // VS improves with K (static amortized over K engines' throughput).
  EXPECT_LT(vs[14], vs[1]);
}

TEST_F(FigureShapes, Fig8GradesMatchInEfficiency) {
  // Sec. VI-B: "the two speed grades perform almost the same way" in
  // mW/Gbps.
  const SeriesTable m2 = builder_.fig8_efficiency(fpga::SpeedGrade::kMinus2);
  const SeriesTable m1l =
      builder_.fig8_efficiency(fpga::SpeedGrade::kMinus1L);
  for (std::size_t s = 0; s < 4; ++s) {
    const auto a = m2.series(s);
    const auto b = m1l.series(s);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(b[i] / a[i], 1.0, 0.12);
    }
  }
}

TEST_F(FigureShapes, TrieStatsTableRenders) {
  const TextTable table = builder_.table_trie_stats();
  EXPECT_GE(table.row_count(), 5u);
}

TEST(FigureStructural, StructuralModeReproducesAnalyticShapes) {
  // Run a small structural-mode sweep (real correlated tables, real
  // merges) and check the merged-memory ordering still holds.
  FigureOptions opt;
  opt.table_profile.prefix_count = 400;
  opt.merged_source = MergedSource::kStructural;
  const FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(), opt);
  const PowerEstimator& estimator = builder.validator().estimator();
  const Estimate hi = estimator.estimate(
      builder.sweep_scenario(power::Scheme::kMerged, 4, 0.8,
                             fpga::SpeedGrade::kMinus2));
  const Estimate lo = estimator.estimate(
      builder.sweep_scenario(power::Scheme::kMerged, 4, 0.2,
                             fpga::SpeedGrade::kMinus2));
  EXPECT_GT(lo.resources.pointer_bits, hi.resources.pointer_bits);
  EXPECT_GT(hi.alpha_used, lo.alpha_used);
}

}  // namespace
}  // namespace vr::core
