"""vrlint core — the check API, source-tree model and suppression rules.

vrlint is the project-native static-analysis framework (DESIGN.md §14).
Each check is a small Python module under ``checks/`` that registers a
``Check`` subclass; the driver loads every registered check, hands it the
parsed :class:`SourceTree`, and aggregates :class:`Finding` objects.

Design constraints, in order:

1. **Zero dependencies.** Pure stdlib python3, like every other tool in
   ``tools/``. The gate must run in the gcc-only container and in CI
   without a pip step.
2. **Project-shaped, not language-complete.** The checks encode *this*
   codebase's invariants over *this* codebase's style (clang-format'd,
   one declaration per line, ``//`` comments). They are line-oriented
   pattern checks with just enough structure (brace-depth function
   spans) to reason about "inside which function" — not a C++ parser.
   The fixture tests under ``tests/lint_fixtures/`` pin exactly what
   each check can and cannot see.
3. **Every suppression carries a reason.** An escape comment without a
   justification (``// narrow-ok`` with no text after the colon) is
   itself a violation — the annotation *is* the documentation.

Suppression comments (same line or the immediately preceding line):

    ==============  ===============================================
    tag             silences
    ==============  ===============================================
    units-ok        the units check (legacy tag, reason encouraged)
    det-ok          the determinism check
    narrow-ok       the narrowing check
    lock-ok         the lock-discipline check
    metric-ok       the metrics-registry check
    include-ok      the include-hygiene check
    ==============  ===============================================
"""

from __future__ import annotations

import dataclasses
import functools
import pathlib
import re
from typing import Callable, Iterable, Iterator

# Directories scanned relative to the root. Fixture trees mirror this
# layout, so running vrlint with --root tests/lint_fixtures exercises
# the same walking logic as the real tree.
SCAN_DIRS = ("src", "bench")

# Never scanned: deliberately-broken inputs of other gates.
EXCLUDE_PARTS = {"lint_fixtures", "compile_fail"}

# Suppression tags that must carry a ': reason'. 'units-ok' is exempt
# for backward compatibility with the pre-vrlint unit lint, though all
# in-tree uses do carry one.
REASON_REQUIRED_TAGS = ("det-ok", "narrow-ok", "lock-ok", "metric-ok",
                        "include-ok")

_SUPPRESS_RE = {
    tag: re.compile(r"//\s*" + re.escape(tag) + r"\b(:?)\s*(\S?)")
    for tag in REASON_REQUIRED_TAGS + ("units-ok",)
}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One violation: where, which check, and what to do about it."""
    check: str
    path: str        # path relative to the scanned root, posix separators
    line: int        # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclasses.dataclass
class FunctionSpan:
    """One function body located by brace counting.

    ``name`` is the last identifier before the parameter list's ``(`` on
    the header line (so ``NodeIndex checked_node_index(...)`` has name
    ``checked_node_index`` and ``void WorkloadCache::clear()`` has name
    ``clear``); ``qualifier`` keeps the ``Class::`` part when present.
    ``header_line``/``open_line``/``close_line`` are 1-based.
    """
    name: str
    qualifier: str
    header_line: int
    open_line: int
    close_line: int

    def contains(self, line: int) -> bool:
        return self.header_line <= line <= self.close_line


def strip_comment(line: str) -> str:
    """Drops a trailing // comment (good enough: the codebase has no
    string literals containing '//')."""
    return line.split("//", 1)[0]


class SourceFile:
    """One parsed source file with lazily computed structure."""

    def __init__(self, root: pathlib.Path, path: pathlib.Path):
        self.abs_path = path
        self.rel = path.relative_to(root).as_posix()
        self.lines = path.read_text(encoding="utf-8").splitlines()

    @property
    def top_dir(self) -> str:
        """First path component under the root ('src', 'bench', ...)."""
        return self.rel.split("/", 1)[0]

    @property
    def src_subdir(self) -> str:
        """'trie' for src/trie/foo.cpp, '' outside src/."""
        parts = self.rel.split("/")
        return parts[1] if parts[0] == "src" and len(parts) > 2 else ""

    @property
    def is_header(self) -> bool:
        return self.rel.endswith(".hpp")

    def suppressed(self, index: int, tag: str) -> bool:
        """True when line ``index`` (0-based) carries the escape comment
        for ``tag`` *with* its required reason — on the line itself or in
        the contiguous block of comment-only lines directly above (so a
        justification may wrap)."""
        candidates = [index]
        i = index - 1
        while i >= 0 and self.lines[i].lstrip().startswith("//"):
            candidates.append(i)
            i -= 1
        for i in candidates:
            if 0 <= i < len(self.lines):
                m = _SUPPRESS_RE[tag].search(self.lines[i])
                if m and (tag not in REASON_REQUIRED_TAGS or m.group(2)):
                    return True
        return False

    def bare_suppressions(self) -> Iterator[Finding]:
        """Escape comments missing their ': reason' — the annotation is
        the documentation, so an empty one is a violation in itself."""
        for i, raw in enumerate(self.lines):
            for tag in REASON_REQUIRED_TAGS:
                m = _SUPPRESS_RE[tag].search(raw)
                if m and not m.group(2):
                    yield Finding(
                        "annotations", self.rel, i + 1,
                        f"'// {tag}' without a justification — write "
                        f"'// {tag}: <why this is safe>'")

    # A function header: optional Class:: qualifier, then the last-resort
    # first `identifier(` of the header text. Control-flow keywords and
    # macro invocations are filtered separately.
    _NAME_RE = re.compile(r"(?:([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_~]\w*)\s*\(")
    _CONTROL_RE = re.compile(
        r"^\s*(?:if|for|while|switch|catch|do|else|return|case)\b")

    @functools.cached_property
    def functions(self) -> list[FunctionSpan]:
        """Function bodies located by brace depth.

        Heuristic, tuned for this clang-format'd codebase: a body opens
        at a '{' whose accumulated header text (the lines since the last
        statement end) contains `identifier(` and is not a control-flow
        statement. Braces nested inside a function (lambdas, blocks) do
        not open new spans; class/namespace braces have no `(` header so
        they are skipped too.
        """
        spans: list[FunctionSpan] = []
        stack: list[FunctionSpan | None] = []
        header_start = 0          # first line of the pending header text
        header_parts: list[str] = []
        for i, raw in enumerate(self.lines):
            code = strip_comment(raw)
            consumed = 0
            for j, ch in enumerate(code):
                if ch == "{":
                    head = " ".join(header_parts + [code[consumed:j]]).strip()
                    span = None
                    inside = any(s is not None for s in stack)
                    # `= {` / `, {` open aggregate initializers, never
                    # function bodies.
                    if head.rstrip().endswith(("=", ",")):
                        inside = True
                    if not inside and not self._CONTROL_RE.match(head):
                        m = self._NAME_RE.search(head)
                        # ALL_CAPS identifiers are macros (VR_REQUIRE...),
                        # not function definitions.
                        if m and not m.group(2).isupper():
                            span = FunctionSpan(
                                name=m.group(2),
                                qualifier=m.group(1) or "",
                                header_line=(header_start + 1
                                             if header_parts else i + 1),
                                open_line=i + 1,
                                close_line=i + 1)
                    stack.append(span)
                    header_parts, consumed = [], j + 1
                elif ch == "}":
                    if stack:
                        span = stack.pop()
                        if span is not None:
                            span.close_line = i + 1
                            spans.append(span)
                    header_parts, consumed = [], j + 1
                elif ch == ";":
                    header_parts, consumed = [], j + 1
            tail = code[consumed:].strip()
            if tail:
                if not header_parts:
                    header_start = i
                header_parts.append(tail)
            elif consumed:
                header_parts = []
        spans.sort(key=lambda s: s.header_line)
        return spans

    def enclosing_function(self, line: int) -> FunctionSpan | None:
        """Innermost (only: non-nested) function span containing the
        1-based ``line``, or None at namespace/class scope."""
        for span in self.functions:
            if span.contains(line):
                return span
        return None


class SourceTree:
    """All scanned files plus cross-file lookups the checks share."""

    def __init__(self, root: pathlib.Path):
        self.root = root
        self.files: list[SourceFile] = []
        for top in SCAN_DIRS:
            base = root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                # Relative to the root: running vrlint *on* a fixture tree
                # (--root tests/lint_fixtures) must still scan it.
                if EXCLUDE_PARTS.intersection(path.relative_to(root).parts):
                    continue
                self.files.append(SourceFile(root, path))
        self._by_rel = {f.rel: f for f in self.files}

    def get(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def in_dirs(self, *tops: str) -> Iterator[SourceFile]:
        for f in self.files:
            if f.top_dir in tops:
                yield f

    def companion(self, f: SourceFile) -> SourceFile | None:
        """The .cpp for a .hpp (or vice versa), if scanned."""
        if f.rel.endswith(".hpp"):
            return self.get(f.rel[:-4] + ".cpp")
        return self.get(f.rel[:-4] + ".hpp")


class Check:
    """Base class: subclasses set ``name``/``description`` and implement
    ``run``. Registration happens via the ``register`` decorator so that
    importing ``checks`` is all the driver needs to do."""
    name = "base"
    description = ""

    def run(self, tree: SourceTree) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Check] = {}


def register(cls: type[Check]) -> type[Check]:
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate check name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_checks() -> dict[str, Check]:
    return dict(_REGISTRY)


def run_checks(root: pathlib.Path,
               names: list[str] | None = None) -> tuple[list[Finding], int]:
    """Runs the selected checks (default: all) over ``root``.

    Returns (findings, file_count). The framework-level bare-annotation
    scan always runs — a suppression without a reason must not be able
    to silence the very check that demands the reason.
    """
    tree = SourceTree(root)
    selected = all_checks()
    if names is not None:
        unknown = set(names) - set(selected)
        if unknown:
            raise KeyError(", ".join(sorted(unknown)))
        selected = {n: c for n, c in selected.items() if n in names}
    findings: list[Finding] = []
    for f in tree.files:
        findings.extend(f.bare_suppressions())
    for check in selected.values():
        findings.extend(check.run(tree))
    findings.sort(key=lambda x: (x.path, x.line, x.check))
    return findings, len(tree.files)
