file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_rate.dir/ablation_update_rate.cpp.o"
  "CMakeFiles/ablation_update_rate.dir/ablation_update_rate.cpp.o.d"
  "ablation_update_rate"
  "ablation_update_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
