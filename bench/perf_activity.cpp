// perf_activity — the two-backend dynamic-power validation experiment
// (DESIGN.md §13). Drives the full data plane (parser -> lookup -> editor
// -> DRR egress) over four trace shapes (uniform, bursty, diurnal,
// per-VN-skewed) for each scheme {NV, VS, VM} and VN count K, then prices
// the same run twice:
//
//   * MuModel      — the paper's analytical µ-weighting, fed the NOMINAL
//                    per-VN utilization the traffic config promises (what
//                    a capacity planner would write down);
//   * ActivityModel — per-event energies over the counters the dataplane
//                    actually measured.
//
// On the uniform shape the two agree (the `ctest -L power-model` bound);
// on shaped traffic the divergence is the finding: one utilization scalar
// cannot express bursts, load swings or queueing losses.
//
// Emits a figure-style table on stdout and BENCH_activity.json.
// Flags: --quick (smaller tables, fewer cycles, K=2 only), --output FILE,
// --metrics[=path].
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataplane/full_router.hpp"
#include "fpga/device.hpp"
#include "netbase/table_gen.hpp"
#include "power/activity_model.hpp"
#include "power/power_model.hpp"
#include "trie/memory_layout.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace {

using namespace vr;

constexpr std::size_t kStages = 28;
constexpr units::Megahertz kFreqMhz{300.0};
constexpr fpga::SpeedGrade kGrade = fpga::SpeedGrade::kMinus2;
constexpr fpga::BramPolicy kPolicy = fpga::BramPolicy::kMixed;

/// Stage-memory image of one deployed trie (the analytical model's
/// EngineSpec), with `nhi_width`-wide next-hop leaves (1 for a per-VN
/// engine, K for the merged engine).
power::EngineSpec engine_spec_of(const trie::TrieStats& stats,
                                 std::size_t nhi_width) {
  const trie::StageMapping mapping(stats.nodes_per_level.size(), kStages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, nhi_width);
  power::EngineSpec spec;
  for (std::size_t s = 0; s < kStages; ++s) {
    spec.stage_bits.push_back(memory.stage_bits(s));
  }
  return spec;
}

struct Row {
  net::TraceShape shape = net::TraceShape::kUniform;
  power::Scheme scheme = power::Scheme::kSeparate;
  std::size_t vn_count = 0;
  double mu_mw = 0.0;        ///< µ-model dynamic, nominal utilization
  double act_mw = 0.0;       ///< activity-model lookup-core dynamic
  double max_div_pct = 0.0;  ///< worst per-VN |activity/µ - 1|
  double overhead_mw = 0.0;  ///< parser/buffer/crossbar/arbiter/editor
  double gated_mem_mw = 0.0; ///< memory if BRAM enables were read-gated
  std::vector<double> mu_per_vn_mw;
  std::vector<double> act_per_vn_mw;
};

Row price_run(net::TraceShape shape, power::Scheme scheme,
              const power::ModelContext& ctx, const power::MuModel& mu_model,
              const power::ActivityModel& act_model) {
  Row row;
  row.shape = shape;
  row.scheme = scheme;
  row.vn_count = ctx.vn_count;
  const std::vector<units::Watts> mu = mu_model.per_vn_dynamic_w(ctx);
  const power::ActivityPower act = act_model.estimate(ctx);
  for (std::size_t v = 0; v < ctx.vn_count; ++v) {
    const double mu_w = mu[v].value();
    const double act_w = act.per_vn_w[v].value();
    row.mu_per_vn_mw.push_back(units::w_to_mw(mu_w));
    row.act_per_vn_mw.push_back(units::w_to_mw(act_w));
    row.mu_mw += units::w_to_mw(mu_w);
    row.act_mw += units::w_to_mw(act_w);
    if (mu_w > 1e-12) {
      row.max_div_pct =
          std::max(row.max_div_pct, std::abs(act_w / mu_w - 1.0) * 100.0);
    }
  }
  row.overhead_mw = units::to_milliwatts(act.overhead_w()).value();
  row.gated_mem_mw = units::to_milliwatts(act.memory_gated_w).value();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::handle_metrics_flag(argc, argv);
  std::string output = "BENCH_activity.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  const std::uint64_t cycles = quick ? 4000 : 20000;
  const double load = 0.6;
  const std::vector<std::size_t> vn_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const std::vector<net::TraceShape> shapes = {
      net::TraceShape::kUniform, net::TraceShape::kBursty,
      net::TraceShape::kDiurnal, net::TraceShape::kSkewed};

  const power::MuModel mu_model(fpga::DeviceSpec::xc6vlx760());
  const power::ActivityModel act_model;
  std::vector<Row> rows;

  for (const std::size_t k : vn_counts) {
    // K per-VN tables, their deployed tries, and the K-way merged trie.
    net::TableProfile profile;
    profile.prefix_count = quick ? 200 : 725;
    const net::SyntheticTableGenerator table_gen(profile);
    std::vector<net::RoutingTable> tables;
    for (std::uint64_t v = 0; v < k; ++v) {
      tables.push_back(table_gen.generate(30 + v));
    }
    std::vector<const net::RoutingTable*> table_ptrs;
    for (const auto& t : tables) table_ptrs.push_back(&t);
    std::vector<trie::UnibitTrie> tries;
    for (const auto& t : tables) {
      tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
    }
    std::vector<pipeline::TrieView> views;
    std::vector<const trie::UnibitTrie*> trie_ptrs;
    std::vector<power::EngineSpec> engines;
    for (const auto& t : tries) {
      views.emplace_back(t);
      trie_ptrs.push_back(&t);
      engines.push_back(engine_spec_of(trie::compute_stats(t), 1));
    }
    const virt::MergedTrie merged{
        std::span<const trie::UnibitTrie* const>(trie_ptrs)};
    const power::EngineSpec merged_engine =
        engine_spec_of(merged.stats_as_trie(), k);

    dataplane::FullRouterConfig router_config;
    router_config.scheduler.vn_count = k;
    router_config.scheduler.port_count = 16;
    router_config.scheduler.queue_capacity = 256;

    for (std::size_t si = 0; si < shapes.size(); ++si) {
      const net::TraceShape shape = shapes[si];
      dataplane::FrameGenConfig frame_config;
      frame_config.traffic = net::make_shaped_config(shape, cycles, load, k);
      const dataplane::FrameGenerator frame_gen(frame_config, table_ptrs);
      const auto frames = frame_gen.generate(
          dataplane::FrameGenerator::derive_seed(17, si * 16 + k));
      const std::vector<double> nominal_mu =
          net::nominal_utilization(frame_config.traffic, k);

      power::OperatingPoint op;
      op.grade = kGrade;
      op.bram_policy = kPolicy;
      op.freq_mhz = kFreqMhz;
      op.utilization = nominal_mu;

      // One separate-engine run prices both NV and VS: their data planes —
      // and so their dynamic terms (Eqs. 2 and 4) — are identical; only
      // leakage bookkeeping differs, and this bench compares dynamics.
      {
        pipeline::SeparateRouter lookup(views, kStages);
        const dataplane::FullRouterResult result =
            dataplane::run_full_router(lookup, frames, router_config);
        power::ModelContext ctx;
        ctx.scheme = power::Scheme::kSeparate;
        ctx.engines = engines;
        ctx.vn_count = k;
        ctx.op = op;
        ctx.activity = &result.activity;
        Row vs = price_run(shape, power::Scheme::kSeparate, ctx, mu_model,
                           act_model);
        Row nv = vs;
        nv.scheme = power::Scheme::kNonVirtualized;
        rows.push_back(nv);
        rows.push_back(vs);
      }
      {
        pipeline::MergedRouter lookup(merged, kStages);
        const dataplane::FullRouterResult result =
            dataplane::run_full_router(lookup, frames, router_config);
        power::ModelContext ctx;
        ctx.scheme = power::Scheme::kMerged;
        ctx.merged_engine = &merged_engine;
        ctx.vn_count = k;
        ctx.op = op;
        ctx.activity = &result.activity;
        rows.push_back(price_run(shape, power::Scheme::kMerged, ctx,
                                 mu_model, act_model));
      }
    }
  }

  TextTable table_out(
      "perf_activity - activity-driven vs analytical dynamic power" +
      std::string(quick ? " (quick profile)" : ""));
  table_out.set_header({"shape", "scheme", "K", "mu-model mW",
                        "activity mW", "max VN div %", "overhead mW",
                        "gated mem mW"});
  for (const Row& row : rows) {
    table_out.add_row({net::to_string(row.shape),
                       power::to_string(row.scheme),
                       std::to_string(row.vn_count),
                       TextTable::num(row.mu_mw, 2),
                       TextTable::num(row.act_mw, 2),
                       TextTable::num(row.max_div_pct, 1),
                       TextTable::num(row.overhead_mw, 2),
                       TextTable::num(row.gated_mem_mw, 2)});
  }
  bench::emit(table_out);

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_activity\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"cycles\": " << cycles << ",\n"
       << "  \"load\": " << TextTable::num(load, 2) << ",\n"
       << "  \"freq_mhz\": " << TextTable::num(kFreqMhz.value(), 1) << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"shape\": \"" << net::to_string(row.shape)
         << "\", \"scheme\": \"" << power::to_string(row.scheme)
         << "\", \"vn_count\": " << row.vn_count
         << ", \"mu_model_mw\": " << TextTable::num(row.mu_mw, 4)
         << ", \"activity_mw\": " << TextTable::num(row.act_mw, 4)
         << ", \"max_vn_divergence_pct\": "
         << TextTable::num(row.max_div_pct, 2)
         << ", \"overhead_mw\": " << TextTable::num(row.overhead_mw, 4)
         << ", \"gated_memory_mw\": " << TextTable::num(row.gated_mem_mw, 4)
         << ", \"mu_per_vn_mw\": [";
    for (std::size_t v = 0; v < row.mu_per_vn_mw.size(); ++v) {
      json << (v ? ", " : "") << TextTable::num(row.mu_per_vn_mw[v], 4);
    }
    json << "], \"activity_per_vn_mw\": [";
    for (std::size_t v = 0; v < row.act_per_vn_mw.size(); ++v) {
      json << (v ? ", " : "") << TextTable::num(row.act_per_vn_mw[v], 4);
    }
    json << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"metrics\": "
       << obs::MetricsSink(obs::Registry::global()).json(2) << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';
  return 0;
}
