file(REMOVE_RECURSE
  "CMakeFiles/vr_core.dir/estimator.cpp.o"
  "CMakeFiles/vr_core.dir/estimator.cpp.o.d"
  "CMakeFiles/vr_core.dir/experiment.cpp.o"
  "CMakeFiles/vr_core.dir/experiment.cpp.o.d"
  "CMakeFiles/vr_core.dir/figures.cpp.o"
  "CMakeFiles/vr_core.dir/figures.cpp.o.d"
  "CMakeFiles/vr_core.dir/scenario.cpp.o"
  "CMakeFiles/vr_core.dir/scenario.cpp.o.d"
  "CMakeFiles/vr_core.dir/validator.cpp.o"
  "CMakeFiles/vr_core.dir/validator.cpp.o.d"
  "CMakeFiles/vr_core.dir/workload.cpp.o"
  "CMakeFiles/vr_core.dir/workload.cpp.o.d"
  "libvr_core.a"
  "libvr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
