#include <gtest/gtest.h>

#include "common/units.hpp"
#include "fpga/thermal.hpp"

namespace vr::fpga {
namespace {

TEST(ThermalTest, MultiplierIsOneAtCharacterizationPoint) {
  EXPECT_DOUBLE_EQ(leakage_multiplier(25.0), 1.0);
  EXPECT_GT(leakage_multiplier(85.0), 1.0);
  EXPECT_LT(leakage_multiplier(0.0), 1.0);
}

TEST(ThermalTest, ZeroPowerStaysAtAmbient) {
  const ThermalOperatingPoint point =
      solve_thermal(units::Watts{0.0}, units::Watts{0.0});
  EXPECT_DOUBLE_EQ(point.t_junction_c, 25.0);
  EXPECT_DOUBLE_EQ(point.total_w.value(), 0.0);
  EXPECT_TRUE(point.within_limits);
}

TEST(ThermalTest, FixedPointSatisfiesTheLoopEquation) {
  const ThermalParams params;
  const ThermalOperatingPoint point =
      solve_thermal(units::Watts{4.5}, units::Watts{0.25}, params);
  const double expected_t =
      params.ambient_c + params.theta_ja_c_per_w * point.total_w.value();
  EXPECT_NEAR(point.t_junction_c, expected_t, 1e-6);
  EXPECT_NEAR(point.static_w.value(),
              4.5 * leakage_multiplier(point.t_junction_c, params), 1e-9);
}

TEST(ThermalTest, SettledPowerExceedsColdPower) {
  const ThermalOperatingPoint point =
      solve_thermal(units::Watts{4.5}, units::Watts{0.25});
  EXPECT_GT(point.static_w.value(), 4.5);
  EXPECT_GT(point.t_junction_c, 25.0);
  EXPECT_TRUE(point.within_limits);
}

TEST(ThermalTest, MonotoneInInputPower) {
  double prev_t = 0.0;
  for (const double dynamic : {0.0, 1.0, 4.0, 10.0}) {
    const ThermalOperatingPoint point =
        solve_thermal(units::Watts{4.5}, units::Watts{dynamic});
    EXPECT_GT(point.t_junction_c, prev_t);
    prev_t = point.t_junction_c;
  }
}

TEST(ThermalTest, PoorHeatsinkBreachesJunctionLimit) {
  ThermalParams params;
  params.theta_ja_c_per_w = 12.0;  // no heatsink
  const ThermalOperatingPoint point =
      solve_thermal(units::Watts{4.5}, units::Watts{1.0}, params);
  EXPECT_FALSE(point.within_limits);
}

TEST(ThermalTest, ConvergesQuickly) {
  const ThermalOperatingPoint point =
      solve_thermal(units::Watts{4.5}, units::Watts{0.5});
  EXPECT_LT(point.iterations, 50u);
}

}  // namespace
}  // namespace vr::fpga
