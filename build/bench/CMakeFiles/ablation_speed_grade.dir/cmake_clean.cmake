file(REMOVE_RECURSE
  "CMakeFiles/ablation_speed_grade.dir/ablation_speed_grade.cpp.o"
  "CMakeFiles/ablation_speed_grade.dir/ablation_speed_grade.cpp.o.d"
  "ablation_speed_grade"
  "ablation_speed_grade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speed_grade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
