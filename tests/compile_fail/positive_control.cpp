// MUST COMPILE: the legal subset of the quantity algebra, exercised the
// same way the fail_*.cpp cases exercise the illegal one. If this file
// ever stops compiling the fail cases prove nothing.
#include "common/units.hpp"

int main() {
  using namespace vr::units;
  const Watts w = to_watts(Milliwatts{1500.0});
  const Watts doubled = w + w;
  const Microwatts from_coeff = PjPerCycle{2.5} * Megahertz{400.0};
  const Gbps gbps = lookup_throughput(Megahertz{400.0}, kMinPacketBytes);
  const MwPerGbps eff = to_milliwatts(doubled) / gbps;
  const double ratio = doubled / w;  // same-unit ratio is dimensionless
  return static_cast<int>(eff.value() + from_coeff.value() + ratio) > 1'000'000
             ? 1
             : 0;
}
