// Flat structure-of-arrays trie view — the lookup hot path. The pointer
// (left/right) and next-hop-information arrays are stored contiguously and
// index-aligned with the source trie's breadth-first node order, so a
// traversal touches three dense arrays instead of chasing a
// pointer-per-node layout. Built once from a UnibitTrie (K = 1) or a
// K-way merged trie (K-wide next-hop pool, node-major) and shared by every
// consumer of the trie: `UnibitTrie::lookup`, the pipeline simulator's
// `TrieView` and the batched dataplane lookup API.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/traffic.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {

class FlatTrie {
 public:
  /// Flattens a uni-bit trie (vn_count = 1; one next hop per node).
  explicit FlatTrie(const UnibitTrie& trie);

  /// Assembles a view from raw arrays (used by the merged-trie flattener).
  /// `next_hops` is node-major with `vn_count` entries per node;
  /// `level_count` must match the source trie's.
  FlatTrie(std::vector<NodeIndex> left, std::vector<NodeIndex> right,
           std::vector<net::NextHop> next_hops, std::size_t vn_count,
           std::size_t level_count);

  [[nodiscard]] NodeIndex left(NodeIndex n) const noexcept {
    return left_[n];
  }
  [[nodiscard]] NodeIndex right(NodeIndex n) const noexcept {
    return right_[n];
  }
  /// Next hop stored at node `n` for virtual network `vn` (kNoRoute when
  /// absent). Single-trie views only have vn = 0.
  [[nodiscard]] net::NextHop next_hop(NodeIndex n, net::VnId vn = 0)
      const noexcept {
    return next_hops_[static_cast<std::size_t>(n) * vn_count_ + vn];
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return left_.size();
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_count_;
  }
  [[nodiscard]] std::size_t vn_count() const noexcept { return vn_count_; }

  /// Longest-prefix match for virtual network `vn`; nullopt when no route
  /// covers `addr`. Identical results to the source trie's lookup.
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr,
                                                   net::VnId vn = 0) const;

  /// Batched longest-prefix match: one result per address, kNoRoute where
  /// no route covers it. The batch form amortizes the per-call overhead
  /// for the dataplane simulator's bulk lookups.
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Ipv4> addrs, net::VnId vn = 0) const;

  /// Batched lookup of VNID-tagged packets (merged-trie dataplane path).
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Packet> packets) const;

 private:
  [[nodiscard]] net::NextHop lookup_raw(std::uint32_t addr,
                                        net::VnId vn) const noexcept;

  /// Prefetch-pipelined batch core (see trie/prefetch.hpp): resolves the
  /// key (addr_at(i), vn_at(i)) into `out[i]` for i in [0, count).
  /// Defined in the implementation file; instantiated only there.
  template <typename AddrFn, typename VnFn>
  void lookup_batch_core(std::size_t count, AddrFn&& addr_at, VnFn&& vn_at,
                         net::NextHop* out) const;

  std::vector<NodeIndex> left_;
  std::vector<NodeIndex> right_;
  std::vector<net::NextHop> next_hops_;  // node-major, vn_count_ per node
  std::size_t vn_count_ = 1;
  std::size_t level_count_ = 1;
};

}  // namespace vr::trie
