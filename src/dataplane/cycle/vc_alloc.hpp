// Virtual-channel allocation policies for the cycle-level virtualized
// dataplane (DESIGN.md §15). The paper's three sharing schemes partition
// the router statically (NV: per-VN devices, VS: per-VN engines on one
// device, VM: one time-shared engine); at cycle granularity the same
// choice reappears one level down as *buffer* sharing: which virtual
// network may occupy which input virtual channel. The three static
// policies carve the VC pool into fixed per-VN partitions; the dynamic
// policy (Onsori & Safaei, arXiv:1412.2950) lets VNs contend for a shared
// pool bounded by per-VN floors (guaranteed minimum, so no VN can be
// starved of buffering) and ceilings (maximum, so no VN can monopolize).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/traffic.hpp"

namespace vr::dataplane::cycle {

/// How the input VC pool is shared among virtual networks.
enum class VcPolicy : std::uint8_t {
  kNvStatic,  ///< NV: fixed per-VN partition, one lookup engine per VN
  kVsStatic,  ///< VS: fixed per-VN partition, K space-shared engines
  kVmStatic,  ///< VM: fixed per-VN partition, one time-shared engine
  kDynamic,   ///< DVC: shared pool with per-VN floors/ceilings, merged engine
};

[[nodiscard]] constexpr const char* to_string(VcPolicy policy) noexcept {
  switch (policy) {
    case VcPolicy::kNvStatic:
      return "nv-static";
    case VcPolicy::kVsStatic:
      return "vs-static";
    case VcPolicy::kVmStatic:
      return "vm-static";
    case VcPolicy::kDynamic:
      return "dynamic-vc";
  }
  return "?";
}

/// Whether the policy's lookup stage is K per-VN engines (NV/VS) or one
/// time-shared engine (VM/DVC). Decides both which pipeline::VirtualRouter
/// arrangement the cycle router expects and whether the issue arbiter runs
/// per VN or globally.
[[nodiscard]] constexpr bool separate_engines(VcPolicy policy) noexcept {
  return policy == VcPolicy::kNvStatic || policy == VcPolicy::kVsStatic;
}

struct VcAllocConfig {
  VcPolicy policy = VcPolicy::kVsStatic;
  /// Total virtual channels in the input pool. Static policies require
  /// vc_count >= vn_count (every VN needs at least one VC of its own).
  std::size_t vc_count = 8;
  std::size_t vn_count = 1;
  /// kDynamic only: VCs guaranteed to each VN. A VN below its floor can
  /// always draw from the reserve; other VNs may never consume it.
  /// Requires vn_count * dynamic_floor <= vc_count.
  std::size_t dynamic_floor = 1;
  /// kDynamic only: maximum VCs one VN may hold. 0 = no ceiling (vc_count).
  std::size_t dynamic_ceiling = 0;
};

/// Tracks which VN owns which VC and enforces the policy's sharing rule.
/// Pure bookkeeping state machine — deterministic, lowest-free-index
/// grants — so the conservation invariants (pool size constant, no VC
/// owned twice) are directly checkable by the test layer.
class VcAllocator {
 public:
  /// Owner value of a free VC.
  static constexpr net::VnId kFree = static_cast<net::VnId>(-1);

  explicit VcAllocator(VcAllocConfig config);

  /// Grants a free VC to `vn` if the policy allows, lowest index first.
  [[nodiscard]] std::optional<std::size_t> allocate(net::VnId vn);

  /// Returns an allocated VC to the pool.
  void release(std::size_t vc);

  /// Owning VN of `vc`, or nullopt when free.
  [[nodiscard]] std::optional<net::VnId> owner(std::size_t vc) const;

  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_count_;
  }
  [[nodiscard]] std::size_t allocated_count() const noexcept {
    return config_.vc_count - free_count_;
  }
  [[nodiscard]] std::size_t allocated_to(net::VnId vn) const;
  [[nodiscard]] std::size_t vc_count() const noexcept {
    return config_.vc_count;
  }
  [[nodiscard]] const VcAllocConfig& config() const noexcept {
    return config_;
  }

  /// Static policies: the VN whose partition VC `vc` belongs to.
  [[nodiscard]] net::VnId static_home(std::size_t vc) const;

  /// Effective per-VN ceiling (resolves the 0 = unlimited convention).
  [[nodiscard]] std::size_t effective_ceiling() const noexcept;

 private:
  VcAllocConfig config_;
  std::vector<net::VnId> owner_;  ///< kFree when unallocated
  std::vector<std::size_t> allocated_per_vn_;
  std::size_t free_count_ = 0;
};

}  // namespace vr::dataplane::cycle
