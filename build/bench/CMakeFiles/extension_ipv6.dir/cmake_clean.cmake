file(REMOVE_RECURSE
  "CMakeFiles/extension_ipv6.dir/extension_ipv6.cpp.o"
  "CMakeFiles/extension_ipv6.dir/extension_ipv6.cpp.o.d"
  "extension_ipv6"
  "extension_ipv6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
