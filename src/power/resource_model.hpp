// The paper's resource-consumption models (Sec. IV, Eqs. 1/3/5): devices,
// logic, memory and I/O demand of each scheme — the inputs to Fig. 4 and to
// the capacity/scalability limits of Sec. IV-B/IV-C (the separate scheme
// exhausts I/O pins at K = 15; the merged scheme exhausts BRAM as α drops).
#pragma once

#include <cstdint>
#include <span>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "power/scheme.hpp"
#include "trie/memory_layout.hpp"

namespace vr::power {

/// Aggregate resource demand of a deployment.
struct SchemeResources {
  Scheme scheme = Scheme::kNonVirtualized;
  std::size_t devices = 0;
  std::size_t engines = 0;          ///< total lookup pipelines
  std::size_t stages_per_engine = 0;
  units::Bits pointer_bits;         ///< Σ internal-node memory
  units::Bits nhi_bits;             ///< Σ leaf/NHI memory
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint32_t io_pins = 0;        ///< on the most loaded device
  fpga::StageBramPlan bram_per_device;  ///< plan of one (the) shared device;
                                        ///< for NV this is one device's plan

  [[nodiscard]] units::Bits total_memory_bits() const noexcept {
    return pointer_bits + nhi_bits;
  }
};

/// Fit report against a device.
struct FitReport {
  bool fits = true;
  bool bram_ok = true;
  bool luts_ok = true;
  bool flip_flops_ok = true;
  bool io_ok = true;
};

/// Eq. 1 / Eq. 3 — NV and VS consume identical engine resources; they
/// differ in how many devices carry them and in the I/O interface count.
/// `per_vn_memory` is the stage-memory image of one VN's pipeline
/// (Assumption 2: all VNs equal). `vn_count` = K.
[[nodiscard]] SchemeResources replicated_resources(
    Scheme scheme, const trie::StageMemory& per_vn_memory,
    std::size_t vn_count, fpga::BramPolicy policy,
    const fpga::IoBudget& io = {});

/// Eq. 5 — merged: one engine whose stage memory is the merged image
/// (already K-aware in its leaf widths).
[[nodiscard]] SchemeResources merged_resources(
    const trie::StageMemory& merged_memory, std::size_t vn_count,
    fpga::BramPolicy policy, const fpga::IoBudget& io = {});

/// Checks a deployment against a device's limits.
[[nodiscard]] FitReport check_fit(const SchemeResources& resources,
                                  const fpga::DeviceSpec& device);

/// Largest K of a scheme that fits the device, scanning upward with a
/// caller-provided resource builder. Returns 0 if even K=1 does not fit.
template <typename ResourceFn>
[[nodiscard]] std::size_t max_vn_count(const fpga::DeviceSpec& device,
                                       std::size_t scan_limit,
                                       ResourceFn&& build) {
  std::size_t best = 0;
  for (std::size_t k = 1; k <= scan_limit; ++k) {
    const SchemeResources r = build(k);
    if (!check_fit(r, device).fits) break;
    best = k;
  }
  return best;
}

}  // namespace vr::power
