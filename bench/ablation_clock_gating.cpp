// Ablation: clock gating / duty cycle (paper Sec. IV). Drives the
// cycle-level pipeline simulator at duty cycles from 10 % to 100 % and
// reports measured dynamic power next to the analytical µ-weighted value —
// demonstrating that the µ · P(·) dynamic terms of Eqs. 2/4/6 are the
// closed form of per-stage clock gating.
#include "bench_common.hpp"
#include "fpga/xpe_tables.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "pipeline/energy.hpp"
#include "pipeline/router.hpp"
#include "trie/memory_layout.hpp"

int main() {
  using namespace vr;
  constexpr std::size_t kStages = 28;
  constexpr vr::units::Megahertz kFreqMhz{300.0};

  net::TableProfile profile;
  profile.prefix_count = 2000;
  const net::SyntheticTableGenerator gen(profile);
  const net::RoutingTable table = gen.generate(1);
  const trie::UnibitTrie trie = trie::UnibitTrie(table).leaf_pushed();

  // Stage memory plan of this engine.
  const trie::TrieStats stats = trie::compute_stats(trie);
  const trie::StageMapping mapping(stats.nodes_per_level.size(), kStages,
                                   trie::MappingPolicy::kOneLevelPerStage);
  const trie::StageMemory memory = trie::stage_memory(
      trie::occupancy(stats, mapping), trie::NodeEncoding{}, 1);
  std::vector<std::uint64_t> stage_bits;
  for (std::size_t s = 0; s < kStages; ++s) {
    stage_bits.push_back(memory.stage_bits(s));
  }
  const fpga::StageBramPlan plan =
      fpga::plan_stage_bram(stage_bits, fpga::BramPolicy::kMixed);

  SeriesTable out(
      "Ablation - dynamic power vs duty cycle (simulated vs analytical, mW)",
      "duty_pct", {"simulated", "analytical(u x P)", "no-gating baseline"});
  for (int duty = 10; duty <= 100; duty += 10) {
    const double mu = duty / 100.0;
    std::vector<pipeline::TrieView> views{pipeline::TrieView(trie)};
    pipeline::SeparateRouter router(views, kStages);
    net::TrafficConfig config;
    config.cycles = 40000;
    config.load = 1.0;
    config.duty_on_fraction = mu;
    config.duty_period = 100;
    const net::TrafficGenerator traffic(config, {&table});
    const pipeline::SimulationResult sim =
        run_trace(router, traffic.generate(7));

    const pipeline::EnginePower measured = pipeline::measure_engine_power(
        router.engine(0).activity(), plan, fpga::SpeedGrade::kMinus2,
        kFreqMhz);
    units::Watts full_power;  // all stages clocked every cycle
    full_power += fpga::XpeTables::logic_power_w(fpga::SpeedGrade::kMinus2,
                                                 kStages, kFreqMhz);
    full_power += plan.total.power_w(fpga::SpeedGrade::kMinus2, kFreqMhz);
    // Analytical µ-weighting uses the actual achieved utilization (the
    // simulated trace includes ramp-in/drain cycles).
    const double util = router.engine(0).activity().mean_stage_utilization();
    out.add_point(duty,
                  {units::to_milliwatts(measured.dynamic_w()).value(),
                   units::to_milliwatts(full_power * util).value(),
                   units::to_milliwatts(full_power).value()});
  }
  vr::bench::emit(out);
  return 0;
}
