"""Check modules. Importing this package registers every check; to add
one in a future PR, drop a module here, decorate its class with
``@core.register``, and list it below (plus a fixture pair under
``tests/lint_fixtures/`` — the self-test asserts exact counts)."""

from checks import determinism  # noqa: F401
from checks import include_hygiene  # noqa: F401
from checks import lock_discipline  # noqa: F401
from checks import metrics_registry  # noqa: F401
from checks import narrowing  # noqa: F401
from checks import units  # noqa: F401
