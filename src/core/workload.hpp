// Workload realization: turns a Scenario into the concrete memory images
// and (optionally) the real tries/tables the estimator, the PnR experiment
// and the pipeline simulator consume.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/scenario.hpp"
#include "power/analytical_model.hpp"
#include "trie/memory_layout.hpp"
#include "trie/trie_stats.hpp"
#include "virt/merged_trie.hpp"
#include "virt/table_set_gen.hpp"

namespace vr::core {

/// The realized workload for one scenario.
struct Workload {
  /// Structural statistics of the representative (leaf-pushed if
  /// configured) per-VN trie.
  trie::TrieStats representative_stats;
  /// Stage-memory image of one VN's pipeline (NV/VS engines).
  power::EngineSpec per_vn_engine;
  /// Per-VN engines under the Assumption 2 relaxation
  /// (Scenario::table_size_spread > 0); empty when all VNs share
  /// per_vn_engine.
  std::vector<power::EngineSpec> heterogeneous_engines;
  /// Stage-memory image of the merged pipeline (merged scheme only; empty
  /// stage_bits otherwise).
  power::EngineSpec merged_engine;
  /// α actually used: the scenario's α in analytic mode, the measured
  /// effective α in structural mode.
  double alpha_used = 1.0;
  std::size_t prefix_count = 0;

  /// Structural artifacts, populated only in MergedSource::kStructural (or
  /// when `keep_tables` is requested): real tables/tries for the pipeline
  /// simulator and the examples.
  std::vector<net::RoutingTable> tables;
  std::vector<trie::UnibitTrie> tries;
  std::optional<virt::MergedTrie> merged_trie;
};

/// Realizes a scenario's workload. `keep_tables` forces table/trie
/// construction even in analytic mode (for simulation-backed examples and
/// tests); the representative table is always built (its statistics feed
/// the analytic mode too).
[[nodiscard]] Workload realize_workload(const Scenario& scenario,
                                        bool keep_tables = false);

}  // namespace vr::core
