"""vrlint driver — run the project-native static checks.

Usage:
    python3 tools/vrlint --root .                 # all checks
    python3 tools/vrlint --root . --checks units,narrowing
    python3 tools/vrlint --list                   # what exists
    python3 tools/vrlint --root X --json          # machine-readable

Exit codes: 0 clean, 1 violations, 2 usage error — matching the other
tools/ gates so ctest and static_check.sh treat them uniformly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import checks  # noqa: F401  (importing registers every check)
import core


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="vrlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="tree to scan (default: the repo containing "
                             "this tool)")
    parser.add_argument("--checks", default=None, metavar="A,B,...",
                        help="comma-separated subset of checks to run")
    parser.add_argument("--list", action="store_true",
                        help="list registered checks and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array (for the "
                             "fixture self-test)")
    args = parser.parse_args()

    if args.list:
        for name, check in sorted(core.all_checks().items()):
            print(f"{name:16s} {check.description}")
        return 0

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent.parent
    if not (root / "src").is_dir():
        print(f"vrlint: no src/ under {root}", file=sys.stderr)
        return 2

    names = args.checks.split(",") if args.checks else None
    try:
        findings, file_count = core.run_checks(root, names)
    except KeyError as exc:
        known = ", ".join(sorted(core.all_checks()))
        print(f"vrlint: unknown check(s) {exc} — known: {known}",
              file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([vars(f) for f in findings], indent=2))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    check_count = len(names) if names else len(core.all_checks())
    if findings:
        print(f"vrlint: {len(findings)} violation(s) from {check_count} "
              f"check(s) over {file_count} files", file=sys.stderr)
        return 1
    print(f"vrlint: clean ({check_count} checks, {file_count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
