#!/usr/bin/env python3
"""Project-specific unit lint for the vrpower tree.

Three rules, all about keeping physical quantities honest:

1. Typed boundary (src/{power,core,fpga,pipeline,multipipe,tcam}/*.hpp):
   headers of the power-model layers must not declare naked-`double`
   parameters, members, or return types that carry a physical dimension
   (power, frequency, energy, throughput, memory size). Those must use
   the strong quantity types from common/units.hpp (units::Watts,
   units::Megahertz, units::Bits, ...). Dimensionless quantities
   (utilizations, alpha, percentages, rates) stay `double`.

2. Typed return types (.cpp files of the same layers): a function
   *definition* returning naked `double` with a dimensioned name is a
   boundary leak even when it only appears in the implementation file.

3. Suffix convention (everything else under src/, including `double`
   locals in typed-layer .cpp files): a `double` whose name mentions a
   dimensioned concept must spell its unit as a suffix (`power_w`,
   `freq_mhz`, `throughput_gbps`, ...) so readers and future migrations
   know what the number means.

A declaration can be exempted with an inline comment on the same or the
preceding line:

    double weird_power;  // units-ok: calibration scratch value

Run:  tools/check_units.py [--root DIR]
Exit: 0 clean, 1 violations found, 2 usage error.
"""

import argparse
import pathlib
import re
import sys

# Layers whose headers must use units:: quantity types end-to-end.
TYPED_DIRS = {"power", "core", "fpga", "pipeline", "multipipe", "tcam", "obs"}

# Concepts that imply a physical dimension when they appear in a name.
DIMENSIONED = re.compile(
    r"(?:^|_)(power|freq|frequency|energy|watt|watts|throughput|"
    r"duration|latency|elapsed)(?:_|$)|"
    r"_(w|mw|uw|mhz|ghz|pj|gbps|mbps|bits|kbits|joules)$"
)

# Unit suffixes that satisfy rule 3 (and names that *are* unit words,
# e.g. the conversion-helper parameters in common/units.hpp).
SUFFIX_OK = re.compile(
    r"_(w|mw|uw|mhz|ghz|hz|j|pj|pj_per_cycle|gbps|mbps|bits|kbits|bytes|"
    r"pct|percent|ns|us|ms|s|seconds|per_second|per_cycle|per_mhz)$"
)
UNIT_WORDS = {
    "watts", "milliwatts", "microwatts", "megahertz", "picojoules",
    "cycles", "gbps", "coefficient", "packet_bytes",
}

# `double name` as a parameter, member, or local. Keeps to single
# declarations; good enough for this codebase's style (one declaration
# per line).
DOUBLE_DECL = re.compile(r"\bdouble\s+(?:&\s*)?([A-Za-z_][A-Za-z0-9_]*)")

# `double Klass::fn(` / `double fn(` — a function definition or
# declaration returning naked double.
RETURN_DECL = re.compile(
    r"\bdouble\s+(?:[A-Za-z_][A-Za-z0-9_]*::)*([A-Za-z_][A-Za-z0-9_]*)\s*\("
)

SUPPRESS = re.compile(r"//\s*units-ok\b")


def strip_comment(line: str) -> str:
    return line.split("//", 1)[0]


def lint_file(path: pathlib.Path, mode: str) -> list[str]:
    """Lint one file. mode: 'typed-header', 'typed-impl', or 'suffix'."""
    problems = []
    lines = path.read_text().splitlines()
    for i, raw in enumerate(lines):
        if SUPPRESS.search(raw) or (i > 0 and SUPPRESS.search(lines[i - 1])):
            continue
        code = strip_comment(raw)
        return_names = {m.group(1) for m in RETURN_DECL.finditer(code)}
        for m in DOUBLE_DECL.finditer(code):
            name = m.group(1)
            if name in UNIT_WORDS:
                continue
            if not DIMENSIONED.search(name):
                continue
            typed_violation = mode == "typed-header" or (
                mode == "typed-impl" and name in return_names
            )
            if typed_violation:
                problems.append(
                    f"{path}:{i + 1}: naked-double dimensioned quantity "
                    f"'{name}' in a typed layer — use a units:: quantity "
                    f"type (or annotate '// units-ok: <reason>')"
                )
            elif not SUFFIX_OK.search(name):
                problems.append(
                    f"{path}:{i + 1}: dimensioned double '{name}' has no "
                    f"unit suffix (expected e.g. '{name}_w', '{name}_mhz')"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"check_units: no src/ under {root}", file=sys.stderr)
        return 2

    problems = []
    for path in sorted(list(src.rglob("*.hpp")) + list(src.rglob("*.cpp"))):
        rel = path.relative_to(src)
        typed = rel.parts[0] in TYPED_DIRS
        # units.hpp itself defines the raw conversion helpers.
        if rel == pathlib.Path("common/units.hpp"):
            typed = False
        if typed:
            mode = "typed-header" if path.suffix == ".hpp" else "typed-impl"
        else:
            mode = "suffix"
        problems += lint_file(path, mode)

    for p in problems:
        print(p)
    if problems:
        print(f"check_units: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("check_units: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
