// ModelValidator — reproduces the paper's Sec. VI-A validation: for each
// scenario, run the analytical model and the (simulated) post-PnR analysis
// and report the percentage error
//     (P_model − P_experimental) / P_experimental × 100,
// which the paper bounds at ±3 %.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "core/experiment.hpp"

namespace vr::core {

struct ValidationPoint {
  Scenario scenario;
  Estimate model;
  ExperimentResult experiment;
  double error_total_pct = 0.0;
  double error_static_pct = 0.0;
  double error_dynamic_pct = 0.0;
};

class ModelValidator {
 public:
  ModelValidator(fpga::DeviceSpec device, fpga::PnrEffects effects = {},
                 fpga::FreqModelParams freq_params = {});

  /// Validates one scenario (realizing its workload once for both sides).
  [[nodiscard]] ValidationPoint validate(const Scenario& scenario) const;

  /// Validates a grid of scenarios.
  [[nodiscard]] std::vector<ValidationPoint> validate_all(
      const std::vector<Scenario>& scenarios) const;

  /// Largest |total error| over a set of points.
  [[nodiscard]] static double max_abs_error_pct(
      const std::vector<ValidationPoint>& points);

  [[nodiscard]] const PowerEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] const ExperimentRunner& runner() const noexcept {
    return runner_;
  }

 private:
  PowerEstimator estimator_;
  ExperimentRunner runner_;
};

}  // namespace vr::core
