#include "core/scenario.hpp"

#include <sstream>

namespace vr::core {

std::string Scenario::describe() const {
  std::ostringstream os;
  os << power::to_string(scheme) << " K=" << vn_count << " grade "
     << fpga::to_string(grade) << " N=" << stages;
  if (scheme == power::Scheme::kMerged) {
    os << " alpha=" << alpha
       << (merged_source == MergedSource::kStructural ? " (structural)"
                                                      : " (analytic)");
  }
  if (freq_mhz > units::Megahertz{0.0}) {
    os << " f=" << freq_mhz.value() << "MHz";
  }
  return os.str();
}

}  // namespace vr::core
