// Offline reference bounds for the competitive-ratio experiments. Given
// the set of VNs an online run left resident, two reproducible references
// bracket the optimum:
//
//   * greedy_w — an offline greedy packing (best-fit-decreasing by table
//     bucket, scored in marginal watts with full hindsight). An upper
//     bound on OPT: a feasible offline solution.
//   * fractional_lower_w — a per-VN amortized bound: each VN is charged
//     the cheapest watts-per-tenant any feasible co-location could ever
//     achieve for its (bucket, load, SLA) class — min over modes and
//     occupancies of watts(shape with K identical tenants)/K. Summing
//     these ideal shares relaxes the packing constraints entirely, so no
//     integral placement (including OPT) can beat it.
//
// competitive ratio = online fleet_w / fractional_lower_w, reported by
// bench/perf_placement and asserted ≥ 1 by the invariant tests.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/fleet.hpp"

namespace vr::placement {

struct OfflineBound {
  double greedy_w = 0.0;
  std::size_t greedy_devices = 0;
  double fractional_lower_w = 0.0;
};

/// Bounds for hosting exactly `vns` (a resident set, e.g.
/// Fleet::resident_vns() after an online run). Uses the same oracle as
/// the online controller so both sides price shapes identically.
[[nodiscard]] OfflineBound offline_bound(const std::vector<PlacedVn>& vns,
                                         CostOracle& oracle);

}  // namespace vr::placement
