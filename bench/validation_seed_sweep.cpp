// Statistical validation: the ±3 % model-error bound (Fig. 7) must hold
// for ANY edge table, not just the default seed. This sweep re-validates
// the full scheme grid over many synthetic tables and reports the error
// distribution. Exits non-zero if any point breaches the paper's bound.
#include <cmath>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/validator.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::ModelValidator validator{fpga::DeviceSpec::xc6vlx760()};
  const core::FigureOptions opt = bench::paper_options(argc, argv);

  // Build the full scenario grid up front and fan it out over the sweep
  // runner; the point order (and therefore every statistic) matches the
  // seed-serial loop exactly.
  std::vector<core::Scenario> grid;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const auto scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      for (const std::size_t k : {2ul, 8ul, 15ul}) {
        core::Scenario s;
        s.scheme = scheme;
        s.vn_count = k;
        s.seed = seed;
        s.alpha = (seed % 2 == 0) ? 0.2 : 0.8;
        grid.push_back(s);
      }
    }
  }
  const std::vector<core::ValidationPoint> points =
      validator.validate_all(grid, opt.threads);

  RunningStats errors;
  std::vector<double> samples;
  double worst = 0.0;
  core::Scenario worst_scenario;
  for (const core::ValidationPoint& point : points) {
    errors.add(point.error_total_pct);
    samples.push_back(point.error_total_pct);
    if (std::fabs(point.error_total_pct) > worst) {
      worst = std::fabs(point.error_total_pct);
      worst_scenario = point.scenario;
    }
  }

  const Percentiles pct(samples);
  TextTable table("Model error distribution over 12 seeds x 3 schemes x 3 K");
  table.set_header({"statistic", "value %"});
  table.add_row({"points", std::to_string(errors.count())});
  table.add_row({"mean", TextTable::num(errors.mean(), 3)});
  table.add_row({"stddev", TextTable::num(errors.stddev(), 3)});
  table.add_row({"min", TextTable::num(errors.min(), 3)});
  table.add_row({"p10", TextTable::num(pct.at(0.10), 3)});
  table.add_row({"median", TextTable::num(pct.at(0.50), 3)});
  table.add_row({"p90", TextTable::num(pct.at(0.90), 3)});
  table.add_row({"max", TextTable::num(errors.max(), 3)});
  table.add_row({"worst |error|", TextTable::num(worst, 3)});
  vr::bench::emit(table);
  std::cout << "worst case at: " << worst_scenario.describe()
            << " (paper bound: 3 %)\n";
  return worst <= 3.0 ? 0 : 1;
}
