#include "placement/policy.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace vr::placement {

namespace {

/// First member of an ordered device set that is not the excluded device.
std::optional<std::size_t> representative(
    const std::set<std::size_t>& devices, std::optional<std::size_t> exclude) {
  for (const std::size_t device : devices) {
    if (!exclude || device != *exclude) return device;
  }
  return std::nullopt;
}

constexpr DeviceMode kOpeningModes[] = {
    // Cheapest-first: a time-shared engine usually minimizes watts, a
    // space-shared device trades watts for isolation, a dedicated device
    // is the NV fallback.
    DeviceMode::kTimeShared, DeviceMode::kSpaceShared, DeviceMode::kDedicated};

}  // namespace

std::vector<Candidate> feasible_candidates(
    const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
    std::optional<std::size_t> exclude) {
  std::vector<Candidate> candidates;
  for (const auto& [shape, devices] : fleet.groups()) {
    // Every device in a group shares one shape, so feasibility of the
    // group is feasibility of any member: one representative suffices.
    const std::optional<std::size_t> device =
        representative(devices, exclude);
    if (!device) continue;
    Candidate candidate;
    candidate.device = *device;
    candidate.mode = shape.mode;
    candidate.before = shape;
    candidate.after = fleet.shape_with(*device, vn, shape.mode);
    if (!oracle.feasible(candidate.after)) continue;
    candidates.push_back(candidate);
  }
  const std::optional<std::size_t> idle =
      representative(fleet.idle_devices(), exclude);
  if (idle) {
    for (const DeviceMode mode : kOpeningModes) {
      Candidate candidate;
      candidate.device = *idle;
      candidate.mode = mode;
      candidate.after = fleet.shape_with(*idle, vn, mode);
      if (!oracle.feasible(candidate.after)) continue;
      candidates.push_back(candidate);
    }
  }
  return candidates;
}

namespace {

class FirstFitPolicy final : public PlacementPolicy {
 public:
  Decision decide(const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
                  std::optional<std::size_t> exclude) override {
    const std::vector<Candidate> candidates =
        feasible_candidates(fleet, oracle, vn, exclude);
    Decision decision;
    decision.feasible_exists = !candidates.empty();
    if (candidates.empty()) return decision;
    const Candidate* best = &candidates.front();
    for (const Candidate& c : candidates) {
      if (c.device < best->device) best = &c;
    }
    decision.accept = true;
    decision.device = best->device;
    decision.mode = best->mode;
    return decision;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kFirstFit;
  }
};

class BestFitWattsPolicy final : public PlacementPolicy {
 public:
  Decision decide(const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
                  std::optional<std::size_t> exclude) override {
    const std::vector<Candidate> candidates =
        feasible_candidates(fleet, oracle, vn, exclude);
    Decision decision;
    decision.feasible_exists = !candidates.empty();
    if (candidates.empty()) return decision;
    const Candidate* best = nullptr;
    double best_marginal_w = std::numeric_limits<double>::infinity();
    for (const Candidate& c : candidates) {
      const double before_w = c.before.idle() ? 0.0 : oracle.watts(c.before);
      const double marginal_w = oracle.watts(c.after) - before_w;
      // Strict < makes earlier candidates win ties; candidate order is
      // deterministic, so the whole decision is.
      if (marginal_w < best_marginal_w) {
        best = &c;
        best_marginal_w = marginal_w;
      }
    }
    decision.accept = true;
    decision.device = best->device;
    decision.mode = best->mode;
    return decision;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kBestFitWatts;
  }
};

class ExpCostPolicy final : public PlacementPolicy {
 public:
  explicit ExpCostPolicy(ExpCostParams params) : params_(params) {
    VR_REQUIRE(params_.base > 1.0, "exp-cost base must exceed 1");
    VR_REQUIRE(params_.admission_threshold > 0.0,
               "exp-cost admission threshold must be positive");
  }

  Decision decide(const Fleet& fleet, CostOracle& oracle, const PlacedVn& vn,
                  std::optional<std::size_t> exclude) override {
    const std::vector<Candidate> candidates =
        feasible_candidates(fleet, oracle, vn, exclude);
    Decision decision;
    decision.feasible_exists = !candidates.empty();
    if (candidates.empty()) return decision;
    const Candidate* best = nullptr;
    double best_delta = std::numeric_limits<double>::infinity();
    for (const Candidate& c : candidates) {
      const double before_cost =
          std::pow(params_.base, oracle.congestion(c.before));
      const double after_cost =
          std::pow(params_.base, oracle.congestion(c.after));
      const double delta = after_cost - before_cost;
      if (delta < best_delta) {
        best = &c;
        best_delta = delta;
      }
    }
    const double benefit =
        params_.benefit[static_cast<std::size_t>(vn.sla)];
    if (best_delta > params_.admission_threshold * benefit) {
      // Admission control: the fleet is congested enough that hosting
      // this request would crowd out higher-benefit tenants.
      return decision;
    }
    decision.accept = true;
    decision.device = best->device;
    decision.mode = best->mode;
    return decision;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kExpCost;
  }

 private:
  ExpCostParams params_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind,
                                             ExpCostParams exp_params) {
  switch (kind) {
    case PolicyKind::kFirstFit:
      return std::make_unique<FirstFitPolicy>();
    case PolicyKind::kBestFitWatts:
      return std::make_unique<BestFitWattsPolicy>();
    case PolicyKind::kExpCost:
      return std::make_unique<ExpCostPolicy>(exp_params);
  }
  VR_REQUIRE(false, "unknown placement policy kind");
  return nullptr;
}

}  // namespace vr::placement
