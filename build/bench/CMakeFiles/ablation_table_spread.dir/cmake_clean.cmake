file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_spread.dir/ablation_table_spread.cpp.o"
  "CMakeFiles/ablation_table_spread.dir/ablation_table_spread.cpp.o.d"
  "ablation_table_spread"
  "ablation_table_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
