file(REMOVE_RECURSE
  "CMakeFiles/fig5_total_power.dir/fig5_total_power.cpp.o"
  "CMakeFiles/fig5_total_power.dir/fig5_total_power.cpp.o.d"
  "fig5_total_power"
  "fig5_total_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_total_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
