#include "trie/unibit_trie.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "trie/flat_trie.hpp"

namespace vr::trie {

UnibitTrie::UnibitTrie(const net::RoutingTable& table) {
  nodes_.push_back(TrieNode{});  // root
  for (const net::Route& route : table.routes()) {
    NodeIndex current = 0;
    for (unsigned depth = 0; depth < route.prefix.length(); ++depth) {
      const bool go_right = route.prefix.bit(depth);
      NodeIndex& child =
          go_right ? nodes_[current].right : nodes_[current].left;
      if (child == kNullNode) {
        child = checked_node_index(nodes_.size(), "unibit trie");
        nodes_.push_back(TrieNode{});
      }
      current = go_right ? nodes_[current].right : nodes_[current].left;
    }
    nodes_[current].next_hop = route.next_hop;
  }
  canonicalize();
}

void UnibitTrie::canonicalize() {
  // Breadth-first renumbering so that each level occupies a contiguous
  // index range (required by the level()/stage-mapping API).
  std::vector<TrieNode> ordered;
  ordered.reserve(nodes_.size());
  std::vector<NodeIndex> frontier{0};
  level_offsets_.clear();
  level_offsets_.push_back(0);

  std::vector<NodeIndex> remap(nodes_.size(), kNullNode);
  while (!frontier.empty()) {
    std::vector<NodeIndex> next;
    for (const NodeIndex old_index : frontier) {
      remap[old_index] = checked_node_index(ordered.size(), "unibit trie");
      ordered.push_back(nodes_[old_index]);
      if (nodes_[old_index].left != kNullNode) {
        next.push_back(nodes_[old_index].left);
      }
      if (nodes_[old_index].right != kNullNode) {
        next.push_back(nodes_[old_index].right);
      }
    }
    level_offsets_.push_back(ordered.size());
    frontier = std::move(next);
  }
  // level_offsets_ now ends with a duplicate of the total for the empty
  // frontier round; keep exactly level_count()+1 entries.
  if (level_offsets_.size() >= 2 &&
      level_offsets_[level_offsets_.size() - 1] ==
          level_offsets_[level_offsets_.size() - 2]) {
    level_offsets_.pop_back();
  }

  for (TrieNode& node : ordered) {
    if (node.left != kNullNode) node.left = remap[node.left];
    if (node.right != kNullNode) node.right = remap[node.right];
  }
  nodes_ = std::move(ordered);
  flat_ = std::make_shared<const FlatTrie>(*this);
}

std::optional<net::NextHop> UnibitTrie::lookup(net::Ipv4 addr) const {
  return flat_->lookup(addr);
}

std::vector<net::NextHop> UnibitTrie::lookup_batch(
    std::span<const net::Ipv4> addrs) const {
  return flat_->lookup_batch(addrs);
}

UnibitTrie UnibitTrie::leaf_pushed() const {
  UnibitTrie pushed;
  pushed.nodes_.reserve(nodes_.size() * 2);
  pushed.nodes_.push_back(TrieNode{});

  // Iterative DFS copying the trie while pushing the inherited next hop
  // down to the leaves. Missing siblings of internal nodes are material-
  // ized as new leaves carrying the inherited hop, so every internal node
  // of the result has exactly two children.
  struct Frame {
    NodeIndex src;        // node in *this (kNullNode => synthesize a leaf)
    NodeIndex dst;        // node in `pushed`
    net::NextHop inherited;
  };
  std::vector<Frame> stack{{0, 0, net::kNoRoute}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.src == kNullNode) {
      // Synthesized leaf: carries whatever route was inherited.
      pushed.nodes_[frame.dst].next_hop = frame.inherited;
      continue;
    }
    const TrieNode& src = nodes_[frame.src];
    const net::NextHop effective =
        src.has_route() ? src.next_hop : frame.inherited;
    if (src.is_leaf()) {
      pushed.nodes_[frame.dst].next_hop = effective;
      continue;
    }
    // Internal node: never carries a route after pushing; both children
    // exist in the output.
    const NodeIndex left_dst =
        checked_node_index(pushed.nodes_.size(), "leaf-pushed trie");
    pushed.nodes_.push_back(TrieNode{});
    const NodeIndex right_dst =
        checked_node_index(pushed.nodes_.size(), "leaf-pushed trie");
    pushed.nodes_.push_back(TrieNode{});
    pushed.nodes_[frame.dst].left = left_dst;
    pushed.nodes_[frame.dst].right = right_dst;
    stack.push_back(Frame{src.left, left_dst, effective});
    stack.push_back(Frame{src.right, right_dst, effective});
  }
  pushed.canonicalize();
  pushed.leaf_pushed_ = true;
  return pushed;
}

std::span<const TrieNode> UnibitTrie::level(std::size_t l) const {
  VR_REQUIRE(l < level_count(), "trie level out of range");
  return {nodes_.data() + level_offsets_[l],
          level_offsets_[l + 1] - level_offsets_[l]};
}

std::size_t UnibitTrie::level_of(NodeIndex node) const {
  VR_REQUIRE(node < nodes_.size(), "node index out of range");
  const auto it = std::upper_bound(level_offsets_.begin(),
                                   level_offsets_.end(), std::size_t{node});
  return static_cast<std::size_t>(it - level_offsets_.begin()) - 1;
}

}  // namespace vr::trie
