file(REMOVE_RECURSE
  "libvr_power.a"
)
