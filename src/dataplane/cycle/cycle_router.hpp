// Cycle-level virtualized router dataplane with credit-based flow control
// (DESIGN.md §15). The per-packet FullRouter answers *what* the data plane
// does to a frame stream; this model answers *when*, one clock cycle at a
// time, with the finite buffering and arbitration contention where the
// activity-driven power story (§13) actually lives:
//
//   source queue (per VN, the line card) --credits--> input VC buffers
//     --issue arbiter--> lookup pipeline (the existing LookupEngine via
//     its offer/tick step API) --editor--> switch --> DRR egress
//
// Packets are segmented into flits; a flit moves from the source into its
// packet's virtual channel only when the upstream credit counter for that
// VC is positive (credit consumed on send, returned when the flit drains
// through the switch), so `credits + buffered == capacity` holds for
// every VC at every cycle — the conservation law the `ctest -L cycle`
// property suite pins. Which VN may occupy which VC is the VcPolicy's
// business (vc_alloc.hpp): the paper's three static partitions plus the
// dynamic shared-pool scheme measured by bench/perf_cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dataplane/cycle/vc_alloc.hpp"
#include "dataplane/editor.hpp"
#include "dataplane/frame_gen.hpp"
#include "dataplane/parser.hpp"
#include "dataplane/scheduler.hpp"
#include "obs/metrics.hpp"
#include "pipeline/router.hpp"
#include "power/activity.hpp"

namespace vr::dataplane::cycle {

struct CycleConfig {
  VcAllocConfig vc;
  /// Flit buffer depth of one VC; the upstream holds this many credits.
  std::size_t vc_capacity_flits = 8;
  /// Flit payload granularity. A packet of B bytes occupies
  /// ceil(B / flit_bytes) flits (head flit carries the header).
  std::uint32_t flit_bytes = 64;
  /// Flits the line card can push into VC buffers per VN per cycle.
  std::size_t ingress_flits_per_cycle = 4;
  /// Crossbar bandwidth: flits moved from VC buffers to the egress
  /// queues per cycle, all VNs combined.
  std::size_t switch_flits_per_cycle = 4;
  /// Egress stage (per-port DRR across per-VN queues), reused as-is.
  SchedulerConfig scheduler;
};

/// Flit- and arbitration-level accounting of one run. Everything here is
/// conserved or cross-checkable: flits_in == flits_out + flits_dropped +
/// (flits still buffered), grants <= comparisons.
struct CycleStats {
  std::uint64_t flits_in = 0;       ///< flits written into VC buffers
  std::uint64_t flits_out = 0;      ///< flits drained through the switch
  std::uint64_t flits_dropped = 0;  ///< buffered flits discarded on a drop
  /// Cycles a VN's head packet waited because no VC was grantable.
  std::uint64_t vc_alloc_stalls = 0;
  /// Cycles a VN's flit transfer stopped on an exhausted credit counter.
  std::uint64_t credit_stalls = 0;
  /// Lookup-issue arbiter grants (one VC wins the issue slot).
  std::uint64_t arbiter_grants = 0;
  /// Candidate requests the issue arbiter examined while deciding.
  std::uint64_t arbiter_comparisons = 0;
  std::vector<std::uint64_t> alloc_stalls_per_vn;
  std::vector<std::uint64_t> grants_per_vn;
};

/// End-to-end summary of a cycle-level run; the cycle-model counterpart
/// of FullRouterResult (and priced by power::ActivityModel the same way).
struct CycleResult {
  ParserStats parser;
  EditorStats editor;
  SchedulerStats scheduler;
  CycleStats cycle;
  std::vector<EgressRecord> egress;
  std::uint64_t cycles = 0;
  power::ActivityCounters activity;
  /// Total flits buffered across all VCs, sampled once per cycle.
  obs::HistogramSnapshot vc_occupancy;
  /// Per-VN source-queue depth (packets awaiting a VC), sampled per cycle.
  obs::HistogramSnapshot source_queue_depth;
};

/// The cycle-driven router. Drive it manually (accept_frame + step) when
/// per-cycle state must be inspected — the invariant tests do — or use
/// run_cycle_router() for the batteries-included trace run.
class CycleRouter {
 public:
  /// `lookup` must match the policy's engine arrangement: K per-VN
  /// engines (SeparateRouter) for NV/VS, one merged engine (MergedRouter)
  /// for VM/DVC. The router borrows it for the run, like run_full_router.
  CycleRouter(pipeline::VirtualRouter& lookup, CycleConfig config);

  /// Parses one arriving frame at the current cycle; accepted packets are
  /// segmented into flits and queued at the VN's source queue.
  void accept_frame(const IngressFrame& frame);

  /// Advances the entire data plane one clock cycle.
  void step();

  /// True when no packet or flit is anywhere in flight.
  [[nodiscard]] bool drained() const;

  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }

  // Inspection surface for the invariant test layer. -----------------------
  [[nodiscard]] std::size_t vc_credits(std::size_t vc) const;
  [[nodiscard]] std::size_t vc_buffered(std::size_t vc) const;
  /// Whether the VC currently holds a packet (must agree with the
  /// allocator's owner map — the no-double-occupancy invariant).
  [[nodiscard]] bool vc_busy(std::size_t vc) const;
  [[nodiscard]] const VcAllocator& allocator() const noexcept {
    return allocator_;
  }
  /// Flits currently buffered across all VCs.
  [[nodiscard]] std::uint64_t in_flight_flits() const;
  [[nodiscard]] std::size_t source_depth(net::VnId vn) const;
  [[nodiscard]] const CycleStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ParserStats& parser_stats() const noexcept {
    return parser_.stats();
  }
  [[nodiscard]] const EditorStats& editor_stats() const noexcept {
    return editor_.stats();
  }
  [[nodiscard]] const SchedulerStats& scheduler_stats() const noexcept {
    return scheduler_.stats();
  }
  [[nodiscard]] const CycleConfig& config() const noexcept { return config_; }

  /// Folds engine activity + scheduler arbitration into the run's
  /// ActivityCounters and assembles the result. Call once, after drain.
  [[nodiscard]] CycleResult finish();

 private:
  struct SourcePacket {
    ParsedPacket parsed;
    std::size_t flits_total = 0;
    std::size_t flits_sent = 0;
    /// VC granted to this packet; kNoVc while waiting for allocation.
    std::size_t vc = kNoVc;
  };
  struct VcState {
    bool busy = false;
    net::VnId vn = 0;
    ParsedPacket parsed;
    std::size_t flits_total = 0;
    std::size_t flits_received = 0;
    std::size_t flits_drained = 0;
    std::size_t buffered = 0;
    std::size_t credits = 0;
    bool transfer_done = false;  ///< every flit left the source queue
    bool issued = false;         ///< lookup offered to the pipeline
    bool decided = false;        ///< editor verdict arrived
    std::optional<ForwardedPacket> forward;  ///< set when verdict = forward
  };
  static constexpr std::size_t kNoVc = static_cast<std::size_t>(-1);

  void allocate_vcs();
  void ingress_flits();
  void issue_lookups();
  /// Offers at most one eligible VC of `candidates` to the lookup stage,
  /// scanning round-robin from *cursor. Returns true on a grant.
  bool issue_one(std::optional<net::VnId> vn_filter, std::size_t* cursor);
  void apply_decision(const pipeline::LookupResult& done);
  void drain_switch();
  void free_vc(std::size_t vc);

  CycleConfig config_;
  pipeline::VirtualRouter* lookup_;
  Parser parser_;
  Editor editor_;
  DrrScheduler scheduler_;
  VcAllocator allocator_;
  std::vector<VcState> vcs_;
  std::vector<std::deque<SourcePacket>> source_;
  /// Per-VN issue order: lookup pipelines complete in order per VN, so
  /// the front VC owns the next completed result of that VN.
  std::vector<std::deque<std::size_t>> issued_order_;
  std::vector<EgressRecord> egress_;
  std::vector<pipeline::LookupResult> lookup_done_;
  power::ActivityCounters activity_;
  CycleStats stats_;
  obs::Histogram vc_occupancy_hist_;
  obs::Histogram source_depth_hist_;
  std::uint64_t cycle_ = 0;
  std::size_t arb_cursor_ = 0;    ///< merged-engine issue round-robin
  std::size_t drain_cursor_ = 0;  ///< switch drain round-robin
  bool finished_ = false;
};

/// Sorts `frames` by arrival cycle, drives them through the router, and
/// runs the clock until the data plane drains. Aborts (VR_REQUIRE) if the
/// model stops making progress — a deadlock is a bug, never a hang.
[[nodiscard]] CycleResult run_cycle_router(pipeline::VirtualRouter& lookup,
                                           std::vector<IngressFrame> frames,
                                           const CycleConfig& config);

}  // namespace vr::dataplane::cycle
