// Structural K-way trie merge — the "virtualized-merged" data structure
// (paper Sec. II-A.2, V-D): all K virtual networks share one lookup trie;
// a merged node exists wherever any input trie has a node, and leaves carry
// a K-wide next-hop vector indexed by the virtual-network identifier (VNID).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "netbase/traffic.hpp"
#include "trie/flat_trie.hpp"
#include "trie/trie_stats.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::virt {

/// A node of the merged trie. Per-VN next hops live in a flat pool
/// (`MergedTrie::next_hops`) at offset node_index * K.
struct MergedNode {
  trie::NodeIndex left = trie::kNullNode;
  trie::NodeIndex right = trie::kNullNode;
  /// Number of input tries containing this node (>= 1). Used for the
  /// structural overlap statistics.
  std::uint16_t present_in = 0;

  [[nodiscard]] bool is_leaf() const noexcept {
    return left == trie::kNullNode && right == trie::kNullNode;
  }
};

/// Structural sharing statistics of a merge.
struct MergeStats {
  std::size_t merged_nodes = 0;
  std::size_t sum_input_nodes = 0;   ///< Σ_k n_k over the K input tries
  std::size_t shared_any = 0;        ///< nodes present in >= 2 tries
  std::size_t shared_all = 0;        ///< nodes present in all K tries

  /// Structural overlap per the paper's Assumption 4 ("common nodes /
  /// total nodes"), with "common" = present in at least two tries.
  [[nodiscard]] double alpha_structural() const noexcept {
    return merged_nodes == 0 ? 0.0
                             : static_cast<double>(shared_any) /
                                   static_cast<double>(merged_nodes);
  }

  /// Effective merging efficiency: the α that makes the analytical merged
  /// node-count formula T = Σn / (1 + (K-1)α) · K/K (DESIGN.md Sec. 3)
  /// reproduce the measured merged node count exactly. For K == 1 this is
  /// defined as 1.
  [[nodiscard]] double alpha_effective(std::size_t vn_count) const noexcept;
};

/// The merged trie. Nodes are stored in breadth-first (level) order like
/// UnibitTrie so that stage mapping works identically.
class MergedTrie {
 public:
  /// Merges K tries. All inputs must be non-null; K >= 1. If the inputs
  /// are leaf-pushed the merged trie is too (mixing is allowed but then the
  /// result is not considered leaf-pushed).
  explicit MergedTrie(std::span<const trie::UnibitTrie* const> tries);

  [[nodiscard]] std::size_t vn_count() const noexcept { return vn_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::span<const MergedNode> nodes() const noexcept {
    return nodes_;
  }

  /// Next hop of node `node` for virtual network `vn` (kNoRoute if the VN
  /// has no route at this node). The K-wide NHI pool lives in the flat
  /// SoA view.
  [[nodiscard]] net::NextHop next_hop(trie::NodeIndex node, net::VnId vn)
      const {
    return flat_->next_hop(node, vn);
  }

  /// Longest-prefix match for a packet of virtual network `vn`.
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr,
                                                   net::VnId vn) const;

  /// Batched longest-prefix match of VNID-tagged packets.
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Packet> packets) const {
    return flat_->lookup_batch(packets);
  }

  /// The flat structure-of-arrays view (lookup hot path).
  [[nodiscard]] const trie::FlatTrie& flat() const noexcept { return *flat_; }
  [[nodiscard]] std::shared_ptr<const trie::FlatTrie> flat_shared()
      const noexcept {
    return flat_;
  }

  [[nodiscard]] const MergeStats& stats() const noexcept { return stats_; }

  /// Invariant: level_offsets_ always has >= 2 entries after construction
  /// (K >= 1 inputs each contribute at least a root), so these cannot
  /// underflow. The asserts guard moved-from objects.
  [[nodiscard]] unsigned height() const noexcept {
    assert(level_offsets_.size() >= 2 && "merged trie has no levels");
    return static_cast<unsigned>(level_offsets_.size() - 2);
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    assert(level_offsets_.size() >= 2 && "merged trie has no levels");
    return level_offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::size_t> level_offsets() const noexcept {
    return level_offsets_;
  }
  [[nodiscard]] std::span<const MergedNode> level(std::size_t l) const;

  /// Per-level structural statistics in the same shape as a single trie's
  /// (leaves carry K-wide NHI vectors, which the memory layer accounts for
  /// via its vn_count parameter).
  [[nodiscard]] trie::TrieStats stats_as_trie() const;

 private:
  std::size_t vn_count_;
  std::vector<MergedNode> nodes_;
  std::vector<std::size_t> level_offsets_;
  /// Flat SoA view owning the node-major K-wide next-hop pool.
  std::shared_ptr<const trie::FlatTrie> flat_;
  MergeStats stats_;
};

}  // namespace vr::virt
