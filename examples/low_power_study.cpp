// Low-power FPGA exploration — the paper's Sec. VI closing study: compare
// the high-performance (-2) and low-power (-1L) speed grades across all
// three deployment schemes and show that -1L trades ~30 % power for ~30 %
// throughput at essentially unchanged mW/Gbps ("low power FPGAs are
// suitable in environments where throughput is not the major concern").
//
// Run: ./build/examples/low_power_study
#include <iostream>

#include "common/table.hpp"
#include "core/validator.hpp"

int main() {
  using namespace vr;
  const core::ModelValidator validator{fpga::DeviceSpec::xc6vlx760()};

  for (const std::size_t k : {4ul, 8ul, 15ul}) {
    TextTable table("K = " + std::to_string(k) +
                    " virtual networks: -2 vs -1L");
    table.set_header({"scheme", "W (-2)", "W (-1L)", "saving %", "Gbps (-2)",
                      "Gbps (-1L)", "mW/Gbps (-2)", "mW/Gbps (-1L)"});
    for (const auto scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      core::Scenario s;
      s.scheme = scheme;
      s.vn_count = k;
      s.alpha = 0.8;
      s.grade = fpga::SpeedGrade::kMinus2;
      const core::Estimate hi = validator.estimator().estimate(s);
      s.grade = fpga::SpeedGrade::kMinus1L;
      const core::Estimate lo = validator.estimator().estimate(s);
      table.add_row(
          {power::to_string(scheme),
           TextTable::num(hi.power.total_w().value(), 2),
           TextTable::num(lo.power.total_w().value(), 2),
           TextTable::num(
               (1.0 - lo.power.total_w() / hi.power.total_w()) * 100.0, 1),
           TextTable::num(hi.throughput_gbps.value(), 0),
           TextTable::num(lo.throughput_gbps.value(), 0),
           TextTable::num(hi.mw_per_gbps.value(), 2),
           TextTable::num(lo.mw_per_gbps.value(), 2)});
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "The -1L grade cuts power ~30 % and throughput ~30 %: the\n"
               "mW/Gbps columns nearly coincide, reproducing the paper's\n"
               "conclusion that low-power families fit deployments where\n"
               "raw throughput is not the bottleneck.\n";
  return 0;
}
