# Empty compiler generated dependencies file for ablation_clock_gating.
# This may be replaced when dependencies are built.
