// Fixed-stride multibit trie with controlled prefix expansion — the other
// end of the design space in the paper's reference [16] (Ruiz-Sanchez et
// al., "Survey and taxonomy of IP address lookup algorithms"), which also
// supplies the leaf-pushing technique the paper deploys. A stride-k trie
// consumes k address bits per level, so a pipeline needs only ceil(32/k)
// stages (less logic power per lookup), at the price of node expansion
// (each node stores 2^k entries, and prefixes are expanded to stride
// boundaries). The `ablation_stride` bench quantifies the tradeoff with
// the paper's power coefficients.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/routing_table.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {

class MultibitTrie {
 public:
  /// Supported strides divide 32 evenly: 1, 2, 4 or 8.
  MultibitTrie(const net::RoutingTable& table, unsigned stride);

  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr) const;

  [[nodiscard]] unsigned stride() const noexcept { return stride_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t entries_per_node() const noexcept {
    return std::size_t{1} << stride_;
  }
  /// Total stored entries (nodes x 2^stride).
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return node_count() * entries_per_node();
  }
  /// Pipeline depth: one level per stage.
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_node_counts_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& level_node_counts() const
      noexcept {
    return level_node_counts_;
  }

  /// Memory footprint in bits: every entry stores a child pointer plus a
  /// next hop (`pointer_bits` + `nhi_bits` wide words).
  [[nodiscard]] std::uint64_t memory_bits(unsigned pointer_bits = 18,
                                          unsigned nhi_bits = 8) const
      noexcept {
    return std::uint64_t{entry_count()} * (pointer_bits + nhi_bits);
  }

  /// Per-level memory bits (for stage-mapped power evaluation).
  [[nodiscard]] std::vector<std::uint64_t> level_memory_bits(
      unsigned pointer_bits = 18, unsigned nhi_bits = 8) const;

  /// Child pointer of entry `slot` of `node` (kNullNode when absent) —
  /// the read surface of the flat-image flattener.
  [[nodiscard]] NodeIndex entry_child(NodeIndex node, std::size_t slot)
      const {
    return entry(node, slot).child;
  }
  /// Next hop stored at entry (node, slot); kNoRoute when none.
  [[nodiscard]] net::NextHop entry_next_hop(NodeIndex node,
                                            std::size_t slot) const {
    return entry(node, slot).next_hop;
  }

 private:
  struct Entry {
    NodeIndex child = kNullNode;
    net::NextHop next_hop = net::kNoRoute;
    /// Length of the route stored here (expansion priority tie-breaker);
    /// build-time only.
    std::uint8_t route_len = 0;
  };

  [[nodiscard]] Entry& entry(NodeIndex node, std::size_t slot) {
    return entries_[node * entries_per_node() + slot];
  }
  [[nodiscard]] const Entry& entry(NodeIndex node, std::size_t slot) const {
    return entries_[node * entries_per_node() + slot];
  }

  NodeIndex allocate_node(std::size_t level);
  void insert(const net::Route& route);

  unsigned stride_;
  std::vector<std::uint8_t> nodes_;  // per-node level (value unused beyond size)
  std::vector<Entry> entries_;       // node-major, 2^stride per node
  std::vector<std::size_t> level_node_counts_;
};

}  // namespace vr::trie
