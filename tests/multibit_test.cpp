#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "trie/multibit_trie.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {
namespace {

using net::Ipv4;
using net::Prefix;
using net::RoutingTable;

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 500) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

TEST(MultibitTrieTest, RejectsBadStride) {
  const RoutingTable table = gen_table(1, 50);
  EXPECT_DEATH(MultibitTrie(table, 0), "stride");
  EXPECT_DEATH(MultibitTrie(table, 3), "stride");
  EXPECT_DEATH(MultibitTrie(table, 16), "stride");
}

TEST(MultibitTrieTest, HandCheckedStride2) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/1"), 1);    // expands to entries 00,01
  table.add(*Prefix::parse("192.0.0.0/2"), 2);  // entry 11
  const MultibitTrie trie(table, 2);
  EXPECT_EQ(trie.node_count(), 1u);  // everything fits in the root
  EXPECT_EQ(trie.lookup(Ipv4(0x00, 0, 0, 0)), 1);
  EXPECT_EQ(trie.lookup(Ipv4(0x40, 0, 0, 0)), 1);
  EXPECT_EQ(trie.lookup(Ipv4(0x80, 0, 0, 0)), std::nullopt);  // 10
  EXPECT_EQ(trie.lookup(Ipv4(0xc0, 0, 0, 0)), 2);
}

TEST(MultibitTrieTest, ExpansionPrefersLongerPrefix) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/1"), 1);  // covers 00 and 01 at stride 2
  table.add(*Prefix::parse("0.0.0.0/2"), 2);  // covers 00 exactly
  const MultibitTrie trie(table, 2);
  EXPECT_EQ(trie.lookup(Ipv4(0x00, 0, 0, 0)), 2);
  EXPECT_EQ(trie.lookup(Ipv4(0x40, 0, 0, 0)), 1);
}

TEST(MultibitTrieTest, DefaultRouteCoversEverything) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/0"), 7);
  table.add(*Prefix::parse("10.0.0.0/8"), 3);
  const MultibitTrie trie(table, 4);
  EXPECT_EQ(trie.lookup(Ipv4(10, 1, 1, 1)), 3);
  EXPECT_EQ(trie.lookup(Ipv4(200, 1, 1, 1)), 7);
}

class MultibitLookupProperty
    : public ::testing::TestWithParam<unsigned /*stride*/> {};

TEST_P(MultibitLookupProperty, MatchesUnibitAndOracle) {
  const RoutingTable table = gen_table(GetParam() + 10);
  const MultibitTrie multibit(table, GetParam());
  const UnibitTrie unibit(table);
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto expected = unibit.lookup(addr);
    EXPECT_EQ(multibit.lookup(addr), expected);
    if (i % 10 == 0) {
      EXPECT_EQ(multibit.lookup(addr), table.lookup(addr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, MultibitLookupProperty,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(MultibitTrieTest, LevelCountShrinksWithStride) {
  const RoutingTable table = gen_table(20);
  std::size_t prev = 64;
  for (const unsigned stride : {1u, 2u, 4u, 8u}) {
    const MultibitTrie trie(table, stride);
    EXPECT_LT(trie.level_count(), prev);
    EXPECT_LE(trie.level_count(), 32u / stride);
    prev = trie.level_count();
  }
}

TEST(MultibitTrieTest, MemoryGrowsWithStride) {
  const RoutingTable table = gen_table(21);
  std::uint64_t prev = 0;
  for (const unsigned stride : {1u, 2u, 4u, 8u}) {
    const MultibitTrie trie(table, stride);
    const std::uint64_t bits = trie.memory_bits();
    if (stride >= 4) {
      EXPECT_GT(bits, prev);  // expansion dominates beyond stride 2
    }
    prev = bits;
  }
}

TEST(MultibitTrieTest, LevelMemorySumsToTotal) {
  const RoutingTable table = gen_table(22);
  const MultibitTrie trie(table, 4);
  std::uint64_t sum = 0;
  for (const std::uint64_t bits : trie.level_memory_bits()) sum += bits;
  EXPECT_EQ(sum, trie.memory_bits());
  std::size_t node_sum = 0;
  for (const std::size_t n : trie.level_node_counts()) node_sum += n;
  EXPECT_EQ(node_sum, trie.node_count());
}

TEST(MultibitTrieTest, Stride1MatchesUnibitNodeCount) {
  // A stride-1 multibit trie without leaf pushing has one 2-entry node
  // per INTERNAL unibit node (leaves collapse into their parents'
  // entries).
  RoutingTable table;
  table.add(*Prefix::parse("10.0.0.0/8"), 1);
  const MultibitTrie multibit(table, 1);
  EXPECT_EQ(multibit.node_count(), 8u);  // internal chain of the /8 path
}

}  // namespace
}  // namespace vr::trie
