// Observability layer: concurrency-exact counters, histogram quantiles and
// merging, registry identity/ordering semantics, JSON sink round-trips and
// RAII timers. The timing tests assert only monotonicity (elapsed >= 0,
// records exactly once) — never wall-clock magnitudes, which would flake.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "obs/timer.hpp"

namespace vr::obs {
namespace {

// ---------------------------------------------------------------- counter --

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  const core::SweepRunner runner(kThreads);
  runner.for_each(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerThread; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge gauge;
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(GaugeTest, ConcurrentDeltasBalanceOut) {
  Gauge gauge;
  const core::SweepRunner runner(8);
  runner.for_each(8, [&](std::size_t) {
    for (int i = 0; i < 5000; ++i) {
      gauge.add(3);
      gauge.add(-3);
    }
  });
  EXPECT_EQ(gauge.value(), 0);
}

// -------------------------------------------------------------- histogram --

TEST(HistogramTest, SummaryStatsAreExact) {
  Histogram hist;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) hist.observe(v);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_DOUBLE_EQ(snap.stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(snap.stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(snap.stats.sum(), 10.0);
}

TEST(HistogramTest, QuantileBoundariesAreExact) {
  Histogram hist;
  for (int v = 1; v <= 100; ++v) hist.observe(static_cast<double>(v));
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  // Interior quantiles are approximate (log2 buckets) but must stay inside
  // the observed range and be monotone in q.
  double last = snap.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = snap.quantile(q);
    EXPECT_GE(value, last);
    EXPECT_LE(value, 100.0);
    last = value;
  }
  // The median of 1..100 lands near 50 even through bucket interpolation.
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 16.0);
}

TEST(HistogramTest, EmptySnapshotAnswersZero) {
  const HistogramSnapshot snap = Histogram().snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(HistogramTest, MergeMatchesCombinedObservation) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int v = 0; v < 50; ++v) {
    a.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  for (int v = 50; v < 90; ++v) {
    b.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  a.merge(b.snapshot());
  const HistogramSnapshot merged = a.snapshot();
  const HistogramSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_DOUBLE_EQ(merged.stats.mean(), direct.stats.mean());
  EXPECT_DOUBLE_EQ(merged.stats.min(), direct.stats.min());
  EXPECT_DOUBLE_EQ(merged.stats.max(), direct.stats.max());
  EXPECT_EQ(merged.buckets, direct.buckets);
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), direct.quantile(0.5));
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  Histogram hist;
  const core::SweepRunner runner(8);
  runner.for_each(8, [&](std::size_t t) {
    for (int i = 0; i < 2000; ++i) {
      hist.observe(static_cast<double>(t + 1));
    }
  });
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count(), 16000u);
  EXPECT_DOUBLE_EQ(snap.stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.stats.max(), 8.0);
}

TEST(HistogramTest, RejectsNanAndNegative) {
  Histogram hist;
  EXPECT_DEATH(hist.observe(std::nan("")), "histogram sample is NaN");
  EXPECT_DEATH(hist.observe(-1.0), "histogram sample is negative");
}

// -------------------------------------------------- custom bucket bounds --

TEST(HistogramBoundsTest, CustomBoundsBinSamplesAtTheDeclaredEdges) {
  Histogram hist(std::vector<double>{2.0, 4.0, 8.0});
  hist.observe(1.0);  // [0, 2)
  hist.observe(2.0);  // [2, 4) — edges are exclusive upper bounds
  hist.observe(5.0);  // [4, 8)
  hist.observe(9.0);  // overflow bucket
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.bounds, (std::vector<double>{2.0, 4.0, 8.0}));
  ASSERT_EQ(snap.used_buckets(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  // Quantiles interpolate within the declared edges; the overflow
  // bucket's upper edge is the observed max, not infinity.
  const double median = snap.quantile(0.5);
  EXPECT_GE(median, 2.0);
  EXPECT_LE(median, 4.0);
  EXPECT_LE(snap.quantile(1.0), 9.0);
  EXPECT_GE(snap.quantile(1.0), median);
}

TEST(HistogramBoundsTest, MalformedBoundsAbort) {
  EXPECT_DEATH(Histogram(std::vector<double>{2.0, 2.0}),
               "strictly increasing");
  EXPECT_DEATH(Histogram(std::vector<double>{4.0, 2.0}),
               "strictly increasing");
  EXPECT_DEATH(Histogram(std::vector<double>{-1.0, 3.0}),
               "positive and finite");
  std::vector<double> too_many;
  for (int i = 0; i < 64; ++i) {
    too_many.push_back(static_cast<double>(i + 1));
  }
  EXPECT_DEATH(Histogram{too_many}, "more bucket bounds");
}

TEST(HistogramBoundsTest, MatchingBoundsMergeExactly) {
  const std::vector<double> bounds = {3.0, 6.0, 9.0};
  Histogram a(bounds);
  Histogram b(bounds);
  Histogram combined(bounds);
  for (int v = 0; v < 8; ++v) {
    a.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  for (int v = 8; v < 12; ++v) {
    b.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  a.merge(b.snapshot());
  const HistogramSnapshot merged = a.snapshot();
  const HistogramSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.buckets, direct.buckets);
  EXPECT_DOUBLE_EQ(merged.stats.mean(), direct.stats.mean());
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), direct.quantile(0.5));
}

// Regression: merging differently-shaped histograms used to be silently
// accepted bucket-by-bucket, producing counts that belonged to no
// consistent edge scheme. Any shape disagreement must abort.
TEST(HistogramBoundsTest, MismatchedBoundsRefuseToMerge) {
  Histogram a(std::vector<double>{2.0, 4.0});
  Histogram b(std::vector<double>{2.0, 5.0});
  Histogram default_shaped;
  a.observe(1.0);
  b.observe(1.0);
  default_shaped.observe(1.0);
  EXPECT_DEATH(a.merge(b.snapshot()), "bounds mismatch");
  EXPECT_DEATH(a.merge(default_shaped.snapshot()), "bounds mismatch");
  EXPECT_DEATH(default_shaped.merge(a.snapshot()), "bounds mismatch");
}

TEST(HistogramBoundsTest, ConfigureBoundsOnlyReshapesAnEmptyHistogram) {
  Histogram hist;
  hist.configure_bounds({1.0, 2.0});
  hist.configure_bounds({1.0, 2.0});  // same shape again is a no-op
  hist.observe(1.5);
  EXPECT_EQ(hist.snapshot().bounds, (std::vector<double>{1.0, 2.0}));
  // Still-empty but already shaped: a different shape is a conflict.
  Histogram shaped(std::vector<double>{1.0, 2.0});
  EXPECT_DEATH(shaped.configure_bounds({9.0}), "re-configured");
  // Already sampled: the counts cannot be re-binned, even from default.
  EXPECT_DEATH(hist.configure_bounds({9.0}), "cannot change once samples");
  Histogram sampled;
  sampled.observe(1.0);
  EXPECT_DEATH(sampled.configure_bounds({1.0, 2.0}),
               "cannot change once samples");
}

// --------------------------------------------------------------- registry --

TEST(RegistryTest, SameNameAndLabelsReturnsSameCell) {
  Registry registry;
  Counter& a = registry.counter("test.hits");
  Counter& b = registry.counter("test.hits");
  EXPECT_EQ(&a, &b);
  Counter& labeled = registry.counter("test.hits", {{"vn", "1"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, LabelOrderDoesNotDistinguishMetrics) {
  Registry registry;
  Counter& ab = registry.counter("test.multi", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.counter("test.multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(RegistryTest, KindMismatchAborts) {
  Registry registry;
  registry.counter("test.value");
  EXPECT_DEATH(registry.gauge("test.value"),
               "re-registered with a different kind");
}

TEST(RegistryTest, EmptyNameAborts) {
  Registry registry;
  EXPECT_DEATH(registry.counter(""), "metric name must not be empty");
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.counter("z.last").add(3);
  registry.gauge("a.first").set(-5);
  registry.histogram("m.middle").observe(2.0);
  const std::vector<Registry::Snapshot> snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a.first");
  EXPECT_EQ(snaps[0].gauge, -5);
  EXPECT_EQ(snaps[1].name, "m.middle");
  EXPECT_EQ(snaps[1].histogram.count(), 1u);
  EXPECT_EQ(snaps[2].name, "z.last");
  EXPECT_EQ(snaps[2].counter, 3u);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsReferences) {
  Registry registry;
  Counter& counter = registry.counter("test.n");
  counter.add(41);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&registry.counter("test.n"), &counter);
  counter.add(1);
  EXPECT_EQ(registry.snapshot().front().counter, 1u);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  Registry registry;
  const core::SweepRunner runner(8);
  runner.for_each(64, [&](std::size_t i) {
    registry.counter("test.shared").add(1);
    registry.counter("test.mod", {{"k", std::to_string(i % 4)}}).add(1);
  });
  EXPECT_EQ(registry.counter("test.shared").value(), 64u);
  EXPECT_EQ(registry.size(), 5u);
}

// ------------------------------------------------------------------ merge --

/// Two registries hold the same state when their snapshots agree metric by
/// metric (identity exactly, histogram moments to double precision).
void expect_same_state(const Registry& a, const Registry& b) {
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    SCOPED_TRACE(sa[i].name);
    EXPECT_EQ(sa[i].name, sb[i].name);
    EXPECT_EQ(sa[i].labels, sb[i].labels);
    ASSERT_EQ(sa[i].kind, sb[i].kind);
    EXPECT_EQ(sa[i].counter, sb[i].counter);
    EXPECT_EQ(sa[i].gauge, sb[i].gauge);
    EXPECT_EQ(sa[i].histogram.count(), sb[i].histogram.count());
    EXPECT_EQ(sa[i].histogram.buckets, sb[i].histogram.buckets);
    if (sa[i].histogram.count() > 0) {
      EXPECT_DOUBLE_EQ(sa[i].histogram.stats.mean(),
                       sb[i].histogram.stats.mean());
      EXPECT_DOUBLE_EQ(sa[i].histogram.stats.min(),
                       sb[i].histogram.stats.min());
      EXPECT_DOUBLE_EQ(sa[i].histogram.stats.max(),
                       sb[i].histogram.stats.max());
    }
  }
}

/// A shard as a parallel run would produce one: overlapping and disjoint
/// members of each metric kind, parameterized so shards differ.
void fill_shard(Registry* registry, std::uint64_t salt) {
  registry->counter("m.events").add(10 + salt);
  registry->counter("m.events", {{"vn", std::to_string(salt % 2)}})
      .add(3 * salt + 1);
  registry->gauge("m.level").add(static_cast<std::int64_t>(salt) - 2);
  Histogram& hist = registry->histogram("m.depth");
  for (std::uint64_t v = 0; v <= salt; ++v) {
    hist.observe(static_cast<double>(v * salt + 1));
  }
  if (salt % 2 == 0) {
    registry->counter("m.even_only").add(salt);
  }
}

TEST(RegistryMergeTest, SumsCountersGaugesAndHistogramsAndCreatesMissing) {
  Registry dest;
  Registry src;
  dest.counter("m.events").add(5);
  src.counter("m.events").add(7);
  src.gauge("m.level").set(-3);
  src.histogram("m.depth").observe(2.0);
  src.histogram("m.depth").observe(4.0);
  dest.merge(src);
  EXPECT_EQ(dest.counter("m.events").value(), 12u);
  EXPECT_EQ(dest.gauge("m.level").value(), -3);
  const HistogramSnapshot depth = dest.histogram("m.depth").snapshot();
  EXPECT_EQ(depth.count(), 2u);
  EXPECT_DOUBLE_EQ(depth.stats.mean(), 3.0);
  EXPECT_EQ(dest.size(), 3u);
  // The source is read-only in the exchange.
  EXPECT_EQ(src.counter("m.events").value(), 7u);
}

TEST(RegistryMergeTest, MergeIsCommutative) {
  Registry a;
  Registry b;
  fill_shard(&a, 1);
  fill_shard(&b, 2);
  Registry ab;
  ab.merge(a);
  ab.merge(b);
  Registry ba;
  ba.merge(b);
  ba.merge(a);
  expect_same_state(ab, ba);
}

TEST(RegistryMergeTest, MergeIsAssociative) {
  Registry a;
  Registry b;
  Registry c;
  fill_shard(&a, 1);
  fill_shard(&b, 2);
  fill_shard(&c, 3);
  // ((a + b) + c)
  Registry left;
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // (a + (b + c))
  Registry bc;
  bc.merge(b);
  bc.merge(c);
  Registry right;
  right.merge(a);
  right.merge(bc);
  expect_same_state(left, right);
}

TEST(RegistryMergeTest, SelfMergeAborts) {
  Registry registry;
  registry.counter("m.events").add(1);
  EXPECT_DEATH(registry.merge(registry), "itself");
}

TEST(RegistryMergeTest, KindMismatchAborts) {
  Registry dest;
  Registry src;
  dest.counter("m.events").add(1);
  src.gauge("m.events").set(1);
  EXPECT_DEATH(dest.merge(src), "different kind");
}

// Regression: two shards registering one histogram name with different
// bucket shapes used to merge silently, summing counts across buckets
// that meant different value ranges. The abort must name the metric so
// the offending registration is findable.
TEST(RegistryMergeTest, HistogramShapeMismatchAbortsWithMetricName) {
  Registry dest;
  Registry src;
  dest.histogram("m.depth", std::vector<double>{1.0, 2.0}).observe(0.5);
  src.histogram("m.depth", std::vector<double>{4.0, 8.0}).observe(0.5);
  EXPECT_DEATH(dest.merge(src), "m.depth");
}

TEST(RegistryMergeTest, DefaultShapedPopulatedCellRefusesCustomSource) {
  Registry dest;
  Registry src;
  dest.histogram("m.depth").observe(1.0);  // default base-2, has samples
  src.histogram("m.depth", std::vector<double>{2.0}).observe(1.0);
  EXPECT_DEATH(dest.merge(src), "m.depth");
}

TEST(RegistryMergeTest, MergeCreatesCustomShapedCellsInTheDestination) {
  Registry dest;
  Registry src;
  src.histogram("m.depth", std::vector<double>{2.0, 4.0}).observe(1.0);
  dest.merge(src);
  // The fresh destination cell adopted the source's shape, so a second
  // merge of the same shard accumulates instead of aborting.
  EXPECT_EQ(dest.histogram("m.depth").bounds(),
            (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(dest.histogram("m.depth").snapshot().count(), 1u);
  dest.merge(src);
  EXPECT_EQ(dest.histogram("m.depth").snapshot().count(), 2u);
}

TEST(RegistryTest, HistogramReRegistrationMustKeepItsBounds) {
  Registry registry;
  Histogram& a = registry.histogram("m.lat", std::vector<double>{1.0, 2.0});
  Histogram& b = registry.histogram("m.lat", std::vector<double>{1.0, 2.0});
  EXPECT_EQ(&a, &b);
  // The plain accessor returns the shaped cell unchanged.
  EXPECT_EQ(&registry.histogram("m.lat"), &a);
  EXPECT_DEATH(registry.histogram("m.lat", std::vector<double>{9.0}),
               "different histogram bucket bounds");
}

// ------------------------------------------------------------------- sink --

TEST(SinkTest, JsonSerializesCountersGaugesHistograms) {
  Registry registry;
  registry.counter("c.events", {{"vn", "0"}}).add(12);
  registry.gauge("g.level").set(-4);
  Histogram& hist = registry.histogram("h.depth");
  hist.observe(1.0);
  hist.observe(3.0);
  const std::string json = MetricsSink(registry).json();
  EXPECT_NE(json.find("\"name\": \"c.events\""), std::string::npos);
  EXPECT_NE(json.find("\"vn\": \"0\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 2"), std::string::npos);
}

TEST(SinkTest, JsonDoublesRoundTripThroughStrtod) {
  Registry registry;
  Histogram& hist = registry.histogram("h.values");
  const double exact = 0.1 + 0.2;  // not representable in short decimal
  hist.observe(exact);
  const std::string json = MetricsSink(registry).json();
  const std::string needle = "\"mean\": ";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  const double parsed =
      std::strtod(json.c_str() + at + needle.size(), nullptr);
  EXPECT_EQ(parsed, exact);  // bit-exact, not just close
}

TEST(SinkTest, JsonEscapesLabelValues) {
  Registry registry;
  registry.counter("c.weird", {{"path", "a\"b\\c\n"}}).add(1);
  const std::string json = MetricsSink(registry).json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
}

TEST(SinkTest, IndentPrefixesEveryLineAfterTheFirst) {
  Registry registry;
  registry.counter("c.n").add(1);
  std::istringstream lines(MetricsSink(registry).json(2));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "{");  // first line carries no prefix (embed in place)
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.substr(0, 2), "  ") << "line not indented: " << line;
  }
}

TEST(SinkTest, TableListsEveryMetric) {
  Registry registry;
  registry.counter("c.events").add(2);
  registry.histogram("h.ns").observe(5.0);
  std::ostringstream os;
  MetricsSink(registry).table().render(os);
  EXPECT_NE(os.str().find("c.events"), std::string::npos);
  EXPECT_NE(os.str().find("h.ns"), std::string::npos);
}

// ------------------------------------------------------------------ timer --

TEST(ScopedTimerTest, RecordsExactlyOnceAndNonNegative) {
  Histogram hist;
  {
    ScopedTimer timer(hist);
    const units::Nanoseconds elapsed = timer.stop();
    EXPECT_GE(elapsed.value(), 0.0);
    EXPECT_TRUE(timer.stopped());
    // Second stop and the destructor must both be no-ops.
    EXPECT_DOUBLE_EQ(timer.stop().value(), 0.0);
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_GE(snap.stats.min(), 0.0);
}

TEST(ScopedTimerTest, DestructorRecords) {
  Histogram hist;
  { const ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count(), 1u);
}

TEST(TraceSpanTest, GaugeTracksOpenSpans) {
  Histogram hist;
  Gauge active;
  {
    const TraceSpan outer(hist, active);
    EXPECT_EQ(active.value(), 1);
    {
      const TraceSpan inner(hist, active);
      EXPECT_EQ(active.value(), 2);
    }
    EXPECT_EQ(active.value(), 1);
  }
  EXPECT_EQ(active.value(), 0);
  EXPECT_EQ(hist.snapshot().count(), 2u);
}

}  // namespace
}  // namespace vr::obs
