// Regenerates paper Table II: Virtex-6 XC6VLX760 device specifications as
// encoded in the device catalog, plus the derived quantities the models
// use (static power per grade, base Fmax, BRAM halves).
#include "bench_common.hpp"
#include "fpga/bram.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  const fpga::DeviceSpec spec = fpga::DeviceSpec::xc6vlx760();

  TextTable table("Table II - " + spec.name + " device specs");
  table.set_header({"resource", "amount"});
  table.add_row({"Logic cells", std::to_string(spec.logic_cells)});
  table.add_row({"Slices", std::to_string(spec.slices)});
  table.add_row({"LUTs", std::to_string(spec.luts)});
  table.add_row({"Flip-flops", std::to_string(spec.flip_flops)});
  table.add_row({"Max. distributed RAM",
                 std::to_string(spec.distributed_ram_bits / (1024 * 1024)) +
                     " Mb"});
  table.add_row({"Block RAM",
                 std::to_string(spec.bram_bits / (1024 * 1024)) + " Mb"});
  table.add_row(
      {"BRAM 18Kb halves", std::to_string(fpga::device_bram_halves(spec))});
  table.add_row({"Max. I/O pins", std::to_string(spec.io_pins)});
  table.add_row({"Static power (-2)",
                 TextTable::num(spec.static_power_w(
                                        fpga::SpeedGrade::kMinus2)
                                    .value(),
                                2) +
                     " W"});
  table.add_row({"Static power (-1L)",
                 TextTable::num(spec.static_power_w(
                                        fpga::SpeedGrade::kMinus1L)
                                    .value(),
                                2) +
                     " W"});
  table.add_row({"Base Fmax (-2)",
                 TextTable::num(spec.base_fmax_mhz(fpga::SpeedGrade::kMinus2)
                                    .value(),
                                0) +
                     " MHz"});
  table.add_row(
      {"Base Fmax (-1L)",
       TextTable::num(spec.base_fmax_mhz(fpga::SpeedGrade::kMinus1L).value(),
                      0) +
           " MHz"});
  vr::bench::emit(table);
  return 0;
}
