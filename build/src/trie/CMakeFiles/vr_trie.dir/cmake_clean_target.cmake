file(REMOVE_RECURSE
  "libvr_trie.a"
)
