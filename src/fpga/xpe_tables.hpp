// Published power coefficients — the "representative values and functions"
// the paper extracts from Xilinx XPower Estimator sweeps (Secs. V-A..V-C).
// These constants are the device model's ground-truth physics: both the
// analytical model and the PnR simulator derive their power numbers from
// them, exactly as the paper derives both its model and its experimental
// results from the same silicon.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "fpga/device.hpp"

namespace vr::fpga {

/// BRAM block granularities on Virtex-6 (Sec. V-B): a 36 Kb block is two
/// independently usable 18 Kb halves.
enum class BramKind : std::uint8_t {
  k18,  ///< 18 Kb block
  k36,  ///< 36 Kb block
};

[[nodiscard]] const char* to_string(BramKind kind) noexcept;

/// Capacity in bits of a block kind.
[[nodiscard]] std::uint64_t bram_capacity_bits(BramKind kind) noexcept;

/// Coefficient tables published in the paper.
struct XpeTables {
  /// Table III: BRAM power per block, µW per MHz of clock — numerically a
  /// per-cycle energy (the µW/MHz ≡ pJ/cycle identity of common/units.hpp),
  /// which is the type the coefficient carries.
  ///   18Kb (-2): 13.65    36Kb (-2): 24.60
  ///   18Kb (-1L): 11.00   36Kb (-1L): 19.70
  [[nodiscard]] static units::PjPerCycle bram_uw_per_mhz(
      BramKind kind, SpeedGrade grade) noexcept;

  /// Power of `blocks` BRAM blocks of `kind` at `freq_mhz` (Table III with
  /// the ceiling already applied by the caller).
  [[nodiscard]] static units::Watts bram_power_w(
      BramKind kind, SpeedGrade grade, std::uint64_t blocks,
      units::Megahertz freq_mhz) noexcept;

  /// Sec. V-C: per-pipeline-stage logic + signal power, µW per MHz:
  ///   -2: 5.180    -1L: 3.937
  [[nodiscard]] static units::PjPerCycle logic_stage_uw_per_mhz(
      SpeedGrade grade) noexcept;

  /// Power of `stages` pipeline stages of PE logic at `freq_mhz`.
  [[nodiscard]] static units::Watts logic_power_w(
      SpeedGrade grade, std::size_t stages,
      units::Megahertz freq_mhz) noexcept;

  /// Assumed BRAM write rate (1 %) and read width (18 bits) — recorded for
  /// documentation; their effect is already folded into the coefficients
  /// (the paper found bit-width effects negligible).
  static constexpr double kWriteRate = 0.01;
  static constexpr unsigned kReadWidthBits = 18;

  /// Sec. V-C PE footprint per stage (used for slice capacity checks).
  struct PeFootprint {
    std::uint64_t slice_registers = 1689;
    std::uint64_t luts_logic = 336;
    std::uint64_t luts_memory = 126;
    std::uint64_t luts_routing = 376;

    [[nodiscard]] std::uint64_t total_luts() const noexcept {
      return luts_logic + luts_memory + luts_routing;
    }
  };
  [[nodiscard]] static PeFootprint pe_footprint() noexcept { return {}; }
};

}  // namespace vr::fpga
