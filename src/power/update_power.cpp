#include "power/update_power.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace vr::power {

units::Watts adjusted_bram_power_w(units::Watts table3_power,
                                   double write_rate,
                                   const UpdateRateModel& model) {
  VR_REQUIRE(write_rate >= 0.0 && write_rate <= 1.0,
             "write rate must be in [0,1]");
  return table3_power *
         (1.0 + model.write_power_sensitivity *
                    (write_rate - model.baseline_write_rate));
}

units::Gbps effective_lookup_gbps(units::Megahertz freq,
                                  const UpdateLoad& load) {
  const double stolen = std::min(1.0, load.write_slot_fraction(freq));
  return (1.0 - stolen) *
         units::lookup_throughput(freq, units::kMinPacketBytes);
}

UpdateLoad measure_update_load(const net::RoutingTable& base,
                               const std::vector<net::RouteUpdate>& updates,
                               double updates_per_second) {
  UpdateLoad load;
  load.updates_per_second = updates_per_second;
  if (updates.empty()) return load;
  trie::UpdatableTrie trie(base);
  const trie::UpdateCost total = trie::apply_all(trie, updates);
  load.words_per_update = static_cast<double>(total.words_written) /
                          static_cast<double>(updates.size());
  return load;
}

}  // namespace vr::power
