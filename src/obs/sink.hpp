// MetricsSink — serializes a Registry snapshot for humans and machines:
// deterministic JSON (stable metric order, %.17g doubles that round-trip
// exactly through strtod) and an aligned TextTable via common/table. The
// bench binaries dump the JSON form with --metrics[=path.json];
// bench/perf_sweep embeds it in BENCH_sweep.json.
#pragma once

#include <iosfwd>
#include <string>

#include "common/table.hpp"
#include "obs/registry.hpp"

namespace vr::obs {

class MetricsSink {
 public:
  explicit MetricsSink(const Registry& registry) : registry_(&registry) {}

  /// Writes the registry as a JSON object. `indent` spaces prefix every
  /// line after the first, so the object can be embedded inside another
  /// JSON document at that depth.
  void write_json(std::ostream& os, int indent = 0) const;

  [[nodiscard]] std::string json(int indent = 0) const;

  /// Writes the JSON document to `path`. Returns false on I/O failure.
  [[nodiscard]] bool write_json_file(const std::string& path) const;

  /// Human-readable summary table (one row per metric).
  [[nodiscard]] TextTable table() const;

 private:
  const Registry* registry_;
};

}  // namespace vr::obs
