// ModelValidator — reproduces the paper's Sec. VI-A validation: for each
// scenario, run the analytical model and the (simulated) post-PnR analysis
// and report the percentage error
//     (P_model − P_experimental) / P_experimental × 100,
// which the paper bounds at ±3 %.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "core/experiment.hpp"

namespace vr::core {

struct ValidationPoint {
  Scenario scenario;
  Estimate model;
  ExperimentResult experiment;
  double error_total_pct = 0.0;
  double error_static_pct = 0.0;
  double error_dynamic_pct = 0.0;
};

class ModelValidator {
 public:
  ModelValidator(fpga::DeviceSpec device, fpga::PnrEffects effects = {},
                 fpga::FreqModelParams freq_params = {});

  /// Validates one scenario (realizing its workload once for both sides).
  [[nodiscard]] ValidationPoint validate(const Scenario& scenario) const;

  /// Validates against an already-realized workload (lets sweeps reuse the
  /// expensive table builds, e.g. via WorkloadCache).
  [[nodiscard]] ValidationPoint validate(const Scenario& scenario,
                                         const Workload& workload) const;

  /// Validates a grid of scenarios. `threads` fans the grid out over a
  /// SweepRunner (1 = serial, 0 = default_sweep_threads()); the result
  /// order always matches `scenarios`.
  [[nodiscard]] std::vector<ValidationPoint> validate_all(
      const std::vector<Scenario>& scenarios, std::size_t threads = 1) const;

  /// Largest |total error| over a set of points.
  [[nodiscard]] static double max_abs_error_pct(
      const std::vector<ValidationPoint>& points);

  [[nodiscard]] const PowerEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] const ExperimentRunner& runner() const noexcept {
    return runner_;
  }

 private:
  PowerEstimator estimator_;
  ExperimentRunner runner_;
};

}  // namespace vr::core
