file(REMOVE_RECURSE
  "libvr_ipv6.a"
)
