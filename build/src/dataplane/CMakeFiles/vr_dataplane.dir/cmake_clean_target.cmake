file(REMOVE_RECURSE
  "libvr_dataplane.a"
)
