// Property tests over the cycle-level dataplane (DESIGN.md §15), run
// under `ctest -L cycle`. Each trial draws a seeded configuration over
// K ∈ {2, 4, 8} × the four VC policies and drives randomized traffic
// through the CycleRouter one step at a time, asserting the conservation
// laws that make the model trustworthy *at every cycle*, not just at the
// end: credits never exceed capacity and always complement the buffered
// flits, flits in == flits out + dropped + in flight, the VC pool size is
// constant, no VC is owned twice, and a rerun from the same SplitMix64
// seed is bit-identical. A failing trial prints its draw via SCOPED_TRACE
// (model_invariants_test.cpp style) so it can be replayed exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/cycle/cycle_router.hpp"
#include "dataplane/frame_gen.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "pipeline/router.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::dataplane::cycle {
namespace {

constexpr std::size_t kStages = 28;
constexpr std::uint64_t kMasterSeed = 0xc1c1e5eed;

constexpr VcPolicy kAllPolicies[] = {VcPolicy::kNvStatic, VcPolicy::kVsStatic,
                                     VcPolicy::kVmStatic, VcPolicy::kDynamic};

/// Owns the tables, tries and merged image a VirtualRouter borrows.
/// Heap-allocated (no moves) so the router's internal references can
/// never dangle.
struct LookupFixture {
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  std::vector<trie::UnibitTrie> tries;
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  std::optional<virt::MergedTrie> merged;
  std::unique_ptr<pipeline::VirtualRouter> router;
};

std::unique_ptr<LookupFixture> make_lookup(std::size_t k, VcPolicy policy,
                                           std::uint64_t table_seed) {
  auto f = std::make_unique<LookupFixture>();
  net::TableProfile profile;
  profile.prefix_count = 120;
  const net::SyntheticTableGenerator table_gen(profile);
  for (std::uint64_t v = 0; v < k; ++v) {
    f->tables.push_back(table_gen.generate(table_seed + v));
  }
  for (const auto& t : f->tables) f->table_ptrs.push_back(&t);
  for (const auto& t : f->tables) {
    f->tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
  }
  for (const auto& t : f->tries) f->trie_ptrs.push_back(&t);
  if (separate_engines(policy)) {
    std::vector<pipeline::TrieView> views;
    for (const auto& t : f->tries) views.emplace_back(t);
    f->router = std::make_unique<pipeline::SeparateRouter>(views, kStages);
  } else {
    f->merged.emplace(std::span<const trie::UnibitTrie* const>(f->trie_ptrs));
    f->router = std::make_unique<pipeline::MergedRouter>(*f->merged, kStages);
  }
  return f;
}

struct Draw {
  std::size_t k = 2;
  VcPolicy policy = VcPolicy::kVsStatic;
  std::size_t vc_count = 8;
  std::size_t vc_capacity = 4;
  std::uint32_t flit_bytes = 64;
  double load = 0.5;
  net::TraceShape shape = net::TraceShape::kUniform;
  std::uint64_t seed = 0;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "draw{K=" << k << " policy=" << to_string(policy)
       << " vcs=" << vc_count << " cap=" << vc_capacity
       << " flit=" << flit_bytes << " load=" << load
       << " shape=" << static_cast<int>(shape) << " seed=" << seed << "}";
    return os.str();
  }
};

CycleConfig config_from(const Draw& d) {
  CycleConfig config;
  config.vc.policy = d.policy;
  config.vc.vc_count = d.vc_count;
  config.vc.vn_count = d.k;
  config.vc.dynamic_floor = 1;
  config.vc_capacity_flits = d.vc_capacity;
  config.flit_bytes = d.flit_bytes;
  config.scheduler.vn_count = d.k;
  config.scheduler.port_count = 16;
  config.scheduler.queue_capacity = 64;
  return config;
}

/// Every per-cycle law the model promises, checked against the router's
/// inspection surface. Called after every step() of a trial.
void check_cycle_invariants(const CycleRouter& router) {
  const CycleConfig& config = router.config();
  const VcAllocator& alloc = router.allocator();
  ASSERT_EQ(alloc.free_count() + alloc.allocated_count(), alloc.vc_count())
      << "VC pool size must be constant";
  std::vector<std::size_t> owned_per_vn(config.vc.vn_count, 0);
  std::uint64_t buffered_total = 0;
  for (std::size_t vc = 0; vc < alloc.vc_count(); ++vc) {
    const auto owner = alloc.owner(vc);
    ASSERT_EQ(owner.has_value(), router.vc_busy(vc))
        << "vc " << vc << ": allocator and VC state disagree on occupancy";
    ASSERT_LE(router.vc_credits(vc), config.vc_capacity_flits)
        << "vc " << vc << ": credits above capacity";
    ASSERT_EQ(router.vc_credits(vc) + router.vc_buffered(vc),
              config.vc_capacity_flits)
        << "vc " << vc << ": credits + buffered != capacity";
    buffered_total += router.vc_buffered(vc);
    if (owner) {
      ++owned_per_vn[*owner];
      if (config.vc.policy != VcPolicy::kDynamic) {
        ASSERT_EQ(*owner, alloc.static_home(vc))
            << "vc " << vc << ": static policy violated its partition";
      }
    } else {
      ASSERT_EQ(router.vc_buffered(vc), 0u)
          << "vc " << vc << ": free VC holds flits";
    }
  }
  ASSERT_EQ(buffered_total, router.in_flight_flits());
  for (std::size_t vn = 0; vn < config.vc.vn_count; ++vn) {
    // narrow-ok in test: vn < vn_count fits VnId
    const auto id = static_cast<net::VnId>(vn);
    ASSERT_EQ(owned_per_vn[vn], alloc.allocated_to(id)) << "vn " << vn;
    ASSERT_LE(alloc.allocated_to(id), alloc.effective_ceiling()) << "vn " << vn;
  }
  const CycleStats& stats = router.stats();
  ASSERT_EQ(stats.flits_in,
            stats.flits_out + stats.flits_dropped + router.in_flight_flits())
      << "flit conservation violated";
  ASSERT_GE(stats.arbiter_comparisons, stats.arbiter_grants);
}

/// Drives one trial step by step, checking invariants after every cycle.
/// (Void with an out-param because ASSERT_* requires a void function.)
void run_checked(const Draw& d, std::uint64_t cycles, CycleResult* out) {
  const auto lookup = make_lookup(d.k, d.policy, 77 + d.seed % 5);
  FrameGenConfig frame_config;
  frame_config.traffic = net::make_shaped_config(d.shape, cycles, d.load, d.k);
  frame_config.corrupt_fraction = 0.02;
  frame_config.expiring_ttl_fraction = 0.02;
  const FrameGenerator frame_gen(frame_config, lookup->table_ptrs);
  auto frames = frame_gen.generate(FrameGenerator::derive_seed(d.seed, 1));
  std::sort(frames.begin(), frames.end(),
            [](const IngressFrame& a, const IngressFrame& b) {
              return a.cycle < b.cycle;
            });

  CycleRouter router(*lookup->router, config_from(d));
  const std::uint64_t deadline = cycles + 10000 + 200 * frames.size();
  std::size_t next = 0;
  while (next < frames.size() || !router.drained()) {
    while (next < frames.size() && frames[next].cycle <= router.now()) {
      router.accept_frame(frames[next]);
      ++next;
    }
    router.step();
    check_cycle_invariants(router);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_LT(router.now(), deadline) << "model failed to drain";
  }
  *out = router.finish();
}

TEST(CycleInvariants, ConservationHoldsEveryCycleForAllPoliciesAndK) {
  Rng rng(kMasterSeed);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (const VcPolicy policy : kAllPolicies) {
      Draw d;
      d.k = k;
      d.policy = policy;
      d.vc_count = 2 * k + rng.next_in(0, k);
      d.vc_capacity = rng.next_in(2, 6);
      d.flit_bytes = 64;
      d.load = 0.3 + 0.4 * rng.next_double();
      d.shape = rng.next_bool(0.5) ? net::TraceShape::kUniform
                                   : net::TraceShape::kSkewed;
      d.seed = rng.next_in(1, 1 << 20);
      SCOPED_TRACE(d.describe());
      CycleResult result;
      run_checked(d, 1200, &result);
      if (::testing::Test::HasFatalFailure()) return;
      // End-of-run conservation: nothing in flight, every accepted packet
      // reached a verdict, every flit left or was dropped.
      EXPECT_EQ(result.cycle.flits_in,
                result.cycle.flits_out + result.cycle.flits_dropped);
      EXPECT_EQ(result.parser.accepted, result.editor.forwarded +
                                            result.editor.no_route +
                                            result.editor.ttl_expired);
      EXPECT_EQ(result.scheduler.enqueued,
                result.scheduler.transmitted + result.scheduler.tail_drops);
      EXPECT_GT(result.cycle.flits_out, 0u);
    }
  }
}

/// Bit-identical replay: two CycleRouter runs over the same SplitMix64
/// seed must agree on every counter and every egress record — the
/// determinism that makes a printed Draw a complete reproducer.
TEST(CycleInvariants, ReplayFromSameSeedIsBitIdentical) {
  for (const VcPolicy policy : kAllPolicies) {
    Draw d;
    d.k = 4;
    d.policy = policy;
    d.vc_count = 10;
    d.vc_capacity = 4;
    d.load = 0.55;
    d.shape = net::TraceShape::kBursty;
    d.seed = 0xfeedbeef;
    SCOPED_TRACE(d.describe());

    const auto run_once = [&] {
      const auto lookup = make_lookup(d.k, d.policy, 31);
      FrameGenConfig frame_config;
      frame_config.traffic =
          net::make_shaped_config(d.shape, 1500, d.load, d.k);
      frame_config.corrupt_fraction = 0.02;
      frame_config.expiring_ttl_fraction = 0.02;
      const FrameGenerator frame_gen(frame_config, lookup->table_ptrs);
      return run_cycle_router(
          *lookup->router,
          frame_gen.generate(FrameGenerator::derive_seed(d.seed, 2)),
          config_from(d));
    };
    const CycleResult a = run_once();
    const CycleResult b = run_once();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cycle.flits_in, b.cycle.flits_in);
    EXPECT_EQ(a.cycle.flits_out, b.cycle.flits_out);
    EXPECT_EQ(a.cycle.flits_dropped, b.cycle.flits_dropped);
    EXPECT_EQ(a.cycle.vc_alloc_stalls, b.cycle.vc_alloc_stalls);
    EXPECT_EQ(a.cycle.credit_stalls, b.cycle.credit_stalls);
    EXPECT_EQ(a.cycle.arbiter_grants, b.cycle.arbiter_grants);
    EXPECT_EQ(a.cycle.arbiter_comparisons, b.cycle.arbiter_comparisons);
    EXPECT_EQ(a.cycle.grants_per_vn, b.cycle.grants_per_vn);
    EXPECT_EQ(a.cycle.alloc_stalls_per_vn, b.cycle.alloc_stalls_per_vn);
    EXPECT_EQ(a.scheduler.transmitted, b.scheduler.transmitted);
    EXPECT_EQ(a.scheduler.bytes_per_vn, b.scheduler.bytes_per_vn);
    ASSERT_EQ(a.egress.size(), b.egress.size());
    for (std::size_t i = 0; i < a.egress.size(); ++i) {
      EXPECT_EQ(a.egress[i].cycle, b.egress[i].cycle) << "record " << i;
      EXPECT_EQ(a.egress[i].vnid, b.egress[i].vnid) << "record " << i;
      EXPECT_EQ(a.egress[i].port, b.egress[i].port) << "record " << i;
      EXPECT_EQ(a.egress[i].bytes, b.egress[i].bytes) << "record " << i;
    }
  }
}

// ------------------------------------------------- VcAllocator unit tests

TEST(VcAllocatorTest, StaticPartitionsAreContiguousAndExhaustive) {
  VcAllocConfig config;
  config.policy = VcPolicy::kVsStatic;
  config.vc_count = 10;
  config.vn_count = 3;
  const VcAllocator alloc(config);
  // 10 VCs over 3 VNs: VN0 gets 4 (the remainder), VN1 and VN2 get 3.
  std::vector<std::size_t> per_vn(3, 0);
  for (std::size_t vc = 0; vc < 10; ++vc) {
    const net::VnId home = alloc.static_home(vc);
    ++per_vn[home];
    if (vc > 0) {
      EXPECT_GE(home, alloc.static_home(vc - 1));
    }
  }
  EXPECT_EQ(per_vn[0], 4u);
  EXPECT_EQ(per_vn[1], 3u);
  EXPECT_EQ(per_vn[2], 3u);
}

TEST(VcAllocatorTest, StaticPolicyRefusesOutsideOwnPartition) {
  VcAllocConfig config;
  config.policy = VcPolicy::kNvStatic;
  config.vc_count = 6;
  config.vn_count = 2;
  VcAllocator alloc(config);
  // VN0 exhausts its 3-VC partition, then is refused while VN1's three
  // VCs sit free — the static waste the dynamic policy exists to fix.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(alloc.allocate(0).has_value());
  EXPECT_FALSE(alloc.allocate(0).has_value());
  EXPECT_EQ(alloc.free_count(), 3u);
  EXPECT_TRUE(alloc.allocate(1).has_value());
}

TEST(VcAllocatorTest, DynamicFloorIsReservedForOtherVns) {
  VcAllocConfig config;
  config.policy = VcPolicy::kDynamic;
  config.vc_count = 4;
  config.vn_count = 2;
  config.dynamic_floor = 1;
  VcAllocator alloc(config);
  // VN0 may take 3 of 4, but the 4th is VN1's floor reserve.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(alloc.allocate(0).has_value());
  EXPECT_FALSE(alloc.allocate(0).has_value());
  // The starved VN can still claim its guaranteed minimum.
  const auto vc = alloc.allocate(1);
  ASSERT_TRUE(vc.has_value());
  EXPECT_EQ(alloc.free_count(), 0u);
  // Releasing VN1's VC restores the reserve; VN0 is still blocked.
  alloc.release(*vc);
  EXPECT_FALSE(alloc.allocate(0).has_value());
}

TEST(VcAllocatorTest, DynamicCeilingCapsOneVn) {
  VcAllocConfig config;
  config.policy = VcPolicy::kDynamic;
  config.vc_count = 8;
  config.vn_count = 2;
  config.dynamic_floor = 1;
  config.dynamic_ceiling = 2;
  VcAllocator alloc(config);
  EXPECT_TRUE(alloc.allocate(0).has_value());
  EXPECT_TRUE(alloc.allocate(0).has_value());
  EXPECT_FALSE(alloc.allocate(0).has_value()) << "ceiling must cap VN0";
  EXPECT_EQ(alloc.free_count(), 6u);
}

TEST(VcAllocatorTest, PoolSizeConstantUnderRandomChurn) {
  VcAllocConfig config;
  config.policy = VcPolicy::kDynamic;
  config.vc_count = 12;
  config.vn_count = 3;
  config.dynamic_floor = 2;
  VcAllocator alloc(config);
  Rng rng(kMasterSeed ^ 0x7);
  std::vector<std::size_t> held;
  for (int i = 0; i < 2000; ++i) {
    if (rng.next_bool(0.6) || held.empty()) {
      // narrow-ok in test: bounded draw fits VnId
      const auto vn = static_cast<net::VnId>(rng.next_in(0, 2));
      if (const auto vc = alloc.allocate(vn)) {
        held.push_back(*vc);
      }
    } else {
      const std::size_t pick = rng.next_in(0, held.size() - 1);
      alloc.release(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(alloc.free_count() + alloc.allocated_count(), 12u);
    ASSERT_EQ(alloc.allocated_count(), held.size());
  }
}

TEST(VcAllocatorTest, ReleaseOfFreeVcDies) {
  VcAllocConfig config;
  config.vc_count = 4;
  config.vn_count = 2;
  VcAllocator alloc(config);
  EXPECT_DEATH(alloc.release(0), "not allocated");
}

}  // namespace
}  // namespace vr::dataplane::cycle
