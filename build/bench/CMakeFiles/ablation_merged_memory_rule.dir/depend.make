# Empty dependencies file for ablation_merged_memory_rule.
# This may be replaced when dependencies are built.
