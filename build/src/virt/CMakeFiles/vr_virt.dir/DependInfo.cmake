
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/merged_trie.cpp" "src/virt/CMakeFiles/vr_virt.dir/merged_trie.cpp.o" "gcc" "src/virt/CMakeFiles/vr_virt.dir/merged_trie.cpp.o.d"
  "/root/repo/src/virt/overlap_model.cpp" "src/virt/CMakeFiles/vr_virt.dir/overlap_model.cpp.o" "gcc" "src/virt/CMakeFiles/vr_virt.dir/overlap_model.cpp.o.d"
  "/root/repo/src/virt/table_set_gen.cpp" "src/virt/CMakeFiles/vr_virt.dir/table_set_gen.cpp.o" "gcc" "src/virt/CMakeFiles/vr_virt.dir/table_set_gen.cpp.o.d"
  "/root/repo/src/virt/updatable_merged.cpp" "src/virt/CMakeFiles/vr_virt.dir/updatable_merged.cpp.o" "gcc" "src/virt/CMakeFiles/vr_virt.dir/updatable_merged.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
