
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multipipe/multipipe_power.cpp" "src/multipipe/CMakeFiles/vr_multipipe.dir/multipipe_power.cpp.o" "gcc" "src/multipipe/CMakeFiles/vr_multipipe.dir/multipipe_power.cpp.o.d"
  "/root/repo/src/multipipe/partition.cpp" "src/multipipe/CMakeFiles/vr_multipipe.dir/partition.cpp.o" "gcc" "src/multipipe/CMakeFiles/vr_multipipe.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/vr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
