// FPGA device catalog. The paper evaluates on a Xilinx Virtex-6 XC6VLX760
// at speed grades -2 (high performance) and -1L (low power); Table II lists
// the resources this module encodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace vr::fpga {

/// Device speed grade — the paper's two scenarios (Sec. V).
enum class SpeedGrade {
  kMinus2,   ///< high performance
  kMinus1L,  ///< low power
};

[[nodiscard]] const char* to_string(SpeedGrade grade) noexcept;

/// Static resource inventory of a device (paper Table II plus the slice
/// breakdown needed for logic accounting).
struct DeviceSpec {
  std::string name;
  std::uint64_t logic_cells = 0;
  std::uint64_t slices = 0;
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t bram_bits = 0;          ///< total Block RAM (26 Mb)
  std::uint64_t distributed_ram_bits = 0;
  std::uint32_t io_pins = 0;

  /// Base static ("leakage") power for a grade; the paper reports
  /// 4.5 W (-2) and 3.1 W (-1L), each ±5 % with resource usage (Sec. V-A).
  [[nodiscard]] units::Watts static_power_w(SpeedGrade grade) const noexcept;

  /// Base achievable clock for a small design (one pipeline, light BRAM).
  /// -1L trades ~30 % throughput for ~30 % power (Sec. VI-B).
  [[nodiscard]] units::Megahertz base_fmax_mhz(SpeedGrade grade)
      const noexcept;

  /// The paper's platform: Virtex-6 XC6VLX760.
  static DeviceSpec xc6vlx760();
  /// Mid-size Virtex-6 logic part (more BRAM-heavy designs must merge).
  static DeviceSpec xc6vlx550t();
  /// DSP/memory-heavy Virtex-6 part: less logic, far more BRAM.
  static DeviceSpec xc6vsx475t();
  /// Small Virtex-6 part, for edge boxes hosting few virtual networks.
  static DeviceSpec xc6vlx240t();

  /// All catalog entries (for the device-exploration bench).
  static std::vector<DeviceSpec> catalog();
};

/// I/O pin demand of a lookup-engine deployment (Sec. VI-A limits the
/// separate scheme to 15 VNs on the 1200-pin device). Each physically
/// distinct engine needs its own address/NHI interface; shared pins cover
/// clocking, reset and the merged/NV single stream.
struct IoBudget {
  std::uint32_t pins_per_engine = 76;
  std::uint32_t shared_pins = 60;

  [[nodiscard]] std::uint32_t required(std::size_t engines) const noexcept {
    return shared_pins +
           pins_per_engine * static_cast<std::uint32_t>(engines);
  }

  /// Largest engine count that fits `available` pins.
  [[nodiscard]] std::size_t max_engines(std::uint32_t available) const
      noexcept {
    if (available <= shared_pins) return 0;
    return (available - shared_pins) / pins_per_engine;
  }
};

}  // namespace vr::fpga
