#include "trie/flat_trie.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::trie {

FlatTrie::FlatTrie(const UnibitTrie& trie) : level_count_(trie.level_count()) {
  const std::span<const TrieNode> nodes = trie.nodes();
  left_.reserve(nodes.size());
  right_.reserve(nodes.size());
  next_hops_.reserve(nodes.size());
  for (const TrieNode& node : nodes) {
    left_.push_back(node.left);
    right_.push_back(node.right);
    next_hops_.push_back(node.next_hop);
  }
}

FlatTrie::FlatTrie(std::vector<NodeIndex> left, std::vector<NodeIndex> right,
                   std::vector<net::NextHop> next_hops, std::size_t vn_count,
                   std::size_t level_count)
    : left_(std::move(left)),
      right_(std::move(right)),
      next_hops_(std::move(next_hops)),
      vn_count_(vn_count),
      level_count_(level_count) {
  VR_REQUIRE(vn_count_ >= 1, "flat trie needs at least one VN");
  VR_REQUIRE(left_.size() == right_.size(), "left/right arrays must align");
  VR_REQUIRE(next_hops_.size() == left_.size() * vn_count_,
             "next-hop pool must hold vn_count entries per node");
  VR_REQUIRE(!left_.empty(), "flat trie needs at least the root node");
}

net::NextHop FlatTrie::lookup_raw(std::uint32_t addr,
                                  net::VnId vn) const noexcept {
  net::NextHop best = net::kNoRoute;
  NodeIndex current = 0;
  for (unsigned depth = 0;; ++depth) {
    const net::NextHop hop = next_hop(current, vn);
    if (hop != net::kNoRoute) best = hop;
    if (depth >= 32) break;
    const NodeIndex child = bit_at(addr, depth) ? right_[current]
                                                : left_[current];
    if (child == kNullNode) break;
    current = child;
  }
  return best;
}

std::optional<net::NextHop> FlatTrie::lookup(net::Ipv4 addr,
                                             net::VnId vn) const {
  const net::NextHop hop = lookup_raw(addr.value(), vn);
  return hop == net::kNoRoute ? std::nullopt
                              : std::optional<net::NextHop>(hop);
}

std::vector<net::NextHop> FlatTrie::lookup_batch(
    std::span<const net::Ipv4> addrs, net::VnId vn) const {
  std::vector<net::NextHop> out;
  out.reserve(addrs.size());
  for (const net::Ipv4 addr : addrs) {
    out.push_back(lookup_raw(addr.value(), vn));
  }
  return out;
}

std::vector<net::NextHop> FlatTrie::lookup_batch(
    std::span<const net::Packet> packets) const {
  std::vector<net::NextHop> out;
  out.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    out.push_back(lookup_raw(packet.addr.value(), packet.vnid));
  }
  return out;
}

}  // namespace vr::trie
