// Epoch-style snapshot publication for concurrent route updates.
//
// The paper's update-rate model (Sec. V-B) assumes the control plane keeps
// writing routes while the data plane keeps forwarding. This publisher
// realizes the software analogue of that split with RCU-style snapshots:
// a single writer owns an UpdatableTrie (the control-plane state), applies
// BGP-churn batches to it, rebuilds an immutable FlatMultibitTrie image
// and atomically publishes it. Readers acquire() a shared_ptr snapshot and
// run lookups against a frozen image — never blocked by the writer, never
// observing a half-applied batch. Retired images are reclaimed by the last
// shared_ptr release (deferred reclamation), so a reader mid-batch keeps
// its epoch alive for free.
//
// Staleness is observable: every published image carries a monotonically
// increasing version, and staleness_of() reports how many batches a held
// snapshot is behind the newest one. bench/perf_lookup measures the p99
// publish latency and the reader-visible staleness under churn.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "common/units.hpp"
#include "netbase/route_update.hpp"
#include "netbase/routing_table.hpp"
#include "trie/flat_multibit_trie.hpp"
#include "trie/updatable_trie.hpp"

namespace vr::trie {

class SnapshotPublisher {
 public:
  /// An immutable published image plus its epoch. Copyable; holding one
  /// keeps the image alive regardless of later publishes.
  struct Snapshot {
    std::shared_ptr<const FlatMultibitTrie> image;
    std::uint64_t version = 0;
  };

  /// What one apply_batch() did and what it cost.
  struct PublishReceipt {
    std::uint64_t version = 0;         ///< version the batch published
    std::size_t updates_applied = 0;
    UpdateCost cost;                   ///< control-plane write accounting
    units::Nanoseconds apply_ns{0.0};  ///< control-plane update time
    units::Nanoseconds build_ns{0.0};  ///< flat-image rebuild time
    units::Nanoseconds publish_ns{0.0};  ///< pointer-swap time
  };

  /// Builds and publishes the initial image (version 0) from `base`.
  /// `stride` must be one a FlatMultibitTrie supports (2, 4 or 8).
  SnapshotPublisher(const net::RoutingTable& base, unsigned stride);

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Applies one churn batch to the control plane, rebuilds the image and
  /// publishes it as the next version. Single writer only: concurrent
  /// apply_batch calls are a caller bug.
  PublishReceipt apply_batch(std::span<const net::RouteUpdate> updates);

  /// The newest published image. Safe to call from any thread, any number
  /// of threads, concurrently with apply_batch.
  [[nodiscard]] Snapshot acquire() const;

  /// Version of the newest published image.
  [[nodiscard]] std::uint64_t published_version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// How many publishes `snapshot` is behind the newest image.
  [[nodiscard]] std::uint64_t staleness_of(const Snapshot& snapshot) const
      noexcept {
    return published_version() - snapshot.version;
  }

  [[nodiscard]] unsigned stride() const noexcept { return stride_; }
  /// Routes currently installed in the control plane.
  [[nodiscard]] std::size_t route_count() const noexcept {
    return control_.route_count();
  }

 private:
  void publish(std::shared_ptr<const FlatMultibitTrie> image,
               std::uint64_t version);

  unsigned stride_;
  UpdatableTrie control_;  // writer-owned control-plane state

  mutable std::mutex publish_mutex_;  // also orders version_ stores
  // guarded_by(publish_mutex_)
  std::shared_ptr<const FlatMultibitTrie> current_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace vr::trie
