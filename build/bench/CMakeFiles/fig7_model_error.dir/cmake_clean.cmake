file(REMOVE_RECURSE
  "CMakeFiles/fig7_model_error.dir/fig7_model_error.cpp.o"
  "CMakeFiles/fig7_model_error.dir/fig7_model_error.cpp.o.d"
  "fig7_model_error"
  "fig7_model_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
