// Adapter over the trie flavours (per-VN uni-bit trie, K-way merged trie
// and stride-k flat multibit images) presenting the uniform per-stage
// interface the pipeline simulator traverses. Backed by the flat
// structure-of-arrays views (trie::FlatTrie / trie::FlatMultibitTrie), so
// every per-cycle stage access is a direct contiguous-array read —
// ownership of the arrays is shared, so a view outlives the trie object it
// was made from.
#pragma once

#include <memory>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "trie/flat_multibit_trie.hpp"
#include "trie/flat_trie.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::pipeline {

class TrieView {
 public:
  explicit TrieView(const trie::UnibitTrie& t) noexcept
      : flat_(t.flat_shared()) {}
  explicit TrieView(const virt::MergedTrie& t) noexcept
      : flat_(t.flat_shared()) {}
  /// A stride-k image: each pipeline stage consumes `stride` address bits.
  explicit TrieView(std::shared_ptr<const trie::FlatMultibitTrie> t) noexcept
      : multibit_(std::move(t)) {}

  [[nodiscard]] trie::NodeIndex left(trie::NodeIndex n) const noexcept {
    return flat_->left(n);
  }
  [[nodiscard]] trie::NodeIndex right(trie::NodeIndex n) const noexcept {
    return flat_->right(n);
  }

  /// Next hop stored at node `n` for virtual network `vn` (kNoRoute when
  /// absent). Single tries ignore `vn`. Uni-bit views only — a multibit
  /// node's hop also depends on the address slot (use step()).
  [[nodiscard]] net::NextHop next_hop(trie::NodeIndex n, net::VnId vn)
      const noexcept {
    return flat_->next_hop(n, flat_->vn_count() == 1 ? net::VnId{0} : vn);
  }

  /// Address bits one pipeline stage consumes (1 for uni-bit views).
  [[nodiscard]] unsigned stride() const noexcept {
    return multibit_ ? multibit_->stride() : 1u;
  }

  /// True when backed by a stride-k multibit image.
  [[nodiscard]] bool is_multibit() const noexcept {
    return multibit_ != nullptr;
  }

  [[nodiscard]] std::size_t level_count() const noexcept {
    return multibit_ ? multibit_->level_count() : flat_->level_count();
  }

  /// Deepest pipeline a trie of this flavour can need: one level per
  /// stage, and a /32 walk consumes 32 address bits plus the uni-bit root
  /// level (33 uni-bit levels, 32/k stride-k levels).
  [[nodiscard]] std::size_t max_levels() const noexcept {
    return multibit_ ? multibit_->max_level_count() : std::size_t{33};
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return multibit_ ? multibit_->node_count() : flat_->node_count();
  }

  /// Number of virtual networks the view serves (1 for a single trie).
  [[nodiscard]] std::size_t vn_count() const noexcept {
    return multibit_ ? multibit_->vn_count() : flat_->vn_count();
  }

  /// One pipeline stage's worth of traversal for the node at trie level
  /// `level`: the next-hop information stored where this stage looks
  /// (kNoRoute when none) and the node the packet must visit next
  /// (kNullNode when the traversal terminates here).
  struct Step {
    trie::NodeIndex next = trie::kNullNode;
    net::NextHop hop = net::kNoRoute;
  };
  [[nodiscard]] Step step(trie::NodeIndex node, std::uint32_t addr,
                          std::size_t level, net::VnId vn) const noexcept {
    Step out;
    if (multibit_) {
      const net::VnId effective =
          multibit_->vn_count() == 1 ? net::VnId{0} : vn;
      const std::size_t slot = multibit_->slot_of(addr, level);
      out.hop = multibit_->next_hop(node, slot, effective);
      out.next = multibit_->child(node, slot);
      return out;
    }
    out.hop = next_hop(node, vn);
    // Uni-bit stage `level` inspects address bit `level`; past the last
    // bit a node is necessarily a leaf.
    if (level < 32) {
      const bool bit = bit_at(addr, static_cast<unsigned>(level));
      out.next = bit ? flat_->right(node) : flat_->left(node);
    }
    return out;
  }

  /// The underlying flat SoA trie (batched lookups etc.). Uni-bit views
  /// only.
  [[nodiscard]] const trie::FlatTrie& flat() const noexcept { return *flat_; }

 private:
  std::shared_ptr<const trie::FlatTrie> flat_;
  std::shared_ptr<const trie::FlatMultibitTrie> multibit_;
};

}  // namespace vr::pipeline
