// Regenerates paper Fig. 8: power dissipated per unit throughput
// (mW/Gbps) for NV / VS / VM(80 %) / VM(20 %) vs number of virtual
// networks, for both speed grades.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options(argc, argv));
  bench::emit(builder.fig8_efficiency(fpga::SpeedGrade::kMinus2));
  bench::emit(builder.fig8_efficiency(fpga::SpeedGrade::kMinus1L));
  return 0;
}
