# Empty dependencies file for ablation_update_rate.
# This may be replaced when dependencies are built.
