#include "fpga/freq_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vr::fpga {

units::Megahertz achievable_fmax_mhz(const DeviceSpec& spec, SpeedGrade grade,
                                     const DesignResources& resources,
                                     const FreqModelParams& params) {
  VR_REQUIRE(resources.pipelines >= 1, "a design has at least one pipeline");
  const units::Megahertz base = spec.base_fmax_mhz(grade);
  const double halves_total =
      static_cast<double>(device_bram_halves(spec));
  const double util =
      halves_total == 0.0
          ? 0.0
          : std::min(1.0, static_cast<double>(resources.bram_halves) /
                              halves_total);
  const double stage_excess =
      std::max(0.0, resources.max_stage_blocks36eq - 1.0);
  const double congestion =
      1.0 + params.gamma_stage_blocks * stage_excess +
      params.gamma_device_util * util +
      params.gamma_pipelines *
          static_cast<double>(resources.pipelines - 1);
  return base / congestion;
}

}  // namespace vr::fpga
