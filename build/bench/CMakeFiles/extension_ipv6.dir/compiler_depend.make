# Empty compiler generated dependencies file for extension_ipv6.
# This may be replaced when dependencies are built.
