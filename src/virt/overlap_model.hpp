// Analytical merging model (DESIGN.md Sec. 3).
//
// The paper abstracts table structure into the single merging-efficiency
// parameter α (Assumption 4: α = common nodes / total nodes). As printed,
// Eq. 5's memory term `α · Σ_k M_k` *grows* with α, contradicting the
// definition and Figs. 4/8; we implement the overlap-consistent closed form
//
//     T(K, n, α) = K·n / (1 + (K−1)·α)
//
// (α=1 → T=n fully shared; α=0 → T=K·n disjoint) and keep the literal
// printed rule available for the ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/memory_layout.hpp"
#include "trie/trie_stats.hpp"

namespace vr::virt {

/// Which merged-memory rule to apply.
enum class MergedMemoryRule {
  kOverlapConsistent,  ///< T = K·n/(1+(K−1)α); leaves widen to K-wide NHI
  kPaperLiteral,       ///< memory = α · Σ_k M_k, exactly as Eq. 5 prints
};

/// Merged node count for K equal tries of `nodes_per_trie` nodes at merging
/// efficiency `alpha` in [0,1].
[[nodiscard]] double merged_node_count(std::size_t vn_count,
                                       double nodes_per_trie, double alpha);

/// Inverse: the α that yields `merged_nodes` for K tries totalling
/// `sum_input_nodes` nodes. Clamped to [0,1]; K=1 returns 1.
[[nodiscard]] double alpha_from_counts(std::size_t vn_count,
                                       double sum_input_nodes,
                                       double merged_nodes);

/// Predicts the per-stage memory of the merged trie analytically from the
/// statistics of ONE representative per-VN trie (Assumption 2: all tables
/// equal size): every level's internal/leaf counts are scaled by the merged
/// expansion factor K/(1+(K−1)α), and leaf words widen to K NHI entries.
/// Under kPaperLiteral, the per-stage memory is instead α·K times the
/// single-trie stage memory with single-width leaves.
[[nodiscard]] trie::StageMemory predict_merged_stage_memory(
    const trie::TrieStats& representative, const trie::StageMapping& mapping,
    const trie::NodeEncoding& encoding, std::size_t vn_count, double alpha,
    MergedMemoryRule rule = MergedMemoryRule::kOverlapConsistent);

/// Aggregated per-stage memory of K independent pipelines (the separate and
/// non-virtualized schemes): stage s holds the VN's own nodes only; the
/// returned vector is for ONE pipeline — callers multiply by K or keep
/// per-VN copies. Provided for symmetry/clarity.
[[nodiscard]] trie::StageMemory predict_separate_stage_memory(
    const trie::TrieStats& representative, const trie::StageMapping& mapping,
    const trie::NodeEncoding& encoding);

}  // namespace vr::virt
