// Uni-bit binary trie for IP lookup — the representative data structure the
// paper maps onto the lookup pipeline (Sec. V-D): one trie level per
// pipeline stage, NHI stored at leaves after leaf pushing.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "netbase/routing_table.hpp"

namespace vr::trie {

class FlatTrie;

/// Index of a node inside a trie's node vector.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNullNode = 0xffffffffu;

/// Largest node count any trie or flat image may hold: kNullNode is a
/// sentinel, so valid indices are [0, kMaxNodeCount).
inline constexpr std::size_t kMaxNodeCount =
    static_cast<std::size_t>(kNullNode);

/// Narrows a node position to NodeIndex, aborting loudly when the count
/// has outgrown the index type instead of silently wrapping — a flat image
/// built from a wrapped index would alias unrelated nodes and return
/// plausible-but-wrong next hops. `context` names the structure being
/// built (appears in the abort message).
[[nodiscard]] inline NodeIndex checked_node_index(std::size_t index,
                                                  const char* context) {
  VR_REQUIRE(index < kMaxNodeCount,
             std::string(context) +
                 ": node count exceeds what NodeIndex can address (" +
                 std::to_string(index) + " >= " +
                 std::to_string(kMaxNodeCount) + ")");
  return static_cast<NodeIndex>(index);
}

/// A trie node. Nodes are stored level-contiguously after construction so
/// that mapping onto pipeline stages is a simple slice per level.
struct TrieNode {
  NodeIndex left = kNullNode;   // child for bit 0
  NodeIndex right = kNullNode;  // child for bit 1
  /// Next hop attached to this node (kNoRoute if none). After leaf pushing
  /// only leaves carry one.
  net::NextHop next_hop = net::kNoRoute;

  [[nodiscard]] bool is_leaf() const noexcept {
    return left == kNullNode && right == kNullNode;
  }
  [[nodiscard]] bool has_route() const noexcept {
    return next_hop != net::kNoRoute;
  }
};

/// An immutable uni-bit trie built from a routing table. Always contains at
/// least the root node. Supports longest-prefix-match lookup and leaf
/// pushing (Sec. V-D; [16] in the paper).
class UnibitTrie {
 public:
  /// Builds the trie of a routing table. The node vector is stored in
  /// breadth-first (level) order: all level-0 nodes, then level-1, ...
  explicit UnibitTrie(const net::RoutingTable& table);

  /// Longest-prefix match: next hop of the most specific route covering
  /// `addr`, or nullopt. Runs on the flat SoA view.
  [[nodiscard]] std::optional<net::NextHop> lookup(net::Ipv4 addr) const;

  /// Batched longest-prefix match: one entry per address, net::kNoRoute
  /// where no route covers it.
  [[nodiscard]] std::vector<net::NextHop> lookup_batch(
      std::span<const net::Ipv4> addrs) const;

  /// The flat structure-of-arrays view of this trie (always present;
  /// rebuilt whenever the node vector is canonicalized).
  [[nodiscard]] const FlatTrie& flat() const noexcept { return *flat_; }

  /// Shares ownership of the flat view (pipeline TrieViews keep the
  /// arrays alive independently of this trie object).
  [[nodiscard]] std::shared_ptr<const FlatTrie> flat_shared() const noexcept {
    return flat_;
  }

  /// Returns the leaf-pushed version of this trie: internal prefixes are
  /// pushed down so that (a) every internal node has exactly two children
  /// and (b) only leaves carry next hops. Lookup results are identical
  /// (for addresses with no route, leaf-pushed lookup also returns nullopt
  /// because pushed leaves inherit kNoRoute when there is nothing to push).
  [[nodiscard]] UnibitTrie leaf_pushed() const;

  [[nodiscard]] bool is_leaf_pushed() const noexcept { return leaf_pushed_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::span<const TrieNode> nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const TrieNode& node(NodeIndex i) const {
    return nodes_[i];
  }
  [[nodiscard]] NodeIndex root() const noexcept { return 0; }

  /// Depth of the deepest node; the empty-table trie has height 0.
  ///
  /// Invariant: after construction `level_offsets_` always has >= 2
  /// entries ({0, 1} for the root-only trie of an empty table), so the
  /// subtractions here and in level_count() cannot underflow. The assert
  /// guards against uses of a moved-from trie.
  [[nodiscard]] unsigned height() const noexcept {
    assert(level_offsets_.size() >= 2 && "trie has no levels (moved-from?)");
    return static_cast<unsigned>(level_offsets_.size() - 2);
  }

  /// Number of levels (height + 1).
  [[nodiscard]] std::size_t level_count() const noexcept {
    assert(level_offsets_.size() >= 2 && "trie has no levels (moved-from?)");
    return level_offsets_.size() - 1;
  }

  /// Nodes of level `l` as a contiguous span (level order is guaranteed).
  [[nodiscard]] std::span<const TrieNode> level(std::size_t l) const;

  /// First node index of level `l` (level_offsets()[level_count()] is the
  /// total node count).
  [[nodiscard]] std::span<const std::size_t> level_offsets() const noexcept {
    return level_offsets_;
  }

  /// Level of a node (O(log levels)).
  [[nodiscard]] std::size_t level_of(NodeIndex node) const;

 private:
  UnibitTrie() = default;

  /// Re-canonicalizes `nodes_` into breadth-first order, rebuilds
  /// level_offsets_ and refreshes the flat SoA view.
  void canonicalize();

  std::vector<TrieNode> nodes_;
  std::vector<std::size_t> level_offsets_;  // size level_count()+1
  std::shared_ptr<const FlatTrie> flat_;    // always set after construction
  bool leaf_pushed_ = false;
};

}  // namespace vr::trie
