// Property tests over randomized Scenarios: structural invariants the
// paper's analytical model (Sec. IV) must satisfy for EVERY deployment,
// not just the configurations the figures happen to plot. Each trial
// draws (K, µ_i, N, α, speed grade, table seed) from a seeded generator;
// a failure prints the trial's draw so it can be replayed exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "fpga/device.hpp"
#include "power/resource_model.hpp"

namespace vr::core {
namespace {

constexpr std::uint64_t kMasterSeed = 0x5eedf00d;
constexpr int kTrials = 8;

struct Draw {
  std::size_t vn_count = 0;
  std::size_t stages = 0;
  double alpha = 0.0;
  fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;
  std::uint64_t table_seed = 0;
  std::vector<double> utilization;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "draw{K=" << vn_count << " N=" << stages << " alpha=" << alpha
       << " grade=" << fpga::to_string(grade) << " seed=" << table_seed
       << " mu=[";
    for (std::size_t i = 0; i < utilization.size(); ++i) {
      os << (i ? "," : "") << utilization[i];
    }
    os << "]}";
    return os.str();
  }
};

Draw random_draw(Rng& rng) {
  Draw d;
  d.vn_count = rng.next_in(2, 10);
  // Lower bound: a leaf-pushed edge-profile trie can reach 28 levels, and
  // the kOneLevelPerStage mapping needs a stage per level.
  d.stages = rng.next_in(28, 36);
  d.alpha = 0.2 + 0.7 * rng.next_double();
  d.grade = rng.next_bool(0.5) ? fpga::SpeedGrade::kMinus2
                               : fpga::SpeedGrade::kMinus1L;
  d.table_seed = rng.next_in(1, 1 << 20);
  d.utilization.resize(d.vn_count);
  for (double& mu : d.utilization) mu = rng.next_double();
  return d;
}

Scenario scenario_from(const Draw& d, power::Scheme scheme) {
  Scenario s;
  s.scheme = scheme;
  s.vn_count = d.vn_count;
  s.stages = d.stages;
  s.alpha = d.alpha;
  s.grade = d.grade;
  s.seed = d.table_seed;
  s.utilization = d.utilization;
  return s;
}

class ModelInvariantsTest : public ::testing::Test {
 protected:
  PowerEstimator estimator_{fpga::DeviceSpec::xc6vlx760()};
};

// Eq. 2: the non-virtualized deployment pays one full device's leakage
// per VN — static power is exactly K times the catalog value.
TEST_F(ModelInvariantsTest, NvStaticPowerScalesWithVnCount) {
  Rng rng(kMasterSeed);
  for (int t = 0; t < kTrials; ++t) {
    const Draw d = random_draw(rng);
    SCOPED_TRACE(d.describe());
    const Estimate est =
        estimator_.estimate(scenario_from(d, power::Scheme::kNonVirtualized));
    const units::Watts per_device =
        estimator_.device().static_power_w(d.grade);
    EXPECT_DOUBLE_EQ(est.power.static_w.value(),
                     static_cast<double>(d.vn_count) * per_device.value());
    EXPECT_EQ(est.power.devices, d.vn_count);
  }
}

// Sec. VI-B: the merged engine's memory grows with K, congesting the
// device, so its achievable clock never speeds up as VNs are added.
TEST_F(ModelInvariantsTest, MergedFrequencyMonotoneNonIncreasingInK) {
  Rng rng(kMasterSeed ^ 0x1);
  for (int t = 0; t < kTrials; ++t) {
    Draw d = random_draw(rng);
    SCOPED_TRACE(d.describe());
    units::Megahertz prev{0.0};
    for (std::size_t k = 1; k <= 8; ++k) {
      d.vn_count = k;
      d.utilization.clear();  // uniform 1/K
      const Estimate est =
          estimator_.estimate(scenario_from(d, power::Scheme::kMerged));
      if (k > 1) {
        EXPECT_LE(est.freq_mhz.value(), prev.value())
            << "clock sped up going to K=" << k;
      }
      prev = est.freq_mhz;
    }
  }
}

// The breakdown is a partition: every component non-negative and the
// total is exactly their sum, for every scheme.
TEST_F(ModelInvariantsTest, ComponentsNonNegativeAndSumToTotal) {
  Rng rng(kMasterSeed ^ 0x2);
  for (int t = 0; t < kTrials; ++t) {
    const Draw d = random_draw(rng);
    SCOPED_TRACE(d.describe());
    for (const power::Scheme scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      const Estimate est = estimator_.estimate(scenario_from(d, scheme));
      const power::PowerBreakdown& p = est.power;
      EXPECT_GE(p.static_w.value(), 0.0);
      EXPECT_GE(p.logic_w.value(), 0.0);
      EXPECT_GE(p.memory_w.value(), 0.0);
      EXPECT_DOUBLE_EQ(
          p.total_w().value(),
          p.static_w.value() + p.logic_w.value() + p.memory_w.value());
      EXPECT_GT(est.throughput_gbps.value(), 0.0);
    }
  }
}

// Sec. V-A / Table III: the -1L grade leaks less and its coefficients
// are smaller, so at an otherwise identical configuration it never
// consumes more than -2.
TEST_F(ModelInvariantsTest, LowPowerGradeNeverExceedsStandardGrade) {
  Rng rng(kMasterSeed ^ 0x3);
  for (int t = 0; t < kTrials; ++t) {
    Draw d = random_draw(rng);
    SCOPED_TRACE(d.describe());
    for (const power::Scheme scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      d.grade = fpga::SpeedGrade::kMinus2;
      const Estimate fast = estimator_.estimate(scenario_from(d, scheme));
      d.grade = fpga::SpeedGrade::kMinus1L;
      const Estimate low = estimator_.estimate(scenario_from(d, scheme));
      EXPECT_LE(low.power.total_w().value(), fast.power.total_w().value());
      EXPECT_LE(low.power.static_w.value(), fast.power.static_w.value());
    }
  }
}

// Fig. 8's ordering in the paper's operating range: sharing one device
// across K pipelines (VS) is the most power-efficient; one engine per
// device (NV) pays K times the leakage for the same aggregate capacity;
// merging into a single pipeline (VM) also gives up K-fold throughput,
// making it the least efficient per Gbps.
TEST_F(ModelInvariantsTest, EfficiencyOrdersSchemesAsInFig8) {
  Rng rng(kMasterSeed ^ 0x4);
  for (int t = 0; t < kTrials; ++t) {
    Draw d = random_draw(rng);
    d.utilization.clear();  // uniform 1/K (Assumption 1)
    SCOPED_TRACE(d.describe());
    const Estimate nv =
        estimator_.estimate(scenario_from(d, power::Scheme::kNonVirtualized));
    const Estimate vs =
        estimator_.estimate(scenario_from(d, power::Scheme::kSeparate));
    const Estimate vm =
        estimator_.estimate(scenario_from(d, power::Scheme::kMerged));
    EXPECT_LE(vs.mw_per_gbps.value(), nv.mw_per_gbps.value());
    EXPECT_LE(nv.mw_per_gbps.value(), vm.mw_per_gbps.value());
  }
}

// ------------------------ estimator-as-oracle edge cases (placement) --

// The placement controller uses the estimator as its feasibility oracle,
// which leans on three behaviors at the edge of device capacity that the
// figure sweeps never exercise. Each is pinned here.

// FitReport is a pure conjunction: the aggregate verdict is exactly the
// AND of the per-resource checks, never a separate computation that
// could drift from them.
TEST_F(ModelInvariantsTest, FitReportComposesFromItsComponents) {
  Rng rng(kMasterSeed ^ 0x5);
  for (int t = 0; t < kTrials; ++t) {
    const Draw d = random_draw(rng);
    SCOPED_TRACE(d.describe());
    for (const power::Scheme scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      const Estimate est = estimator_.estimate(scenario_from(d, scheme));
      const power::FitReport& fit = est.fit;
      EXPECT_EQ(fit.fits, fit.bram_ok && fit.luts_ok &&
                              fit.flip_flops_ok && fit.io_ok);
    }
  }
}

// The exact BRAM capacity boundary: on a small device with full-size
// tables, the merged image grows with K until BRAM is the binding wall.
// The estimator's fit verdict must flip exactly at the K that
// power::max_vn_count reports — K* fits, K*+1 does not, and the failing
// resource is BRAM (not I/O or logic).
TEST_F(ModelInvariantsTest, BramBoundaryFlipsExactlyAtMaxVnCount) {
  // On the catalog parts the logic fabric binds before BRAM does, so to
  // pin the *memory* wall we synthesize a BRAM-starved variant: same
  // logic budget, a quarter of the block RAM. Separate engines at 4800
  // prefixes then exhaust BRAM halves while LUTs/FFs stay comfortable.
  fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx240t();
  device.name += "-bram-starved";
  device.bram_bits /= 4;
  PowerEstimator estimator{device};
  Scenario base;
  base.scheme = power::Scheme::kSeparate;
  base.table_profile.prefix_count = 4800;
  std::map<std::size_t, Estimate> estimates;
  const auto estimate_at = [&](std::size_t k) -> const Estimate& {
    const auto it = estimates.find(k);
    if (it != estimates.end()) return it->second;
    Scenario s = base;
    s.vn_count = k;
    return estimates.emplace(k, estimator.estimate(s)).first->second;
  };
  constexpr std::size_t kScanLimit = 16;
  const std::size_t k_star = power::max_vn_count(
      estimator.device(), kScanLimit,
      [&](std::size_t k) { return estimate_at(k).resources; });
  ASSERT_GE(k_star, 1u) << "even K=1 does not fit — shrink the table";
  ASSERT_LT(k_star, kScanLimit) << "no flip in range — grow the table";
  const Estimate& at = estimate_at(k_star);
  const Estimate& past = estimate_at(k_star + 1);
  EXPECT_TRUE(at.fit.fits);
  EXPECT_TRUE(at.fit.bram_ok);
  EXPECT_FALSE(past.fit.fits);
  EXPECT_FALSE(past.fit.bram_ok);        // the binding wall is BRAM capacity
  EXPECT_TRUE(past.fit.io_ok);           // interfaces do not bind here
  EXPECT_TRUE(past.fit.luts_ok);         // nor does the logic fabric —
  EXPECT_TRUE(past.fit.flip_flops_ok);   // the flip is BRAM and BRAM alone
}

// A deployment that does not fit still estimates finitely — the
// placement policies rank candidates by watts before checking
// feasibility, so an infeasible shape must price as a number, not a NaN
// or a trap.
TEST_F(ModelInvariantsTest, InfeasibleDeploymentStillEstimatesFinitely) {
  PowerEstimator estimator{fpga::DeviceSpec::xc6vlx240t()};
  Scenario s;
  s.scheme = power::Scheme::kSeparate;
  s.vn_count = 40;  // far past the small device's parallel-engine capacity
  s.table_profile.prefix_count = 4800;
  const Estimate est = estimator.estimate(s);
  EXPECT_FALSE(est.fit.fits);
  EXPECT_TRUE(std::isfinite(est.power.total_w().value()));
  EXPECT_GT(est.power.total_w().value(), 0.0);
  EXPECT_TRUE(std::isfinite(est.freq_mhz.value()));
  EXPECT_GT(est.freq_mhz.value(), 0.0);
  EXPECT_GT(est.throughput_gbps.value(), 0.0);
  EXPECT_TRUE(std::isfinite(est.mw_per_gbps.value()));
}

// A requested clock below the achievable Fmax binds the operating point
// exactly (the SLA floors compare against this), scales the dynamic
// power down, and leaves leakage untouched; a cap above Fmax is inert.
TEST_F(ModelInvariantsTest, FrequencyCapBelowFmaxBindsTheOperatingPoint) {
  Scenario s;
  s.scheme = power::Scheme::kMerged;
  s.vn_count = 3;
  const Estimate free_running = estimator_.estimate(s);
  ASSERT_GT(free_running.freq_mhz.value(), 50.0);
  s.freq_mhz = units::Megahertz{50.0};
  const Estimate capped = estimator_.estimate(s);
  EXPECT_DOUBLE_EQ(capped.freq_mhz.value(), 50.0);
  EXPECT_LT(capped.power.total_w().value(),
            free_running.power.total_w().value());
  EXPECT_DOUBLE_EQ(capped.power.static_w.value(),
                   free_running.power.static_w.value());
  EXPECT_LT(capped.throughput_gbps.value(),
            free_running.throughput_gbps.value());
  s.freq_mhz = units::Megahertz{100000.0};
  const Estimate uncapped = estimator_.estimate(s);
  EXPECT_DOUBLE_EQ(uncapped.freq_mhz.value(),
                   free_running.freq_mhz.value());
}

}  // namespace
}  // namespace vr::core
