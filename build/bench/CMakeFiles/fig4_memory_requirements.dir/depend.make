# Empty dependencies file for fig4_memory_requirements.
# This may be replaced when dependencies are built.
