file(REMOVE_RECURSE
  "libvr_core.a"
)
