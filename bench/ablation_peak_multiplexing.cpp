// Ablation: statistical multiplexing of staggered tenant peaks — the
// premise behind time-sharing one merged engine (paper Sec. I: edge
// equipment "operates full time, however the duty-cycle is low"). Four
// tenants each burst at full line rate for 25 % of a period; when their
// peaks are staggered the single merged pipeline absorbs all of them with
// no queueing, and when the peaks coincide it backs up by design.
#include "bench_common.hpp"
#include "netbase/table_gen.hpp"
#include "pipeline/router.hpp"
#include "virt/merged_trie.hpp"

int main() {
  using namespace vr;
  constexpr std::size_t kVns = 4;
  net::TableProfile profile;
  profile.prefix_count = 800;
  const net::SyntheticTableGenerator gen(profile);
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  std::vector<trie::UnibitTrie> tries;
  for (std::uint64_t v = 0; v < kVns; ++v) {
    tables.push_back(gen.generate(v + 1));
  }
  for (const auto& t : tables) {
    table_ptrs.push_back(&t);
    tries.push_back(trie::UnibitTrie(t).leaf_pushed());
  }
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  for (const auto& t : tries) trie_ptrs.push_back(&t);
  const virt::MergedTrie merged{
      std::span<const trie::UnibitTrie* const>(trie_ptrs)};

  TextTable out(
      "Merged engine under 4 tenants bursting at line rate, 25% duty");
  out.set_header({"peak arrangement", "offered pkts", "served pkts",
                  "max queue", "mean utilization"});
  const struct {
    const char* name;
    std::vector<double> offsets;
  } cases[] = {
      {"staggered (0/25/50/75%)", {0.0, 0.25, 0.5, 0.75}},
      {"pairwise overlap (0/0/50/50%)", {0.0, 0.0, 0.5, 0.5}},
      {"fully aligned (all 0%)", {0.0, 0.0, 0.0, 0.0}},
  };
  for (const auto& c : cases) {
    net::TrafficConfig config;
    config.cycles = 40000;
    config.load = 1.0;  // line rate during each tenant's window
    config.duty_on_fraction = 0.25;
    config.duty_period = 4000;
    config.vn_phase_offsets = c.offsets;
    const net::TrafficGenerator traffic(config, table_ptrs);
    const auto trace = traffic.generate(11);

    pipeline::MergedRouter router(merged, 28);
    const pipeline::SimulationResult sim = run_trace(router, trace);
    out.add_row({c.name, std::to_string(trace.size()),
                 std::to_string(sim.results.size()),
                 std::to_string(sim.max_queue_depth),
                 TextTable::num(sim.engine_utilization[0], 3)});
  }
  vr::bench::emit(out);
  std::cout << "Staggered peaks keep the shared pipeline's queue at the\n"
               "arrival jitter level: one time-shared engine genuinely\n"
               "replaces K underutilized dedicated ones. Aligned peaks\n"
               "exceed the single engine's slot rate -- the residual case\n"
               "where the separate scheme's K parallel engines matter.\n";
  return 0;
}
