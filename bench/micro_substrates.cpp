// google-benchmark microbenchmarks of the substrates themselves: trie
// construction, leaf pushing, longest-prefix lookup, K-way structural
// merge, cycle-level pipeline simulation throughput and the end-to-end
// analytical estimate. These measure this library's software performance
// (not the modelled hardware).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "dataplane/full_router.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "netbase/update_gen.hpp"
#include "pipeline/router.hpp"
#include "tcam/tcam.hpp"
#include "trie/multibit_trie.hpp"
#include "trie/updatable_trie.hpp"
#include "virt/merged_trie.hpp"
#include "virt/table_set_gen.hpp"

namespace {

using namespace vr;

const net::RoutingTable& edge_table() {
  static const net::RoutingTable table =
      net::SyntheticTableGenerator(net::TableProfile::edge_default())
          .generate(1);
  return table;
}

void BM_TableGeneration(benchmark::State& state) {
  net::TableProfile profile;
  profile.prefix_count = static_cast<std::size_t>(state.range(0));
  const net::SyntheticTableGenerator gen(profile);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(++seed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TableGeneration)->Arg(1000)->Arg(3725);

void BM_TrieBuild(benchmark::State& state) {
  const net::RoutingTable& table = edge_table();
  for (auto _ : state) {
    trie::UnibitTrie trie(table);
    benchmark::DoNotOptimize(trie.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_TrieBuild);

void BM_LeafPush(benchmark::State& state) {
  const trie::UnibitTrie trie{edge_table()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.leaf_pushed().node_count());
  }
}
BENCHMARK(BM_LeafPush);

void BM_TrieLookup(benchmark::State& state) {
  const trie::UnibitTrie trie{edge_table()};
  Rng rng(7);
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieLookup);

void BM_KWayMerge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  virt::TableSetConfig config;
  config.profile.prefix_count = 1000;
  const virt::CorrelatedTableSetGenerator gen(config);
  const virt::TableSet set = gen.generate(k, 0.4, 11);
  std::vector<trie::UnibitTrie> tries;
  for (const auto& table : set.tables) {
    tries.push_back(trie::UnibitTrie(table).leaf_pushed());
  }
  std::vector<const trie::UnibitTrie*> ptrs;
  for (const auto& t : tries) ptrs.push_back(&t);
  for (auto _ : state) {
    virt::MergedTrie merged{std::span<const trie::UnibitTrie* const>(ptrs)};
    benchmark::DoNotOptimize(merged.node_count());
  }
}
BENCHMARK(BM_KWayMerge)->Arg(2)->Arg(8)->Arg(15);

void BM_PipelineSimulation(benchmark::State& state) {
  const trie::UnibitTrie trie = trie::UnibitTrie(edge_table()).leaf_pushed();
  net::TrafficConfig config;
  config.cycles = 10000;
  const net::TrafficGenerator traffic(config, {&edge_table()});
  const auto trace = traffic.generate(13);
  for (auto _ : state) {
    std::vector<pipeline::TrieView> views{pipeline::TrieView(trie)};
    pipeline::SeparateRouter router(views, 28);
    benchmark::DoNotOptimize(run_trace(router, trace).results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PipelineSimulation);

void BM_MultibitLookup(benchmark::State& state) {
  const trie::MultibitTrie trie(edge_table(),
                                static_cast<unsigned>(state.range(0)));
  Rng rng(19);
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultibitLookup)->Arg(1)->Arg(4)->Arg(8);

void BM_TcamSearch(benchmark::State& state) {
  const tcam::FlatTcam flat(edge_table());
  Rng rng(23);
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat.search(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_TcamSearch);

void BM_IncrementalUpdate(benchmark::State& state) {
  const net::RoutingTable& base = edge_table();
  net::UpdateStreamConfig config;
  config.update_count = 2000;
  const net::UpdateStreamGenerator gen(config);
  const auto stream = gen.generate(base, 31);
  trie::UpdatableTrie trie(base);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.apply(stream[i]).words_written);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalUpdate);

void BM_ChecksumAndTtlEdit(benchmark::State& state) {
  net::Ipv4Header header;
  header.source = net::Ipv4(192, 0, 2, 1);
  header.destination = net::Ipv4(198, 51, 100, 2);
  header.ttl = 255;
  header.checksum = header.compute_checksum();
  for (auto _ : state) {
    if (header.ttl <= 2) {
      header.ttl = 255;
      header.checksum = header.compute_checksum();
    }
    benchmark::DoNotOptimize(header.decrement_ttl());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChecksumAndTtlEdit);

void BM_FullRouterDataplane(benchmark::State& state) {
  static const net::RoutingTable& table = edge_table();
  static const trie::UnibitTrie trie =
      trie::UnibitTrie(table).leaf_pushed();
  dataplane::FrameGenConfig config;
  config.traffic.cycles = 4000;
  config.traffic.load = 0.8;
  const dataplane::FrameGenerator gen(config, {&table});
  const auto frames = gen.generate(37);
  dataplane::FullRouterConfig router_config;
  router_config.scheduler.vn_count = 1;
  for (auto _ : state) {
    std::vector<pipeline::TrieView> views{pipeline::TrieView(trie)};
    pipeline::SeparateRouter lookup(views, 28);
    benchmark::DoNotOptimize(
        run_full_router(lookup, frames, router_config).egress.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_FullRouterDataplane);

void BM_AnalyticalEstimate(benchmark::State& state) {
  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};
  core::Scenario scenario;
  scenario.scheme = power::Scheme::kMerged;
  scenario.vn_count = 8;
  const core::Workload workload = core::realize_workload(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator.estimate(scenario, workload).power.total_w());
  }
}
BENCHMARK(BM_AnalyticalEstimate);

}  // namespace

BENCHMARK_MAIN();
