#include "ipv6/ipv6_trie.hpp"

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trie/trie_stats.hpp"

namespace vr::ipv6 {

namespace {

/// ORs `value` into the 128-bit address at bit offset `shift` from the
/// LSB end (i.e. the value's LSB lands at bit 127-shift... in hi/lo
/// words: plain 128-bit left shift by `shift`).
Ipv6 or_shifted(const Ipv6& base, std::uint64_t value, unsigned shift) {
  std::uint64_t hi = base.hi();
  std::uint64_t lo = base.lo();
  if (shift >= 64) {
    hi |= value << (shift - 64);
  } else {
    lo |= value << shift;
    if (shift != 0) hi |= value >> (64 - shift);
  }
  return Ipv6(hi, lo);
}

}  // namespace

UnibitTrie6::UnibitTrie6(const RoutingTable6& table) {
  nodes_.push_back(trie::TrieNode{});
  for (const Route6& route : table.routes()) {
    trie::NodeIndex current = 0;
    for (unsigned depth = 0; depth < route.prefix.length(); ++depth) {
      const bool go_right = route.prefix.bit(depth);
      trie::NodeIndex& child =
          go_right ? nodes_[current].right : nodes_[current].left;
      if (child == trie::kNullNode) {
        child = static_cast<trie::NodeIndex>(nodes_.size());
        nodes_.push_back(trie::TrieNode{});
      }
      current = go_right ? nodes_[current].right : nodes_[current].left;
    }
    nodes_[current].next_hop = route.next_hop;
  }
  canonicalize();
}

void UnibitTrie6::canonicalize() {
  std::vector<trie::TrieNode> ordered;
  ordered.reserve(nodes_.size());
  std::vector<trie::NodeIndex> frontier{0};
  level_offsets_.clear();
  level_offsets_.push_back(0);
  std::vector<trie::NodeIndex> remap(nodes_.size(), trie::kNullNode);
  while (!frontier.empty()) {
    std::vector<trie::NodeIndex> next;
    for (const trie::NodeIndex old_index : frontier) {
      remap[old_index] = static_cast<trie::NodeIndex>(ordered.size());
      ordered.push_back(nodes_[old_index]);
      if (nodes_[old_index].left != trie::kNullNode) {
        next.push_back(nodes_[old_index].left);
      }
      if (nodes_[old_index].right != trie::kNullNode) {
        next.push_back(nodes_[old_index].right);
      }
    }
    level_offsets_.push_back(ordered.size());
    frontier = std::move(next);
  }
  if (level_offsets_.size() >= 2 &&
      level_offsets_.back() == level_offsets_[level_offsets_.size() - 2]) {
    level_offsets_.pop_back();
  }
  for (trie::TrieNode& node : ordered) {
    if (node.left != trie::kNullNode) node.left = remap[node.left];
    if (node.right != trie::kNullNode) node.right = remap[node.right];
  }
  nodes_ = std::move(ordered);
}

std::optional<net::NextHop> UnibitTrie6::lookup(const Ipv6& addr) const {
  std::optional<net::NextHop> best;
  trie::NodeIndex current = 0;
  for (unsigned depth = 0;; ++depth) {
    const trie::TrieNode& node = nodes_[current];
    if (node.has_route()) best = node.next_hop;
    if (depth >= 128) break;
    const trie::NodeIndex child =
        addr.bit(depth) ? node.right : node.left;
    if (child == trie::kNullNode) break;
    current = child;
  }
  return best;
}

UnibitTrie6 UnibitTrie6::leaf_pushed() const {
  UnibitTrie6 pushed;
  pushed.nodes_.reserve(nodes_.size() * 2);
  pushed.nodes_.push_back(trie::TrieNode{});
  struct Frame {
    trie::NodeIndex src;
    trie::NodeIndex dst;
    net::NextHop inherited;
  };
  std::vector<Frame> stack{{0, 0, net::kNoRoute}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.src == trie::kNullNode) {
      pushed.nodes_[frame.dst].next_hop = frame.inherited;
      continue;
    }
    const trie::TrieNode& src = nodes_[frame.src];
    const net::NextHop effective =
        src.has_route() ? src.next_hop : frame.inherited;
    if (src.is_leaf()) {
      pushed.nodes_[frame.dst].next_hop = effective;
      continue;
    }
    const auto left_dst =
        static_cast<trie::NodeIndex>(pushed.nodes_.size());
    pushed.nodes_.push_back(trie::TrieNode{});
    const auto right_dst =
        static_cast<trie::NodeIndex>(pushed.nodes_.size());
    pushed.nodes_.push_back(trie::TrieNode{});
    pushed.nodes_[frame.dst].left = left_dst;
    pushed.nodes_[frame.dst].right = right_dst;
    stack.push_back(Frame{src.left, left_dst, effective});
    stack.push_back(Frame{src.right, right_dst, effective});
  }
  pushed.canonicalize();
  return pushed;
}

trie::TrieStats UnibitTrie6::stats() const {
  trie::TrieStats out;
  out.total_nodes = nodes_.size();
  out.height = height();
  const std::size_t levels = level_count();
  out.nodes_per_level.assign(levels, 0);
  out.internal_per_level.assign(levels, 0);
  out.leaves_per_level.assign(levels, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t i = level_offsets_[l]; i < level_offsets_[l + 1];
         ++i) {
      ++out.nodes_per_level[l];
      if (nodes_[i].is_leaf()) {
        ++out.leaves_per_level[l];
      } else {
        ++out.internal_per_level[l];
      }
    }
    out.internal_nodes += out.internal_per_level[l];
    out.leaf_nodes += out.leaves_per_level[l];
  }
  return out;
}

SyntheticTableGenerator6::SyntheticTableGenerator6(TableProfile6 profile)
    : profile_(std::move(profile)) {
  VR_REQUIRE(profile_.prefix_count > 0, "prefix_count must be positive");
  VR_REQUIRE(profile_.provider_blocks > 0,
             "provider_blocks must be positive");
  VR_REQUIRE(!profile_.length_weights.empty(), "length_weights empty");
  VR_REQUIRE(profile_.min_length >= profile_.provider_block_length,
             "prefixes must be at least as long as their provider block");
  VR_REQUIRE(profile_.min_length +
                     4 * (profile_.length_weights.size() - 1) <=
                 128,
             "length distribution extends past /128");
}

RoutingTable6 SyntheticTableGenerator6::generate(std::uint64_t seed) const {
  Rng rng(seed);
  // Distinct provider /provider_block_length blocks under 2000::/3
  // (global unicast).
  std::set<std::uint64_t> block_tops;
  while (block_tops.size() < profile_.provider_blocks) {
    const std::uint64_t raw =
        rng.next_below(std::uint64_t{1}
                       << (profile_.provider_block_length - 3));
    block_tops.insert((std::uint64_t{1} << 61) |
                      (raw << (64 - profile_.provider_block_length)));
  }
  const std::vector<std::uint64_t> blocks(block_tops.begin(),
                                          block_tops.end());

  std::set<Prefix6> seen;
  std::vector<Route6> routes;
  routes.reserve(profile_.prefix_count);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts =
      profile_.prefix_count * 1000ULL + 100000;
  while (routes.size() < profile_.prefix_count) {
    VR_REQUIRE(attempts++ < max_attempts,
               "IPv6 table generation failed to converge");
    if (!routes.empty() && rng.next_bool(profile_.nested_fraction)) {
      const Route6& parent = routes[rng.next_below(routes.size())];
      if (parent.prefix.length() > profile_.min_length) {
        const auto new_len = static_cast<unsigned>(rng.next_in(
            profile_.min_length, parent.prefix.length() - 1));
        const Prefix6 truncated(parent.prefix.address(), new_len);
        if (seen.insert(truncated).second) {
          routes.push_back(Route6{
              truncated, static_cast<net::NextHop>(
                             rng.next_below(profile_.next_hop_count))});
        }
      }
      continue;
    }
    const std::uint64_t block = blocks[rng.next_below(blocks.size())];
    const auto len_index = rng.next_weighted(
        profile_.length_weights.data(), profile_.length_weights.size());
    const unsigned length =
        profile_.min_length + 4 * static_cast<unsigned>(len_index);
    const unsigned suffix_bits = length - profile_.provider_block_length;
    const std::uint64_t space = suffix_bits >= 63
                                    ? profile_.density_span
                                    : (std::uint64_t{1} << suffix_bits);
    const std::uint64_t suffix = rng.next_below(
        std::min<std::uint64_t>(profile_.density_span, space));
    const Ipv6 address =
        or_shifted(Ipv6(block, 0), suffix, 128 - length);
    const Prefix6 prefix(address, length);
    if (seen.insert(prefix).second) {
      routes.push_back(Route6{
          prefix, static_cast<net::NextHop>(
                      rng.next_below(profile_.next_hop_count))});
    }
  }
  return RoutingTable6(std::move(routes));
}

}  // namespace vr::ipv6
