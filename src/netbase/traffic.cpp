#include "netbase/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::net {

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   std::vector<const RoutingTable*> tables)
    : config_(std::move(config)), tables_(std::move(tables)) {
  VR_REQUIRE(!tables_.empty(), "need at least one virtual network table");
  for (const RoutingTable* table : tables_) {
    VR_REQUIRE(table != nullptr, "null routing table");
    VR_REQUIRE(!table->empty(), "empty routing table cannot source traffic");
  }
  VR_REQUIRE(config_.load >= 0.0 && config_.load <= 1.0,
             "load must be in [0,1]");
  VR_REQUIRE(config_.duty_on_fraction >= 0.0 && config_.duty_on_fraction <= 1.0,
             "duty_on_fraction must be in [0,1]");
  VR_REQUIRE(config_.duty_period > 0, "duty_period must be positive");
  if (!config_.vn_phase_offsets.empty()) {
    VR_REQUIRE(config_.vn_phase_offsets.size() == tables_.size(),
               "vn_phase_offsets size must match the number of tables");
    for (const double offset : config_.vn_phase_offsets) {
      VR_REQUIRE(offset >= 0.0 && offset < 1.0,
                 "phase offsets must be in [0,1)");
    }
  }

  if (config_.vn_weights.empty()) {
    weights_.assign(tables_.size(), 1.0 / static_cast<double>(tables_.size()));
  } else {
    VR_REQUIRE(config_.vn_weights.size() == tables_.size(),
               "vn_weights size must match the number of tables");
    double total = 0.0;
    for (double w : config_.vn_weights) {
      VR_REQUIRE(w >= 0.0, "vn weights must be non-negative");
      total += w;
    }
    VR_REQUIRE(total > 0.0, "vn weights must not all be zero");
    weights_.reserve(config_.vn_weights.size());
    for (double w : config_.vn_weights) weights_.push_back(w / total);
  }
}

Packet TrafficGenerator::sample_packet(Rng& rng, VnId vn) const {
  const RoutingTable& table = *tables_[vn];
  const auto routes = table.routes();
  const Route& route = routes[rng.next_below(routes.size())];
  const unsigned host_bits = 32u - route.prefix.length();
  std::uint32_t addr = route.prefix.address().value();
  if (host_bits > 0) {
    const std::uint64_t space = std::uint64_t{1} << host_bits;
    addr |= static_cast<std::uint32_t>(rng.next_below(space));
  }
  return Packet{Ipv4(addr), vn};
}

std::vector<TimedPacket> TrafficGenerator::generate(
    std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<TimedPacket> trace;
  trace.reserve(static_cast<std::size_t>(
      static_cast<double>(config_.cycles) * config_.load *
          config_.duty_on_fraction +
      16.0));
  const auto on_cycles = static_cast<std::uint64_t>(
      std::llround(config_.duty_on_fraction *
                   static_cast<double>(config_.duty_period)));
  const bool phased = !config_.vn_phase_offsets.empty();

  for (std::uint64_t cycle = 0; cycle < config_.cycles; ++cycle) {
    const std::uint64_t phase = cycle % config_.duty_period;
    if (!phased) {
      if (phase >= on_cycles) continue;
      if (!rng.next_bool(config_.load)) continue;
      const auto vn = static_cast<VnId>(
          rng.next_weighted(weights_.data(), weights_.size()));
      trace.push_back(TimedPacket{cycle, sample_packet(rng, vn)});
      continue;
    }
    // Staggered windows: a VN is on when the cycle's phase falls in its
    // own (wrapping) window. Each ON tenant offers traffic INDEPENDENTLY
    // at `load` packets/cycle, so coinciding peaks genuinely overload a
    // single time-shared engine (several packets may share a cycle; the
    // router's injection queue absorbs them).
    for (std::size_t v = 0; v < weights_.size(); ++v) {
      const auto start = static_cast<std::uint64_t>(std::llround(
          config_.vn_phase_offsets[v] *
          static_cast<double>(config_.duty_period)));
      const std::uint64_t rel =
          (phase + config_.duty_period - start % config_.duty_period) %
          config_.duty_period;
      if (rel >= on_cycles) continue;
      if (!rng.next_bool(config_.load)) continue;
      trace.push_back(TimedPacket{
          cycle, sample_packet(rng, static_cast<VnId>(v))});
    }
  }
  return trace;
}

std::vector<double> TrafficGenerator::measured_shares(
    const std::vector<TimedPacket>& trace, std::size_t vn_count) {
  std::vector<double> shares(vn_count, 0.0);
  if (trace.empty()) return shares;
  for (const TimedPacket& tp : trace) {
    VR_REQUIRE(tp.packet.vnid < vn_count, "trace references unknown VN");
    shares[tp.packet.vnid] += 1.0;
  }
  for (double& s : shares) s /= static_cast<double>(trace.size());
  return shares;
}

}  // namespace vr::net
