// Regenerates paper Fig. 2: BRAM power of a single 18 Kb / 36 Kb block vs
// operating frequency for speed grades -2 and -1L.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options());
  bench::emit(builder.fig2_bram_power());
  return 0;
}
