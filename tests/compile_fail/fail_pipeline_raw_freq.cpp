// MUST NOT COMPILE: the pipeline energy meter takes units::Megahertz; a
// raw double clock must be rejected at the call site.
#include "pipeline/energy.hpp"

int main() {
  vr::pipeline::ActivityCounters counters;
  const vr::fpga::StageBramPlan plan;
  const auto power = vr::pipeline::measure_engine_power(
      counters, plan, vr::fpga::SpeedGrade::kMinus2, 300.0);
  return static_cast<int>(power.dynamic_w().value());
}
