#!/usr/bin/env bash
# Builds the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the tier-1 ctest suite under it. The thread-pool (SweepRunner),
# shared-cache (WorkloadCache) and flat-trie hot-path code must stay clean.
#
# Usage: tools/sanitize_check.sh [build-dir] [ctest-regex]
#   build-dir    defaults to build-sanitize
#   ctest-regex  optional -R filter (default: everything)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-sanitize}"
ctest_filter="${2:-}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVR_SANITIZE=address,undefined
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

cd "${build_dir}"
if [[ -n "${ctest_filter}" ]]; then
  ctest --output-on-failure -R "${ctest_filter}"
else
  ctest --output-on-failure
fi
echo "sanitize_check: all tests clean under ASan/UBSan"
